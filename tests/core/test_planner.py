"""Tests for the lifetime budget planner."""

import pytest

from repro.core.planner import (LifetimeBudget, income_for_poll_interval,
                                poll_interval_for)
from repro.errors import EnergyError
from repro.units import hours, mW


class TestBudgetSolving:
    def test_discretionary_power(self):
        # 15 kJ over 5 hours = 833 mW total; minus 699 baseline and 5%
        # margin.
        budget = LifetimeBudget(15_000.0, hours(5), baseline_watts=0.699,
                                safety_margin=0.0)
        assert budget.discretionary_watts == pytest.approx(
            15_000.0 / hours(5) - 0.699)

    def test_margin_reduces_budget(self):
        tight = LifetimeBudget(1000.0, 1000.0, safety_margin=0.0)
        safe = LifetimeBudget(1000.0, 1000.0, safety_margin=0.10)
        assert safe.discretionary_watts == pytest.approx(
            0.9 * tight.discretionary_watts)

    def test_fixed_and_weighted_grants(self):
        budget = LifetimeBudget(3600.0, 3600.0)  # 1 W for an hour
        budget.safety_margin = 0.0
        plan = (budget
                .grant("radiod", watts=0.3)
                .grant("browser", weight=2.0)
                .grant("game", weight=1.0)
                .solve())
        assert plan.rates["radiod"] == pytest.approx(0.3)
        assert plan.rates["browser"] == pytest.approx(0.7 * 2 / 3)
        assert plan.rates["game"] == pytest.approx(0.7 / 3)
        assert plan.total_allocated_watts == pytest.approx(1.0)

    def test_overcommitted_fixed_grants_rejected(self):
        budget = LifetimeBudget(1000.0, 10_000.0)  # 0.1 W total
        budget.grant("hog", watts=0.5)
        with pytest.raises(EnergyError):
            budget.solve()

    def test_duplicate_grant_rejected(self):
        budget = LifetimeBudget(1000.0, 1000.0)
        budget.grant("a")
        with pytest.raises(EnergyError):
            budget.grant("a")

    def test_lifetime_guarantee(self):
        budget = LifetimeBudget(15_000.0, hours(5), baseline_watts=0.2,
                                safety_margin=0.05)
        plan = budget.grant("a", weight=1).grant("b", weight=1).solve()
        achieved = plan.lifetime_with_baseline(15_000.0, 0.2)
        # Full spend still meets (actually exceeds, via the margin)
        # the 5-hour target.
        assert achieved >= hours(5)

    def test_apply_wires_graph(self, graph):
        budget = LifetimeBudget(15_000.0, hours(5), baseline_watts=0.0,
                                safety_margin=0.0)
        children = (budget.grant("browser", weight=3)
                    .grant("mail", weight=1).apply(graph))
        graph.step(10.0)
        total_rate = sum(c.tap.rate for c in children.values())
        assert total_rate == pytest.approx(15_000.0 / hours(5))
        assert children["browser"].reserve.level == pytest.approx(
            3 * children["mail"].reserve.level, rel=1e-6)


class TestPollPlanning:
    def test_solo_interval(self):
        # 99 mW alone: one margined activation (11.875 J) per ~120 s.
        interval = poll_interval_for(mW(99))
        assert interval == pytest.approx(120.0, rel=0.01)

    def test_pooled_interval_halves(self):
        """Figure 13b's headline: pooling doubles the poll frequency."""
        solo = poll_interval_for(mW(99), sharers=1)
        pooled = poll_interval_for(mW(99), sharers=2)
        assert pooled == pytest.approx(solo / 2)

    def test_data_cost_extends_interval(self):
        plain = poll_interval_for(mW(99))
        heavy = poll_interval_for(mW(99), data_joules=1.0)
        assert heavy > plain

    def test_inverse_roundtrip(self):
        income = income_for_poll_interval(60.0, sharers=2)
        assert poll_interval_for(income, sharers=2) == pytest.approx(60.0)

    def test_zero_income_never_polls(self):
        assert poll_interval_for(0.0) == float("inf")

    def test_invalid_inputs(self):
        with pytest.raises(EnergyError):
            poll_interval_for(mW(99), sharers=0)
        with pytest.raises(EnergyError):
            income_for_poll_interval(0.0)
