"""Differential tests: compiled FlowPlan vs the per-object reference.

The vectorized tick path must be indistinguishable (to float
associativity) from the sequential per-object path it replaced, on an
adversarial randomized topology, across topology mutations, and for
every ledger the graph keeps.  The closed-form span path must conserve
exactly and track the ticked trajectory at figure level.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.flowplan import FlowPlan
from repro.core.graph import ResourceGraph
from repro.core.tap import TapType
from repro.errors import EnergyError

TOL = 1e-9


def build_random_pair(seed: int = 7, n_reserves: int = 100,
                      n_taps: int = 200):
    """Two structurally identical random graphs + parallel object lists."""
    graphs, reserve_lists, tap_lists = [], [], []
    for _ in range(2):
        rng = np.random.default_rng(seed)
        graph = ResourceGraph(15_000.0)  # decay on: paper default
        reserves = [graph.root]
        for i in range(n_reserves):
            # Capacities generous enough not to fill within the run:
            # the binding-clamp regime has its own dedicated test.
            capacity = (float(rng.uniform(200, 400))
                        if rng.random() < 0.1 else None)
            reserves.append(graph.create_reserve(
                level=float(rng.uniform(5, 40)), source=graph.root,
                capacity=capacity,
                decay_exempt=bool(rng.random() < 0.1),
                name=f"r{i}"))
        taps = []
        for i in range(n_taps):
            if rng.random() < 0.55:
                # Constant tap; bias sources toward the deep root so
                # clamps stay rare (but not impossible).
                src = (graph.root if rng.random() < 0.4
                       else reserves[int(rng.integers(1, len(reserves)))])
                snk = reserves[int(rng.integers(0, len(reserves)))]
                if snk is src:
                    snk = graph.root if src is not graph.root else reserves[1]
                taps.append(graph.create_tap(
                    src, snk, float(rng.uniform(0.01, 0.4)), name=f"c{i}"))
            else:
                src = reserves[int(rng.integers(1, len(reserves)))]
                snk = reserves[int(rng.integers(0, len(reserves)))]
                if snk is src:
                    snk = graph.root
                taps.append(graph.create_tap(
                    src, snk, float(rng.uniform(0.01, 0.2)),
                    TapType.PROPORTIONAL, name=f"p{i}"))
        graphs.append(graph)
        reserve_lists.append(reserves)
        tap_lists.append(taps)
    return graphs, reserve_lists, tap_lists


def assert_graphs_match(g_vec, g_ref, reserves_vec, reserves_ref,
                        taps_vec, taps_ref, tol=TOL):
    # abs=1e-9 for ordinary magnitudes; rel=1e-12 admits float
    # re-association on the multi-kJ root accumulator (~1e-13
    # relative per the vectorized sum order) without loosening
    # anything semantic.
    def close(a, b):
        return a == pytest.approx(b, abs=tol, rel=1e-12)

    for rv, rr in zip(reserves_vec, reserves_ref):
        assert close(rv.level, rr.level)
        assert close(rv.total_transferred_in, rr.total_transferred_in)
        assert close(rv.total_transferred_out, rr.total_transferred_out)
        assert close(rv.total_decayed, rr.total_decayed)
    for tv, tr in zip(taps_vec, taps_ref):
        assert close(tv.total_flowed, tr.total_flowed)
    assert close(g_vec.total_level(), g_ref.total_level())
    assert g_vec.conservation_error() == pytest.approx(0.0, abs=1e-6)
    assert g_ref.conservation_error() == pytest.approx(0.0, abs=1e-6)


class TestDifferentialTick:
    def test_vectorized_matches_reference_1000_ticks(self):
        """100 reserves / 200 random taps, 1000 ticks, <=1e-9 apart."""
        (g_vec, g_ref), rlists, tlists = build_random_pair()
        for _ in range(1000):
            moved_vec = g_vec.step(0.01)
            moved_ref = g_ref.step_reference(0.01)
            assert moved_vec == pytest.approx(moved_ref, abs=TOL)
        assert_graphs_match(g_vec, g_ref, rlists[0], rlists[1],
                            tlists[0], tlists[1])
        # The vectorized path must actually have run, not fallen back
        # every tick.
        assert g_vec.vector_steps > 500

    def test_equivalence_across_topology_mutations(self):
        """set_rate / delete / create invalidate the plan correctly."""
        (g_vec, g_ref), rlists, tlists = build_random_pair(seed=11)
        for graphs_step in range(4):
            for _ in range(100):
                g_vec.step(0.01)
                g_ref.step_reference(0.01)
            for g, reserves, taps in ((g_vec, rlists[0], tlists[0]),
                                      (g_ref, rlists[1], tlists[1])):
                taps[3].set_rate(0.33)
                taps[5].set_rate(0.5, TapType.PROPORTIONAL)
                g.delete_tap(taps[7 + graphs_step])
                taps.append(g.create_tap(g.root, reserves[2], 0.25,
                                         name=f"new{graphs_step}"))
                taps[9].enabled = False
        for _ in range(100):
            g_vec.step(0.01)
            g_ref.step_reference(0.01)
        assert_graphs_match(g_vec, g_ref, rlists[0], rlists[1],
                            tlists[0], tlists[1])

    def test_reserve_deletion_matches(self):
        (g_vec, g_ref), rlists, _ = build_random_pair(seed=3, n_reserves=30,
                                                      n_taps=60)
        for _ in range(50):
            g_vec.step(0.01)
            g_ref.step_reference(0.01)
        for g, reserves in ((g_vec, rlists[0]), (g_ref, rlists[1])):
            g.delete_reserve(reserves[4], reclaim_to=g.root)
            g.delete_reserve(reserves[9])  # un-reclaimed: leaks
        for _ in range(50):
            g_vec.step(0.01)
            g_ref.step_reference(0.01)
        assert g_vec.total_level() == pytest.approx(g_ref.total_level(),
                                                    abs=TOL)
        assert g_vec.total_leaked() == pytest.approx(g_ref.total_leaked(),
                                                     abs=TOL)
        assert g_vec.conservation_error() == pytest.approx(0.0, abs=1e-6)

    def test_empty_multi_drain_reserve_falls_back_correctly(self):
        """Two constant drains on a shallow reserve: the clamp tick
        falls back to the reference path and stays exact."""
        pairs = []
        for _ in range(2):
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            shallow = g.create_reserve(level=0.05, source=g.root,
                                       name="shallow")
            a = g.create_reserve(name="a")
            b = g.create_reserve(name="b")
            g.create_tap(shallow, a, 10.0, name="d1")
            g.create_tap(shallow, b, 10.0, name="d2")
            # pad the graph over the small-size vectorization cutoff
            for i in range(40):
                r = g.create_reserve(name=f"pad{i}")
                g.create_tap(g.root, r, 0.01, name=f"pt{i}")
            pairs.append((g, shallow, a, b))
        (g1, s1, a1, b1), (g2, s2, a2, b2) = pairs
        for _ in range(20):
            g1.step(0.01)
            g2.step_reference(0.01)
        assert g1.fallback_steps > 0  # the clamp tick was detected
        for x, y in ((s1, s2), (a1, a2), (b1, b2)):
            assert x.level == pytest.approx(y.level, abs=TOL)
        # Sequential priority: the first-created tap drained the
        # reserve before the second saw it.
        assert a1.level > b1.level


class TestClosedFormSpan:
    def test_span_conserves_and_tracks_ticks(self):
        """advance_span == 500 ticks at figure accuracy, exactly
        conservative."""
        def build():
            g = ResourceGraph(15_000.0)
            apps = [g.create_reserve(level=1.0, source=g.root, name=f"a{i}")
                    for i in range(20)]
            for i, app in enumerate(apps):
                g.create_tap(g.root, app, 0.070, name=f"in{i}")
                g.create_tap(app, g.root, 0.1, TapType.PROPORTIONAL,
                             name=f"back{i}")
            return g, apps
        g_span, apps_span = build()
        g_tick, apps_tick = build()
        moved = g_span.advance_span(5.0)
        assert moved is not None
        for _ in range(500):
            g_tick.step(0.01)
        assert g_span.time == pytest.approx(g_tick.time)
        assert g_span.conservation_error() == pytest.approx(0.0, abs=1e-9)
        for a_span, a_tick in zip(apps_span, apps_tick):
            # O(tick) discretisation difference only.
            assert a_span.level == pytest.approx(a_tick.level, rel=2e-3)

    def test_span_segments_across_mid_span_clamp(self):
        g = ResourceGraph(1_000.0)
        g.decay_policy.enabled = False
        shallow = g.create_reserve(level=0.5, source=g.root, name="shallow")
        sink = g.create_reserve(name="sink")
        g.create_tap(shallow, sink, 1.0, name="drain")
        # 0.5 J at 1 W clamps after 0.5 s; the segmented engine locates
        # the clamp instant and integrates both regimes exactly.
        moved = g.advance_span(10.0)
        assert moved == pytest.approx(0.5, abs=1e-6)
        assert shallow.level == pytest.approx(0.0, abs=1e-6)
        assert sink.level == pytest.approx(0.5, abs=1e-6)
        assert g.span_switches == 1
        assert g.conservation_error() == pytest.approx(0.0, abs=1e-9)

    def test_span_segments_across_debt_repayment(self):
        g = ResourceGraph(1_000.0)
        g.decay_policy.enabled = False
        r = g.create_reserve(name="r")
        r.consume(1.0, allow_debt=True)
        g.create_tap(g.root, r, 0.1, name="in")
        # Repayment crosses zero at 10 s; the span carries straight
        # through the max(L, 0) switch instead of refusing.
        moved = g.advance_span(20.0)
        assert moved == pytest.approx(0.1 * 20.0)
        assert r.level == pytest.approx(1.0, rel=1e-6)
        assert g.span_segments >= 2
        assert g.conservation_error() == pytest.approx(0.0, abs=1e-9)


class TestCreateReserveValidation:
    def test_negative_level_without_source_raises(self, graph):
        with pytest.raises(EnergyError):
            graph.create_reserve(level=-1.0)

    def test_negative_level_with_source_raises(self, graph):
        """Regression: a negative level with a source was silently
        accepted (the level > 0 transfer guard skipped it)."""
        with pytest.raises(EnergyError):
            graph.create_reserve(level=-5.0, source=graph.root)
        assert graph.root.level == pytest.approx(15_000.0)
        assert len(graph.reserves) == 1  # nothing was registered


class TestRegistryMaintenance:
    def test_live_views_are_cached_until_mutation(self, graph):
        graph.create_reserve(name="a")
        first = graph.reserves
        assert graph.reserves is first  # cached: no realloc per call
        graph.create_reserve(name="b")
        assert graph.reserves is not first
        taps_view = graph.taps
        assert graph.taps is taps_view

    def test_bulk_deletion_compacts_backing_lists(self, graph):
        reserves = [graph.create_reserve(name=f"r{i}") for i in range(50)]
        taps = [graph.create_tap(graph.root, r, 1.0, name=f"t{i}")
                for i, r in enumerate(reserves)]
        for tap in taps[:40]:
            graph.delete_tap(tap)
        for reserve in reserves[:40]:
            graph.delete_reserve(reserve)
        assert len(graph.taps) == 10
        assert len(graph.reserves) == 11  # 10 + root
        graph.sweep_dead()
        assert len(graph._taps) == 10    # backing lists compacted
        assert len(graph._reserves) == 11

    def test_compaction_preserves_retired_accounting(self, graph):
        r = graph.create_reserve(level=100.0, source=graph.root, name="r")
        r.consume(30.0)
        graph.delete_reserve(r)  # 70 J die with the reserve
        graph.sweep_dead()
        assert graph.total_consumed() == pytest.approx(30.0)
        assert graph.total_leaked() == pytest.approx(70.0)
        assert graph.conservation_error() == pytest.approx(0.0, abs=1e-9)

    def test_external_kill_count_excludes_api_deletions(self, graph):
        r1 = graph.create_reserve(name="r1")
        r2 = graph.create_reserve(name="r2")
        graph.create_tap(graph.root, r1, 1.0)
        graph.delete_reserve(r2)   # API deletion: pre-counted
        r1.mark_dead()             # external kill (container GC)
        removed = graph.sweep_dead()
        assert removed == 2        # r1 + its orphaned tap, not r2

    def test_external_kill_count_survives_plan_rebuild(self, graph):
        """A step between kill and sweep compacts early; the sweep
        must still report the external deaths it absorbed."""
        r = graph.create_reserve(name="r")
        graph.create_tap(graph.root, r, 1.0)
        r.mark_dead()
        graph.step(0.01)           # plan rebuild compacts the corpses
        assert graph.sweep_dead() == 2
        assert graph.sweep_dead() == 0  # reported exactly once

    def test_plan_recompiles_after_generation_bump(self, graph):
        r = graph.create_reserve(name="r")
        graph.create_tap(graph.root, r, 1.0)
        plan_a = graph._current_plan()
        assert graph._current_plan() is plan_a
        graph.create_tap(graph.root, r, 2.0)
        plan_b = graph._current_plan()
        assert plan_b is not plan_a
        assert isinstance(plan_b, FlowPlan)

    def test_capacity_mutation_invalidates_plan(self):
        """Mutating a public snapshot attribute (capacity here) must
        recompile the plan — the vectorized path honored a stale cap
        otherwise."""
        g = ResourceGraph(10_000.0)
        g.decay_policy.enabled = False
        capped = g.create_reserve(name="capped")
        g.create_tap(g.root, capped, 1.0, name="feed")
        for i in range(40):  # over the vectorization cutoff
            g.create_tap(g.root, g.create_reserve(name=f"p{i}"), 0.01)
        for _ in range(10):
            g.step(0.01)
        capped.capacity = capped.level + 0.005
        for _ in range(100):
            g.step(0.01)
        assert capped.level <= capped.capacity + 1e-12
        # decay_exempt and tap_type mutations bump the epoch too
        gen = g.generation
        capped.decay_exempt = True
        assert g.generation > gen
        gen = g.generation
        g.taps[0].tap_type = TapType.PROPORTIONAL
        assert g.generation > gen
