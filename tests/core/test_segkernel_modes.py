"""The compiled mode-derivation kernel vs the full Python derivation.

:func:`repro.core.segkernel.derive_modes` serves the common case of
the segmented engine's per-segment regime classification — debt
marks, FULL capacity pins, effective constant rates — and must agree
**bit-identically** with :meth:`SpanTier._derive_modes_full` wherever
it claims an answer (status 0), punting (status 1) for every regime
it does not carry (hover, empty-pin fixpoints, non-normal root).
These are the differential contracts the CI ``numba-kernel`` leg runs
under both backends.
"""

from __future__ import annotations

import numpy as np

from repro.core import segkernel
from repro.core.graph import ResourceGraph
from repro.core.spansolver import SAT_RTOL

LTOL = 1e-9


def tier_for(graph):
    return graph.span_plan_handle().span_tier


def kernel_status(tier, lvl, lam=0.0, ltol=LTOL):
    """Invoke the kernel exactly as the dispatcher does."""
    plan = tier.plan
    (finite_cap, src64, snk64, ci_ptr, ci_idx, cf_ptr, cf_idx,
     pi_ptr, pi_idx, pf_ptr, pf_idx) = tier._modes_csr_pack()
    mode = np.empty(len(plan.reserves), dtype=np.int8)
    eff = np.empty(len(plan.taps))
    status = segkernel.derive_modes(
        lvl, float(lam), float(ltol), SAT_RTOL, plan.rate,
        plan.const_mask, plan.capacity, src64, snk64, finite_cap,
        plan.decay_mask, bool(plan.any_decayable),
        int(plan.root_index), ci_ptr, ci_idx, cf_ptr, cf_idx,
        pi_ptr, pi_idx, pf_ptr, pf_idx, mode, eff)
    return status, mode, eff


def assert_same_derivation(tier, lvl, lam=0.0, ltol=LTOL):
    """Dispatcher output must equal the full Python derivation."""
    fast = tier._derive_modes(lvl.copy(), lam, ltol)
    full = tier._derive_modes_full(lvl.copy(), lam, ltol)
    if full is None:
        assert fast is None
        return
    assert fast is not None
    for a, b in zip(fast[:4], full[:4]):
        assert np.asarray(a).tobytes() == np.asarray(b).tobytes()
    assert fast[4] == full[4]


def chain_graph():
    g = ResourceGraph(1_000.0)
    g.decay_policy.enabled = False
    a = g.create_reserve(level=5.0, source=g.root, name="a")
    g.create_tap(g.root, a, 0.02, name="feed_a")
    b = g.create_reserve(level=1.0, source=a, name="b")
    g.create_tap(a, b, 0.01, name="a_to_b")
    c = g.create_reserve(name="c")
    g.create_tap(b, c, 0.005, name="b_to_c")
    return g


def capped_graph(draining=False):
    g = ResourceGraph(1_000.0)
    g.decay_policy.enabled = False
    a = g.create_reserve(level=2.0, capacity=2.0, source=g.root,
                         name="a")
    g.create_tap(g.root, a, 0.05, name="feed_a")
    if draining:
        sink = g.create_reserve(name="sink")
        g.create_tap(a, sink, 0.03, name="drain_a")
    return g


class TestFastPathAgreement:
    def test_plain_chain_matches_full(self):
        tier = tier_for(chain_graph())
        lvl = np.array([r._level for r in tier.plan.reserves])
        status, mode, eff = kernel_status(tier, lvl)
        assert status == 0  # the fast path must actually engage
        full = tier._derive_modes_full(lvl, 0.0, LTOL)
        assert full is not None
        assert mode.tobytes() == full[0].tobytes()
        assert eff.tobytes() == full[1].tobytes()
        assert not full[2].any() and not full[3].any()
        assert full[4] == ()
        assert_same_derivation(tier, lvl)

    def test_debt_rows_match_full(self):
        tier = tier_for(chain_graph())
        lvl = np.array([r._level for r in tier.plan.reserves])
        lvl[2] = -0.25  # a repaying debtor
        status, mode, eff = kernel_status(tier, lvl)
        assert status == 0
        full = tier._derive_modes_full(lvl, 0.0, LTOL)
        assert mode.tobytes() == full[0].tobytes()
        assert eff.tobytes() == full[1].tobytes()
        assert_same_derivation(tier, lvl)

    def test_full_capacity_pin_matches_full(self):
        tier = tier_for(capped_graph(draining=False))
        lvl = np.array([r._level for r in tier.plan.reserves])
        status, mode, eff = kernel_status(tier, lvl)
        assert status == 0
        full = tier._derive_modes_full(lvl, 0.0, LTOL)
        assert mode.tobytes() == full[0].tobytes()
        assert 3 in mode  # the capped reserve pinned FULL
        assert eff.tobytes() == full[1].tobytes()
        assert_same_derivation(tier, lvl)

    def test_randomized_levels_agree_exactly(self):
        rng = np.random.default_rng(42)
        tier = tier_for(chain_graph())
        n = len(tier.plan.reserves)
        engaged = 0
        for _ in range(200):
            lvl = rng.uniform(-1.0, 5.0, size=n)
            lvl[int(tier.plan.root_index)] = abs(
                lvl[int(tier.plan.root_index)]) + 1.0
            status, mode, eff = kernel_status(tier, lvl)
            if status == 0:
                engaged += 1
                full = tier._derive_modes_full(lvl, 0.0, LTOL)
                assert full is not None
                assert mode.tobytes() == full[0].tobytes()
                assert eff.tobytes() == full[1].tobytes()
            assert_same_derivation(tier, lvl)
        assert engaged > 0


class TestPunts:
    def test_hover_punts_to_python(self):
        """A capped, fed, draining reserve whose inflow sustains the
        outflow is a hover — the kernel must not claim it."""
        tier = tier_for(capped_graph(draining=True))
        lvl = np.array([r._level for r in tier.plan.reserves])
        status, _, _ = kernel_status(tier, lvl)
        assert status == 1
        assert_same_derivation(tier, lvl)

    def test_empty_pin_candidate_punts_to_python(self):
        """A drained-to-zero reserve with constant drains needs the
        pass-through fixpoint — python's, not the kernel's."""
        tier = tier_for(chain_graph())
        lvl = np.array([r._level for r in tier.plan.reserves])
        lvl[2] = 0.0  # b sits empty with a live constant drain
        status, _, _ = kernel_status(tier, lvl)
        assert status == 1
        assert_same_derivation(tier, lvl)


class TestBackends:
    def test_fallback_is_exposed(self):
        assert callable(segkernel.derive_modes_numpy)

    def test_fallback_agrees_with_active_backend(self):
        tier = tier_for(chain_graph())
        plan = tier.plan
        lvl = np.array([r._level for r in plan.reserves])
        (finite_cap, src64, snk64, ci_ptr, ci_idx, cf_ptr, cf_idx,
         pi_ptr, pi_idx, pf_ptr, pf_idx) = tier._modes_csr_pack()
        args = (lvl, 0.0, LTOL, SAT_RTOL, plan.rate, plan.const_mask,
                plan.capacity, src64, snk64, finite_cap,
                plan.decay_mask, bool(plan.any_decayable),
                int(plan.root_index), ci_ptr, ci_idx, cf_ptr, cf_idx,
                pi_ptr, pi_idx, pf_ptr, pf_idx)
        mode_a = np.empty(len(plan.reserves), dtype=np.int8)
        eff_a = np.empty(len(plan.taps))
        mode_b = np.empty(len(plan.reserves), dtype=np.int8)
        eff_b = np.empty(len(plan.taps))
        sa = segkernel.derive_modes(*args, mode_a, eff_a)
        sb = segkernel.derive_modes_numpy(*args, mode_b, eff_b)
        assert sa == sb
        if sa == 0:
            assert mode_a.tobytes() == mode_b.tobytes()
            assert eff_a.tobytes() == eff_b.tobytes()
