"""Tests for global decay (§5.2.2) and the energy-aware scheduler (§3.2)."""

import math

import pytest

from repro.core.accounting import ConsumptionLedger
from repro.core.decay import DEFAULT_HALF_LIFE_S, DecayPolicy
from repro.core.reserve import Reserve
from repro.core.scheduler import EnergyAwareScheduler
from repro.errors import EnergyError, SchedulerError
from repro.kernel.thread_obj import Thread, ThreadState


class TestDecayPolicy:
    def test_half_life_is_honored(self):
        policy = DecayPolicy(half_life_s=600.0)
        reserve = Reserve(level=100.0)
        root = Reserve(decay_exempt=True)
        policy.apply([reserve], root, 600.0)
        assert reserve.level == pytest.approx(50.0)
        assert root.level == pytest.approx(50.0)

    def test_tick_size_independence(self):
        policy = DecayPolicy(half_life_s=600.0)
        coarse = Reserve(level=100.0)
        fine = Reserve(level=100.0)
        root = Reserve(decay_exempt=True)
        policy.apply([coarse], root, 60.0)
        for _ in range(60):
            policy.apply([fine], root, 1.0)
        assert coarse.level == pytest.approx(fine.level)

    def test_exempt_reserves_skipped(self):
        """§5.5.2: 'The netd reserve is not subject to the system
        global half-life'."""
        policy = DecayPolicy()
        pool = Reserve(level=10.0, decay_exempt=True)
        policy.apply([pool], None, 600.0)
        assert pool.level == pytest.approx(10.0)

    def test_root_never_decays(self):
        policy = DecayPolicy()
        root = Reserve(level=10.0)
        policy.apply([root], root, 600.0)
        assert root.level == pytest.approx(10.0)

    def test_disabled_policy_is_noop(self):
        policy = DecayPolicy(enabled=False)
        reserve = Reserve(level=10.0)
        policy.apply([reserve], None, 600.0)
        assert reserve.level == pytest.approx(10.0)

    def test_default_half_life_is_ten_minutes(self):
        assert DEFAULT_HALF_LIFE_S == 600.0

    def test_bad_half_life_rejected(self):
        with pytest.raises(EnergyError):
            DecayPolicy(half_life_s=0.0)


def make_spinning_thread(name, level=0.0):
    thread = Thread(name=name)
    reserve = Reserve(level=level, name=f"{name}.r")
    thread.attach_reserve(reserve)
    thread.state = ThreadState.RUNNABLE
    return thread, reserve


class TestScheduler:
    CPU_W = 0.137

    def make(self):
        return EnergyAwareScheduler(self.CPU_W)

    def test_empty_reserve_blocks_running(self):
        """§3.2: threads that have depleted their reserves cannot run."""
        scheduler = self.make()
        thread, _ = make_spinning_thread("t", level=0.0)
        scheduler.add_thread(thread)
        assert scheduler.step(0.01) is None
        assert thread.state is ThreadState.THROTTLED

    def test_funded_thread_runs_and_is_charged(self):
        scheduler = self.make()
        thread, reserve = make_spinning_thread("t", level=1.0)
        scheduler.add_thread(thread)
        ran = scheduler.step(0.01)
        assert ran is thread
        assert reserve.level == pytest.approx(1.0 - self.CPU_W * 0.01)
        assert thread.cpu_time == pytest.approx(0.01)

    def test_round_robin_alternates(self):
        scheduler = self.make()
        a, _ = make_spinning_thread("a", level=1.0)
        b, _ = make_spinning_thread("b", level=1.0)
        scheduler.add_thread(a)
        scheduler.add_thread(b)
        order = [scheduler.step(0.01).name for _ in range(4)]
        assert order == ["a", "b", "a", "b"]

    def test_duty_cycle_matches_tap_rate(self):
        """A 68.5 mW feed buys ~50% of a 137 mW CPU (Figure 9)."""
        scheduler = self.make()
        thread, reserve = make_spinning_thread("t")
        scheduler.add_thread(thread)
        dt = 0.01
        for _ in range(10_000):
            reserve.deposit(0.0685 * dt)  # the tap
            scheduler.step(dt)
        assert scheduler.utilization == pytest.approx(0.50, abs=0.01)

    def test_blocked_threads_not_scheduled(self):
        scheduler = self.make()
        thread, _ = make_spinning_thread("t", level=1.0)
        thread.state = ThreadState.BLOCKED
        scheduler.add_thread(thread)
        assert scheduler.step(0.01) is None

    def test_dead_threads_not_scheduled(self):
        scheduler = self.make()
        thread, _ = make_spinning_thread("t", level=1.0)
        scheduler.add_thread(thread)
        thread.kill()
        assert scheduler.step(0.01) is None

    def test_ledger_records_cpu_consumption(self):
        ledger = ConsumptionLedger()
        scheduler = EnergyAwareScheduler(self.CPU_W, ledger)
        thread, _ = make_spinning_thread("app", level=1.0)
        scheduler.add_thread(thread)
        scheduler.step(0.01)
        assert ledger.total_for("app") == pytest.approx(self.CPU_W * 0.01)
        assert ledger.total_for_component("cpu") > 0

    def test_remove_thread(self):
        scheduler = self.make()
        a, _ = make_spinning_thread("a", level=1.0)
        b, _ = make_spinning_thread("b", level=1.0)
        scheduler.add_thread(a)
        scheduler.add_thread(b)
        scheduler.remove_thread(a)
        assert scheduler.step(0.01) is b

    def test_double_add_rejected(self):
        scheduler = self.make()
        thread, _ = make_spinning_thread("t")
        scheduler.add_thread(thread)
        with pytest.raises(SchedulerError):
            scheduler.add_thread(thread)

    def test_secondary_reserve_keeps_thread_eligible(self):
        """§3.2: 'at least one of its energy reserves is not empty'."""
        scheduler = self.make()
        thread, primary = make_spinning_thread("t", level=0.0)
        backup = Reserve(level=1.0, name="backup")
        thread.attach_reserve(backup)
        scheduler.add_thread(thread)
        # Active reserve is empty but the backup makes it eligible;
        # billing still hits the active reserve (into debt).
        assert scheduler.eligible(thread, 0.00137)
        ran = scheduler.step(0.01)
        assert ran is thread
        assert primary.in_debt
