"""Tests for the consumption ledger and the policy fragments."""

import pytest

from repro.core.accounting import ConsumptionLedger
from repro.core.graph import ResourceGraph
from repro.core.policy import (foreground_background_slot, rate_limit,
                               shared_rate_limit)


class TestLedger:
    def test_totals_by_principal_and_component(self):
        ledger = ConsumptionLedger()
        ledger.record("a", "cpu", 1.0, time=0.0)
        ledger.record("a", "radio", 2.0, time=1.0)
        ledger.record("b", "cpu", 3.0, time=2.0)
        assert ledger.total() == pytest.approx(6.0)
        assert ledger.total_for("a") == pytest.approx(3.0)
        assert ledger.total_for_component("cpu") == pytest.approx(4.0)
        assert ledger.principals() == ["a", "b"]

    def test_window_query_half_open(self):
        ledger = ConsumptionLedger()
        for t in (0.0, 1.0, 2.0, 3.0):
            ledger.record("a", "cpu", 1.0, time=t)
        assert ledger.energy_in_window("a", 1.0, 3.0) == pytest.approx(2.0)

    def test_clock_binding(self):
        now = {"t": 5.0}
        ledger = ConsumptionLedger(clock=lambda: now["t"])
        ledger.record("a", "cpu", 1.0)
        assert ledger.window(4.9, 5.1)[0].principal == "a"

    def test_power_series_bins(self):
        ledger = ConsumptionLedger()
        # 0.137 W for two seconds, then silence.
        for i in range(200):
            ledger.record("a", "cpu", 0.00137, time=i * 0.01)
        times, watts = ledger.power_series("a", 4.0, bin_s=1.0)
        assert len(times) == 4
        assert watts[0] == pytest.approx(0.137, rel=0.02)
        assert watts[3] == 0.0

    def test_power_series_component_filter(self):
        ledger = ConsumptionLedger()
        ledger.record("a", "cpu", 1.0, time=0.5)
        ledger.record("a", "radio", 9.0, time=0.5)
        _, cpu_only = ledger.power_series("a", 1.0, 1.0, component="cpu")
        assert cpu_only[0] == pytest.approx(1.0)

    def test_out_of_order_records_clamped(self):
        ledger = ConsumptionLedger()
        ledger.record("a", "cpu", 1.0, time=5.0)
        ledger.record("a", "cpu", 1.0, time=4.0)  # clamped to 5.0
        assert ledger.energy_in_window("a", 5.0, 6.0) == pytest.approx(2.0)


class TestPolicyFragments:
    def test_rate_limit_builds_figure1(self, graph):
        child = rate_limit(graph, graph.root, 0.750, name="browser")
        graph.step(1.0)
        assert child.reserve.level == pytest.approx(0.750)
        assert child.tap.rate == pytest.approx(0.750)

    def test_shared_rate_limit_equilibrium(self, graph):
        child = shared_rate_limit(graph, graph.root, 0.070,
                                  back_fraction=0.1, name="plugin")
        assert child.equilibrium_level == pytest.approx(0.700)
        for _ in range(3000):
            graph.step(0.1)
        assert child.reserve.level == pytest.approx(0.700, rel=0.02)

    def test_fg_bg_slot_switches(self, graph):
        fg = graph.create_reserve(name="fg", source=graph.root,
                                  level=100.0)
        bg = graph.create_reserve(name="bg", source=graph.root,
                                  level=100.0)
        slot = foreground_background_slot(graph, fg, bg, name="app")
        slot.background.set_rate(0.007)
        assert not slot.in_foreground
        slot.bring_to_foreground(0.137)
        assert slot.in_foreground
        graph.step(1.0)
        assert slot.reserve.level == pytest.approx(0.144)
        slot.send_to_background()
        assert slot.foreground.rate == 0.0
        graph.step(1.0)
        assert slot.reserve.level == pytest.approx(0.151)
