"""The segmented span engine: regime switches solve, residuals refuse.

Differential/property contracts for the switching tier of
:mod:`repro.core.spansolver` (see the switching-segment section of
docs/performance.md):

* spans crossing a **drain clamp** (a constant tap emptying its
  reserve), a **binding capacity** (a fed, outflow-free reserve
  filling up), or a **debt zero-crossing** (the ``max(L, 0)``
  nonlinearity) solve closed-form as located segment chains and track
  the ``step_reference`` tick loop — switch instants land within
  solver tolerance of the tick path's clamp/fill/repay ticks;
* conservation stays exact (< 1e-9) across any number of segments —
  per-segment flows commit by mass balance, staged so a refused chain
  mutates nothing;
* randomized switching topologies (clamps, caps, debt, chains, decay
  on/off) stay within tolerance or refuse cleanly;
* the residual refusal classes (time-varying pass-through, a draining
  capped reserve, over-long chains) still return None and mutate
  nothing.

Tolerances: levels near a switch differ from ticking by O(one tick of
flow) — the tick path quantizes the switch instant to its grid — so
the absolute tolerance scales with ``max_rate * tick`` on top of the
documented relative 2e-3.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.graph import ResourceGraph
from repro.core.tap import TapType

REL_TOL = 2e-3
TICK = 0.01


def run_pair(build, span, tick=TICK):
    """One graph fast-forwarded vs an identical one ticked."""
    g_span = build()
    g_tick = build()
    moved_span = g_span.advance_span(span)
    moved_tick = 0.0
    for _ in range(int(round(span / tick))):
        moved_tick += g_tick.step_reference(tick)
    return g_span, g_tick, moved_span, moved_tick


def assert_switching_match(g_span, g_tick, moved_span, moved_tick,
                           abs_tol):
    assert moved_span is not None
    assert moved_span == pytest.approx(moved_tick, rel=REL_TOL,
                                       abs=abs_tol)
    for r_span, r_tick in zip(g_span.reserves, g_tick.reserves):
        assert r_span.level == pytest.approx(r_tick.level, rel=REL_TOL,
                                             abs=abs_tol), r_span.name
    for t_span, t_tick in zip(g_span.taps, g_tick.taps):
        assert t_span.total_flowed == pytest.approx(
            t_tick.total_flowed, rel=REL_TOL, abs=abs_tol), t_span.name
    assert g_span.conservation_error() == pytest.approx(0.0, abs=1e-9)


class TestDrainClampSegments:
    def test_clamp_instant_and_pass_through(self):
        """Feed 20 mW against a 50 mW drain: the reserve empties at
        exactly level / net-rate, after which the drain passes the
        feed through — both regimes integrated exactly."""
        def build():
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            a = g.create_reserve(level=3.0, source=g.root, name="a")
            g.create_tap(g.root, a, 0.02, name="feed")
            b = g.create_reserve(name="b")
            g.create_tap(a, b, 0.05, name="drain")
            return g
        span = 500.0
        clamp_at = 3.0 / (0.05 - 0.02)  # 100 s
        pair = run_pair(build, span)
        assert_switching_match(*pair, abs_tol=3 * 0.05 * TICK)
        g = pair[0]
        assert g.span_switches == 1
        # Flow accounting pins the located instant: full rate before
        # the clamp, pass-through after.
        drain = g.taps[1]
        expected = 0.05 * clamp_at + 0.02 * (span - clamp_at)
        assert drain.total_flowed == pytest.approx(expected, rel=1e-6)

    def test_chained_pass_through(self):
        """A clamped reserve draining into a second reserve that then
        clamps too: two located switches, conservation exact."""
        def build():
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            a = g.create_reserve(level=2.0, source=g.root, name="a")
            g.create_tap(g.root, a, 0.01, name="feed")
            b = g.create_reserve(level=1.0, source=g.root, name="b")
            g.create_tap(a, b, 0.04, name="d1")
            c = g.create_reserve(name="c")
            g.create_tap(b, c, 0.05, name="d2")
            return g
        pair = run_pair(build, 400.0)
        assert_switching_match(*pair, abs_tol=3 * 0.05 * TICK)
        assert pair[0].span_switches >= 2

    def test_unfed_reserve_simply_stops(self):
        """No inflow at all: after the clamp nothing flows (the empty
        regime with a zero pass-through)."""
        def build():
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            a = g.create_reserve(level=1.0, source=g.root, name="a")
            b = g.create_reserve(name="b")
            g.create_tap(a, b, 0.1, name="drain")
            return g
        pair = run_pair(build, 60.0)
        assert_switching_match(*pair, abs_tol=3 * 0.1 * TICK)
        assert pair[0].reserves[1].level == pytest.approx(0.0, abs=1e-6)
        assert pair[0].reserves[2].level == pytest.approx(1.0, abs=1e-6)


class TestDebtRepaymentSegments:
    @pytest.mark.parametrize("decay", [False, True])
    def test_repayment_resumes_drains_and_decay(self, decay):
        """A debt reserve repays linearly (outflows and decay off),
        crosses zero, then its proportional drain and the global decay
        resume — the acceptance nonlinearity."""
        def build():
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = decay
            d = g.create_reserve(level=4.0, source=g.root, name="d")
            g.create_tap(g.root, d, 0.05, name="feed")
            g.create_tap(d, g.root, 0.03, TapType.PROPORTIONAL,
                         name="back")
            d.consume(10.0, allow_debt=True)  # level -6
            return g
        pair = run_pair(build, 400.0)  # crossing at 120 s
        assert_switching_match(*pair, abs_tol=3 * 0.05 * TICK)
        g = pair[0]
        assert g.span_switches >= 1
        assert g.reserves[1].level > 0.5  # well past repayment

    def test_starved_debt_stays_put(self):
        """A debt reserve with no inflow never crosses: one segment,
        nothing moves through it, debt preserved exactly."""
        def build():
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            d = g.create_reserve(level=1.0, source=g.root, name="d")
            g.create_tap(d, g.root, 0.05, TapType.PROPORTIONAL,
                         name="back")
            d.consume(5.0, allow_debt=True)  # level -4
            return g
        pair = run_pair(build, 120.0)
        assert_switching_match(*pair, abs_tol=1e-6)
        assert pair[0].reserves[1].level == pytest.approx(-4.0)

    def test_debt_beside_live_chain(self):
        """The rest of the graph keeps its coupled closed form while
        one reserve repays: segments do not degrade the healthy rows."""
        def build():
            g = ResourceGraph(2_000.0)
            g.decay_policy.enabled = False
            app = g.create_reserve(level=30.0, source=g.root, name="app")
            g.create_tap(g.root, app, 0.06, name="feed")
            sub = g.create_reserve(level=3.0, source=g.root, name="sub")
            g.create_tap(app, sub, 0.05, TapType.PROPORTIONAL, name="t1")
            g.create_tap(sub, g.root, 0.04, TapType.PROPORTIONAL,
                         name="t2")
            d = g.create_reserve(name="debtor")
            g.create_tap(g.root, d, 0.02, name="repay")
            d.consume(6.0, allow_debt=True)
            return g
        pair = run_pair(build, 600.0)  # crossing at 300 s
        assert_switching_match(*pair, abs_tol=3 * 0.06 * TICK)


class TestCapacityFreezeSegments:
    def test_fill_freezes_inflow(self):
        """A capped, outflow-free reserve fills at a located instant;
        past it the feed is rejected and the energy stays upstream."""
        def build():
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            c = g.create_reserve(level=0.5, source=g.root, capacity=2.0,
                                 name="buffer")
            g.create_tap(g.root, c, 0.01, name="feed")
            return g
        span = 400.0  # fills at 150 s
        pair = run_pair(build, span)
        assert_switching_match(*pair, abs_tol=3 * 0.01 * TICK)
        g = pair[0]
        assert g.span_switches == 1
        assert g.reserves[1].level == pytest.approx(2.0, abs=1e-6)
        assert g.taps[0].total_flowed == pytest.approx(1.5, abs=1e-6)

    def test_draining_capped_reserve_hovers(self):
        """A capped reserve with an outflow hovers at the cap: the
        fill instant is located, then the hover regime serves the drip
        from the feed and rejects the surplus at the tap — tracked
        against ticking, conservation exact."""
        def build():
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            c = g.create_reserve(level=1.9, source=g.root, capacity=2.0,
                                 name="buffer")
            g.create_tap(g.root, c, 0.05, name="feed")
            g.create_tap(c, g.root, 0.01, name="drip")
            return g
        span = 100.0  # fills at 2.5 s, hovers for the rest
        pair = run_pair(build, span)
        assert_switching_match(*pair, abs_tol=3 * 0.05 * TICK)
        g = pair[0]
        assert g.span_switches == 1
        assert g.reserves[1].level == pytest.approx(2.0, abs=1e-6)
        # Past the fill the feed only lands what the drip re-opens.
        hover = span - 2.5
        assert g.taps[0].total_flowed == pytest.approx(
            0.05 * 2.5 + 0.01 * hover, rel=1e-6)
        assert g.taps[1].total_flowed == pytest.approx(
            0.01 * span, rel=1e-6)

    def test_hover_from_start_no_switch_certificate(self):
        """Starting *at* the cap, the whole span is one hover segment
        — the no-switch certificate holds and no switch is counted."""
        def build():
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            c = g.create_reserve(level=2.0, source=g.root, capacity=2.0,
                                 name="buffer")
            g.create_tap(g.root, c, 0.05, name="feed")
            g.create_tap(c, g.root, 0.01, name="drip")
            return g
        pair = run_pair(build, 50.0)
        assert_switching_match(*pair, abs_tol=3 * 0.05 * TICK)
        g = pair[0]
        assert g.span_segments == 1
        assert g.span_switches == 0

    def test_decaying_capped_reserve_hovers(self):
        """Decay on a pinned-at-cap reserve keeps re-opening headroom;
        the hover regime routes the reclaim to the root and accepts
        exactly the loss from the feed."""
        def build():
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = True
            c = g.create_reserve(level=2.0, source=g.root, capacity=2.0,
                                 name="buffer")
            g.create_tap(g.root, c, 0.05, name="feed")
            return g
        pair = run_pair(build, 50.0)
        assert_switching_match(*pair, abs_tol=3 * 0.05 * TICK)
        g = pair[0]
        assert g.span_segments == 1
        assert g.span_switches == 0
        # Accepted inflow matches the decay loss at the pin.
        lam = g.decay_policy.lam
        assert g.taps[0].total_flowed == pytest.approx(
            lam * 2.0 * 50.0, rel=1e-2)


class TestForwardedPassThrough:
    def test_prop_fed_empty_reserve_forwards(self):
        """An empty reserve fed only by a live proportional tap pins
        at zero and forwards the decaying inflow to its drain — one
        segment, no switch, conservation exact."""
        def build():
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            u = g.create_reserve(level=100.0, source=g.root, name="u")
            j = g.create_reserve(name="junction")
            g.create_tap(u, j, 0.001, TapType.PROPORTIONAL, name="p")
            sink = g.create_reserve(name="sink")
            g.create_tap(j, sink, 0.5, name="drain")
            return g
        span = 200.0
        pair = run_pair(build, span)
        assert_switching_match(*pair, abs_tol=3 * 0.5 * TICK)
        g = pair[0]
        assert g.span_segments == 1
        assert g.span_switches == 0
        assert g.reserves[2].level == pytest.approx(0.0, abs=1e-9)
        # The drain carried exactly the integrated upstream outflow.
        expected = 100.0 * (1.0 - np.exp(-0.001 * span))
        assert g.taps[1].total_flowed == pytest.approx(expected,
                                                       rel=1e-6)

    def test_forwarded_allocation_switch(self):
        """Two drains on a forwarded junction: the fully-fed prefix
        shrinks as the upstream source decays — the saturation monitor
        locates the re-allocation instant."""
        def build():
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            u = g.create_reserve(level=100.0, source=g.root, name="u")
            j = g.create_reserve(name="junction")
            g.create_tap(u, j, 0.002, TapType.PROPORTIONAL, name="p")
            s1 = g.create_reserve(name="s1")
            g.create_tap(j, s1, 0.1, name="d1")
            s2 = g.create_reserve(name="s2")
            g.create_tap(j, s2, 0.3, name="d2")
            return g
        # I(t) = 0.002 * 100 e^{-0.002 t} crosses d1's rate at ~347 s.
        pair = run_pair(build, 500.0)
        assert_switching_match(*pair, abs_tol=3 * 0.3 * TICK)
        g = pair[0]
        assert g.span_switches >= 1
        assert g.reserves[2].level == pytest.approx(0.0, abs=1e-9)
        assert g.conservation_error() == pytest.approx(0.0, abs=1e-9)


class TestCombinedSwitching:
    def test_clamp_plus_debt_plus_chain_in_one_span(self):
        """The acceptance shape in one graph: a proportional chain, a
        mid-span drain clamp, and a debt repayment all inside one
        span, solved as one multi-segment chain with exact books."""
        def build():
            g = ResourceGraph(2_000.0)
            g.decay_policy.enabled = False
            app = g.create_reserve(level=20.0, source=g.root, name="app")
            g.create_tap(g.root, app, 0.05, name="app.feed")
            sub = g.create_reserve(level=2.0, source=g.root, name="sub")
            g.create_tap(app, sub, 0.04, TapType.PROPORTIONAL,
                         name="chain1")
            g.create_tap(sub, g.root, 0.03, TapType.PROPORTIONAL,
                         name="chain2")
            task = g.create_reserve(level=4.0, source=g.root, name="task")
            g.create_tap(g.root, task, 0.02, name="task.feed")
            archive = g.create_reserve(name="archive")
            g.create_tap(task, archive, 0.05, name="task.drain")
            debtor = g.create_reserve(name="debtor")
            g.create_tap(g.root, debtor, 0.03, name="repay")
            debtor.consume(9.0, allow_debt=True)
            return g
        # task clamps at 4/(0.05-0.02) ~ 133 s; debtor crosses 300 s.
        pair = run_pair(build, 500.0)
        assert_switching_match(*pair, abs_tol=3 * 0.05 * TICK)
        assert pair[0].span_switches >= 2
        assert pair[0].span_segments >= 3

    def test_sub_sample_cap_excursion_refuses(self):
        """Certification soundness: a capped reserve that spikes over
        its cap and back *between* event-scan samples (a ~1 s
        transient inside a 600 s span) must refuse, not silently
        commit flows the tick path would have rejected at the cap."""
        def build():
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            u = g.create_reserve(level=200.0, source=g.root, name="u")
            c = g.create_reserve(level=1.0, source=g.root,
                                 capacity=40.0, name="c")
            g.create_tap(u, c, 1.0, TapType.PROPORTIONAL, name="p1")
            sink = g.create_reserve(name="sink")
            g.create_tap(c, sink, 0.5, TapType.PROPORTIONAL, name="p2")
            alt = g.create_reserve(name="alt")
            g.create_tap(u, alt, 0.3, TapType.PROPORTIONAL, name="p3")
            return g
        g = build()
        before = [r.level for r in g.reserves]
        assert g.advance_span(600.0) is None
        assert [r.level for r in g.reserves] == before
        # Tick-by-tick handles it (clamping at the cap) and conserves.
        g_tick = build()
        for _ in range(5000):
            g_tick.step_reference(TICK)
        assert g_tick.conservation_error() == pytest.approx(0.0,
                                                            abs=1e-9)

    def test_refused_chain_mutates_nothing(self):
        """Staging: a chain that hits a residual refusal mid-way (a
        proportionally-fed capacity binding after a clamp) must leave
        every level untouched."""
        g = ResourceGraph(1_000.0)
        g.decay_policy.enabled = False
        a = g.create_reserve(level=0.5, source=g.root, name="a")
        g.create_tap(g.root, a, 0.01, name="feed")
        b = g.create_reserve(name="b")
        g.create_tap(a, b, 0.05, name="drain")   # clamps at ~12.5 s
        u = g.create_reserve(level=50.0, source=g.root, name="u")
        c = g.create_reserve(level=0.9, source=g.root, capacity=1.0,
                             name="capped")
        # Time-varying inflow into a binding capacity that also
        # drains (a would-be hover fed by a live proportional tap):
        # still refused.
        g.create_tap(u, c, 0.001, TapType.PROPORTIONAL, name="c.feed")
        g.create_tap(c, g.root, 0.002, name="c.drip")
        before = [r.level for r in g.reserves]
        assert g.advance_span(60.0) is None
        assert [r.level for r in g.reserves] == before
        assert g.span_segments == 0
        # Tick-by-tick remains correct and conserves.
        for _ in range(200):
            g.step_reference(TICK)
        assert g.conservation_error() == pytest.approx(0.0, abs=1e-9)


class TestRandomizedSwitching:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_switching_graphs_match_ticks(self, seed):
        """Property test: random graphs seeded with clamping drains,
        repaying debts, filling caps, and proportional chains either
        solve within tolerance or refuse without mutating."""
        rng = np.random.default_rng(seed)
        decay = bool(rng.random() < 0.4)
        span = float(rng.choice([30.0, 120.0, 450.0]))
        n = int(rng.integers(3, 8))

        def build():
            local = np.random.default_rng(seed + 2000)
            g = ResourceGraph(5_000.0)
            g.decay_policy.enabled = decay
            reserves = []
            for i in range(n):
                r = g.create_reserve(level=float(local.uniform(0.5, 8.0)),
                                     source=g.root, name=f"r{i}")
                reserves.append(r)
                # Feed first (creation order matters to pass-through).
                if local.random() < 0.8:
                    g.create_tap(g.root, r,
                                 float(local.uniform(0.005, 0.04)),
                                 name=f"feed{i}")
                roll = local.random()
                if roll < 0.4:
                    # A drain that may outrun the feed: clamp material.
                    g.create_tap(r, g.root,
                                 float(local.uniform(0.02, 0.08)),
                                 name=f"drain{i}")
                elif roll < 0.7:
                    g.create_tap(r, g.root,
                                 float(local.uniform(0.01, 0.1)),
                                 TapType.PROPORTIONAL, name=f"back{i}")
                if local.random() < 0.25:
                    r.consume(float(local.uniform(2.0, 12.0)),
                              allow_debt=True)
            return g

        g_probe = build()
        max_rate = max(t.rate for t in g_probe.taps) if g_probe.taps \
            else 0.0
        abs_tol = max(3 * max_rate * TICK, 1e-6)
        g_span = build()
        before = [r.level for r in g_span.reserves]
        moved = g_span.advance_span(span)
        if moved is None:
            # A residual refusal is allowed — but it must be clean.
            assert [r.level for r in g_span.reserves] == before
            return
        g_tick = build()
        moved_tick = 0.0
        for _ in range(int(round(span / TICK))):
            moved_tick += g_tick.step_reference(TICK)
        assert_switching_match(g_span, g_tick, moved, moved_tick,
                               abs_tol)

    def test_repeated_switching_spans_accumulate(self):
        """Engine-style repeated macro-steps across a clamp and a
        repayment stay within tolerance of one long tick run."""
        def build():
            g = ResourceGraph(2_000.0)
            g.decay_policy.enabled = False
            a = g.create_reserve(level=2.0, source=g.root, name="a")
            g.create_tap(g.root, a, 0.01, name="feed")
            b = g.create_reserve(name="b")
            g.create_tap(a, b, 0.03, name="drain")
            d = g.create_reserve(name="d")
            g.create_tap(g.root, d, 0.02, name="repay")
            d.consume(4.0, allow_debt=True)
            return g
        g_span = build()
        g_tick = build()
        for _ in range(40):
            assert g_span.advance_span(10.0) is not None
        for _ in range(int(round(400.0 / TICK))):
            g_tick.step_reference(TICK)
        for r_span, r_tick in zip(g_span.reserves, g_tick.reserves):
            assert r_span.level == pytest.approx(
                r_tick.level, rel=5e-3, abs=3 * 0.03 * TICK), r_span.name
        assert g_span.conservation_error() == pytest.approx(0.0,
                                                            abs=1e-9)
