"""Tests for the Reserve abstraction (paper §3.2)."""

import math

import pytest

from repro.core.reserve import ENERGY, NETWORK_BYTES, Reserve
from repro.errors import (DebtLimitError, EnergyError, ReserveEmptyError)


class TestConstruction:
    def test_defaults(self):
        reserve = Reserve()
        assert reserve.level == 0.0
        assert reserve.kind == ENERGY
        assert not reserve.in_debt

    def test_negative_level_rejected(self):
        with pytest.raises(EnergyError):
            Reserve(level=-1.0)

    def test_capacity_below_level_rejected(self):
        with pytest.raises(EnergyError):
            Reserve(level=10.0, capacity=5.0)

    def test_negative_debt_limit_rejected(self):
        with pytest.raises(EnergyError):
            Reserve(debt_limit=-1.0)


class TestConsume:
    def test_consume_reduces_level(self):
        reserve = Reserve(level=10.0)
        assert reserve.consume(3.0) == 3.0
        assert reserve.level == pytest.approx(7.0)
        assert reserve.total_consumed == pytest.approx(3.0)

    def test_insufficient_raises_and_counts_failure(self):
        reserve = Reserve(level=1.0)
        with pytest.raises(ReserveEmptyError):
            reserve.consume(2.0)
        assert reserve.consume_failures == 1
        assert reserve.level == pytest.approx(1.0)

    def test_consume_zero_is_noop(self):
        reserve = Reserve(level=1.0)
        assert reserve.consume(0.0) == 0.0
        assert reserve.total_consumed == 0.0

    def test_negative_consume_rejected(self):
        with pytest.raises(EnergyError):
            Reserve(level=1.0).consume(-0.5)

    def test_debt_allowed_when_requested(self):
        """§5.5.2: 'threads can debit their own reserves up to or into
        debt even if the cost can only be determined after-the-fact'."""
        reserve = Reserve(level=1.0)
        reserve.consume(3.0, allow_debt=True)
        assert reserve.level == pytest.approx(-2.0)
        assert reserve.in_debt

    def test_debt_limit_enforced(self):
        reserve = Reserve(level=0.0, debt_limit=1.0)
        with pytest.raises(DebtLimitError):
            reserve.consume(1.5, allow_debt=True)

    def test_can_afford(self):
        reserve = Reserve(level=5.0)
        assert reserve.can_afford(5.0)
        assert not reserve.can_afford(5.1)


class TestDeposit:
    def test_deposit_adds(self):
        reserve = Reserve()
        assert reserve.deposit(4.0) == 4.0
        assert reserve.level == pytest.approx(4.0)

    def test_deposit_clamped_to_capacity(self):
        reserve = Reserve(level=8.0, capacity=10.0)
        assert reserve.deposit(5.0) == pytest.approx(2.0)
        assert reserve.level == pytest.approx(10.0)
        assert reserve.headroom == 0.0

    def test_deposit_repays_debt(self):
        reserve = Reserve(level=1.0)
        reserve.consume(2.0, allow_debt=True)
        reserve.deposit(3.0)
        assert reserve.level == pytest.approx(2.0)
        assert not reserve.in_debt

    def test_negative_deposit_rejected(self):
        with pytest.raises(EnergyError):
            Reserve().deposit(-1.0)


class TestTransfer:
    def test_transfer_moves_exactly(self):
        src, dst = Reserve(level=10.0), Reserve()
        assert src.transfer_to(dst, 4.0) == pytest.approx(4.0)
        assert src.level == pytest.approx(6.0)
        assert dst.level == pytest.approx(4.0)

    def test_transfer_clamped_to_source_level(self):
        src, dst = Reserve(level=1.0), Reserve()
        assert src.transfer_to(dst, 5.0) == pytest.approx(1.0)
        assert src.level == 0.0

    def test_transfer_never_pulls_from_debt(self):
        src, dst = Reserve(level=1.0), Reserve()
        src.consume(2.0, allow_debt=True)
        assert src.transfer_to(dst, 1.0) == 0.0

    def test_transfer_respects_sink_capacity(self):
        src, dst = Reserve(level=10.0), Reserve(capacity=3.0)
        assert src.transfer_to(dst, 10.0) == pytest.approx(3.0)
        assert src.level == pytest.approx(7.0)

    def test_transfer_to_self_is_noop(self):
        reserve = Reserve(level=5.0)
        assert reserve.transfer_to(reserve, 3.0) == 0.0
        assert reserve.level == pytest.approx(5.0)

    def test_kind_mismatch_rejected(self):
        energy = Reserve(level=5.0)
        data = Reserve(kind=NETWORK_BYTES)
        with pytest.raises(EnergyError):
            energy.transfer_to(data, 1.0)

    def test_transfer_statistics(self):
        src, dst = Reserve(level=10.0), Reserve()
        src.transfer_to(dst, 4.0)
        assert src.total_transferred_out == pytest.approx(4.0)
        assert dst.total_transferred_in == pytest.approx(4.0)


class TestSubdivision:
    def test_subdivide_the_paper_example(self):
        """§3.2: 1000 mJ subdivided into 800 mJ and 200 mJ."""
        reserve = Reserve(level=1.0, name="app")
        child = reserve.subdivide(0.2)
        assert reserve.level == pytest.approx(0.8)
        assert child.level == pytest.approx(0.2)
        assert child.kind == reserve.kind

    def test_subdivide_insufficient_raises(self):
        with pytest.raises(ReserveEmptyError):
            Reserve(level=0.1).subdivide(0.2)

    def test_subdivide_inherits_label(self):
        from repro.kernel.labels import Label, fresh_category
        cat = fresh_category()
        reserve = Reserve(level=1.0, label=Label({cat: 3}))
        child = reserve.subdivide(0.5)
        assert child.label == reserve.label


class TestDecayHook:
    def test_decay_removes_fraction(self):
        reserve = Reserve(level=10.0)
        lost = reserve.decay(0.25)
        assert lost == pytest.approx(2.5)
        assert reserve.level == pytest.approx(7.5)
        assert reserve.total_decayed == pytest.approx(2.5)

    def test_exempt_reserve_keeps_everything(self):
        reserve = Reserve(level=10.0, decay_exempt=True)
        assert reserve.decay(0.5) == 0.0
        assert reserve.level == pytest.approx(10.0)

    def test_indebted_reserve_does_not_decay(self):
        reserve = Reserve(level=1.0)
        reserve.consume(2.0, allow_debt=True)
        assert reserve.decay(0.5) == 0.0

    def test_bad_fraction_rejected(self):
        with pytest.raises(EnergyError):
            Reserve(level=1.0).decay(1.5)


class TestLifecycle:
    def test_dead_reserve_rejects_operations(self):
        reserve = Reserve(level=5.0)
        reserve.mark_dead()
        with pytest.raises(Exception):
            reserve.consume(1.0)
        with pytest.raises(Exception):
            reserve.deposit(1.0)

    def test_death_records_leak(self):
        reserve = Reserve(level=5.0)
        reserve.mark_dead()
        assert reserve.leaked_at_death == pytest.approx(5.0)
        assert reserve.level == 0.0
