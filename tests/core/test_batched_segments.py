"""Cohort-stacked segment chains: batched vs scalar vs ticking.

Differential contracts for :func:`repro.core.spansolver.
execute_span_batch` now that switch-bound devices stay in the stacked
call (see the cohort-segment section of docs/performance.md):

* a cohort of devices sharing a topology signature but carrying
  *staggered* switch instants solves in one batched call, and every
  device's committed state matches an identical graph solved through
  the scalar segmented path within **ulp tolerance** (stacked
  matrix-matrix products reorder a handful of float additions
  relative to the per-device matrix-vector solve — this is the
  documented contract, not bit identity) and matches the
  ``step_reference`` tick loop within the switching tolerances;
* the two regimes retired from the refusal list — the **time-varying
  pass-through** (an emptied reserve fed by a live proportional tap,
  forwarding its inflow) and the **hover at capacity** (a capped,
  constant-fed reserve whose drain/decay loses less than the feed) —
  solve in batch with conservation < 1e-9;
* a cohort with *no* switch in the span certifies event-freedom
  (single segment, zero switches) instead of sampling;
* randomized heterogeneous cohorts either match the scalar result or
  drop out device-by-device, never mutating a dropped device;
* the compiled (`numba`) and fallback (numpy) switch-location kernels
  agree **bit-identically** on random monitor packs — the kernel is
  transcendental-free by construction, so this is exact equality, and
  the CI numba leg runs this file to prove it.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import segkernel
from repro.core.graph import ResourceGraph
from repro.core.spansolver import execute_span_batch
from repro.core.tap import TapType

REL_TOL = 2e-3
ULP_RTOL = 1e-9
TICK = 0.01


def tiers_for(graphs):
    return [g._current_plan().span_tier for g in graphs]


def run_batch_vs_scalar(build_one, count, span):
    """Build ``count`` devices three times over; solve each way.

    Returns ``(batched_graphs, batch_results, scalar_graphs,
    scalar_results)`` — the caller asserts on parity.  ``build_one``
    takes the device index so cohorts can stagger levels.
    """
    batched = [build_one(i) for i in range(count)]
    scalar = [build_one(i) for i in range(count)]
    results = execute_span_batch(tiers_for(batched), span)
    scalar_results = [g.advance_span(span) for g in scalar]
    return batched, results, scalar, scalar_results


def assert_ulp_parity(g_batch, g_scalar, moved_batch, moved_scalar):
    assert moved_batch is not None and moved_scalar is not None
    assert moved_batch == pytest.approx(moved_scalar, rel=ULP_RTOL,
                                        abs=1e-12)
    for rb, rs in zip(g_batch.reserves, g_scalar.reserves):
        assert rb.level == pytest.approx(rs.level, rel=ULP_RTOL,
                                         abs=1e-12), rb.name
    for tb, ts in zip(g_batch.taps, g_scalar.taps):
        assert tb.total_flowed == pytest.approx(
            ts.total_flowed, rel=ULP_RTOL, abs=1e-12), tb.name
    assert g_batch.conservation_error() == pytest.approx(0.0, abs=1e-9)


def assert_matches_ticks(g_batch, build_one, index, span, abs_tol):
    g_tick = build_one(index)
    for _ in range(int(round(span / TICK))):
        g_tick.step_reference(TICK)
    for rb, rt in zip(g_batch.reserves, g_tick.reserves):
        assert rb.level == pytest.approx(rt.level, rel=REL_TOL,
                                         abs=abs_tol), rb.name


class TestStaggeredSwitchCohorts:
    def test_staggered_clamps_solve_batched_and_match(self):
        """Same topology, staggered task levels: every device clamps
        at its own instant inside one stacked call."""
        def build_one(i):
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            task = g.create_reserve(level=2.0 + 0.3 * i, source=g.root,
                                    name="task")
            g.create_tap(g.root, task, 0.02, name="feed")
            archive = g.create_reserve(name="archive")
            g.create_tap(task, archive, 0.05, name="drain")
            return g

        span = 200.0  # clamps land at ~66..166 s, all mid-span
        batched, results, scalar, scalar_results = run_batch_vs_scalar(
            build_one, 6, span)
        for i in range(6):
            assert_ulp_parity(batched[i], scalar[i], results[i],
                              scalar_results[i])
            assert_matches_ticks(batched[i], build_one, i, span,
                                 abs_tol=3 * 0.05 * TICK)
            assert batched[i].span_switches == 1

    def test_mixed_switch_classes_in_one_cohort(self):
        """Clamp + debt zero-crossing per device, staggered both ways:
        the per-device segment clocks advance independently."""
        def build_one(i):
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            task = g.create_reserve(level=1.0 + 0.25 * i, source=g.root,
                                    name="task")
            g.create_tap(g.root, task, 0.01, name="feed")
            sink = g.create_reserve(name="sink")
            g.create_tap(task, sink, 0.03, name="drain")
            debtor = g.create_reserve(name="debtor")
            g.create_tap(g.root, debtor, 0.02, name="repay")
            debtor.consume(2.0 + 0.4 * i, allow_debt=True)
            return g

        span = 300.0
        batched, results, scalar, scalar_results = run_batch_vs_scalar(
            build_one, 5, span)
        for i in range(5):
            assert_ulp_parity(batched[i], scalar[i], results[i],
                              scalar_results[i])
            assert_matches_ticks(batched[i], build_one, i, span,
                                 abs_tol=3 * 0.03 * TICK)
            assert batched[i].span_switches >= 2


class TestRetiredRegimesInBatch:
    def test_pass_through_cohort(self):
        """The retired time-varying pass-through: an emptied reserve
        fed by a live proportional tap forwards its inflow."""
        def build_one(i):
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            a = g.create_reserve(level=5.0 + i, source=g.root, name="a")
            b = g.create_reserve(level=0.4, source=g.root, name="b")
            g.create_tap(a, b, 0.1, TapType.PROPORTIONAL, name="p1")
            g.create_tap(b, g.root, 1.0, name="drain")
            return g

        span = 50.0
        batched, results, scalar, scalar_results = run_batch_vs_scalar(
            build_one, 4, span)
        for i in range(4):
            assert_ulp_parity(batched[i], scalar[i], results[i],
                              scalar_results[i])
            assert_matches_ticks(batched[i], build_one, i, span,
                                 abs_tol=3 * 1.0 * TICK)
            # b empties, then hovers at the pinned floor.
            assert batched[i].reserves[2].level == pytest.approx(
                0.0, abs=1e-6)

    def test_hover_at_capacity_cohort(self):
        """The retired hover-at-cap: a capped constant-fed reserve
        whose drain loses less than the feed fills and hovers."""
        def build_one(i):
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            c = g.create_reserve(level=0.5 + 0.1 * i, source=g.root,
                                 capacity=2.0, name="c")
            g.create_tap(g.root, c, 0.05, name="feed")
            g.create_tap(c, g.root, 0.02, name="drip")
            return g

        span = 200.0  # fills at ~35..50 s, hovers for the rest
        batched, results, scalar, scalar_results = run_batch_vs_scalar(
            build_one, 4, span)
        for i in range(4):
            assert_ulp_parity(batched[i], scalar[i], results[i],
                              scalar_results[i])
            assert_matches_ticks(batched[i], build_one, i, span,
                                 abs_tol=3 * 0.05 * TICK)
            assert batched[i].reserves[1].level == pytest.approx(
                2.0, abs=1e-6)
            assert batched[i].span_switches >= 1


class TestNoSwitchCertificate:
    def test_event_free_cohort_takes_one_segment(self):
        """Feeds outpace drains everywhere: the certify-first fast
        path must close each span in a single segment."""
        def build_one(i):
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            a = g.create_reserve(level=10.0 + i, source=g.root, name="a")
            g.create_tap(g.root, a, 0.05, name="feed")
            b = g.create_reserve(name="b")
            g.create_tap(a, b, 0.02, name="drain")
            debtor = g.create_reserve(name="debtor")
            g.create_tap(g.root, debtor, 0.01, name="repay")
            debtor.consume(100.0 + i, allow_debt=True)  # never repays
            return g

        span = 60.0
        batched, results, scalar, scalar_results = run_batch_vs_scalar(
            build_one, 4, span)
        for i in range(4):
            assert_ulp_parity(batched[i], scalar[i], results[i],
                              scalar_results[i])
            assert batched[i].span_switches == 0


class TestRandomizedCohorts:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_cohort_matches_or_drops_cleanly(self, seed):
        """Randomized staggered cohorts: each device either matches
        the scalar segmented result at ulp tolerance, or drops out of
        the batch with its graph untouched."""
        rng = np.random.default_rng(seed)
        feed = round(float(rng.uniform(0.005, 0.03)), 6)
        drain = round(float(rng.uniform(0.03, 0.08)), 6)
        repay = round(float(rng.uniform(0.01, 0.04)), 6)
        cap = round(float(rng.uniform(1.5, 3.0)), 6)
        levels = rng.uniform(0.5, 4.0, size=5)
        debts = rng.uniform(0.5, 6.0, size=5)

        def build_one(i):
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            task = g.create_reserve(level=float(levels[i]),
                                    source=g.root, name="task")
            g.create_tap(g.root, task, feed, name="feed")
            sink = g.create_reserve(capacity=cap, name="sink")
            g.create_tap(task, sink, drain, name="drain")
            g.create_tap(sink, g.root, feed / 2.0, name="drip")
            debtor = g.create_reserve(name="debtor")
            g.create_tap(g.root, debtor, repay, name="repay")
            debtor.consume(float(debts[i]), allow_debt=True)
            return g

        span = 250.0
        frozen = [build_one(i) for i in range(5)]
        batched, results, scalar, scalar_results = run_batch_vs_scalar(
            build_one, 5, span)
        solved = 0
        for i in range(5):
            # The batch must agree with the scalar path about *which*
            # devices are solvable: a drop-out is a genuinely
            # unsupported shape, not a batched-engine limitation.
            assert (results[i] is None) == (scalar_results[i] is None)
            if results[i] is None:
                # Dropped out: nothing mutated, scalar fallback owns it.
                for rb, rf in zip(batched[i].reserves,
                                  frozen[i].reserves):
                    assert rb.level == rf.level, rb.name
                continue
            assert_ulp_parity(batched[i], scalar[i], results[i],
                              scalar_results[i])
            solved += 1
        assert solved >= 1, "the batch dropped an entire plain cohort"


class TestKernelBackends:
    def _random_pack(self, rng, g=7, k=17, n=9):
        states = rng.normal(scale=2.0, size=(g, k, n))
        clamp_rows = np.sort(rng.choice(n, size=2, replace=False)
                             ).astype(np.int64)
        cap_rows = np.sort(rng.choice(n, size=2, replace=False)
                           ).astype(np.int64)
        cap_limits = rng.uniform(0.5, 2.5, size=2)
        debt_rows = np.array([n - 1], dtype=np.int64)
        ltol = rng.uniform(1e-12, 1e-9, size=g)
        n_sat, terms = 2, 3
        sat_ptr = np.arange(0, (n_sat + 1) * terms, terms,
                            dtype=np.int64)
        sat_src = rng.choice(n, size=n_sat * terms).astype(np.int64)
        sat_wts = rng.normal(size=n_sat * terms)
        sat_c = rng.normal(size=n_sat)
        sat_lo = np.full(n_sat, -3.0)
        sat_hi = np.full(n_sat, 3.0)
        sat_tol = np.full(n_sat, 1e-9)
        return (states, clamp_rows, cap_rows, cap_limits, debt_rows,
                ltol, sat_ptr, sat_src, sat_wts, sat_c, sat_lo,
                sat_hi, sat_tol)

    @pytest.mark.parametrize("seed", range(8))
    def test_loops_match_vectorized_bit_identically(self, seed):
        """The @njit source and the numpy fallback must agree exactly
        — this is the same assertion the CI numba leg makes against
        the *compiled* kernel."""
        rng = np.random.default_rng(100 + seed)
        pack = self._random_pack(rng)
        from repro.core.segkernel import (_first_hits_loops,
                                          _violated_at_loops)
        expect = segkernel.first_hits_numpy(*pack)
        assert np.array_equal(_first_hits_loops(*pack), expect)
        one = (pack[0][:, 3, :],) + pack[1:]
        expect_v = segkernel.violated_at_numpy(*one)
        assert np.array_equal(_violated_at_loops(*one), expect_v)

    @pytest.mark.skipif(segkernel.BACKEND != "numba",
                        reason="numba not installed; fallback active")
    @pytest.mark.parametrize("seed", range(8))
    def test_compiled_matches_fallback_bit_identically(self, seed):
        """On the numba CI leg: the compiled kernel vs the fallback,
        bit for bit."""
        rng = np.random.default_rng(200 + seed)
        pack = self._random_pack(rng)
        assert np.array_equal(segkernel.first_hits(*pack),
                              segkernel.first_hits_numpy(*pack))
        one = (pack[0][:, 5, :],) + pack[1:]
        assert np.array_equal(segkernel.violated_at(*one),
                              segkernel.violated_at_numpy(*one))

    def test_empty_sat_pack_means_no_sat_hits(self):
        rng = np.random.default_rng(7)
        states = np.abs(rng.normal(size=(3, 5, 4)))  # all positive
        none = np.zeros(0, dtype=np.int64)
        ltol = np.full(3, 1e-11)
        hits = segkernel.first_hits(states, none, none, np.zeros(0),
                                    none, ltol, *segkernel.EMPTY_SAT)
        assert (hits == -1).all()

    def test_no_numba_escape_hatch_forces_numpy(self):
        """CINDER_NO_NUMBA pins the fallback even where numba exists."""
        env = dict(os.environ, CINDER_NO_NUMBA="1",
                   PYTHONPATH=os.pathsep.join(sys.path))
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.core import segkernel; print(segkernel.BACKEND)"],
            env=env, capture_output=True, text=True, check=True)
        assert out.stdout.strip() == "numpy"
