"""The coupled span solver: chains solve closed-form, refusals stay sound.

Differential/property contracts for :mod:`repro.core.spansolver`:

* ``advance_span`` on proportional chains (>= 3 deep, the topologies
  PR 2's scalar closed form refused) returns a non-None result that
  matches the ``step_reference`` tick loop within figure tolerance
  (documented in docs/performance.md: relative 2e-3 at a 10 ms tick),
  with conservation exact by mass balance;
* randomized chained topologies — depth, branching, decay on/off,
  finite caps, both expm code paths — stay within that tolerance;
* state-dependent refusals (debt entry, mid-span constant-tap clamp,
  binding capacity) still return None and mutate nothing;
* the defective-``A`` fallback (equal-rate chains produce Jordan
  blocks the eigendecomposition cannot represent) engages
  automatically and agrees with the eigenvalue path elsewhere;
* frozen-tap span plans are cached per (generation, held-tap set) —
  no generation thrash, no per-call recompiles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import spansolver
from repro.core.graph import ResourceGraph
from repro.core.tap import TapType

#: The documented solver tolerance: span vs tick-by-tick trajectories
#: differ by O(tick) discretisation only (see docs/performance.md).
REL_TOL = 2e-3
ABS_TOL = 1e-6
TICK = 0.01


def run_pair(build, span, tick=TICK):
    """One graph fast-forwarded vs an identical one ticked."""
    g_span = build()
    g_tick = build()
    moved_span = g_span.advance_span(span)
    moved_tick = 0.0
    for _ in range(int(round(span / tick))):
        moved_tick += g_tick.step_reference(tick)
    return g_span, g_tick, moved_span, moved_tick


def assert_span_matches_ticks(g_span, g_tick, moved_span, moved_tick):
    assert moved_span is not None
    assert moved_span == pytest.approx(moved_tick, rel=REL_TOL,
                                       abs=ABS_TOL)
    for r_span, r_tick in zip(g_span.reserves, g_tick.reserves):
        assert r_span.level == pytest.approx(r_tick.level, rel=REL_TOL,
                                             abs=ABS_TOL), r_span.name
    for t_span, t_tick in zip(g_span.taps, g_tick.taps):
        assert t_span.total_flowed == pytest.approx(
            t_tick.total_flowed, rel=REL_TOL, abs=ABS_TOL), t_span.name
    # Mass balance keeps conservation exact, not just approximate.
    assert g_span.conservation_error() == pytest.approx(0.0, abs=1e-9)
    assert g_span.total_level() == pytest.approx(g_tick.total_level(),
                                                 rel=1e-9, abs=1e-9)


def chain_graph(depth=3, decay=True, rates=None, feed=0.08):
    """battery -> app -> sub -> ... -> battery, proportional all the way."""
    def build():
        g = ResourceGraph(15_000.0)
        g.decay_policy.enabled = decay
        if rates is None:
            chain_rates = [0.05 - 0.01 * i for i in range(depth)]
        else:
            chain_rates = list(rates)
        prev = g.create_reserve(level=50.0, source=g.root, name="app")
        g.create_tap(g.root, prev, feed, name="feed")
        for i, rate in enumerate(chain_rates[:-1]):
            nxt = g.create_reserve(level=5.0 / (i + 1), source=g.root,
                                   name=f"sub{i}")
            g.create_tap(prev, nxt, rate, TapType.PROPORTIONAL,
                         name=f"chain{i}")
            prev = nxt
        g.create_tap(prev, g.root, chain_rates[-1], TapType.PROPORTIONAL,
                     name="back")
        return g
    return build


class TestCoupledChains:
    @pytest.mark.parametrize("decay", [False, True])
    def test_three_deep_chain_matches_ticks(self, decay):
        """The acceptance shape: a >= 3-deep proportional chain solves
        closed-form and tracks the tick loop at figure tolerance."""
        pair = run_pair(chain_graph(depth=3, decay=decay), span=5.0)
        assert_span_matches_ticks(*pair)
        g_span = pair[0]
        tier = g_span._plan.span_tier
        assert tier.coupled_solves == 1  # the chain took the new tier

    def test_deep_chain_and_long_span(self):
        pair = run_pair(chain_graph(depth=6, decay=True), span=30.0)
        assert_span_matches_ticks(*pair)

    def test_defective_matrix_uses_dense_fallback(self):
        """Equal chain rates make A defective (a Jordan block): the
        eigendecomposition must reject itself and the Padé
        scaling-and-squaring path must deliver the same contract."""
        build = chain_graph(depth=3, decay=False,
                            rates=[0.05, 0.05, 0.05])
        pair = run_pair(build, span=5.0)
        assert_span_matches_ticks(*pair)
        tier = pair[0]._plan.span_tier
        (system,) = tier._coupled.values()
        assert system.mode == "dense"

    def test_forced_dense_matches_eig_path(self, monkeypatch):
        """Both expm code paths agree to float noise on a healthy A."""
        build = chain_graph(depth=4, decay=True)
        g_eig = build()
        assert g_eig.advance_span(5.0) is not None
        (system,) = g_eig._plan.span_tier._coupled.values()
        assert system.mode == "eig"
        monkeypatch.setattr(spansolver, "FORCE_DENSE_EXPM", True)
        g_dense = build()
        assert g_dense.advance_span(5.0) is not None
        (system,) = g_dense._plan.span_tier._coupled.values()
        assert system.mode == "dense"
        for r_eig, r_dense in zip(g_eig.reserves, g_dense.reserves):
            assert r_eig.level == pytest.approx(r_dense.level, rel=1e-9)

    def test_fan_in_fan_out_topology(self):
        """Multiple proportional parents sharing children (the
        clone_reserve backpressure shape)."""
        def build():
            g = ResourceGraph(15_000.0)
            g.decay_policy.enabled = True
            mid = g.create_reserve(level=10.0, source=g.root, name="mid")
            for i in range(3):
                app = g.create_reserve(level=20.0, source=g.root,
                                       name=f"app{i}")
                g.create_tap(g.root, app, 0.05, name=f"feed{i}")
                g.create_tap(app, mid, 0.02 + 0.01 * i,
                             TapType.PROPORTIONAL, name=f"into{i}")
            for i in range(2):
                leaf = g.create_reserve(level=1.0, source=g.root,
                                        name=f"leaf{i}")
                g.create_tap(mid, leaf, 0.03 + 0.02 * i,
                             TapType.PROPORTIONAL, name=f"out{i}")
                g.create_tap(leaf, g.root, 0.05, TapType.PROPORTIONAL,
                             name=f"back{i}")
            return g
        pair = run_pair(build, span=8.0)
        assert_span_matches_ticks(*pair)


class TestRandomizedTopologies:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_chained_graphs_match_ticks(self, seed):
        """Property test: random subdivision trees with backward taps,
        random decay/caps, spans of random length."""
        rng = np.random.default_rng(seed)
        decay = bool(rng.random() < 0.5)
        span = float(rng.choice([1.0, 2.5, 5.0, 10.0]))
        n = int(rng.integers(4, 12))

        def build():
            local = np.random.default_rng(seed + 1000)
            g = ResourceGraph(20_000.0)
            g.decay_policy.enabled = decay
            reserves = [g.root]
            for i in range(n):
                parent = reserves[int(local.integers(0, len(reserves)))]
                # Generous caps only: binding caps refuse (their own test).
                capacity = (float(local.uniform(5_000, 9_000))
                            if local.random() < 0.2 else None)
                r = g.create_reserve(level=float(local.uniform(2, 30)),
                                     source=g.root, capacity=capacity,
                                     name=f"r{i}")
                reserves.append(r)
                if local.random() < 0.7:
                    g.create_tap(g.root, r,
                                 float(local.uniform(0.01, 0.1)),
                                 name=f"feed{i}")
                # A proportional drain somewhere strictly below: chains.
                g.create_tap(r, parent, float(local.uniform(0.01, 0.15)),
                             TapType.PROPORTIONAL, name=f"back{i}")
            return g
        pair = run_pair(build, span)
        assert_span_matches_ticks(*pair)

    def test_repeated_spans_accumulate_correctly(self):
        """Many consecutive macro-steps stay within tolerance of the
        same number of ticks (error does not compound)."""
        g_span = chain_graph(depth=4, decay=True)()
        g_tick = chain_graph(depth=4, decay=True)()
        for _ in range(20):
            assert g_span.advance_span(2.0) is not None
        for _ in range(int(round(40.0 / TICK))):
            g_tick.step_reference(TICK)
        for r_span, r_tick in zip(g_span.reserves, g_tick.reserves):
            assert r_span.level == pytest.approx(r_tick.level,
                                                 rel=5e-3, abs=1e-6)
        assert g_span.conservation_error() == pytest.approx(0.0, abs=1e-9)


class TestRefusalSoundness:
    def test_debt_entry_segments_and_matches_ticks(self):
        """Debt is a regime, not a refusal: the repaying reserve's
        outflows stay off until the zero crossing, exactly like the
        tick path's max(L, 0)."""
        def build():
            g = chain_graph(depth=3, decay=False)()
            g.reserves[1].consume(100.0, allow_debt=True)
            return g
        pair = run_pair(build, span=5.0)
        assert_span_matches_ticks(*pair)
        assert pair[0].span_segments >= 1

    def test_clamp_with_prop_drain_refuses_and_mutates_nothing(self):
        """A proportional drain leaving the emptied reserve flows
        O(tick) in the reference loop (deposits land before the drain
        each tick), which no closed form matches at figure tolerance —
        the pinned pass-through stays a residual refusal."""
        def build():
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            a = g.create_reserve(level=10.0, source=g.root, name="a")
            b = g.create_reserve(level=0.4, source=g.root, name="b")
            g.create_tap(a, b, 0.1, TapType.PROPORTIONAL, name="p1")
            g.create_tap(b, g.root, 0.1, TapType.PROPORTIONAL, name="p2")
            g.create_tap(b, g.root, 1.0, name="drain")  # clamps ~0.4 s in
            return g
        g = build()
        before = [r.level for r in g.reserves]
        assert g.advance_span(10.0) is None
        assert [r.level for r in g.reserves] == before
        # A short span before the clamp is solvable.
        assert g.advance_span(0.1) is not None

    def test_mid_span_clamp_segments_into_pass_through(self):
        """A constant drain empties its source ~0.4 s in; the reserve
        then pins empty and forwards its live proportional inflow to
        the drain — one switch, then a pass-through segment."""
        def build():
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            a = g.create_reserve(level=10.0, source=g.root, name="a")
            b = g.create_reserve(level=0.4, source=g.root, name="b")
            g.create_tap(a, b, 0.1, TapType.PROPORTIONAL, name="p1")
            g.create_tap(b, g.root, 1.0, name="drain")  # clamps ~0.4 s in
            return g
        pair = run_pair(build, span=10.0)
        assert_span_matches_ticks(*pair)
        assert pair[0].span_switches >= 1

    def test_binding_capacity_refuses(self):
        def build(cap):
            g = ResourceGraph(1_000.0)
            g.decay_policy.enabled = False
            a = g.create_reserve(level=10.0, source=g.root, name="a")
            b = g.create_reserve(level=1.0, source=g.root, capacity=cap,
                                 name="b")
            g.create_tap(a, b, 0.1, TapType.PROPORTIONAL, name="p1")
            g.create_tap(b, g.root, 0.05, TapType.PROPORTIONAL,
                         name="p2")
            return g
        tight = build(cap=1.5)     # inflow bound can hit the cap
        before = [r.level for r in tight.reserves]
        assert tight.advance_span(10.0) is None
        assert [r.level for r in tight.reserves] == before
        roomy = build(cap=900.0)   # cannot bind within the span bound
        pair = (roomy, build(cap=900.0))
        moved = roomy.advance_span(10.0)
        assert moved is not None
        for _ in range(1000):
            pair[1].step_reference(TICK)
        for r_span, r_tick in zip(roomy.reserves, pair[1].reserves):
            assert r_span.level == pytest.approx(r_tick.level, rel=REL_TOL)

    def test_refused_span_is_tickable(self):
        """The contract the engine relies on: a None return means
        tick-by-tick still works and conserves.  A draining capped
        reserve fed by a live proportional tap is a residual refusal
        (time-varying inflow into a binding capacity)."""
        g = ResourceGraph(1_000.0)
        g.decay_policy.enabled = False
        a = g.create_reserve(level=50.0, source=g.root, name="a")
        b = g.create_reserve(level=0.9, source=g.root, capacity=1.0,
                             name="b")
        g.create_tap(a, b, 0.001, TapType.PROPORTIONAL, name="p1")
        g.create_tap(b, g.root, 0.002, name="drip")
        assert g.advance_span(10.0) is None
        for _ in range(100):
            g.step_reference(TICK)
        assert g.conservation_error() == pytest.approx(0.0, abs=1e-9)


class TestSpanPlanCache:
    def test_frozen_taps_do_not_bump_generation(self):
        """Holding taps out of a span compiles a cached secondary plan
        instead of toggling ``enabled`` (which recompiled everything
        twice per macro-step)."""
        g = ResourceGraph(15_000.0)
        g.decay_policy.enabled = False
        apps = []
        for i in range(3):
            app = g.create_reserve(name=f"app{i}")
            g.create_tap(g.root, app, 0.05, name=f"feed{i}")
            apps.append(app)
        held = [g.taps[0]]
        gen = g.generation
        tick_plan = g._current_plan()
        assert g.advance_span(1.0, frozen_taps=held) is not None
        assert g.generation == gen          # no thrash
        assert g._current_plan() is tick_plan  # tick plan survived
        span_plan = g._span_plans[frozenset(id(t) for t in held)]
        assert g.advance_span(1.0, frozen_taps=held) is not None
        assert g._span_plans[frozenset(id(t) for t in held)] is span_plan

    def test_frozen_span_excludes_held_taps_exactly(self):
        """The cached excluded plan integrates only the live taps —
        same result as the old disable/re-enable dance."""
        def build():
            g = ResourceGraph(15_000.0)
            g.decay_policy.enabled = False
            a = g.create_reserve(name="a")
            b = g.create_reserve(name="b")
            g.create_tap(g.root, a, 0.05, name="fa")
            g.create_tap(g.root, b, 0.07, name="fb")
            return g
        g = build()
        held = [g.taps[1]]
        moved = g.advance_span(10.0, frozen_taps=held)
        assert moved == pytest.approx(0.05 * 10.0)
        assert g.reserves[1].level == pytest.approx(0.5)   # a fed
        assert g.reserves[2].level == pytest.approx(0.0)   # b frozen
        assert g.taps[1].total_flowed == 0.0

    def test_cache_invalidated_by_topology_change(self):
        g = ResourceGraph(15_000.0)
        g.decay_policy.enabled = False
        a = g.create_reserve(name="a")
        g.create_tap(g.root, a, 0.05, name="fa")
        held = [g.taps[0]]
        assert g.advance_span(1.0, frozen_taps=held) is not None
        key = frozenset(id(t) for t in held)
        stale = g._span_plans[key]
        g.create_tap(g.root, g.create_reserve(name="b"), 0.02, name="fb")
        assert g.advance_span(1.0, frozen_taps=held) is not None
        assert g._span_plans[key] is not stale  # recompiled once
