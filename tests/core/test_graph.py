"""Tests for the resource consumption graph (paper §3.4, §5.2.2)."""

import pytest

from repro.core.graph import ResourceGraph
from repro.core.tap import TapType
from repro.errors import EnergyError, HoardingError, TapError
from repro.kernel.labels import Label, PrivilegeSet, fresh_category


class TestConstruction:
    def test_root_is_battery(self, graph):
        assert graph.root.level == pytest.approx(15_000.0)
        assert graph.root.decay_exempt
        assert graph.root.name == "battery"

    def test_create_reserve_must_subdivide(self, graph):
        with pytest.raises(EnergyError):
            graph.create_reserve(level=10.0)  # no source
        child = graph.create_reserve(level=10.0, source=graph.root)
        assert child.level == pytest.approx(10.0)
        assert graph.root.level == pytest.approx(14_990.0)

    def test_tap_endpoints_must_be_registered(self, graph):
        from repro.core.reserve import Reserve
        outsider = Reserve(level=1.0)
        with pytest.raises(TapError):
            graph.create_tap(graph.root, outsider, 1.0)


class TestStep:
    def test_taps_flow_in_creation_order(self, graph):
        a = graph.create_reserve(name="a")
        b = graph.create_reserve(name="b")
        graph.create_tap(graph.root, a, 1.0, name="root->a")
        graph.create_tap(a, b, 1.0, name="a->b")
        graph.step(1.0)
        # root->a runs first, so a->b has something to move.
        assert b.level > 0.0

    def test_step_returns_total_moved(self, graph):
        a = graph.create_reserve(name="a")
        graph.create_tap(graph.root, a, 2.0)
        assert graph.step(1.0) == pytest.approx(2.0)

    def test_negative_dt_rejected(self, graph):
        with pytest.raises(EnergyError):
            graph.step(-1.0)


class TestConservation:
    def test_conserved_through_flows_and_consumption(self, graph):
        a = graph.create_reserve(name="a")
        graph.create_tap(graph.root, a, 5.0)
        for _ in range(100):
            graph.step(0.1)
            if a.level > 0.2:
                a.consume(0.2)
        assert abs(graph.conservation_error()) < 1e-9

    def test_conserved_through_decay(self, decaying_graph):
        graph = decaying_graph
        a = graph.create_reserve(name="a")
        graph.create_tap(graph.root, a, 5.0)
        for _ in range(100):
            graph.step(0.1)
        assert abs(graph.conservation_error()) < 1e-9

    def test_conserved_through_deletion_with_reclaim(self, graph):
        a = graph.create_reserve(name="a")
        graph.create_tap(graph.root, a, 5.0)
        graph.step(1.0)
        graph.delete_reserve(a, reclaim_to=graph.root)
        assert graph.root.level == pytest.approx(15_000.0)
        assert abs(graph.conservation_error()) < 1e-9

    def test_unreclaimed_deletion_counts_as_leak(self, graph):
        a = graph.create_reserve(name="a")
        graph.create_tap(graph.root, a, 5.0)
        graph.step(1.0)
        graph.delete_reserve(a)
        assert graph.total_leaked() == pytest.approx(5.0)
        assert abs(graph.conservation_error()) < 1e-9

    def test_external_deposit_tracked(self, graph):
        graph.external_deposit(100.0)
        assert abs(graph.conservation_error()) < 1e-9


class TestDeletion:
    def test_delete_reserve_removes_its_taps(self, graph):
        a = graph.create_reserve(name="a")
        tap_in = graph.create_tap(graph.root, a, 1.0)
        tap_out = graph.create_tap(a, graph.root, 0.1,
                                   TapType.PROPORTIONAL)
        graph.delete_reserve(a)
        assert not tap_in.alive and not tap_out.alive
        assert tap_in not in graph.taps

    def test_cannot_delete_root(self, graph):
        with pytest.raises(EnergyError):
            graph.delete_reserve(graph.root)

    def test_delete_tap_revokes_power_source(self, graph):
        """§5.2: deleting a page's tap revokes its power."""
        a = graph.create_reserve(name="plugin")
        tap = graph.create_tap(graph.root, a, 1.0)
        graph.step(1.0)
        level_after_one = a.level
        graph.delete_tap(tap)
        graph.step(1.0)
        assert a.level == pytest.approx(level_after_one)

    def test_sweep_dead_after_external_kill(self, graph):
        a = graph.create_reserve(name="a")
        tap = graph.create_tap(graph.root, a, 1.0)
        a.mark_dead()  # e.g., container GC
        removed = graph.sweep_dead()
        assert removed == 2
        assert a not in graph.reserves
        assert tap not in graph.taps


class TestQueries:
    def test_taps_from_into_backward(self, graph):
        a = graph.create_reserve(name="a")
        fwd = graph.create_tap(graph.root, a, 1.0)
        back = graph.create_tap(a, graph.root, 0.1, TapType.PROPORTIONAL)
        assert graph.taps_from(a) == [back]
        assert graph.taps_into(a) == [fwd]
        assert graph.backward_taps_of(a) == [back]

    def test_drain_rate_includes_decay(self, decaying_graph):
        graph = decaying_graph
        a = graph.create_reserve(name="a")
        graph.create_tap(a, graph.root, 0.1, TapType.PROPORTIONAL)
        assert graph.drain_rate_of(a) == pytest.approx(
            0.1 + graph.decay_policy.lam)

    def test_to_dot_mentions_every_object(self, graph):
        a = graph.create_reserve(name="plugin")
        graph.create_tap(graph.root, a, 0.07)
        dot = graph.to_dot()
        assert "battery" in dot and "plugin" in dot and "->" in dot


class TestAntiHoarding:
    """The §5.2.2 reserve_clone / checked-transfer discipline."""

    def test_clone_inherits_unremovable_backward_taps(self, graph):
        cat = fresh_category("host")
        tax_label = Label({cat: 0})
        a = graph.create_reserve(name="plugin")
        graph.create_tap(graph.root, a, 1.0)
        graph.create_tap(a, graph.root, 0.2, TapType.PROPORTIONAL,
                         label=tax_label, name="tax")
        clone = graph.clone_reserve(a)  # no privileges
        cloned_taxes = graph.backward_taps_of(clone)
        assert len(cloned_taxes) == 1
        assert cloned_taxes[0].rate == pytest.approx(0.2)

    def test_privileged_clone_skips_removable_taps(self, graph):
        cat = fresh_category("host")
        privs = PrivilegeSet(frozenset({cat}))
        a = graph.create_reserve(name="plugin")
        graph.create_tap(a, graph.root, 0.2, TapType.PROPORTIONAL,
                         label=Label({cat: 0}), name="tax")
        clone = graph.clone_reserve(a, privileges=privs)
        assert graph.backward_taps_of(clone) == []

    def test_checked_transfer_blocks_fast_to_slow(self, graph):
        cat = fresh_category("host")
        a = graph.create_reserve(name="plugin")
        graph.create_tap(graph.root, a, 10.0)
        graph.create_tap(a, graph.root, 0.2, TapType.PROPORTIONAL,
                         label=Label({cat: 0}))
        graph.step(1.0)
        stash = graph.create_reserve(name="stash")  # no backward taps
        with pytest.raises(HoardingError):
            graph.checked_transfer(a, stash, 5.0)

    def test_checked_transfer_allows_equal_or_faster_drain(self, graph):
        cat = fresh_category("host")
        a = graph.create_reserve(name="plugin")
        graph.create_tap(graph.root, a, 10.0)
        graph.create_tap(a, graph.root, 0.2, TapType.PROPORTIONAL,
                         label=Label({cat: 0}))
        graph.step(1.0)
        clone = graph.clone_reserve(a)
        moved = graph.checked_transfer(a, clone, 5.0)
        assert moved == pytest.approx(5.0)

    def test_checked_transfer_respects_caller_privilege(self, graph):
        cat = fresh_category("host")
        privs = PrivilegeSet(frozenset({cat}))
        a = graph.create_reserve(name="plugin")
        graph.create_tap(graph.root, a, 10.0)
        graph.create_tap(a, graph.root, 0.2, TapType.PROPORTIONAL,
                         label=Label({cat: 0}))
        graph.step(1.0)
        stash = graph.create_reserve(name="stash")
        # The host owns the tax category, so it may move freely.
        assert graph.checked_transfer(a, stash, 5.0,
                                      privileges=privs) == pytest.approx(5.0)
