"""Property-based tests on core invariants (hypothesis).

The big one is conservation: no sequence of graph operations creates
or destroys resource — every joule is in a reserve, consumed, or
leaked by deletion.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decay import DecayPolicy
from repro.core.graph import ResourceGraph
from repro.core.reserve import Reserve
from repro.core.tap import TapType
from repro.errors import EnergyError, ReserveEmptyError


class TestReserveProperties:
    @given(st.floats(0.0, 1e6), st.floats(0.0, 1e6))
    def test_consume_never_exceeds_level_without_debt(self, level, amount):
        reserve = Reserve(level=level)
        try:
            reserve.consume(amount)
        except ReserveEmptyError:
            assert amount > level
        else:
            assert amount <= level
        assert reserve.level >= -1e-9

    @given(st.floats(0.0, 1e6), st.floats(0.0, 1e6),
           st.floats(0.0, 1e6))
    def test_transfer_conserves_pair_total(self, src_level, dst_level,
                                           amount):
        src = Reserve(level=src_level)
        dst = Reserve(level=dst_level)
        before = src.level + dst.level
        src.transfer_to(dst, amount)
        assert src.level + dst.level == pytest.approx(before)
        assert src.level >= -1e-9

    @given(st.floats(0.0, 1e6),
           st.lists(st.floats(0.0, 1.0), min_size=1, max_size=10))
    def test_repeated_decay_never_negative(self, level, fractions):
        reserve = Reserve(level=level)
        for fraction in fractions:
            reserve.decay(fraction)
        assert reserve.level >= 0.0

    @given(st.floats(0.0, 1e6), st.floats(0.0, 1.0))
    def test_subdivide_conserves(self, level, fraction):
        reserve = Reserve(level=level)
        amount = level * fraction
        child = reserve.subdivide(amount)
        assert reserve.level + child.level == pytest.approx(level)


# A small operation language over a random graph.
op = st.one_of(
    st.tuples(st.just("add_reserve")),
    st.tuples(st.just("add_tap"), st.integers(0, 5), st.integers(0, 5),
              st.floats(0.0, 10.0)),
    st.tuples(st.just("add_prop_tap"), st.integers(0, 5),
              st.integers(0, 5), st.floats(0.0, 1.0)),
    st.tuples(st.just("step"), st.floats(0.001, 5.0)),
    st.tuples(st.just("consume"), st.integers(0, 5), st.floats(0.0, 5.0)),
    st.tuples(st.just("transfer"), st.integers(0, 5), st.integers(0, 5),
              st.floats(0.0, 5.0)),
    st.tuples(st.just("delete"), st.integers(1, 5)),
    st.tuples(st.just("deposit"), st.floats(0.0, 10.0)),
)


class TestGraphConservation:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(op, min_size=1, max_size=30), st.booleans())
    def test_random_operation_sequences_conserve(self, ops, decay_on):
        graph = ResourceGraph(1000.0,
                              decay=DecayPolicy(enabled=decay_on))
        reserves = [graph.root]

        def pick(index):
            return reserves[index % len(reserves)]

        for operation in ops:
            kind = operation[0]
            try:
                if kind == "add_reserve":
                    reserves.append(graph.create_reserve(
                        name=f"r{len(reserves)}"))
                elif kind == "add_tap":
                    _, i, j, rate = operation
                    if pick(i) is not pick(j):
                        graph.create_tap(pick(i), pick(j), rate)
                elif kind == "add_prop_tap":
                    _, i, j, rate = operation
                    if pick(i) is not pick(j):
                        graph.create_tap(pick(i), pick(j), rate,
                                         TapType.PROPORTIONAL)
                elif kind == "step":
                    graph.step(operation[1])
                elif kind == "consume":
                    _, i, amount = operation
                    reserve = pick(i)
                    if reserve.level >= amount:
                        reserve.consume(amount)
                elif kind == "transfer":
                    _, i, j, amount = operation
                    pick(i).transfer_to(pick(j), amount)
                elif kind == "delete":
                    _, i = operation
                    reserve = pick(i)
                    if reserve is not graph.root:
                        graph.delete_reserve(reserve)
                        reserves.remove(reserve)
                elif kind == "deposit":
                    graph.external_deposit(operation[1])
            except EnergyError:
                pass  # rejected operations must not break conservation
        total = graph.total_level() + graph.total_consumed() + \
            graph.total_leaked()
        assert graph.conservation_error() == pytest.approx(
            0.0, abs=max(1e-6, 1e-9 * max(1.0, total)))

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0.01, 5.0), st.floats(0.01, 1.0),
           st.floats(0.001, 0.5))
    def test_shared_child_equilibrium_formula(self, feed, back, dt):
        """Figure 6b equilibrium = feed/back for any feed, back, tick."""
        graph = ResourceGraph(1e9, decay=DecayPolicy(enabled=False))
        child = graph.create_reserve(name="c")
        graph.create_tap(graph.root, child, feed)
        graph.create_tap(child, graph.root, back, TapType.PROPORTIONAL)
        # Run ~20 time constants; coarsen dt if that needs too many
        # steps (the equilibrium is tick-size independent anyway).
        horizon = 20.0 / back
        steps = int(horizon / dt) + 1
        if steps > 20_000:
            dt = horizon / 20_000
            steps = 20_000
        for _ in range(steps):
            graph.step(dt)
        expected = feed / back
        # Discrete alternation overshoots by at most feed*dt.
        assert child.level == pytest.approx(expected, rel=0.05,
                                            abs=2 * feed * dt)
