"""Tests for taps (paper §3.3, §5.2.1)."""

import math

import pytest

from repro.core.reserve import NETWORK_BYTES, Reserve
from repro.core.tap import TAP_TYPE_CONST, TAP_TYPE_PROPORTIONAL, Tap, TapType
from repro.errors import TapError


@pytest.fixture
def pair():
    return Reserve(level=100.0, name="src"), Reserve(name="dst")


class TestConstruction:
    def test_self_loop_rejected(self):
        reserve = Reserve(level=1.0)
        with pytest.raises(TapError):
            Tap(reserve, reserve, 1.0)

    def test_kind_mismatch_rejected(self):
        with pytest.raises(TapError):
            Tap(Reserve(), Reserve(kind=NETWORK_BYTES), 1.0)

    def test_negative_rate_rejected(self, pair):
        src, dst = pair
        with pytest.raises(TapError):
            Tap(src, dst, -1.0)

    def test_proportional_rate_over_one_rejected(self, pair):
        src, dst = pair
        with pytest.raises(TapError):
            Tap(src, dst, 1.5, TapType.PROPORTIONAL)

    def test_figure5_aliases(self):
        assert TAP_TYPE_CONST is TapType.CONST
        assert TAP_TYPE_PROPORTIONAL is TapType.PROPORTIONAL


class TestConstantFlow:
    def test_moves_rate_times_dt(self, pair):
        src, dst = pair
        tap = Tap(src, dst, rate=2.0)
        assert tap.flow(3.0) == pytest.approx(6.0)
        assert src.level == pytest.approx(94.0)
        assert dst.level == pytest.approx(6.0)
        assert tap.total_flowed == pytest.approx(6.0)

    def test_clamped_to_source_level(self):
        src, dst = Reserve(level=1.0), Reserve()
        tap = Tap(src, dst, rate=10.0)
        assert tap.flow(1.0) == pytest.approx(1.0)
        assert src.level == 0.0

    def test_never_creates_debt_flow(self):
        src, dst = Reserve(level=1.0), Reserve()
        src.consume(2.0, allow_debt=True)
        tap = Tap(src, dst, rate=10.0)
        assert tap.flow(1.0) == 0.0

    def test_sink_capacity_keeps_remainder_at_source(self):
        src, dst = Reserve(level=10.0), Reserve(capacity=2.0)
        tap = Tap(src, dst, rate=5.0)
        assert tap.flow(1.0) == pytest.approx(2.0)
        assert src.level == pytest.approx(8.0)

    def test_zero_dt_moves_nothing(self, pair):
        src, dst = pair
        assert Tap(src, dst, rate=5.0).flow(0.0) == 0.0

    def test_disabled_tap_moves_nothing(self, pair):
        src, dst = pair
        tap = Tap(src, dst, rate=5.0)
        tap.enabled = False
        assert tap.flow(1.0) == 0.0


class TestProportionalFlow:
    def test_exact_exponential_drain(self):
        src, dst = Reserve(level=100.0), Reserve()
        tap = Tap(src, dst, rate=0.1, tap_type=TapType.PROPORTIONAL)
        tap.flow(1.0)
        assert src.level == pytest.approx(100.0 * math.exp(-0.1))

    def test_tick_size_independence(self):
        """Two 0.5 s flows must equal one 1 s flow (exact integral)."""
        src_a, dst_a = Reserve(level=50.0), Reserve()
        src_b, dst_b = Reserve(level=50.0), Reserve()
        tap_a = Tap(src_a, dst_a, 0.2, TapType.PROPORTIONAL)
        tap_b = Tap(src_b, dst_b, 0.2, TapType.PROPORTIONAL)
        tap_a.flow(1.0)
        tap_b.flow(0.5)
        tap_b.flow(0.5)
        assert src_a.level == pytest.approx(src_b.level)

    def test_equilibrium_is_the_paper_700mJ(self):
        """Figure 6b: 70 mW in, 0.1/s back -> 700 mJ equilibrium."""
        parent = Reserve(level=1000.0)
        child = Reserve()
        forward = Tap(parent, child, 0.070, TapType.CONST)
        backward = Tap(child, parent, 0.1, TapType.PROPORTIONAL)
        for _ in range(4000):
            forward.flow(0.1)
            backward.flow(0.1)
        assert child.level == pytest.approx(0.700, rel=0.01)


class TestReconfiguration:
    def test_set_rate(self, pair):
        src, dst = pair
        tap = Tap(src, dst, rate=1.0)
        tap.set_rate(0.0)
        assert tap.flow(1.0) == 0.0
        tap.set_rate(2.0)
        assert tap.flow(1.0) == pytest.approx(2.0)

    def test_set_rate_can_switch_type(self, pair):
        src, dst = pair
        tap = Tap(src, dst, rate=1.0)
        tap.set_rate(0.5, TapType.PROPORTIONAL)
        assert tap.tap_type is TapType.PROPORTIONAL

    def test_dead_endpoint_disables_tap(self):
        src, dst = Reserve(level=10.0), Reserve()
        tap = Tap(src, dst, rate=1.0)
        dst.mark_dead()
        assert tap.flow(1.0) == 0.0
        assert not tap.enabled

    def test_amount_for_preview(self, pair):
        src, dst = pair
        tap = Tap(src, dst, rate=2.0)
        assert tap.amount_for(1.5) == pytest.approx(3.0)
        assert src.level == pytest.approx(100.0)  # preview does not move
