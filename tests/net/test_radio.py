"""Tests for the radio device state machine (§4.3, Figure 4)."""

import numpy as np
import pytest

from repro.energy.radio_model import RadioPowerParams
from repro.net.radio import RadioDevice, RadioState


def make_radio(seed=0, **overrides):
    params = RadioPowerParams(**overrides) if overrides else \
        RadioPowerParams(jitter_sigma=0.0)
    return RadioDevice(params, rng=np.random.default_rng(seed))


class TestStateMachine:
    def test_starts_idle(self):
        radio = make_radio()
        assert not radio.is_active()
        assert radio.would_be_idle(0.0)

    def test_touch_activates(self):
        radio = make_radio()
        radio.touch(5.0)
        assert radio.is_active()
        assert radio.activation_count == 1

    def test_timeout_returns_to_idle(self):
        radio = make_radio()
        radio.touch(0.0)
        radio.tick(19.9)
        assert radio.is_active()
        radio.tick(20.0)
        assert not radio.is_active()
        assert radio.total_active_seconds == pytest.approx(20.0)

    def test_activity_extends_active_period(self):
        radio = make_radio()
        radio.touch(0.0)
        radio.touch(15.0)
        radio.tick(20.0)
        assert radio.is_active()  # idle moved to 35.0
        radio.tick(35.0)
        assert not radio.is_active()

    def test_transfer_holds_radio_active(self):
        radio = make_radio()
        transfer = radio.begin_transfer(0.0, nbytes=30_000 * 30)
        assert transfer.end == pytest.approx(30.0)
        radio.tick(25.0)  # mid-transfer: timeout must not fire
        assert radio.is_active()
        radio.tick(transfer.end + 20.0)
        assert not radio.is_active()

    def test_transfer_end_resets_idle_timer(self):
        radio = make_radio()
        transfer = radio.begin_transfer(0.0, nbytes=30_000)  # 1 s
        radio.tick(2.0)
        assert radio.seconds_since_activity(2.0) == pytest.approx(1.0)

    def test_statistics(self):
        radio = make_radio()
        radio.begin_transfer(0.0, nbytes=1500, npackets=1)
        assert radio.total_bytes == 1500
        assert radio.total_packets == 1


class TestPower:
    def test_idle_draws_nothing_extra(self):
        assert make_radio().power_above_baseline(0.0) == 0.0

    def test_ramp_then_plateau(self):
        radio = make_radio()
        radio.touch(0.0)
        ramp_power = radio.power_above_baseline(0.5)
        plateau_power = radio.power_above_baseline(5.0)
        assert ramp_power > plateau_power > 0.0

    def test_minimal_cycle_energy_is_activation_cost(self):
        """Integrating a one-packet cycle yields ~9.5 J (Figure 4)."""
        radio = make_radio()
        radio.touch(0.0)
        dt = 0.01
        energy = 0.0
        t = 0.0
        while radio.is_active():
            energy += radio.power_above_baseline(t) * dt
            t += dt
            radio.tick(t)
        assert energy == pytest.approx(9.5, rel=0.02)

    def test_transfer_adds_marginal_power(self):
        radio = make_radio()
        radio.begin_transfer(0.0, nbytes=300_000)  # 10 s transfer
        with_transfer = radio.power_above_baseline(5.0)
        radio2 = make_radio()
        radio2.touch(0.0)
        without = radio2.power_above_baseline(5.0)
        assert with_transfer > without


class TestCostEstimation:
    def test_idle_send_estimate_is_full_activation(self):
        radio = make_radio()
        cost = radio.estimated_send_cost(0.0, nbytes=1, npackets=1)
        assert cost == pytest.approx(9.5, abs=0.1)

    def test_active_send_estimate_is_extension(self):
        radio = make_radio()
        radio.touch(0.0)
        cost = radio.estimated_send_cost(1.0, nbytes=1, npackets=1)
        assert cost < 1.0

    def test_would_be_idle_respects_timeout(self):
        radio = make_radio()
        radio.touch(0.0)
        assert not radio.would_be_idle(10.0)
        assert radio.would_be_idle(20.0)
