"""Tests for netd: gating, pooling, billing (§5.5)."""

import math

import pytest

from repro.net.netd import OpState
from repro.sim.process import NetRequest, Sleep
from repro.sim.workload import periodic_poller
from repro.units import KiB, mW

from ..conftest import make_system


def poll_request(destination="mail", bytes_in=KiB(30)):
    return NetRequest(bytes_out=512, bytes_in=bytes_in,
                      destination=destination)


class TestGating:
    def test_unfunded_request_blocks(self):
        system = make_system()
        reserve = system.new_reserve(name="r")  # empty, no tap

        def program(ctx):
            yield poll_request()

        process = system.spawn(program, "app", reserve=reserve)
        system.run(5.0)
        assert not process.finished
        assert system.netd.waiting_count == 1
        assert system.radio.activation_count == 0

    def test_funded_request_completes(self):
        system = make_system()
        reserve = system.new_reserve(name="r")
        system.battery_reserve.transfer_to(reserve, 20.0)
        replies = {}

        def program(ctx):
            replies["r"] = yield poll_request()

        system.spawn(program, "app", reserve=reserve)
        system.run(10.0)
        assert replies["r"].bytes_in == KiB(30)
        assert replies["r"].billed_joules > 9.0
        assert system.radio.activation_count == 1

    def test_margin_requires_125_percent(self):
        """Figure 14: netd demands 125% of the activation cost."""
        system = make_system()
        reserve = system.new_reserve(name="r")
        # Enough for the activation alone but below margin + data.
        system.battery_reserve.transfer_to(reserve, 9.6)

        def program(ctx):
            yield NetRequest(bytes_out=64, destination="echo")

        process = system.spawn(program, "app", reserve=reserve)
        system.run(2.0)
        assert not process.finished
        # Top it past the margin and it proceeds.
        system.battery_reserve.transfer_to(reserve, 3.0)
        system.run(3.0)
        assert process.finished

    def test_marginal_cost_when_radio_active(self):
        system = make_system()
        rich = system.new_reserve(name="rich")
        system.battery_reserve.transfer_to(rich, 50.0)
        poor = system.new_reserve(name="poor")
        system.battery_reserve.transfer_to(poor, 2.0)
        bills = {}

        def first(ctx):
            bills["first"] = (yield poll_request()).billed_joules

        def second(ctx):
            yield Sleep(3.0)  # radio is active by now
            bills["second"] = (yield poll_request()).billed_joules

        system.spawn(first, "first", reserve=rich)
        system.spawn(second, "second", reserve=poor)
        system.run(30.0)
        assert bills["first"] > 9.0       # paid the activation
        assert bills["second"] < 2.0      # paid only the extension


class TestPooling:
    def test_two_poor_apps_pool_for_activation(self):
        """§5.5.2 / Figure 13b: neither can afford the radio alone."""
        system = make_system()
        mail = system.powered_reserve(mW(99), name="mail")
        rss = system.powered_reserve(mW(99), name="rss")
        system.spawn(periodic_poller("mail", 60.0, 0.0, max_polls=1),
                     "mail", reserve=mail)
        system.spawn(periodic_poller("rss", 60.0, 0.0, max_polls=1),
                     "rss", reserve=rss)
        system.run(90.0)
        # One shared activation served both.
        assert system.radio.activation_count == 1
        assert system.netd.stats.operations == 2
        assert system.netd.stats.total_pool_contributions > 9.0

    def test_pool_retains_margin_surplus(self):
        """Figure 14: 'the reserve does not empty to 0'."""
        system = make_system()
        mail = system.powered_reserve(mW(99), name="mail")
        rss = system.powered_reserve(mW(99), name="rss")
        system.spawn(periodic_poller("mail", 60.0, 0.0, max_polls=1),
                     "mail", reserve=mail)
        system.spawn(periodic_poller("rss", 60.0, 0.0, max_polls=1),
                     "rss", reserve=rss)
        system.run(90.0)
        assert system.netd.pool.level > 0.5

    def test_pool_is_decay_exempt(self):
        system = make_system(decay_enabled=True)
        assert system.netd.pool.decay_exempt

    def test_blocked_callers_drain_into_pool(self):
        system = make_system()
        reserve = system.powered_reserve(mW(99), name="app")

        def program(ctx):
            yield poll_request()

        system.spawn(program, "app", reserve=reserve)
        system.run(10.0)  # far from affordable
        assert reserve.level < 0.01  # everything contributed
        assert system.netd.pool.level == pytest.approx(0.99, rel=0.1)


class TestBillingPaths:
    def test_undeclared_receive_debits_into_debt(self):
        """§5.5.2: costs known only after the fact go into debt."""
        system = make_system()
        reserve = system.new_reserve(name="r")
        system.battery_reserve.transfer_to(reserve, 12.0)

        def program(ctx):
            # Poll with undeclared inbound size; mail returns 30 KiB.
            yield NetRequest(bytes_out=64, bytes_in=0, destination="mail")

        process = system.spawn(program, "app", reserve=reserve)
        system.run(10.0)
        assert process.finished
        assert system.netd.stats.debt_debits == 1

    def test_unrestricted_mode_never_bills(self):
        system = make_system(unrestricted_netd=True)

        def program(ctx):
            yield poll_request()

        process = system.spawn(program, "app")  # no reserve at all
        system.run(5.0)
        assert process.finished
        assert system.netd.stats.total_billed_joules == 0.0

    def test_noncooperative_mode_gates_individually(self):
        system = make_system(cooperative_netd=False)
        poor_a = system.powered_reserve(mW(99), name="a")
        poor_b = system.powered_reserve(mW(99), name="b")

        def program(ctx):
            yield poll_request()

        pa = system.spawn(program, "a", reserve=poor_a)
        pb = system.spawn(program, "b", reserve=poor_b)
        system.run(60.0)
        # Without pooling, neither 99 mW app reaches 125% x 9.5 J
        # until ~120 s; at 60 s both still wait.
        assert not pa.finished and not pb.finished

    def test_gate_billing_is_caller_pays(self):
        """The netd gate runs on the caller's thread (§5.5.1)."""
        system = make_system()
        reserve = system.new_reserve(name="r")
        system.battery_reserve.transfer_to(reserve, 20.0)

        def program(ctx):
            yield poll_request()

        system.spawn(program, "app", reserve=reserve)
        system.run(10.0)
        # The app's reserve (not some netd account) paid: level dropped
        # by more than the activation cost.
        assert reserve.total_transferred_out > 9.0
        assert system.netd_gate.call_count == 1


class TestRequiredEnergy:
    def test_required_includes_margin_and_data(self):
        system = make_system()
        reserve = system.new_reserve(name="r")
        op_request = poll_request(bytes_in=KiB(100))
        thread = system.kernel.create_thread(name="t")
        thread.set_active_reserve(reserve)
        op = system.netd.submit(thread, op_request, owner="t")
        required = system.netd.required_energy(
            [op], system.clock.now)
        assert required > 1.25 * 9.5
