"""Closed-form §5.5.1 individual gating: the radio-active wait class.

With the radio already active netd has no power-up to amortize, so
each caller gates on its own reserve against ``marginal_active_cost +
data`` — a bill that *grows* at plateau power as the radio idles
down while the reserve accrues at its tap rate.  That wait used to
be the last tick-granular netd regime in fleet workloads; it now has
the same closed-form treatment as the pooled path: the daemon
predicts the exact affordability tick by replaying the pump's own
float arithmetic and replays skipped accrual in bulk (deposits stay
in the caller's reserve — nothing pools in this regime).

The contract matches the pooled one: with decay off, event timing is
**bit-identical** between ``fast_forward=True`` and ``False``, and
the fast run must actually macro-step through the active waits.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import CinderSystem
from repro.sim.process import NetRequest, Sleep


def active_wait_system(fast_forward: bool,
                       polls: int = 6) -> CinderSystem:
    """A poller whose follow-up sends block in the active regime.

    The first poll pools toward an activation (0.6 W against the
    ~11.9 J bill).  Each follow-up fires 1 s after the previous
    transfer as an 800-datagram burst: the per-packet cost (~0.8 J)
    plus the growing marginal active cost outruns the reserve's
    balance, so the op blocks for several simulated seconds *while
    the radio is active* — affordability is reached because the
    reserve accrues at 0.6 W against the 0.475 W plateau growth.
    (Packets, not bytes, carry the cost so the transfer itself stays
    short — a long transfer occupies the radio, which is a different,
    correctly tick-granular regime.)
    """
    system = CinderSystem(battery_joules=15_000.0, tick_s=0.01, seed=9,
                          record_interval_s=1.0, decay_enabled=False,
                          fast_forward=fast_forward)
    reserve = system.powered_reserve(0.6, name="sender")

    def program(ctx):
        for _ in range(polls):
            yield NetRequest(bytes_out=64, bytes_in=0, packets=800,
                             destination="echo")
            yield Sleep(1.0)

    system.spawn(program, "sender", reserve=reserve)
    return system


class TestActiveGatingFastForward:
    @pytest.fixture(scope="class")
    def runs(self):
        fast = active_wait_system(True)
        slow = active_wait_system(False)
        fast.run(300.0)
        slow.run(300.0)
        return fast, slow

    def test_event_timing_bit_identical(self, runs):
        fast, slow = runs
        assert fast.netd.stats.operations == slow.netd.stats.operations
        assert fast.netd.stats.operations >= 6
        assert fast.radio.activation_count == slow.radio.activation_count
        assert (fast.netd.stats.total_wait_seconds
                == slow.netd.stats.total_wait_seconds)
        # The follow-ups genuinely waited in the active regime (the
        # radio never idled between sends: one activation total).
        assert fast.radio.activation_count == 1
        assert fast.netd.stats.total_wait_seconds > 10.0

    def test_macro_steps_through_active_waits(self, runs):
        fast, slow = runs
        assert slow.fast_forwarded_ticks == 0
        assert fast.clock.ticks == slow.clock.ticks
        # The run is dominated by pooled + active waits and idle
        # tails; nearly all of it must macro-step.
        assert fast.fast_forwarded_ticks > 20_000

    def test_billing_and_conservation_match(self, runs):
        fast, slow = runs
        assert fast.netd.stats.total_billed_joules == pytest.approx(
            slow.netd.stats.total_billed_joules, rel=1e-9)
        assert fast.graph.conservation_error() == pytest.approx(
            0.0, abs=1e-8)
        # The tick-by-tick reference accumulates ordinary float
        # rounding over 30k ticks; the suite-wide tolerance applies.
        assert slow.graph.conservation_error() == pytest.approx(
            0.0, abs=1e-6)
        sender_fast = fast.processes[0].thread.active_reserve
        sender_slow = slow.processes[0].thread.active_reserve
        assert sender_fast.level == pytest.approx(sender_slow.level,
                                                  rel=1e-6, abs=1e-9)

    def test_decay_on_falls_back_to_ticking(self):
        """With decay on, the active-regime increments are
        level-dependent; the daemon must refuse quiescence (ticking is
        always correct) rather than replay a wrong trajectory —
        events still match between modes."""
        fast = CinderSystem(battery_joules=15_000.0, tick_s=0.01, seed=9,
                            record_interval_s=1.0, decay_enabled=True,
                            fast_forward=True)
        slow = CinderSystem(battery_joules=15_000.0, tick_s=0.01, seed=9,
                            record_interval_s=1.0, decay_enabled=True,
                            fast_forward=False)
        for system in (fast, slow):
            reserve = system.powered_reserve(0.6, name="sender")

            def program(ctx):
                for _ in range(3):
                    yield NetRequest(bytes_out=64, bytes_in=0,
                                     packets=800, destination="echo")
                    yield Sleep(1.0)

            system.spawn(program, "sender", reserve=reserve)
            system.run(120.0)
        assert fast.netd.stats.operations == slow.netd.stats.operations
        assert fast.radio.activation_count == slow.radio.activation_count
