"""Tests for flows (Figure 3 machinery), remote servers, and sockets."""

import math

import pytest

from repro.energy.radio_model import RadioPowerParams
from repro.errors import NetworkError
from repro.net.packets import (FIG3_PACKET_RATES, FIG3_PACKET_SIZES, Flow,
                               Packet, echo_flow_grid, grid_summary)
from repro.net.remote import (EchoServer, FeedServer, ImageServer,
                              MailServer, RemoteHosts)
from repro.net.sockets import Socket
from repro.sim.process import NetRequest
from repro.units import KiB


class TestFlow:
    def test_packet_train(self):
        flow = Flow(packets_per_s=2.0, bytes_per_packet=100,
                    duration_s=3.0)
        packets = flow.packets()
        assert len(packets) == 6
        assert packets[1].send_time == pytest.approx(0.5)
        assert flow.total_bytes == 600

    def test_zero_rate_flow(self):
        flow = Flow(packets_per_s=0.0, bytes_per_packet=100)
        assert flow.packets() == []
        assert flow.packet_count == 0

    def test_invalid_parameters(self):
        with pytest.raises(NetworkError):
            Flow(packets_per_s=-1.0, bytes_per_packet=10)
        with pytest.raises(NetworkError):
            Packet(nbytes=-1)

    def test_flow_energy_matches_model(self):
        params = RadioPowerParams(jitter_sigma=0.0)
        flow = Flow(packets_per_s=10.0, bytes_per_packet=750)
        assert flow.energy(params) == pytest.approx(
            params.flow_energy(10.0, 750, 10.0))


class TestGrid:
    def test_grid_shape(self):
        rows = echo_flow_grid(RadioPowerParams(), seed=1)
        assert len(rows) == len(FIG3_PACKET_RATES) * len(FIG3_PACKET_SIZES)

    def test_overhead_dominates(self):
        """The Figure 3 claim: the spread is small despite a huge
        spread in bytes."""
        rows = echo_flow_grid(RadioPowerParams(), seed=1)
        mean, low, high = grid_summary(rows)
        assert high / low < 2.0
        assert 10.0 < mean < 18.0

    def test_deterministic_under_seed(self):
        a = echo_flow_grid(RadioPowerParams(), seed=5)
        b = echo_flow_grid(RadioPowerParams(), seed=5)
        assert a == b

    def test_empty_grid_rejected(self):
        with pytest.raises(NetworkError):
            grid_summary([])


class TestRemoteServers:
    def test_echo_returns_sent_bytes(self):
        reply_bytes, payload = EchoServer().respond(
            NetRequest(bytes_out=123, payload="hi"))
        assert reply_bytes == 123
        assert payload == "hi"

    def test_mail_queue_depth(self):
        server = MailServer(message_bytes=KiB(10), default_queue_depth=3)
        nbytes, payload = server.respond(NetRequest(bytes_out=64))
        assert nbytes == 3 * KiB(10)
        assert payload["messages"] == 3
        nbytes, payload = server.respond(
            NetRequest(bytes_out=64, payload={"expect_messages": 5}))
        assert payload["messages"] == 5

    def test_feed_returns_document(self):
        nbytes, payload = FeedServer(feed_bytes=KiB(60)).respond(
            NetRequest(bytes_out=64))
        assert nbytes == KiB(60)
        assert payload["items"] == 20

    def test_declared_bytes_in_honored(self):
        nbytes, _ = MailServer().respond(
            NetRequest(bytes_out=64, bytes_in=KiB(7)))
        assert nbytes == KiB(7)

    def test_image_server_interlace_fractions(self):
        server = ImageServer(full_image_bytes=KiB(700))
        full, payload = server.respond(NetRequest(
            payload={"image": 0, "fraction": 1.0}))
        half, _ = server.respond(NetRequest(
            payload={"image": 0, "fraction": 0.5}))
        assert full == KiB(700)
        assert half == pytest.approx(KiB(350), abs=1)
        assert payload["quality"] == 1.0

    def test_image_server_minimum_pass(self):
        server = ImageServer(full_image_bytes=KiB(700))
        tiny, payload = server.respond(NetRequest(
            payload={"fraction": 0.0001}))
        assert tiny == math.ceil(KiB(700) / 64)
        assert payload["quality"] == pytest.approx(1 / 64)

    def test_hosts_registry(self):
        hosts = RemoteHosts.default()
        assert "mail" in hosts.destinations()
        with pytest.raises(NetworkError):
            hosts.lookup("nowhere")
        hosts.register("custom", EchoServer())
        assert isinstance(hosts.lookup("custom"), EchoServer)


class TestSocket:
    def test_request_builds_netrequest(self):
        sock = Socket("mail")
        request = sock.request(bytes_out=100, bytes_in=200)
        assert request.destination == "mail"
        assert request.total_bytes() == 300

    def test_poll_leaves_inbound_undeclared(self):
        request = Socket("rss").poll()
        assert request.bytes_in == 0

    def test_datagram_single_packet(self):
        request = Socket("echo").datagram(1)
        assert request.packets == 1
        assert request.total_packets() == 1

    def test_packet_derivation_from_bytes(self):
        request = Socket("echo").request(bytes_out=4500)
        assert request.total_packets() == 3

    def test_invalid_socket(self):
        with pytest.raises(NetworkError):
            Socket("")
        with pytest.raises(NetworkError):
            Socket("x").request(bytes_out=-1)
