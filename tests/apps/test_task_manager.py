"""Tests for the task manager (§5.4, Figure 7)."""

import pytest

from repro.apps.task_manager import TaskManager
from repro.errors import LabelError, SchedulerError
from repro.kernel.labels import check_modify
from repro.sim.workload import spinner
from repro.units import mW

from ..conftest import make_system


class TestTopology:
    def test_pools_fed_from_battery(self):
        system = make_system()
        manager = TaskManager(system)
        system.run(1.0)
        assert manager.foreground_pool.level > 0
        assert manager.background_pool.level >= 0

    def test_background_share_rebalances(self):
        system = make_system()
        manager = TaskManager(system, background_pool_watts=mW(14))
        a = manager.add_app("A")
        assert a.slot.background.rate == pytest.approx(mW(14))
        b = manager.add_app("B")
        assert a.slot.background.rate == pytest.approx(mW(7))
        assert b.slot.background.rate == pytest.approx(mW(7))

    def test_duplicate_app_rejected(self):
        system = make_system()
        manager = TaskManager(system)
        manager.add_app("A")
        with pytest.raises(SchedulerError):
            manager.add_app("A")


class TestFocusPolicy:
    def test_focus_opens_and_closes_taps(self):
        system = make_system()
        manager = TaskManager(system, foreground_watts=mW(137))
        a = manager.add_app("A")
        b = manager.add_app("B")
        manager.focus("A")
        assert a.slot.in_foreground
        assert not b.slot.in_foreground
        manager.focus("B")
        assert not a.slot.in_foreground
        assert b.slot.in_foreground
        manager.unfocus()
        assert manager.focused is None
        assert not b.slot.in_foreground

    def test_focus_unknown_app_rejected(self):
        system = make_system()
        with pytest.raises(SchedulerError):
            TaskManager(system).focus("ghost")

    def test_foreground_tap_is_write_protected(self):
        """§5.4: only the task manager may modify the foreground tap."""
        system = make_system()
        manager = TaskManager(system)
        app = manager.add_app("A")
        intruder = system.kernel.create_thread(name="intruder")
        with pytest.raises(LabelError):
            check_modify(intruder.label, intruder.privileges,
                         app.slot.foreground.label, what="fg tap")
        # The manager's privilege set passes.
        check_modify(intruder.label, manager.privileges,
                     app.slot.foreground.label)


class TestBehavior:
    def test_background_apps_share_ten_percent(self):
        system = make_system()
        manager = TaskManager(system, background_pool_watts=mW(14))
        pa = system.spawn(spinner(), "A")
        pb = system.spawn(spinner(), "B")
        manager.add_app("A", pa.thread)
        manager.add_app("B", pb.thread)
        system.run(30.0)
        # ~10% CPU utilization in total (14 mW / 137 mW).
        assert system.scheduler.utilization == pytest.approx(0.10,
                                                             abs=0.02)

    def test_foreground_app_gets_full_cpu(self):
        system = make_system()
        manager = TaskManager(system, foreground_watts=mW(137))
        pa = system.spawn(spinner(), "A")
        pb = system.spawn(spinner(), "B")
        manager.add_app("A", pa.thread)
        manager.add_app("B", pb.thread)
        system.run(5.0)  # warm the fg pool
        manager.focus("A")
        start = pa.thread.cpu_time
        system.run(10.0)
        assert pa.thread.cpu_time - start == pytest.approx(9.5, abs=0.7)

    def test_hoarding_with_oversized_foreground_tap(self):
        """Figure 12b: 300 mW > CPU cost lets the app bank energy."""
        system = make_system()
        manager = TaskManager(system, foreground_watts=mW(300))
        pa = system.spawn(spinner(), "A")
        app = manager.add_app("A", pa.thread)
        system.run(5.0)
        manager.focus("A")
        system.run(10.0)
        manager.unfocus()
        banked = app.reserve.level
        assert banked > 1.0  # accumulated beyond its spending
        # It keeps burning the hoard while backgrounded.
        start = pa.thread.cpu_time
        system.run(5.0)
        assert pa.thread.cpu_time - start == pytest.approx(5.0, abs=0.5)

    def test_decay_reclaims_background_hoard(self):
        """§6.3: the half-life returns hoards to the battery over ~10
        minutes."""
        system = make_system(decay_enabled=True)
        manager = TaskManager(system, foreground_watts=mW(300),
                              background_pool_watts=0.0)
        app = manager.add_app("A")  # no thread: nothing spends
        manager.focus("A")
        system.run(10.0)
        manager.unfocus()
        level_after_focus = app.reserve.level
        system.run(600.0)
        # One half-life later most of it is gone (bg tap trickles in).
        assert app.reserve.level < 0.75 * level_after_focus

    def test_schedule_focus_scripting(self):
        system = make_system()
        manager = TaskManager(system)
        manager.add_app("A")
        manager.schedule_focus(1.0, "A")
        manager.schedule_focus(2.0, None)
        system.run(1.5)
        assert manager.focused == "A"
        system.run(1.0)
        assert manager.focused is None


class TestFocusServiceCall:
    """ServiceCall focus waits: event-driven, fast-forward friendly."""

    def build(self, fast_forward: bool):
        system = make_system(fast_forward=fast_forward,
                             record_interval_s=1.0)
        manager = TaskManager(system)
        manager.add_app("mail")
        manager.add_app("rss")
        log = []

        def watcher(ctx):
            while True:
                yield manager.focus_request("mail")
                log.append(("fg", ctx.now))
                yield manager.focus_request("mail", foreground=False)
                log.append(("bg", ctx.now))

        process = system.spawn(watcher, "watcher",
                               reserve=manager.app("mail").reserve)
        manager.schedule_focus(50.0, "mail")
        manager.schedule_focus(120.0, "rss")
        manager.schedule_focus(200.0, "mail")
        manager.schedule_focus(260.0, None)
        return system, manager, process, log

    def test_focus_waits_fire_on_exact_ticks_both_modes(self):
        logs = {}
        for fast_forward in (True, False):
            system, manager, process, log = self.build(fast_forward)
            system.run(300.0)
            logs[fast_forward] = log
            if fast_forward:
                # The background stretches macro-step: a WaitFor
                # predicate poll would have vetoed every one of
                # these ticks.
                assert system.fast_forwarded_ticks > 20_000
        assert logs[True] == logs[False]
        events = logs[True]
        assert [kind for kind, _ in events] == ["fg", "bg", "fg", "bg"]
        times = [when for _, when in events]
        # Resumption lands on the tick after each scheduled focus
        # change (the pump services completions on the next pump).
        assert times[0] == pytest.approx(50.0, abs=0.05)
        assert times[1] == pytest.approx(120.0, abs=0.05)
        assert times[2] == pytest.approx(200.0, abs=0.05)
        assert times[3] == pytest.approx(260.0, abs=0.05)

    def test_unknown_app_rejected(self):
        system = make_system()
        manager = TaskManager(system)
        with pytest.raises(SchedulerError):
            manager.focus_request("ghost")

    def test_already_satisfied_wait_completes_synchronously(self):
        system = make_system()
        manager = TaskManager(system)
        manager.add_app("mail")
        manager.focus("mail")
        seen = []

        def prog(ctx):
            app = yield manager.focus_request("mail")
            seen.append(app.name)

        system.spawn(prog, "p", reserve=manager.app("mail").reserve)
        system.run(0.1)
        assert seen == ["mail"]

    def test_foreground_poller_workload_macro_steps(self):
        from repro.sim.workload import foreground_poller
        system = make_system(fast_forward=True, record_interval_s=1.0)
        manager = TaskManager(system)
        manager.add_app("mail")
        # A generous feed so polls afford quickly once focused.
        reserve = system.powered_reserve(2.0, name="mail.net")
        system.spawn(foreground_poller(manager, "mail", period_s=20.0,
                                       bytes_out=64),
                     "mail.poller", reserve=reserve)
        manager.schedule_focus(100.0, "mail")
        manager.schedule_focus(160.0, None)
        system.run(300.0)
        assert system.netd.stats.operations > 0
        assert system.fast_forwarded_ticks > 10_000
