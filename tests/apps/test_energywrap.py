"""Tests for energywrap (§5.1, Figure 5)."""

import math

import pytest

from repro.apps.energywrap import energywrap, wrap_child
from repro.sim.workload import spinner, timed_spinner
from repro.units import mW

from ..conftest import make_system


class TestEnergywrap:
    def test_sandbox_limits_average_power(self):
        system = make_system()
        wrapped = energywrap(system, mW(68.5), spinner(), "hog")
        system.run(20.0)
        spent = wrapped.reserve.total_consumed
        assert spent / 20.0 == pytest.approx(0.0685, rel=0.05)
        # The hog wanted the whole 137 mW CPU but got half.
        assert wrapped.process.thread.cpu_time == pytest.approx(10.0,
                                                                rel=0.05)

    def test_wrap_draws_from_given_source(self):
        system = make_system()
        parent = system.powered_reserve(mW(100), name="parent")
        wrapped = energywrap(system, mW(50), spinner(), "child",
                             source=parent)
        system.run(10.0)
        # The child's tap drained the parent's reserve.
        assert parent.total_transferred_out > 0.4

    def test_rate_is_figure5_milliwatts(self):
        system = make_system()
        wrapped = energywrap(system, mW(1), timed_spinner(0.1), "tiny")
        assert wrapped.rate_watts == pytest.approx(1e-3)

    def test_wrap_composes_with_itself(self):
        """energywrap can wrap energywrap (§5.1 scripting)."""
        system = make_system()
        outer = energywrap(system, mW(100), spinner(), "outer")
        inner = energywrap(system, mW(25), spinner(), "inner",
                           source=outer.reserve)
        system.run(20.0)
        inner_power = inner.reserve.total_consumed / 20.0
        outer_power = outer.reserve.total_consumed / 20.0
        assert inner_power == pytest.approx(0.025, rel=0.1)
        # Outer keeps what its child does not siphon.
        assert outer_power == pytest.approx(0.075, rel=0.1)

    def test_wrap_child_uses_parent_reserve(self):
        system = make_system()
        parent = energywrap(system, mW(68.5), spinner(), "B")
        child = wrap_child(system, parent.process, mW(68.5) / 4,
                           spinner(), "B1")
        assert child.tap.source is parent.reserve

    def test_unaware_application_is_still_limited(self):
        """§5.1: 'even energy-unaware applications [can] be augmented
        with energy policies' — the program never references energy."""
        system = make_system()

        def oblivious(ctx):
            yield from timed_spinner(5.0)(ctx)

        wrapped = energywrap(system, mW(13.7), oblivious, "legacy")
        system.run(30.0)
        # 13.7 mW buys 10% duty: only ~3 s of the 5 s burn finished.
        assert not wrapped.process.finished
        assert wrapped.process.thread.cpu_time == pytest.approx(3.0,
                                                                rel=0.1)
