"""Tests for the browser/extension pair (§5.2) and plugin sandboxing."""

import math

import pytest

from repro.apps.browser import BrowserApp, BrowserConfig, ExtensionMailbox
from repro.apps.plugin import (bursty_plugin, make_plugin_sandbox,
                               runaway_plugin)
from repro.errors import HoardingError, SimulationError
from repro.kernel.labels import check_modify
from repro.sim.workload import spinner
from repro.units import mJ, mW

from ..conftest import make_system


class TestMailbox:
    def test_request_reply_cycle(self):
        mailbox = ExtensionMailbox()
        rid = mailbox.post()
        assert mailbox.pending == 1
        assert mailbox.take() == rid
        assert not mailbox.has_reply(rid)
        mailbox.reply(rid)
        assert mailbox.has_reply(rid)

    def test_fifo_order(self):
        mailbox = ExtensionMailbox()
        first, second = mailbox.post(), mailbox.post()
        assert mailbox.take() == first
        assert mailbox.take() == second
        assert mailbox.take() is None


class TestBrowserExtension:
    def test_healthy_extension_augments_pages(self):
        system = make_system()
        app = BrowserApp(system, browser_watts=mW(700),
                         extension_watts=mW(137),
                         config=BrowserConfig(pages=8))
        app.launch()
        system.run_until(lambda: app.stats.pages_loaded >= 8, max_s=120.0)
        assert app.stats.pages_augmented == 8
        assert app.stats.pages_plain == 0

    def test_starved_extension_degrades_gracefully(self):
        """§5.2: 'if the extension is unresponsive due to lack of
        energy the browser can display the unaugmented page'."""
        system = make_system()
        app = BrowserApp(system, browser_watts=mW(700),
                         extension_watts=mW(2),  # starved
                         config=BrowserConfig(pages=6,
                                              extension_timeout_s=1.0))
        app.launch()
        system.run_until(lambda: app.stats.pages_loaded >= 6, max_s=120.0)
        assert app.stats.pages_plain >= 4
        # The browser itself kept rendering.
        assert app.stats.pages_loaded == 6

    def test_per_page_taps_scale_and_revoke(self):
        """§5.2: one tap per page; navigation revokes it."""
        system = make_system()
        app = BrowserApp(system)
        tap = app.open_page("news", watts=mW(10))
        assert app.open_pages == 1
        with pytest.raises(SimulationError):
            app.open_page("news")
        app.close_page("news")
        assert app.open_pages == 0
        assert not tap.alive
        with pytest.raises(SimulationError):
            app.close_page("news")

    def test_figure_6a_no_sharing_hoards(self):
        system = make_system()
        app = BrowserApp(system, extension_watts=mW(70),
                         share_unused=False)
        system.run(60.0)
        # Nothing spends from the extension reserve: it accumulates
        # the full 70 mW x 60 s.
        assert app.extension_reserve.level == pytest.approx(4.2, rel=0.05)

    def test_figure_6b_sharing_caps_at_equilibrium(self):
        system = make_system()
        app = BrowserApp(system, extension_watts=mW(70),
                         back_fraction=0.1, share_unused=True)
        system.run(120.0)
        # Figure 6b: the idle plugin reserve tops out at ~700 mJ.
        assert app.extension_reserve.level == pytest.approx(0.700,
                                                            rel=0.05)


class TestPluginSandbox:
    def test_burst_capacity_is_equilibrium(self, graph):
        host = graph.create_reserve(name="host", source=graph.root,
                                    level=100.0)
        sandbox = make_plugin_sandbox(graph, host, mW(70),
                                      back_fraction=0.1)
        assert sandbox.burst_capacity_joules == pytest.approx(0.700)

    def test_plugin_cannot_modify_its_taps(self, graph):
        host = graph.create_reserve(name="host", source=graph.root,
                                    level=100.0)
        sandbox = make_plugin_sandbox(graph, host, mW(70))
        from repro.errors import LabelError
        from repro.kernel.labels import Label, NO_PRIVILEGES
        with pytest.raises(LabelError):
            check_modify(Label(), NO_PRIVILEGES,
                         sandbox.child.forward.label, what="tap")
        check_modify(Label(), sandbox.host_privileges,
                     sandbox.child.forward.label)

    def test_hoard_attempt_inherits_taxes(self, graph):
        host = graph.create_reserve(name="host", source=graph.root,
                                    level=100.0)
        sandbox = make_plugin_sandbox(graph, host, mW(70))
        # Bank some energy first.
        for _ in range(200):
            graph.step(0.1)
        stash = sandbox.try_hoard(sandbox.reserve.level / 2)
        # The stash drains at least as fast as the original.
        assert graph.drain_rate_of(stash) >= graph.drain_rate_of(
            sandbox.reserve) - 1e-12

    def test_raw_fast_to_slow_transfer_blocked(self, graph):
        host = graph.create_reserve(name="host", source=graph.root,
                                    level=100.0)
        sandbox = make_plugin_sandbox(graph, host, mW(70))
        for _ in range(200):
            graph.step(0.1)
        untaxed = graph.create_reserve(name="untaxed")
        with pytest.raises(HoardingError):
            graph.checked_transfer(sandbox.reserve, untaxed,
                                   sandbox.reserve.level / 2)

    def test_runaway_plugin_cannot_starve_host(self):
        """§2.2's motivating case: the buggy plugin spins forever but
        the browser keeps its share."""
        system = make_system()
        host = system.powered_reserve(mW(137), name="browser")
        sandbox = make_plugin_sandbox(system.graph, host, mW(14))
        hog = system.spawn(runaway_plugin(), "plugin",
                           reserve=sandbox.reserve)
        browser = system.spawn(spinner(), "browser", reserve=host)
        system.run(30.0)
        # The plugin is pinned near its 14 mW allowance...
        hog_power = hog.thread.cpu_time * 0.137 / 30.0
        assert hog_power == pytest.approx(0.014, rel=0.2)
        # ...and the browser gets the rest.
        assert browser.thread.cpu_time > 5 * hog.thread.cpu_time

    def test_bursty_plugin_uses_banked_energy(self):
        system = make_system()
        host = system.powered_reserve(mW(200), name="host")
        sandbox = make_plugin_sandbox(system.graph, host, mW(20),
                                      back_fraction=0.05)
        plugin = system.spawn(bursty_plugin(burst_cpu_s=0.3, idle_s=5.0,
                                            bursts=3),
                              "plugin", reserve=sandbox.reserve)
        system.run(30.0)
        assert plugin.finished  # bursts completed despite 20 mW average
