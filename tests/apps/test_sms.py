"""Tests for the quota-gated SMS sender (§7 + §9)."""

import numpy as np
import pytest

from repro.apps.sms import SmsSender, SmsStats, sms_burst_program
from repro.core.decay import DecayPolicy
from repro.core.graph import ResourceGraph
from repro.core.reserve import SMS_MESSAGES
from repro.errors import ReserveEmptyError
from repro.hw.msm7201a import Msm7201a
from repro.hw.rild import RildDaemon
from repro.hw.smdd import SmddDaemon
from repro.units import mW

from ..conftest import make_system


def build_sms_stack(system, quota_messages=5):
    chipset = Msm7201a.build(system.radio, system.battery,
                             lambda: system.clock.now)
    smdd = SmddDaemon(system.kernel, chipset,
                      system.model.cpu_active_watts)
    rild = RildDaemon(system.kernel, smdd,
                      system.model.cpu_active_watts)
    plan = ResourceGraph(100.0, kind=SMS_MESSAGES, root_name="sms-plan",
                         decay=DecayPolicy(enabled=False))
    system.kernel.add_graph(SMS_MESSAGES, plan)
    quota = plan.create_reserve(name="messenger", source=plan.root,
                                level=float(quota_messages))
    return chipset, rild, quota


class TestSmsSender:
    def test_send_consumes_quota_and_energy(self, ):
        system = make_system()
        chipset, rild, quota = build_sms_stack(system)
        reserve = system.new_reserve(name="app")
        system.battery_reserve.transfer_to(reserve, 5.0)
        thread = system.kernel.create_thread(name="app")
        thread.set_active_reserve(reserve)

        sender = SmsSender(rild, quota)
        assert sender.send(thread, "555-0100")
        assert quota.level == pytest.approx(4.0)
        assert reserve.level < 5.0
        assert chipset.arm9.sms_sent == 1

    def test_quota_exhaustion_blocks_before_hardware(self):
        system = make_system()
        chipset, rild, quota = build_sms_stack(system, quota_messages=1)
        reserve = system.new_reserve(name="app")
        system.battery_reserve.transfer_to(reserve, 5.0)
        thread = system.kernel.create_thread(name="app")
        thread.set_active_reserve(reserve)

        sender = SmsSender(rild, quota)
        assert sender.send(thread)
        assert not sender.send(thread)  # quota gone
        assert chipset.arm9.sms_sent == 1  # radio untouched the 2nd time

    def test_energy_exhaustion_blocks_send(self):
        system = make_system()
        _, rild, quota = build_sms_stack(system)
        broke = system.new_reserve(name="broke")
        thread = system.kernel.create_thread(name="app")
        thread.set_active_reserve(broke)
        sender = SmsSender(rild, quota)
        assert not sender.send(thread)
        assert quota.level == pytest.approx(5.0)  # quota not charged

    def test_wrong_kind_reserve_rejected(self):
        system = make_system()
        _, rild, _ = build_sms_stack(system)
        energy_reserve = system.new_reserve(name="oops")
        with pytest.raises(ReserveEmptyError):
            SmsSender(rild, energy_reserve)


class TestSmsBurstProgram:
    def test_burst_respects_quota(self):
        system = make_system()
        chipset, rild, quota = build_sms_stack(system, quota_messages=3)
        reserve = system.powered_reserve(mW(500), name="app")
        system.battery_reserve.transfer_to(reserve, 5.0)
        stats = SmsStats()
        sender = SmsSender(rild, quota)
        process = system.spawn(
            sms_burst_program(sender, stats, count=6, interval_s=0.5),
            "messenger", reserve=reserve)
        system.run(5.0)
        assert process.finished
        assert stats.sent == 3
        assert stats.rejected_quota == 3
        assert chipset.arm9.sms_sent == 3
