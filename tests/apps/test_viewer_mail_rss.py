"""Tests for the image viewer (§5.3) and the poller daemons (§6.4)."""

import pytest

from repro.apps.image_viewer import (ViewerConfig, ViewerStats,
                                     choose_fraction,
                                     image_viewer_downloader)
from repro.apps.mail import MailConfig, MailStats, mail_fetcher
from repro.apps.rss import RssConfig, RssStats, rss_downloader
from repro.figures.fig10_viewer_noscale import build_system
from repro.units import KiB, mW

from ..conftest import make_system


class TestAdaptationPolicy:
    def test_full_quality_above_comfort(self):
        config = ViewerConfig(adaptive=True, comfort_level_j=0.15)
        assert choose_fraction(config, 0.2) == 1.0
        assert choose_fraction(config, 0.15) == 1.0

    def test_scales_down_below_comfort(self):
        config = ViewerConfig(adaptive=True, comfort_level_j=0.15)
        fraction = choose_fraction(config, 0.05)
        assert config.min_fraction <= fraction < 1.0

    def test_floors_at_min_fraction(self):
        config = ViewerConfig(adaptive=True)
        assert choose_fraction(config, 1e-6) == config.min_fraction

    def test_non_adaptive_always_full(self):
        config = ViewerConfig(adaptive=False)
        assert choose_fraction(config, 0.0) == 1.0

    def test_spend_fraction_bounds_cost(self):
        config = ViewerConfig(adaptive=True)
        level = 0.05
        fraction = choose_fraction(config, level)
        cost = fraction * config.full_image_bytes * config.est_joules_per_byte
        floor_cost = (config.min_fraction * config.full_image_bytes
                      * config.est_joules_per_byte)
        assert cost <= max(config.spend_fraction * level, floor_cost) + 1e-12


class TestViewerRuns:
    def make_viewer(self, adaptive, batches=3):
        system = build_system(seed=0)
        reserve = system.powered_reserve(2e-3, name="downloader")
        system.battery_reserve.transfer_to(reserve, 0.2)
        config = ViewerConfig(adaptive=adaptive, batches=batches,
                              images_per_batch=4)
        stats = ViewerStats()
        process = system.spawn(image_viewer_downloader(config, stats),
                               "viewer", reserve=reserve)
        return system, process, stats, reserve

    def test_adaptive_finishes_much_faster(self):
        system_a, pa, stats_a, _ = self.make_viewer(adaptive=True)
        system_a.run_until(lambda: pa.finished, max_s=4000)
        system_n, pn, stats_n, _ = self.make_viewer(adaptive=False)
        system_n.run_until(lambda: pn.finished, max_s=4000)
        assert stats_n.finished_at > 2.0 * stats_a.finished_at
        assert stats_a.total_bytes < stats_n.total_bytes

    def test_adaptive_quality_declines_within_batch(self):
        system, process, stats, _ = self.make_viewer(adaptive=True)
        system.run_until(lambda: process.finished, max_s=4000)
        first_batch = stats.images[:4]
        qualities = [record.quality for record in first_batch]
        assert qualities[0] == 1.0
        assert qualities[-1] < qualities[0]

    def test_non_adaptive_stalls(self):
        system, process, stats, _ = self.make_viewer(adaptive=False)
        system.run_until(lambda: process.finished, max_s=4000)
        assert stats.total_stall_seconds > 10.0
        assert stats.mean_quality() == 1.0

    def test_stats_series_shapes(self):
        system, process, stats, _ = self.make_viewer(adaptive=True,
                                                     batches=2)
        system.run_until(lambda: process.finished, max_s=4000)
        times, kib = stats.bytes_per_image_series()
        assert len(times) == len(kib) == 8
        assert all(t2 >= t1 for t1, t2 in zip(times, times[1:]))


class TestPollers:
    def test_mail_fetcher_polls_on_grid(self):
        system = make_system(unrestricted_netd=True)
        stats = MailStats()
        config = MailConfig(poll_period_s=30.0, start_offset_s=5.0,
                            max_polls=4)
        system.spawn(mail_fetcher(config, stats), "mail")
        system.run(130.0)
        assert stats.polls_completed == 4
        expected = [5.0, 35.0, 65.0, 95.0]
        for measured, nominal in zip(stats.poll_times, expected):
            assert measured == pytest.approx(nominal, abs=3.0)

    def test_mail_counts_messages(self):
        system = make_system(unrestricted_netd=True)
        stats = MailStats()
        system.spawn(mail_fetcher(MailConfig(max_polls=2), stats), "mail")
        system.run(130.0)
        assert stats.messages_fetched == 6  # 3 per poll

    def test_rss_downloader_counts_items(self):
        system = make_system(unrestricted_netd=True)
        stats = RssStats()
        system.spawn(rss_downloader(RssConfig(max_polls=2), stats), "rss")
        system.run(90.0)
        assert stats.polls_completed == 2
        assert stats.items_fetched == 40
        assert stats.total_bytes > 2 * KiB(60)

    def test_checks_per_hour_metric(self):
        stats = MailStats(polls_completed=20)
        assert stats.checks_per_hour(1200.0) == pytest.approx(60.0)

    def test_constrained_poller_blocks_until_funded(self):
        system = make_system()
        stats = RssStats()
        reserve = system.powered_reserve(mW(99), name="rss")
        system.spawn(rss_downloader(RssConfig(max_polls=1), stats), "rss",
                     reserve=reserve)
        system.run(60.0)
        assert stats.polls_completed == 0  # still pooling alone
        system.run(90.0)
        assert stats.polls_completed == 1
        assert stats.total_wait_seconds > 60.0
