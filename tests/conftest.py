"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.graph import ResourceGraph
from repro.kernel.kernel import Kernel
from repro.sim.engine import CinderSystem


@pytest.fixture
def graph() -> ResourceGraph:
    """An energy graph with a 15 kJ battery and decay disabled.

    Most unit tests want exact arithmetic; decay-specific tests enable
    it explicitly.
    """
    g = ResourceGraph(15_000.0)
    g.decay_policy.enabled = False
    return g


@pytest.fixture
def decaying_graph() -> ResourceGraph:
    """An energy graph with the paper's default decay enabled."""
    return ResourceGraph(15_000.0)


@pytest.fixture
def kernel() -> Kernel:
    """A kernel with a 15 kJ battery."""
    return Kernel(battery_joules=15_000.0)


def make_system(**kwargs) -> CinderSystem:
    """A CinderSystem with test-friendly defaults (decay off)."""
    kwargs.setdefault("battery_joules", 15_000.0)
    kwargs.setdefault("tick_s", 0.01)
    kwargs.setdefault("decay_enabled", False)
    return CinderSystem(**kwargs)


@pytest.fixture
def system() -> CinderSystem:
    """A default test system."""
    return make_system()
