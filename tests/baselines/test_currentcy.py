"""Tests for the ECOSystem currentcy baseline and the comparisons."""

import pytest

from repro.baselines.comparison import (plugin_scenario_cinder,
                                        plugin_scenario_currentcy,
                                        pooling_scenario_cinder,
                                        pooling_scenario_currentcy)
from repro.baselines.currentcy import CurrentcyAccount, CurrentcyManager
from repro.errors import EnergyError, ReserveEmptyError


class TestAccount:
    def test_credit_respects_cap(self):
        account = CurrentcyAccount("a", allotment=1.0, cap=5.0)
        assert account.credit(3.0) == 3.0
        assert account.credit(3.0) == 2.0
        assert account.balance == 5.0
        assert account.total_discarded == pytest.approx(1.0)

    def test_spend_refuses_overdraft(self):
        account = CurrentcyAccount("a", allotment=1.0, cap=5.0)
        account.credit(2.0)
        with pytest.raises(ReserveEmptyError):
            account.spend(3.0)
        assert account.spend(2.0) == 2.0
        assert account.total_spent == 2.0

    def test_negative_amounts_rejected(self):
        account = CurrentcyAccount("a", allotment=1.0, cap=5.0)
        with pytest.raises(EnergyError):
            account.credit(-1.0)
        with pytest.raises(EnergyError):
            account.spend(-1.0)


class TestManager:
    def test_epoch_minting_divides_budget(self):
        manager = CurrentcyManager(1000.0, epoch_s=1.0, budget_watts=1.0)
        a = manager.add_account("a", share=3.0)
        b = manager.add_account("b", share=1.0)
        manager.step(1.0)
        assert a.balance == pytest.approx(0.75)
        assert b.balance == pytest.approx(0.25)
        assert manager.battery_joules == pytest.approx(999.0)

    def test_partial_epochs_accumulate(self):
        manager = CurrentcyManager(1000.0, epoch_s=1.0, budget_watts=1.0)
        a = manager.add_account("a", share=1.0)
        manager.step(0.4)
        assert manager.epochs == 0
        manager.step(0.7)
        assert manager.epochs == 1
        assert a.balance == pytest.approx(1.0)

    def test_fork_shares_parent_account(self):
        """§2.3: 'child processes share the resources of their
        parent' — the flat hierarchy."""
        manager = CurrentcyManager(1000.0)
        browser = manager.add_account("browser", share=1.0)
        plugin_account = manager.fork_into("browser", "plugin")
        assert plugin_account is browser
        assert manager.account_of("plugin") is browser

    def test_no_delegation_or_subdivision(self):
        manager = CurrentcyManager(1000.0)
        assert not manager.can_delegate()
        assert not manager.can_subdivide()

    def test_duplicate_account_rejected(self):
        manager = CurrentcyManager(1000.0)
        manager.add_account("a", share=1.0)
        with pytest.raises(EnergyError):
            manager.add_account("a", share=1.0)


class TestPluginComparison:
    """§2.3's browser/plugin example, quantified."""

    def test_cinder_protects_the_browser(self):
        result = plugin_scenario_cinder()
        # The plugin is pinned at its 20% tap; the browser keeps ~80%.
        assert result.browser_share > 0.75

    def test_currentcy_lets_the_plugin_starve_the_browser(self):
        result = plugin_scenario_currentcy()
        # Shared account + greedy plugin: the browser loses about half
        # (or worse, depending on scheduling).
        assert result.browser_share < 0.55

    def test_cinder_strictly_better_for_the_host(self):
        cinder = plugin_scenario_cinder()
        eco = plugin_scenario_currentcy()
        assert cinder.browser_share > eco.browser_share + 0.2
        # Total work is comparable — protection, not throttling.
        cinder_total = cinder.browser_work_joules + cinder.plugin_work_joules
        eco_total = eco.browser_work_joules + eco.plugin_work_joules
        assert cinder_total == pytest.approx(eco_total, rel=0.1)


class TestPoolingComparison:
    """§2.3: 'prior systems do not permit delegation'."""

    def test_cinder_pools_to_full_service_rate(self):
        result = pooling_scenario_cinder()
        assert result.activations_per_period == pytest.approx(1.0,
                                                              abs=0.15)

    def test_currentcy_halves_the_service_rate(self):
        result = pooling_scenario_currentcy()
        # Each account needs two periods to afford one activation.
        assert result.activations_per_period == pytest.approx(1.0,
                                                              abs=0.15)
        # Wait — two accounts each activating every 2 periods IS one
        # per period in total, but each app only gets service every
        # other period; the real loss is latency/synchronization.
        # The telling metric: Cinder reaches its first activation in
        # one period, currentcy needs two.

    def test_time_to_first_service(self):
        cinder = pooling_scenario_cinder(duration_s=90.0)
        eco = pooling_scenario_currentcy(duration_s=90.0)
        assert cinder.activations >= 1   # pooled within ~60 s
        assert eco.activations == 0      # needs ~120 s alone
