"""System-level property tests: determinism, fairness, metering.

These exercise the *composed* system the way the paper's evaluation
depends on it: seeded runs must be bit-identical, the scheduler must
divide power in proportion to taps, and the simulated meter must agree
with its own totalizer.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.energy.meter import PowerMeter
from repro.sim.workload import spinner
from repro.units import mW

from ..conftest import make_system


class TestDeterminism:
    def _signature(self, seed):
        system = make_system(seed=seed, meter_noise=0.01)
        for index, watts in enumerate((40.0, 70.0, 25.0)):
            reserve = system.powered_reserve(mW(watts), name=f"r{index}")
            system.spawn(spinner(), f"p{index}", reserve=reserve)
        system.run(10.0)
        system.meter.flush()
        _, samples = system.meter.samples()
        return (tuple(samples.tolist()),
                tuple(sorted((p, round(system.ledger.total_for(p), 12))
                             for p in system.ledger.principals())))

    def test_same_seed_same_trace(self):
        assert self._signature(7) == self._signature(7)

    def test_different_seed_different_noise(self):
        first, _ = self._signature(7)
        second, _ = self._signature(8)
        assert first != second


class TestProportionalFairness:
    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.floats(5.0, 40.0), min_size=2, max_size=4))
    def test_power_shares_follow_taps(self, rates_mw):
        """With total demand under the CPU's capacity, every spinner's
        billed power converges to its tap rate — the scheduler neither
        steals nor gifts."""
        system = make_system()
        total = sum(rates_mw)
        if total >= 130.0:  # keep under the 137 mW CPU
            rates_mw = [r * 120.0 / total for r in rates_mw]
        for index, rate in enumerate(rates_mw):
            reserve = system.powered_reserve(mW(rate), name=f"r{index}")
            system.spawn(spinner(), f"p{index}", reserve=reserve)
        system.run(30.0)
        for index, rate in enumerate(rates_mw):
            billed = system.ledger.total_for(f"p{index}") / 30.0
            assert billed == pytest.approx(mW(rate), rel=0.08)

    def test_oversubscription_caps_at_cpu(self):
        system = make_system()
        for index in range(3):
            reserve = system.powered_reserve(mW(100), name=f"r{index}")
            system.spawn(spinner(), f"p{index}", reserve=reserve)
        system.run(20.0)
        total_billed = system.ledger.total() / 20.0
        assert total_billed == pytest.approx(0.137, rel=0.02)
        # And round-robin splits the contended CPU evenly.
        shares = [system.ledger.total_for(f"p{i}") for i in range(3)]
        assert max(shares) / min(shares) < 1.05


class TestMeterProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.floats(0.0, 5.0),
                              st.floats(0.001, 2.0)),
                    min_size=1, max_size=20))
    def test_samples_integrate_to_totalizer(self, segments):
        meter = PowerMeter()
        for watts, dt in segments:
            meter.feed(watts, dt)
        meter.flush()
        total_time = sum(dt for _, dt in segments)
        recovered = meter.energy_between(0.0, total_time + 1.0)
        assert recovered == pytest.approx(meter.total_energy_joules,
                                          rel=1e-6, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.1, 3.0), st.floats(1.0, 20.0))
    def test_constant_power_recovered_exactly(self, watts, duration):
        meter = PowerMeter()
        meter.feed(watts, duration)
        meter.flush()
        assert meter.mean_power_between(0.0, duration) == pytest.approx(
            watts, rel=1e-9)


class TestLedgerMeterAgreement:
    def test_billed_cpu_energy_shows_up_in_the_meter(self):
        """Model-billed CPU energy equals metered energy above idle."""
        system = make_system()
        reserve = system.powered_reserve(mW(68.5), name="r")
        system.spawn(spinner(), "app", reserve=reserve)
        system.run(30.0)
        system.meter.flush()
        billed = system.ledger.total_for("app")
        metered_over_idle = (system.meter.total_energy_joules
                             - system.model.idle_watts * 30.0)
        assert billed == pytest.approx(metered_over_idle, rel=0.02)
