"""Fault injection: the system must degrade predictably, not corrupt.

Kills reserves mid-flight, crashes processes, revokes taps under load,
and drives reserves into pathological debt — then asserts the
invariants that must survive: conservation, scheduler progress, and
isolation of the failure.
"""

import math

import pytest

from repro.core.tap import TapType
from repro.errors import DebtLimitError, SimulationError
from repro.sim.process import CpuBurn, NetRequest, Sleep
from repro.sim.workload import spinner, timed_spinner
from repro.units import KiB, mW

from ..conftest import make_system


class TestProcessCrashes:
    def test_crashing_process_does_not_kill_the_engine(self):
        system = make_system()

        def crasher(ctx):
            yield Sleep(0.5)
            raise RuntimeError("app bug")

        survivor_reserve = system.powered_reserve(mW(137), name="ok")
        survivor = system.spawn(spinner(), "ok", reserve=survivor_reserve)
        system.spawn(crasher, "crasher")
        with pytest.raises(RuntimeError):
            system.run(2.0)
        # The engine can continue afterwards; the survivor still runs.
        before = survivor.thread.cpu_time
        system.run(2.0)
        assert survivor.thread.cpu_time > before

    def test_generator_exit_releases_scheduler_slot(self):
        system = make_system()
        reserve = system.powered_reserve(mW(137), name="r")
        process = system.spawn(timed_spinner(0.2), "short",
                               reserve=reserve)
        system.run(1.0)
        assert process.finished
        assert process.thread not in system.scheduler.threads


class TestReserveDeletionUnderLoad:
    def test_deleting_running_threads_reserve_throttles_it(self):
        system = make_system()
        reserve = system.powered_reserve(mW(137), name="r")
        process = system.spawn(spinner(), "app", reserve=reserve)
        system.run(1.0)
        ran_before = process.thread.cpu_time
        system.graph.delete_reserve(reserve)
        process.thread.detach_reserve(reserve)
        system.run(1.0)
        # No reserve -> no progress; nothing crashed.
        assert process.thread.cpu_time == pytest.approx(ran_before,
                                                        abs=0.02)
        assert abs(system.graph.conservation_error()) < 1e-6

    def test_tap_revocation_mid_run_stops_flow_only(self):
        system = make_system()
        reserve = system.new_reserve(name="r")
        tap = system.kernel.create_tap(system.battery_reserve, reserve,
                                       mW(100), name="t")
        system.run(1.0)
        level_at_cut = reserve.level
        system.graph.delete_tap(tap)
        system.run(1.0)
        assert reserve.level == pytest.approx(level_at_cut)
        assert abs(system.graph.conservation_error()) < 1e-6

    def test_container_revocation_of_live_sandbox(self):
        """Deleting an app's container revokes reserve + tap at once."""
        system = make_system()
        container = system.kernel.create_container(name="sandbox")
        reserve = system.kernel.create_reserve(container=container,
                                               name="boxed")
        tap = system.kernel.create_tap(system.battery_reserve, reserve,
                                       mW(100), container=container)
        system.run(0.5)
        system.kernel.delete(system.kernel.ref_for(container))
        assert not reserve.alive and not tap.alive
        system.run(0.5)  # engine keeps going
        assert abs(system.graph.conservation_error()) < 1e-6


class TestDebtPathologies:
    def test_debt_limited_reserve_rejects_runaway_debits(self):
        system = make_system()
        reserve = system.new_reserve(name="r")
        reserve.debt_limit = 0.5
        system.battery_reserve.transfer_to(reserve, 0.1)
        with pytest.raises(DebtLimitError):
            reserve.consume(1.0, allow_debt=True)
        assert reserve.level == pytest.approx(0.1)

    def test_indebted_thread_recovers_via_tap(self):
        system = make_system()
        reserve = system.powered_reserve(mW(137), name="r")
        thread = system.kernel.create_thread(name="t")
        thread.set_active_reserve(reserve)
        reserve.consume(0.05, allow_debt=True)  # plunged into debt
        assert reserve.in_debt
        system.run(1.0)  # tap repays
        assert not reserve.in_debt

    def test_taps_never_flow_out_of_debt(self):
        system = make_system()
        a = system.new_reserve(name="a")
        b = system.new_reserve(name="b")
        system.kernel.create_tap(a, b, mW(500))
        a.consume(1.0, allow_debt=True)
        system.run(1.0)
        assert b.level == 0.0
        assert a.level == pytest.approx(-1.0)


class TestNetdFaults:
    def test_blocked_op_survives_unrelated_failures(self):
        system = make_system()
        poor = system.powered_reserve(mW(99), name="poor")

        def patient(ctx):
            yield NetRequest(bytes_out=512, bytes_in=KiB(30),
                             destination="mail")

        def crasher(ctx):
            yield Sleep(1.0)
            raise ValueError("unrelated")

        process = system.spawn(patient, "patient", reserve=poor)
        system.spawn(crasher, "crasher")
        with pytest.raises(ValueError):
            system.run(5.0)
        # The blocked op is still queued and completes once funded.
        assert system.netd.waiting_count == 1
        system.battery_reserve.transfer_to(poor, 15.0)
        system.run(10.0)
        assert process.finished

    def test_zero_byte_request_is_fine(self):
        system = make_system()
        reserve = system.new_reserve(name="r")
        system.battery_reserve.transfer_to(reserve, 15.0)

        def program(ctx):
            yield NetRequest(bytes_out=0, bytes_in=0, destination="echo")

        process = system.spawn(program, "app", reserve=reserve)
        system.run(5.0)
        assert process.finished

    def test_unknown_destination_raises_at_submit(self):
        system = make_system()
        reserve = system.new_reserve(name="r")
        system.battery_reserve.transfer_to(reserve, 15.0)

        def program(ctx):
            yield NetRequest(bytes_out=10, destination="atlantis")

        system.spawn(program, "app", reserve=reserve)
        from repro.errors import NetworkError
        with pytest.raises(NetworkError):
            system.run(1.0)


class TestEngineEdges:
    def test_zero_processes_runs_clean(self):
        system = make_system()
        system.run(5.0)
        assert system.meter.total_energy_joules == pytest.approx(
            system.model.idle_watts * 5.0)

    def test_battery_exhaustion_is_observable(self):
        system = make_system(battery_joules=1.0)
        system.run(5.0)  # idle draw alone kills a 1 J battery
        assert system.battery.empty
        assert system.battery.gauge() == 0

    def test_negative_run_rejected(self):
        with pytest.raises(SimulationError):
            make_system().run(-1.0)

    def test_many_processes_scale(self):
        system = make_system()
        for index in range(50):
            reserve = system.powered_reserve(mW(2), name=f"r{index}")
            system.spawn(spinner(), f"p{index}", reserve=reserve)
        # Long enough that the ~0.7 s reserve warm-up is negligible.
        system.run(20.0)
        # 50 x 2 mW = 100 mW of demand on a 137 mW CPU: fits.
        assert system.scheduler.utilization == pytest.approx(
            100.0 / 137.0, abs=0.05)
        assert abs(system.graph.conservation_error()) < 1e-6
