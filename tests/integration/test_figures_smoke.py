"""Smoke tests: every figure module runs (scaled down) and renders.

The full-length runs live in ``benchmarks/``; here we assert the shape
claims on shortened versions so the unit suite stays fast.
"""

import pytest

from repro.figures import (fig03_radio_flows, fig04_activation,
                           fig09_isolation, fig12_background,
                           fig13_cooperative, fig14_netd_reserve,
                           table1_summary)


class TestFig3:
    def test_run_and_render(self):
        result = fig03_radio_flows.run(seed=1)
        assert 13.0 < result.mean_j < 17.0
        assert result.min_j > 10.0
        text = fig03_radio_flows.render(result)
        assert "1500 B/pkt" in text

    def test_series_extraction(self):
        # seed=None disables cycle jitter: the underlying trend is
        # monotone in packet rate (the jittered grid, like the paper's
        # measured data, is noisy around it).
        result = fig03_radio_flows.run(seed=None)
        rates, joules = result.series_for_size(750)
        assert len(rates) == 6
        assert joules == sorted(joules)  # monotone in rate


class TestFig4:
    def test_activation_cycles(self):
        result = fig04_activation.run(duration_s=120.0, interval_s=40.0,
                                      seed=4)
        assert result.activation_count == 3
        assert result.mean_cycle_j == pytest.approx(9.5, rel=0.2)
        assert "Figure 4" in fig04_activation.render(result)


class TestFig9:
    def test_isolation_shape(self):
        result = fig09_isolation.run(duration_s=30.0)
        by_metric = {c.metric: c for c in result.comparisons}
        steady_a = by_metric["A steady power"]
        assert steady_a.measured == pytest.approx(steady_a.paper, rel=0.05)
        total = by_metric["stacked estimate sum"]
        assert total.measured == pytest.approx(0.137, rel=0.05)
        assert "Figure 9" in fig09_isolation.render(result)


class TestFig12:
    def test_both_panels(self):
        pair = fig12_background.run(duration_s=60.0)
        a_rows = {c.metric: c for c in pair.panel_a.comparisons}
        assert a_rows["A background power (0-10 s)"].measured == \
            pytest.approx(0.007, rel=0.1)
        b_rows = {c.metric: c for c in pair.panel_b.comparisons}
        fifty = b_rows["A share during B's turn (30-36 s)"]
        assert fifty.measured == pytest.approx(0.0685, rel=0.1)
        assert "(b) fg tap = 300 mW" in fig12_background.render(pair)


class TestFig13AndFriends:
    @pytest.fixture(scope="class")
    def runs(self):
        """Share one (shortened) pair across fig13/fig14/table1."""
        uncoop = fig13_cooperative.run_one(False, duration_s=301.0,
                                           tick_s=0.02)
        coop = fig13_cooperative.run_one(True, duration_s=301.0,
                                         tick_s=0.02)
        return uncoop, coop

    def test_cooperation_reduces_active_time(self, runs):
        uncoop, coop = runs
        assert coop.active_time_s < 0.75 * uncoop.active_time_s
        assert coop.total_energy_j < uncoop.total_energy_j

    def test_work_parity(self, runs):
        uncoop, coop = runs
        assert coop.polls_completed >= uncoop.polls_completed - 1

    def test_fig14_pool_sawtooth(self, runs):
        _, coop = runs
        result = fig14_netd_reserve.run(coop_run=coop)
        assert result.peak_j == pytest.approx(1.25 * 9.5, rel=0.1)
        assert result.floor_after_first_fill_j > 0.5
        assert "netd pool level" in fig14_netd_reserve.render(result)

    def test_table1_rows(self, runs):
        result = table1_summary.run(runs=runs)
        rows = {r[0]: r for r in result.measured_rows()}
        assert rows["Active Time (s)"][3] > 0.25  # >25% improvement
        text = table1_summary.render(result)
        assert "Non-Coop" in text and "Improv" in text
