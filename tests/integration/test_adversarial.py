"""Adversarial scenarios: the attacks §2 and §5.2.2 worry about.

"Such control will be even more important as the danger grows from
buggy or poorly designed applications to potentially malicious ones."
Each test plays an attacker strategy against the mechanisms and
asserts the defense holds.
"""

import math

import pytest

from repro.apps.energywrap import energywrap
from repro.core.tap import TapType
from repro.errors import (HoardingError, LabelError, ReserveEmptyError)
from repro.kernel import syscalls
from repro.kernel.labels import Label, PrivilegeSet, fresh_category
from repro.sim.process import CpuBurn, Fork, NetRequest
from repro.sim.workload import spinner
from repro.units import KiB, mW

from ..conftest import make_system


class TestEnergyTheft:
    def test_cannot_transfer_from_protected_reserve(self):
        """An attacker cannot siphon a victim's labeled reserve."""
        system = make_system()
        kernel = system.kernel
        secret = fresh_category("victim")
        victim_thread = kernel.create_thread(
            name="victim", privileges=PrivilegeSet(frozenset({secret})))
        container = kernel.root_container.object_id
        res_id = syscalls.reserve_create(kernel, victim_thread, container,
                                         label=Label({secret: 3}))
        from repro.kernel.objects import ObjRef
        victim_res = ObjRef(container, res_id)
        syscalls.reserve_transfer(kernel, victim_thread,
                                  kernel.ref_for(kernel.battery),
                                  victim_res, 100.0)

        thief = kernel.create_thread(name="thief")
        stash_id = syscalls.reserve_create(kernel, thief, container)
        stash = ObjRef(container, stash_id)
        with pytest.raises(LabelError):
            syscalls.reserve_transfer(kernel, thief, victim_res, stash,
                                      100.0)
        assert syscalls.reserve_level(kernel, victim_thread,
                                      victim_res) == pytest.approx(100.0)

    def test_cannot_retune_someone_elses_tap(self):
        """Raising your own feed requires modify on the tap."""
        system = make_system()
        kernel = system.kernel
        admin_cat = fresh_category("admin")
        admin = kernel.create_thread(
            name="admin", privileges=PrivilegeSet(frozenset({admin_cat})))
        container = kernel.root_container.object_id
        from repro.kernel.objects import ObjRef
        res_id = syscalls.reserve_create(kernel, admin, container)
        res = ObjRef(container, res_id)
        tap_id = syscalls.tap_create(kernel, admin, container,
                                     kernel.ref_for(kernel.battery), res,
                                     label=Label({admin_cat: 0}))
        tap = ObjRef(container, tap_id)
        syscalls.tap_set_rate(kernel, admin, tap,
                              syscalls.TAP_TYPE_CONST, 10.0)

        greedy = kernel.create_thread(name="greedy")
        with pytest.raises(LabelError):
            syscalls.tap_set_rate(kernel, greedy, tap,
                                  syscalls.TAP_TYPE_CONST, 10_000.0)


class TestHoardingAttacks:
    def test_sidestep_taxation_via_fresh_reserve_blocked(self, graph):
        """§5.2.2's exact attack: move taxed energy into an untaxed
        reserve, accumulate battery-scale hoards."""
        host_cat = fresh_category("host")
        plugin = graph.create_reserve(name="plugin")
        graph.create_tap(graph.root, plugin, 1.0)
        graph.create_tap(plugin, graph.root, 0.1, TapType.PROPORTIONAL,
                         label=Label({host_cat: 0}), name="tax")
        for _ in range(100):
            graph.step(0.1)
        stash = graph.create_reserve(name="stash")
        with pytest.raises(HoardingError):
            graph.checked_transfer(plugin, stash, plugin.level)

    def test_global_decay_caps_any_hoard(self):
        """Even without checked transfers, the half-life bounds the
        steady-state hoard at income/lambda."""
        system = make_system(decay_enabled=True)
        hoard = system.powered_reserve(mW(300), name="hoarder")
        system.run(hours_s := 3600.0)
        lam = system.graph.decay_policy.lam
        equilibrium = 0.300 / lam
        assert hoard.level <= equilibrium * 1.02
        # 260 J — about 1.7% of the battery, not "energy equal to the
        # battery" (§5.2.2's worry without decay).
        assert hoard.level < 0.02 * 15_000.0

    def test_foreground_burst_hoard_decays_back(self):
        """§6.3: the half-life 'returns applications to the natural
        background power over a 10 minute period'."""
        system = make_system(decay_enabled=True)
        reserve = system.new_reserve(name="app")
        system.battery_reserve.transfer_to(reserve, 3.0)  # fg burst
        system.run(600.0)
        assert reserve.level == pytest.approx(1.5, rel=0.05)


class TestDenialOfService:
    def test_fork_bomb_cannot_starve_the_system(self):
        system = make_system()
        victim = energywrap(system, mW(68.5), spinner(), "victim")
        bomb_reserve = system.powered_reserve(mW(68.5), name="bomb")

        def bomb(ctx):
            for index in range(20):
                yield Fork(spinner(), name=f"b{index}",
                           setup=lambda p: p.thread.set_active_reserve(
                               bomb_reserve))
            yield CpuBurn(math.inf)

        system.spawn(bomb, "bomber", reserve=bomb_reserve)
        system.run(20.0)
        victim_watts = victim.reserve.total_consumed / 20.0
        assert victim_watts == pytest.approx(0.0685, rel=0.05)

    def test_radio_spam_is_self_limiting(self):
        """A malicious app cannot run up the radio beyond its income."""
        system = make_system()
        attacker = system.powered_reserve(mW(99), name="spammer")

        def spam(ctx):
            while True:
                yield NetRequest(bytes_out=KiB(1), destination="echo")

        system.spawn(spam, "spammer", reserve=attacker)
        system.run(600.0)
        # Income bounds activations: 99 mW x 600 s = 59.4 J buys at
        # most ~5 margined activations (11.875 J each).
        assert system.radio.activation_count <= 5
        # And the pool holds no stolen surplus beyond the margin.
        assert system.netd.pool.level < 12.0

    def test_netd_pool_cannot_be_drained_by_an_outsider(self):
        """The pool is netd's reserve; apps only feed it via blocking
        contributions, and the core API refuses cross-kind theft."""
        system = make_system()
        pool = system.netd.pool
        system.battery_reserve.transfer_to(pool, 5.0)
        outsider = system.new_reserve(name="outsider")
        # The only raw path is transfer_to *from* the pool object
        # itself; no syscall reaches it because it was never placed in
        # a container an outsider can name.
        from repro.errors import NoSuchObjectError
        thief = system.kernel.create_thread(name="thief")
        from repro.kernel.objects import ObjRef
        with pytest.raises(NoSuchObjectError):
            syscalls.reserve_transfer(
                system.kernel, thief,
                ObjRef(system.kernel.root_container.object_id,
                       pool.object_id),
                system.kernel.ref_for(outsider), 5.0)
