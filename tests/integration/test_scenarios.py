"""End-to-end scenarios straight from the paper's evaluation (§6).

These are scaled-down versions of the figure experiments: short
enough for the unit-test suite, but asserting the same qualitative
claims the figures make.
"""

import pytest

from repro.apps.energywrap import energywrap
from repro.apps.task_manager import TaskManager
from repro.sim.process import Fork
from repro.sim.workload import periodic_poller, spinner
from repro.units import KiB, mW

from ..conftest import make_system


class TestIsolationScenario:
    """§6.1 / Figure 9, scaled to 20 s."""

    def test_a_isolated_from_bs_forks(self):
        system = make_system()
        reserve_a = system.powered_reserve(mW(68.5), name="A")
        reserve_b = system.powered_reserve(mW(68.5), name="B")

        def wire(child):
            child_reserve = system.new_reserve(name=child.name)
            system.kernel.create_tap(reserve_b, child_reserve,
                                     mW(68.5) / 4, name=f"{child.name}.in")
            child.thread.set_active_reserve(child_reserve)

        def program_b(ctx):
            yield Fork(spinner(), name="B1", setup=wire)
            yield Fork(spinner(), name="B2", setup=wire)
            yield from spinner()(ctx)

        pa = system.spawn(spinner(), "A", reserve=reserve_a)
        system.spawn(program_b, "B", reserve=reserve_b)
        system.run(20.0)

        # A's share is untouched by B's children.
        a_watts = system.ledger.total_for("A") / 20.0
        assert a_watts == pytest.approx(0.0685, rel=0.03)
        # B subdivided: B1 + B2 + B ~= B's original 68.5 mW.
        b_family = sum(system.ledger.total_for(p)
                       for p in ("B", "B1", "B2")) / 20.0
        assert b_family == pytest.approx(0.0685, rel=0.05)

    def test_sandboxed_hog_cannot_exceed_wrap_rate(self):
        system = make_system()
        victim = energywrap(system, mW(68.5), spinner(), "victim")
        hog = energywrap(system, mW(68.5), spinner(), "hog")

        def fork_bomb(ctx):
            for i in range(5):
                yield Fork(spinner(), name=f"bomb{i}",
                           setup=lambda p: p.thread.set_active_reserve(
                               hog.reserve))
            yield from spinner()(ctx)

        # The bomb's children share the hog's reserve, so the victim
        # keeps its exact share.
        system.spawn(fork_bomb, "bomber", reserve=hog.reserve)
        system.run(20.0)
        victim_watts = victim.reserve.total_consumed / 20.0
        assert victim_watts == pytest.approx(0.0685, rel=0.05)
        hog_watts = hog.reserve.total_consumed / 20.0
        assert hog_watts <= 0.0685 * 1.05


class TestBackgroundScenario:
    """§6.3 / Figure 12, scaled."""

    def test_foreground_switching_moves_the_power(self):
        system = make_system()
        manager = TaskManager(system, foreground_watts=mW(137),
                              background_pool_watts=mW(14))
        pa = system.spawn(spinner(), "A")
        pb = system.spawn(spinner(), "B")
        manager.add_app("A", pa.thread)
        manager.add_app("B", pb.thread)
        manager.schedule_focus(2.0, "A")
        manager.schedule_focus(6.0, None)
        system.run(10.0)
        a_fg = system.ledger.energy_in_window("A", 3.0, 6.0) / 3.0
        a_bg = system.ledger.energy_in_window("A", 7.5, 10.0) / 2.5
        assert a_fg > 0.10           # near-full CPU while focused
        assert a_bg < 0.02           # back to background share


class TestCooperationScenario:
    """§6.4 / Figure 13b, scaled to ~3 minutes."""

    def test_pooling_halves_activations(self):
        coop = make_system(cooperative_netd=True)
        for name, offset in (("mail", 0.0), ("rss", 0.0)):
            reserve = coop.powered_reserve(mW(99), name=name)
            coop.spawn(periodic_poller(name, 60.0, offset,
                                       bytes_in=KiB(30)),
                       name, reserve=reserve)
        coop.run(180.0)

        solo = make_system(unrestricted_netd=True)
        for name, offset in (("mail", 0.0), ("rss", 30.0)):
            solo.spawn(periodic_poller(name, 60.0, offset,
                                       bytes_in=KiB(30)), name)
        solo.run(180.0)

        assert solo.radio.activation_count >= 2 * coop.radio.activation_count
        assert (solo.radio.active_seconds(180.0)
                > 1.3 * coop.radio.active_seconds(180.0))

    def test_cooperative_apps_fire_together(self):
        system = make_system(cooperative_netd=True)
        finish_times = {}

        def tracked(name):
            def program(ctx):
                from repro.sim.process import NetRequest
                yield NetRequest(bytes_out=512, bytes_in=KiB(30),
                                 destination="mail")
                finish_times[name] = ctx.now
            return program

        for name in ("mail", "rss"):
            reserve = system.powered_reserve(mW(99), name=name)
            system.spawn(tracked(name), name, reserve=reserve)
        system.run(120.0)
        assert len(finish_times) == 2
        assert abs(finish_times["mail"] - finish_times["rss"]) < 5.0


class TestHardwareChainScenario:
    """The Figure 16 stack wired into a live system."""

    def test_netd_path_and_hw_path_share_the_radio(self):
        import numpy as np
        from repro.hw.msm7201a import Msm7201a
        from repro.hw.rild import RildDaemon
        from repro.hw.smdd import SmddDaemon

        system = make_system()
        chipset = Msm7201a(
            mailbox=__import__("repro.hw.msm7201a", fromlist=["x"]
                               ).SharedMemoryMailbox(),
            arm9=__import__("repro.hw.msm7201a", fromlist=["x"]
                            ).ClosedArm9(system.radio, system.battery,
                                         lambda: system.clock.now))
        smdd = SmddDaemon(system.kernel, chipset,
                          system.model.cpu_active_watts)
        rild = RildDaemon(system.kernel, smdd,
                          system.model.cpu_active_watts)

        app = system.kernel.create_thread(name="dialer")
        reserve = system.new_reserve(name="dialer.r")
        system.battery_reserve.transfer_to(reserve, 5.0)
        app.set_active_reserve(reserve)
        rild.request(app, {"op": "data_tx", "nbytes": 1500,
                           "npackets": 1})
        # The ARM9 drove the same radio device the engine meters.
        assert system.radio.is_active()
        system.run(25.0)
        assert not system.radio.is_active()  # timeout applied by engine
