"""§9 future work: reserves over non-energy resources.

"Cinder's mechanisms could be repurposed to limit application network
access by replacing the logical battery with a pool of network bytes.
Similarly, reserves could also be used to enforce SMS text message
quotas."
"""

import pytest

from repro.core.decay import DecayPolicy
from repro.core.graph import ResourceGraph
from repro.core.reserve import NETWORK_BYTES, SMS_MESSAGES
from repro.core.tap import TapType
from repro.errors import EnergyError, ReserveEmptyError
from repro.units import MiB


class TestDataPlanQuota:
    def make_plan(self, megabytes=100):
        # The "battery" is the monthly data plan; decay off (bytes
        # don't evaporate).
        graph = ResourceGraph(float(MiB(megabytes)), kind=NETWORK_BYTES,
                              root_name="data-plan",
                              decay=DecayPolicy(enabled=False))
        return graph

    def test_app_byte_quota(self):
        graph = self.make_plan()
        app = graph.create_reserve(name="maps", source=graph.root,
                                   level=float(MiB(10)))
        app.consume(float(MiB(4)))
        assert app.level == pytest.approx(float(MiB(6)))
        with pytest.raises(ReserveEmptyError):
            app.consume(float(MiB(7)))

    def test_rate_limited_byte_allowance(self):
        """A tap meters out the plan: e.g., ~1 MiB per day."""
        graph = self.make_plan()
        app = graph.create_reserve(name="browser")
        per_second = MiB(1) / 86_400.0
        graph.create_tap(graph.root, app, per_second)
        for _ in range(24):
            graph.step(3600.0)
        assert app.level == pytest.approx(float(MiB(1)), rel=1e-6)

    def test_bytes_conserved(self):
        graph = self.make_plan(10)
        app = graph.create_reserve(name="a")
        graph.create_tap(graph.root, app, 1000.0)
        for _ in range(50):
            graph.step(10.0)
            if app.level >= 300.0:
                app.consume(300.0)
        assert abs(graph.conservation_error()) < 1e-6

    def test_energy_and_bytes_never_mix(self):
        plan = self.make_plan()
        energy = ResourceGraph(1000.0)
        with pytest.raises(EnergyError):
            plan.root.transfer_to(energy.root, 10.0)


class TestSmsQuota:
    def test_sms_reserve_blocks_overruns(self):
        graph = ResourceGraph(100.0, kind=SMS_MESSAGES, root_name="plan",
                              decay=DecayPolicy(enabled=False))
        app = graph.create_reserve(name="messenger", source=graph.root,
                                   level=10.0)
        for _ in range(10):
            app.consume(1.0)
        with pytest.raises(ReserveEmptyError):
            app.consume(1.0)
        assert graph.root.level == pytest.approx(90.0)

    def test_subdivided_family_plan(self):
        graph = ResourceGraph(100.0, kind=SMS_MESSAGES, root_name="plan",
                              decay=DecayPolicy(enabled=False))
        parent = graph.create_reserve(name="parent", source=graph.root,
                                      level=50.0)
        kid = parent.subdivide(20.0, name="kid")
        assert parent.level == pytest.approx(30.0)
        kid.consume(20.0)
        with pytest.raises(ReserveEmptyError):
            kid.consume(1.0)
        # The kid running dry does not touch the parent (isolation).
        assert parent.level == pytest.approx(30.0)


class TestMultiGraphKernel:
    def test_kernel_hosts_multiple_resource_kinds(self, kernel):
        plan = ResourceGraph(float(MiB(100)), kind=NETWORK_BYTES,
                             root_name="data-plan",
                             decay=DecayPolicy(enabled=False))
        kernel.add_graph(NETWORK_BYTES, plan)
        app_bytes = kernel.create_reserve(name="app.bytes",
                                          kind=NETWORK_BYTES)
        app_energy = kernel.create_reserve(name="app.energy")
        assert app_bytes.kind == NETWORK_BYTES
        assert app_energy.kind == "energy"
        plan.root.transfer_to(app_bytes, float(MiB(1)))
        assert app_bytes.level == pytest.approx(float(MiB(1)))
