"""Render-path smoke for the viewer figures (10/11).

The full-length runs live in the benchmark suite; this exercises the
figure modules' run()/render() plumbing once each so documentation
regeneration cannot silently rot.
"""

import pytest

from repro.figures import fig10_viewer_noscale, fig11_viewer_scale


@pytest.fixture(scope="module")
def viewer_runs():
    adaptive = fig10_viewer_noscale.run_viewer(adaptive=True, seed=10)
    non_adaptive = fig10_viewer_noscale.run_viewer(adaptive=False,
                                                   seed=10)
    return adaptive, non_adaptive


class TestFig10Render:
    def test_run_and_render(self, viewer_runs):
        _, non_adaptive = viewer_runs
        result = non_adaptive
        result.add("run time", 2500.0, result.runtime_s, "s")
        text = fig10_viewer_noscale.render(result)
        assert "reserve level without application scaling" in text
        assert "per-image downloads" in text
        assert "uJ" in text  # the paper's axis unit

    def test_stall_behavior(self, viewer_runs):
        _, non_adaptive = viewer_runs
        assert non_adaptive.stats.total_stall_seconds > 100.0
        assert non_adaptive.min_reserve_j < 1e-3


class TestFig11Render:
    def test_run_and_render(self, viewer_runs):
        adaptive, non_adaptive = viewer_runs
        result = fig11_viewer_scale.Fig11Result()
        result.adaptive = adaptive
        result.non_adaptive = non_adaptive
        result.speedup = non_adaptive.runtime_s / adaptive.runtime_s
        result.add("speedup", 5.0, result.speedup, "x")
        text = fig11_viewer_scale.render(result)
        assert "with application scaling" in text
        assert "adaptive runtime" in text

    def test_adaptation_claims(self, viewer_runs):
        adaptive, non_adaptive = viewer_runs
        assert non_adaptive.runtime_s > 5.0 * adaptive.runtime_s
        assert adaptive.min_reserve_j > 0.0
        # Quality declines across the first batch.
        first_batch = adaptive.stats.images[:8]
        assert first_batch[-1].quality < first_batch[0].quality
