"""Tests that the paper's design diagrams match what the code wires."""

import pytest

from repro.core.tap import TapType
from repro.figures import diagrams


class TestTopologies:
    def test_figure1_battery_to_browser(self):
        diagram = diagrams.figure1()
        taps = diagram.graph.taps
        assert len(taps) == 1
        assert taps[0].source is diagram.graph.root
        assert taps[0].rate == pytest.approx(0.750)

    def test_figure6a_subdivision_chain(self):
        diagram = diagrams.figure6a()
        graph = diagram.graph
        browser = next(r for r in graph.reserves if r.name == "browser")
        plugin = next(r for r in graph.reserves if r.name == "plugin")
        # battery -> browser -> plugin, strictly chained.
        assert any(t.source is graph.root and t.sink is browser
                   for t in graph.taps)
        assert any(t.source is browser and t.sink is plugin
                   for t in graph.taps)
        assert not any(t.source is graph.root and t.sink is plugin
                       for t in graph.taps)

    def test_figure6b_backward_taps(self):
        diagram = diagrams.figure6b()
        graph = diagram.graph
        browser = next(r for r in graph.reserves if r.name == "browser")
        plugin = next(r for r in graph.reserves if r.name == "plugin")
        assert len(graph.backward_taps_of(browser)) == 1
        assert len(graph.backward_taps_of(plugin)) == 1
        # The documented equilibria fall out when stepped.
        for _ in range(2000):
            graph.step(0.1)
        assert plugin.level == pytest.approx(0.700, rel=0.03)
        assert browser.level == pytest.approx(7.0, rel=0.03)

    def test_figure7_dual_taps_per_app(self):
        diagram = diagrams.figure7()
        graph = diagram.graph
        for name in ("rss", "mail"):
            app = next(r for r in graph.reserves if r.name == name)
            feeders = graph.taps_into(app)
            assert len(feeders) == 2
            sources = {t.source.name for t in feeders}
            assert sources == {"foreground", "background"}

    def test_figure8_contribution_paths(self):
        diagram = diagrams.figure8()
        graph = diagram.graph
        pool = next(r for r in graph.reserves if r.name == "netd.pool")
        assert pool.decay_exempt
        contributors = {t.source.name for t in graph.taps_into(pool)}
        assert contributors == {"mail", "rss"}

    def test_render_all_is_complete(self):
        text = diagrams.render_all()
        for label in ("Figure 1", "Figure 6a", "Figure 6b", "Figure 7",
                      "Figure 8"):
            assert label in text

    def test_dot_output_is_valid_shape(self):
        for builder in diagrams.ALL_DIAGRAMS:
            dot = builder().dot()
            assert dot.startswith("digraph")
            assert dot.rstrip().endswith("}")
