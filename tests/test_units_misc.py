"""Tests for units, errors, workloads, and the figure scaffolding."""

import math

import pytest

from repro import errors, units
from repro.figures.common import (Comparison, FigureResult, ascii_chart,
                                  comparison_table, format_table,
                                  window_mean)
from repro.sim.workload import keepalive_sender, periodic_poller
from repro.units import (KiB, MiB, as_KiB, as_MiB, as_kJ, as_mJ, as_mW,
                         as_uJ, fmt_bytes, fmt_duration, fmt_energy,
                         fmt_power, hours, kJ, mJ, mW, minutes, uJ, uW)


class TestUnitConstructors:
    def test_power_units(self):
        assert mW(137) == pytest.approx(0.137)
        assert uW(500) == pytest.approx(5e-4)
        assert as_mW(0.137) == pytest.approx(137.0)

    def test_energy_units(self):
        assert mJ(700) == pytest.approx(0.7)
        assert uJ(200_000) == pytest.approx(0.2)
        assert kJ(15) == 15_000.0
        assert as_mJ(0.7) == pytest.approx(700.0)
        assert as_uJ(0.2) == pytest.approx(200_000.0)
        assert as_kJ(15_000.0) == pytest.approx(15.0)

    def test_time_units(self):
        assert minutes(10) == 600.0
        assert hours(2) == 7200.0

    def test_byte_units(self):
        assert KiB(1) == 1024
        assert MiB(1) == 1024 * 1024
        assert as_KiB(2048) == pytest.approx(2.0)
        assert as_MiB(MiB(3)) == pytest.approx(3.0)

    def test_roundtrips(self):
        assert as_mW(mW(42.5)) == pytest.approx(42.5)
        assert as_uJ(uJ(123.4)) == pytest.approx(123.4)


class TestFormatters:
    def test_fmt_power_chooses_scale(self):
        assert fmt_power(1.5) == "1.500 W"
        assert fmt_power(0.137) == "137.0 mW"
        assert fmt_power(5e-5) == "50.0 uW"

    def test_fmt_energy_chooses_scale(self):
        assert fmt_energy(15_000) == "15.00 kJ"
        assert fmt_energy(9.5) == "9.50 J"
        assert fmt_energy(0.7) == "700.0 mJ"
        assert fmt_energy(2e-5) == "20.0 uJ"

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(KiB(30)) == "30.0 KiB"
        assert fmt_bytes(MiB(2.5)) == "2.50 MiB"

    def test_fmt_duration(self):
        assert fmt_duration(10.0) == "10.0 s"
        assert fmt_duration(150.0) == "2m30s"
        assert fmt_duration(3725.0) == "1:02:05"


class TestErrorHierarchy:
    def test_everything_is_a_cinder_error(self):
        for name in ("LabelError", "ReserveEmptyError", "TapError",
                     "HoardingError", "SchedulerError", "GateError",
                     "HardwareError", "NetworkError", "SimulationError",
                     "DebtLimitError", "NoSuchObjectError"):
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.CinderError)

    def test_specific_subtyping(self):
        assert issubclass(errors.ReserveEmptyError, errors.EnergyError)
        assert issubclass(errors.DebtLimitError, errors.EnergyError)
        assert issubclass(errors.NoSuchObjectError, errors.ObjectError)


class TestComparison:
    def test_ratio(self):
        comparison = Comparison("x", paper=10.0, measured=12.0)
        assert comparison.ratio == pytest.approx(1.2)

    def test_zero_paper_value(self):
        assert math.isinf(Comparison("x", 0.0, 1.0).ratio)

    def test_table_renders_all_rows(self):
        text = comparison_table([
            Comparison("alpha", 1.0, 1.1, "J"),
            Comparison("beta", 2.0, 1.9, "s"),
        ])
        assert "alpha" in text and "beta" in text
        assert "1.10x" in text and "0.95x" in text

    def test_figure_result_add_and_summary(self):
        result = FigureResult()
        result.add("metric", 1.0, 1.05, "W", note="fine")
        result.notes.append("extra")
        summary = result.summary()
        assert "metric" in summary and "note: extra" in summary


class TestRendering:
    def test_format_table_aligns(self):
        text = format_table(("a", "bee"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("---")

    def test_ascii_chart_contains_points(self):
        chart = ascii_chart([0, 1, 2, 3], [0.0, 1.0, 0.5, 2.0],
                            width=20, height=5, title="t", unit="W")
        assert "t" in chart
        assert "*" in chart

    def test_ascii_chart_empty(self):
        assert "(no data)" in ascii_chart([], [], title="x")

    def test_ascii_chart_constant_series(self):
        chart = ascii_chart([0, 1], [5.0, 5.0])
        assert "*" in chart

    def test_window_mean(self):
        assert window_mean([0, 1, 2, 3], [1, 2, 3, 4], 1.0,
                           3.0) == pytest.approx(2.5)
        assert window_mean([0, 1], [1, 2], 5.0, 6.0) == 0.0


class TestWorkloadFactories:
    def test_periodic_poller_yields_requests_and_sleeps(self):
        from repro.sim.process import NetRequest, SleepUntil

        class FakeCtx:
            now = 0.0

        program = periodic_poller("mail", period_s=10.0, max_polls=2)
        gen = program(FakeCtx())
        first = next(gen)
        assert isinstance(first, NetRequest)
        second = gen.send(None)
        assert isinstance(second, SleepUntil)
        assert second.deadline == pytest.approx(10.0)

    def test_keepalive_sender_single_packets(self):
        from repro.sim.process import NetRequest

        class FakeCtx:
            now = 0.0

        gen = keepalive_sender(interval_s=40.0, nbytes=1, count=1)(FakeCtx())
        request = next(gen)
        assert isinstance(request, NetRequest)
        assert request.packets == 1
        assert request.bytes_out == 1
