"""Tests for the clock and trace recording."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.trace import TimeSeries, TraceRecorder


class TestClock:
    def test_advance(self):
        clock = Clock(tick_s=0.01)
        assert clock.now == 0.0
        clock.advance()
        assert clock.now == pytest.approx(0.01)
        assert clock.ticks == 1

    def test_no_drift_over_long_runs(self):
        clock = Clock(tick_s=0.01)
        for _ in range(100_000):
            clock.advance()
        assert clock.now == pytest.approx(1000.0, abs=1e-9)

    def test_ticks_until(self):
        clock = Clock(tick_s=0.1)
        assert clock.ticks_until(1.0) == 10
        assert clock.ticks_until(-5.0) == 0

    def test_bad_tick_rejected(self):
        with pytest.raises(SimulationError):
            Clock(tick_s=0.0)


class TestTimeSeries:
    def test_append_and_access(self):
        series = TimeSeries("x")
        series.append(0.0, 1.0)
        series.append(1.0, 2.0)
        assert series.last() == 2.0
        assert len(series) == 2

    def test_time_going_backward_rejected(self):
        series = TimeSeries("x")
        series.append(1.0, 0.0)
        with pytest.raises(SimulationError):
            series.append(0.5, 0.0)

    def test_value_at_zero_order_hold(self):
        series = TimeSeries("x")
        series.append(0.0, 1.0)
        series.append(10.0, 2.0)
        assert series.value_at(5.0) == 1.0
        assert series.value_at(10.0) == 2.0

    def test_mean_and_max_between(self):
        series = TimeSeries("x")
        for t, v in [(0, 1.0), (1, 3.0), (2, 5.0)]:
            series.append(t, v)
        assert series.mean_between(0.0, 2.0) == pytest.approx(2.0)
        assert series.max_between(0.0, 3.0) == pytest.approx(5.0)

    def test_min_value(self):
        series = TimeSeries("x")
        series.append(0.0, 5.0)
        series.append(1.0, 2.0)
        assert series.min_value() == 2.0

    def test_integrate(self):
        series = TimeSeries("x")
        series.append(0.0, 1.0)
        series.append(2.0, 1.0)
        assert series.integrate() == pytest.approx(2.0)

    def test_time_above(self):
        series = TimeSeries("x")
        for t, v in [(0, 0.0), (1, 2.0), (3, 0.0), (4, 0.0)]:
            series.append(t, v)
        assert series.time_above(1.0) == pytest.approx(2.0)

    def test_resample_bins(self):
        series = TimeSeries("x")
        for i in range(10):
            series.append(i * 0.1, float(i))
        binned = series.resample(0.5, t_end=1.0)
        assert len(binned) == 2
        assert binned.values[0] == pytest.approx(np.mean([0, 1, 2, 3, 4]))


class TestTraceRecorder:
    def test_named_series(self):
        recorder = TraceRecorder()
        recorder.record("power", 0.0, 1.0)
        assert recorder.has("power")
        assert recorder.names() == ["power"]

    def test_probes_sampled(self):
        recorder = TraceRecorder()
        state = {"level": 5.0}
        recorder.add_probe("reserve", lambda: state["level"])
        recorder.sample_probes(0.0)
        state["level"] = 7.0
        recorder.sample_probes(1.0)
        series = recorder.series("reserve")
        assert list(series.values) == [5.0, 7.0]
