"""FaultPlan: seeded determinism and consume-once semantics.

Chaos runs are only useful if they replay: the same seed and shape
must always produce the same injections, each event must fire exactly
once per run (recovery retries must not re-trip the injection that
killed them), and :meth:`FaultPlan.reset` must rewind the whole plan
for the next identical run.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.faults import (ALL_KINDS, BUILD_KINDS, BUILD_RAISE, CRASH,
                              CORRUPT_DIGEST, DELAY_MSG, DROP_MSG, HANG,
                              HOST_CRASH, NETWORK_KINDS, PARTITION,
                              RUNTIME_KINDS, FaultEvent, FaultPlan)


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(SimulationError):
            FaultEvent(shard=0, barrier=0, kind="meltdown")

    def test_hang_needs_duration(self):
        with pytest.raises(SimulationError):
            FaultEvent(shard=0, barrier=0, kind=HANG)
        FaultEvent(shard=0, barrier=0, kind=HANG, hang_s=5.0)

    def test_kind_partition(self):
        assert RUNTIME_KINDS | BUILD_KINDS | NETWORK_KINDS == ALL_KINDS
        assert not RUNTIME_KINDS & BUILD_KINDS
        assert not RUNTIME_KINDS & NETWORK_KINDS
        assert not BUILD_KINDS & NETWORK_KINDS

    def test_delay_needs_duration(self):
        with pytest.raises(SimulationError):
            FaultEvent(shard=0, barrier=0, kind=DELAY_MSG)
        FaultEvent(shard=0, barrier=0, kind=DELAY_MSG, delay_s=0.25)


class TestSeededPlans:
    def test_same_seed_same_plan(self):
        kwargs = dict(shards=4, barriers=6, crashes=3, hangs=2,
                      corrupt_digests=1, build_raises=1)
        a = FaultPlan.seeded(42, **kwargs)
        b = FaultPlan.seeded(42, **kwargs)
        assert a.events == b.events

    def test_different_seed_different_plan(self):
        kwargs = dict(shards=4, barriers=8, crashes=4, hangs=2)
        a = FaultPlan.seeded(1, **kwargs)
        b = FaultPlan.seeded(2, **kwargs)
        assert a.events != b.events

    def test_runtime_slots_are_distinct(self):
        plan = FaultPlan.seeded(7, shards=3, barriers=4, crashes=5,
                                hangs=4, corrupt_digests=3)
        slots = [(e.shard, e.barrier) for e in plan.events
                 if e.kind in RUNTIME_KINDS]
        assert len(slots) == len(set(slots)) == 12
        assert all(0 <= s < 3 and 0 <= b < 4 for s, b in slots)

    def test_counts_match_request(self):
        plan = FaultPlan.seeded(7, shards=4, barriers=5, crashes=2,
                                hangs=1, corrupt_digests=1,
                                build_raises=2, hang_s=9.0)
        assert plan.count(CRASH) == 2
        assert plan.count(HANG) == 1
        assert plan.count(CORRUPT_DIGEST) == 1
        assert plan.count(BUILD_RAISE) == 2
        assert all(e.hang_s == 9.0 for e in plan.events
                   if e.kind == HANG)

    def test_network_kinds_drawn_from_seed(self):
        kwargs = dict(shards=3, barriers=4, crashes=0, drop_msgs=1,
                      delay_msgs=1, dup_msgs=1, host_crashes=1,
                      partitions=1, delay_s=0.75)
        plan = FaultPlan.seeded(11, **kwargs)
        for kind in (DROP_MSG, DELAY_MSG, HOST_CRASH, PARTITION):
            assert plan.count(kind) == 1
        assert all(e.delay_s == 0.75 for e in plan.events
                   if e.kind == DELAY_MSG)
        assert all(e.delay_s == 0.0 for e in plan.events
                   if e.kind != DELAY_MSG)
        slots = [(e.shard, e.barrier) for e in plan.events]
        assert len(slots) == len(set(slots)) == 5
        assert FaultPlan.seeded(11, **kwargs).events == plan.events

    def test_overfull_plans_refused(self):
        with pytest.raises(SimulationError):
            FaultPlan.seeded(1, shards=2, barriers=2, crashes=5)
        with pytest.raises(SimulationError):
            FaultPlan.seeded(1, shards=2, barriers=2, build_raises=3)


class TestTakeSemantics:
    def test_take_fires_once(self):
        plan = FaultPlan([FaultEvent(shard=1, barrier=2, kind=CRASH)])
        assert plan.take(1, 2) is not None
        # The recovery retry of the same (shard, barrier) submission
        # must not re-trip the injection.
        assert plan.take(1, 2) is None
        assert plan.consumed == 1

    def test_take_matches_shard_and_barrier(self):
        plan = FaultPlan([FaultEvent(shard=1, barrier=2, kind=CRASH)])
        assert plan.take(0, 2) is None
        assert plan.take(1, 1) is None
        assert plan.take(1, 2).kind == CRASH

    def test_take_filters_kinds(self):
        plan = FaultPlan([
            FaultEvent(shard=0, barrier=0, kind=BUILD_RAISE),
            FaultEvent(shard=0, barrier=0, kind=CRASH),
        ])
        # The barrier-run entry point never receives build faults...
        assert plan.take(0, 0, kinds=RUNTIME_KINDS).kind == CRASH
        # ...and the build entry point never receives runtime faults.
        plan.reset()
        assert plan.take(0, 0, kinds=BUILD_KINDS).kind == BUILD_RAISE

    def test_build_faults_ignore_barrier(self):
        plan = FaultPlan([FaultEvent(shard=2, barrier=5,
                                     kind=BUILD_RAISE)])
        assert plan.take(2, 0, kinds=BUILD_KINDS).kind == BUILD_RAISE

    def test_reset_rewinds_everything(self):
        plan = FaultPlan([
            FaultEvent(shard=0, barrier=0, kind=CRASH),
            FaultEvent(shard=1, barrier=1, kind=CORRUPT_DIGEST),
        ])
        assert plan.take(0, 0) is not None
        assert plan.take(1, 1) is not None
        assert not plan.pending()
        plan.reset()
        assert plan.consumed == 0
        assert len(plan.pending()) == 2
        assert plan.take(0, 0).kind == CRASH
