"""Tests for the engine and the process model."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.process import (CpuBurn, Exit, Fork, NetRequest, Sleep,
                               SleepUntil, WaitFor)
from repro.sim.workload import spinner, timed_spinner
from repro.units import mW

from ..conftest import make_system


class TestProcessLifecycle:
    def test_timed_spinner_finishes(self):
        system = make_system()
        reserve = system.powered_reserve(mW(500), name="r")
        process = system.spawn(timed_spinner(0.5), "t", reserve=reserve)
        system.run(2.0)
        assert process.finished
        assert process.thread.cpu_time == pytest.approx(0.5, abs=0.02)

    def test_sleep_costs_no_energy(self):
        system = make_system()
        reserve = system.powered_reserve(mW(10), name="r")

        def sleeper(ctx):
            yield Sleep(1.0)

        system.spawn(sleeper, "s", reserve=reserve)
        system.run(1.5)
        assert reserve.total_consumed == 0.0

    def test_sleep_until_wakes_on_time(self):
        system = make_system()
        woke = {}

        def sleeper(ctx):
            yield SleepUntil(0.5)
            woke["at"] = ctx.now

        system.spawn(sleeper, "s")
        system.run(1.0)
        assert woke["at"] == pytest.approx(0.5, abs=0.03)

    def test_wait_for_predicate(self):
        system = make_system()
        flag = {"go": False}
        woke = {}

        def waiter(ctx):
            yield WaitFor(lambda: flag["go"])
            woke["at"] = ctx.now

        system.spawn(waiter, "w")
        system.schedule_at(0.3, lambda: flag.update(go=True))
        system.run(1.0)
        assert woke["at"] == pytest.approx(0.3, abs=0.03)

    def test_exit_request_terminates(self):
        system = make_system()

        def quitter(ctx):
            yield Exit()
            yield CpuBurn(1.0)  # pragma: no cover - unreachable

        process = system.spawn(quitter, "q")
        system.run(0.1)
        assert process.finished

    def test_bad_yield_raises(self):
        system = make_system()

        def bad(ctx):
            yield "nonsense"

        system.spawn(bad, "b")
        with pytest.raises(SimulationError):
            system.run(0.1)

    def test_fork_spawns_child(self):
        system = make_system()
        reserve = system.powered_reserve(mW(500), name="r")
        seen = {}

        def parent(ctx):
            child = yield Fork(timed_spinner(0.1), name="kid",
                               setup=lambda p: p.thread.set_active_reserve(
                                   reserve))
            seen["child"] = child
            yield Sleep(0.5)

        system.spawn(parent, "p", reserve=reserve)
        system.run(1.0)
        assert seen["child"].name == "kid"
        assert seen["child"].finished


class TestEnergyGating:
    def test_starved_spinner_makes_no_progress(self):
        system = make_system()
        empty = system.new_reserve(name="empty")
        process = system.spawn(spinner(), "hog", reserve=empty)
        system.run(1.0)
        assert process.thread.cpu_time == 0.0

    def test_spinner_duty_cycle_tracks_tap(self):
        system = make_system()
        reserve = system.powered_reserve(mW(68.5), name="half")
        process = system.spawn(spinner(), "app", reserve=reserve)
        system.run(20.0)
        duty = process.thread.cpu_time / 20.0
        assert duty == pytest.approx(0.5, abs=0.02)

    def test_two_spinners_fill_cpu(self):
        system = make_system()
        a = system.spawn(spinner(), "a",
                         reserve=system.powered_reserve(mW(68.5), name="ra"))
        b = system.spawn(spinner(), "b",
                         reserve=system.powered_reserve(mW(68.5), name="rb"))
        system.run(20.0)
        assert system.scheduler.utilization == pytest.approx(1.0, abs=0.02)
        assert a.thread.cpu_time == pytest.approx(b.thread.cpu_time,
                                                  rel=0.05)


class TestPhysicalIntegration:
    def test_meter_sees_idle_baseline(self):
        system = make_system()
        system.run(2.0)
        system.meter.flush()
        assert system.meter.mean_power_between(0, 2.0) == pytest.approx(
            system.model.idle_watts)

    def test_backlight_adds_555mw(self):
        system = make_system(backlight_on=True)
        system.run(2.0)
        system.meter.flush()
        assert system.meter.mean_power_between(0, 2.0) == pytest.approx(
            0.699 + 0.555)

    def test_battery_drains_by_metered_energy(self):
        system = make_system(battery_joules=100.0)
        system.run(10.0)
        expected = 100.0 - system.meter.total_energy_joules
        assert system.battery.charge_joules == pytest.approx(expected)

    def test_logical_graph_conserves_during_runs(self):
        system = make_system()
        system.spawn(spinner(), "a",
                     reserve=system.powered_reserve(mW(68.5), name="r"))
        system.run(10.0)
        assert abs(system.graph.conservation_error()) < 1e-6


class TestSchedulingHelpers:
    def test_schedule_at_runs_in_order(self):
        system = make_system()
        calls = []
        system.schedule_at(0.2, lambda: calls.append("b"))
        system.schedule_at(0.1, lambda: calls.append("a"))
        system.run(0.5)
        assert calls == ["a", "b"]

    def test_schedule_in_past_rejected(self):
        system = make_system()
        system.run(1.0)
        with pytest.raises(SimulationError):
            system.schedule_at(0.5, lambda: None)

    def test_run_until_returns_elapsed(self):
        system = make_system()
        flag = {"done": False}
        system.schedule_at(0.5, lambda: flag.update(done=True))
        elapsed = system.run_until(lambda: flag["done"], max_s=5.0)
        assert elapsed == pytest.approx(0.5, abs=0.05)

    def test_run_until_timeout_raises(self):
        system = make_system()
        with pytest.raises(SimulationError):
            system.run_until(lambda: False, max_s=0.2)

    def test_process_named(self):
        system = make_system()
        system.spawn(spinner(), "findme")
        assert system.process_named("findme").name == "findme"
        with pytest.raises(SimulationError):
            system.process_named("ghost")

    def test_watch_reserve_records_levels(self):
        system = make_system()
        reserve = system.powered_reserve(mW(100), name="r")
        system.watch_reserve(reserve)
        system.run(2.0)
        series = system.trace.series("reserve.r")
        assert len(series) > 5
        assert series.last() == pytest.approx(0.2, rel=0.1)
