"""Fleet-tier parity: batched/sharded Worlds vs the sequential oracle.

The fleet scheduler has three acceleration layers — cached vectorized
horizons, cohort-stacked graph solves, and independent (barrier)
advance / process sharding — and every one of them must be
*semantically invisible*.  These tests pin that on randomized
heterogeneous fleets:

* the cohort-batched lockstep world takes the same macro/tick
  decisions as the PR-2 reference loop (``batched=False``) and
  produces identical events (netd operations, radio activations,
  bit-equal wait seconds and pool levels), identical meter sample
  streams, and levels within the documented span-solver tolerance;
* the independent scheduler (each device on its own horizon between
  clock barriers) matches lockstep per device;
* a process-sharded fleet's digests are bit-identical to the same
  fleet built and run in one process;
* mixed tick grids align on the LCM barrier grid and every device
  matches a solo run of the same system.
"""

from __future__ import annotations

import functools
import random

import numpy as np
import pytest

from repro.core.tap import TapType
from repro.errors import SimulationError
from repro.sim.process import CpuBurn, Sleep
from repro.sim.shards import ShardedWorld
from repro.sim.workload import periodic_poller, poller_shard
from repro.sim.world import World


def napper(period_s: float, burn_s: float):
    def program(ctx):
        while True:
            yield Sleep(period_s)
            yield CpuBurn(burn_s)
    return program


def build_random_fleet(world: World, seed: int, devices: int = 8) -> None:
    """A heterogeneous fleet: pollers, sleepers, chained reserves.

    Drawn deterministically from ``seed`` so two worlds built with
    the same seed carry identical device populations.  Device kinds
    repeat, so cohorts of size >= 2 form alongside singletons — the
    batcher must handle both, plus devices whose chained topology
    routes them through the coupled solver.
    """
    rng = random.Random(seed)
    kinds = [rng.choice(["poller", "sleeper", "chain", "switcher"])
             for _ in range(devices)]
    for i, kind in enumerate(kinds):
        device = world.add_device(name=f"d{i}", record_interval_s=1.0,
                                  decay_enabled=False)
        if kind == "switcher":
            # Piecewise-linear switching material: a drain that clamps
            # mid-run and a reserve repaying out of debt — the stacked
            # span kernel demotes these to the scalar segmented path.
            task = device.new_reserve(name=f"d{i}.task")
            device.battery_reserve.transfer_to(task, 2.0 + 0.5 * i)
            device.kernel.create_tap(device.battery_reserve, task, 0.01,
                                     name=f"d{i}.task.feed")
            archive = device.new_reserve(name=f"d{i}.archive")
            device.kernel.create_tap(task, archive, 0.03,
                                     name=f"d{i}.task.drain")
            debtor = device.new_reserve(name=f"d{i}.debtor")
            device.kernel.create_tap(device.battery_reserve, debtor,
                                     0.02, name=f"d{i}.repay")
            debtor.consume(1.0 + 0.3 * i, allow_debt=True)
            reserve = device.powered_reserve(0.2, name=f"d{i}.maint")
            device.spawn(napper(50.0, 0.02), f"d{i}.maint",
                         reserve=reserve)
        elif kind == "poller":
            watts = rng.choice([0.02, 0.05])
            reserve = device.powered_reserve(watts, name=f"d{i}.net")
            device.spawn(
                periodic_poller("echo", period_s=180.0,
                                start_offset_s=7.0 * i, bytes_out=64,
                                bytes_in=0),
                f"d{i}.poller", reserve=reserve)
        elif kind == "sleeper":
            reserve = device.powered_reserve(0.2, name=f"d{i}.maint")
            device.spawn(napper(45.0, 0.02), f"d{i}.maint",
                         reserve=reserve)
        else:
            app = device.powered_reserve(0.06, name=f"d{i}.app")
            sub = device.new_reserve(name=f"d{i}.sub")
            device.kernel.create_tap(app, sub, 0.05, TapType.PROPORTIONAL,
                                     name=f"d{i}.t1")
            device.kernel.create_tap(sub, device.battery_reserve, 0.04,
                                     TapType.PROPORTIONAL,
                                     name=f"d{i}.t2")
            reserve = device.powered_reserve(0.2, name=f"d{i}.maint")
            device.spawn(napper(60.0, 0.02), f"d{i}.maint",
                         reserve=reserve)


def assert_fleets_match(fast: World, reference: World,
                        exact_pool: bool = True) -> None:
    """Events bit-equal; meters and levels within solver tolerance.

    ``exact_pool=False`` compares pool levels at last-ulp tolerance:
    schedulers that split spans at different instants (independent vs
    lockstep, different barrier spacings) round the diagonal solver's
    ``level + rate * span`` differently per split, so a waiter's
    contribution at a crossing can differ by one ulp even though every
    event lands on the identical tick (the same span-boundary rounding
    the shard-semantics docs note for lockstep shard membership).
    """
    assert len(fast.devices) == len(reference.devices)
    for a, b in zip(fast.devices, reference.devices):
        assert a.clock.ticks == b.clock.ticks
        assert a.radio.activation_count == b.radio.activation_count
        assert a.netd.stats.operations == b.netd.stats.operations
        assert (a.netd.stats.total_wait_seconds
                == b.netd.stats.total_wait_seconds)
        if exact_pool:
            assert a.netd.pool.level == b.netd.pool.level
        else:
            assert a.netd.pool.level == pytest.approx(
                b.netd.pool.level, rel=1e-12, abs=1e-12)
        assert len(a.meter.samples()[0]) == len(b.meter.samples()[0])
        assert a.meter.total_energy_joules == pytest.approx(
            b.meter.total_energy_joules, rel=1e-9)
        assert a.battery.charge_joules == pytest.approx(
            b.battery.charge_joules, rel=1e-9)
        for ra, rb in zip(a.graph.reserves, b.graph.reserves):
            assert ra.level == pytest.approx(rb.level, rel=2e-3,
                                             abs=1e-6)
        assert abs(a.graph.conservation_error()) < 1e-8


class TestBatchedWorldParity:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_cohort_batched_matches_reference_lockstep(self, seed):
        fast = World(tick_s=0.01, seed=seed, batched=True)
        build_random_fleet(fast, seed)
        reference = World(tick_s=0.01, seed=seed, batched=False)
        build_random_fleet(reference, seed)
        fast.run(400.0)
        reference.run(400.0)
        assert_fleets_match(fast, reference)
        # The batched scheduler must actually batch: every iteration's
        # polls would otherwise equal devices * iterations.
        assert fast.cohort_spans > 0
        assert fast.horizon_cache_hits > 0

    @pytest.mark.parametrize("seed", [4, 5])
    def test_independent_scheduler_matches_lockstep(self, seed):
        lockstep = World(tick_s=0.01, seed=seed)
        build_random_fleet(lockstep, seed)
        independent = World(tick_s=0.01, seed=seed)
        build_random_fleet(independent, seed)
        lockstep.run(400.0, independent=False)
        independent.run(400.0, independent=True)
        assert_fleets_match(independent, lockstep, exact_pool=False)
        # barrier_rounds counts actual frontier iterations now (one
        # per popped bucket), not one per barrier chunk.
        assert independent.barrier_rounds > 1
        assert independent.independent_cohort_spans > 0

    def test_switching_cohort_stays_batched(self):
        """A homogeneous cohort whose members all hit a switching
        state: the stacked kernel now carries them across the switch
        itself (the batched segment chain), so nobody demotes to the
        scalar path and nobody degrades to ticking — matching the
        reference loop within figure tolerance."""
        def build(batched):
            world = World(tick_s=0.01, seed=6, batched=batched)
            for i in range(4):
                device = world.add_device(name=f"s{i}",
                                          record_interval_s=1.0,
                                          decay_enabled=False)
                task = device.new_reserve(name="task")
                device.battery_reserve.transfer_to(task, 2.0)
                device.kernel.create_tap(device.battery_reserve, task,
                                         0.01, name="task.feed")
                archive = device.new_reserve(name="archive")
                device.kernel.create_tap(task, archive, 0.03,
                                         name="task.drain")
                reserve = device.powered_reserve(0.2, name="maint")
                device.spawn(napper(40.0, 0.02), "maint",
                             reserve=reserve)
            return world
        fast = build(True)
        reference = build(False)
        fast.run(300.0)       # every task clamps at 100 s
        reference.run(300.0)
        assert_fleets_match(fast, reference)
        assert fast.degraded_spans == 0
        assert fast.cohort_demotions == 0
        assert fast.cohort_spans > 0
        assert fast.span_segments > 0

    def test_independent_with_barriers_matches_single_chunk(self):
        one = World(tick_s=0.01, seed=9)
        build_random_fleet(one, 9)
        many = World(tick_s=0.01, seed=9)
        build_random_fleet(many, 9)
        one.run(300.0, independent=True)
        many.run(300.0, barrier_s=50.0, independent=True)
        # Frontier accounting: at least one round per barrier chunk.
        # Extra barriers cannot *reduce* rounds (a barrier splits a
        # span into landings the single chunk may already have).
        assert many.barrier_rounds >= 6
        assert many.barrier_rounds >= one.barrier_rounds
        assert_fleets_match(many, one, exact_pool=False)


class TestFrontierSchedulerParity:
    """The event-time-bucketed independent scheduler vs its oracle.

    ``independent_cohorts=False`` preserves the plain per-device
    ``device.run(chunk)`` loop; the frontier scheduler must be a pure
    reordering of it — same polls, same spans, same steps per device
    — with only the stacked-vs-scalar solve path differing, which the
    span kernels keep bit-identical per row on diagonal topologies
    and within the documented tolerance on coupled ones.
    """

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_bucketed_matches_per_device_loop(self, seed):
        legacy = World(tick_s=0.01, seed=seed,
                       independent_cohorts=False)
        build_random_fleet(legacy, seed)
        bucketed = World(tick_s=0.01, seed=seed)
        build_random_fleet(bucketed, seed)
        legacy.run(400.0, independent=True)
        bucketed.run(400.0, independent=True)
        assert_fleets_match(bucketed, legacy)
        # The scheduler must actually stack: the random fleet repeats
        # device kinds, so same-shape devices share landing instants.
        assert bucketed.independent_cohort_spans > 0
        assert bucketed.barrier_rounds > 1
        assert legacy.barrier_rounds == 1  # legacy: one per chunk

    @pytest.mark.parametrize("seed", [21, 22])
    def test_staggered_pollers_bit_identical(self, seed):
        """Randomized poll phases, diagonal topologies: every field
        bit-equal — the strongest form of the reordering claim."""
        def build(independent_cohorts):
            world = World(tick_s=0.01, seed=seed,
                          independent_cohorts=independent_cohorts)
            rng = random.Random(seed * 977)
            for i in range(12):
                device = world.add_device(name=f"p{i}",
                                          record_interval_s=5.0,
                                          decay_enabled=False)
                reserve = device.powered_reserve(0.02, name="net")
                device.spawn(
                    periodic_poller(
                        "echo", period_s=120.0,
                        start_offset_s=rng.uniform(0.0, 120.0),
                        bytes_out=64, bytes_in=0),
                    "poller", reserve=reserve)
            return world
        legacy = build(False)
        bucketed = build(True)
        legacy.run(600.0, barrier_s=300.0, independent=True)
        bucketed.run(600.0, barrier_s=300.0, independent=True)
        for a, b in zip(bucketed.devices, legacy.devices):
            assert a.clock.ticks == b.clock.ticks
            assert a.netd.stats.operations == b.netd.stats.operations
            assert (a.netd.stats.total_wait_seconds
                    == b.netd.stats.total_wait_seconds)
            assert a.netd.pool.level == b.netd.pool.level
            assert a.battery.charge_joules == b.battery.charge_joules
            assert np.array_equal(a.meter.samples()[0],
                                  b.meter.samples()[0])
            assert np.array_equal(a.meter.samples()[1],
                                  b.meter.samples()[1])
            for ra, rb in zip(a.graph.reserves, b.graph.reserves):
                assert ra.level == rb.level
        assert bucketed.independent_cohort_spans > 0

    def test_switchers_bucketed_matches_per_device_loop(self):
        """A fleet of switch-bound devices (clamps, debt repayment):
        the stacked segment chain must carry them through the frontier
        scheduler exactly as the scalar loop does."""
        def build(independent_cohorts):
            world = World(tick_s=0.01, seed=33,
                          independent_cohorts=independent_cohorts)
            for i in range(6):
                device = world.add_device(name=f"s{i}",
                                          record_interval_s=1.0,
                                          decay_enabled=False)
                task = device.new_reserve(name="task")
                device.battery_reserve.transfer_to(task, 2.0 + 0.4 * i)
                device.kernel.create_tap(device.battery_reserve, task,
                                         0.01, name="task.feed")
                archive = device.new_reserve(name="archive")
                device.kernel.create_tap(task, archive, 0.03,
                                         name="task.drain")
                reserve = device.powered_reserve(0.2, name="maint")
                device.spawn(napper(40.0 + 3.0 * i, 0.02), "maint",
                             reserve=reserve)
            return world
        legacy = build(False)
        bucketed = build(True)
        legacy.run(300.0, independent=True)
        bucketed.run(300.0, independent=True)
        assert_fleets_match(bucketed, legacy)
        assert bucketed.span_segments > 0
        assert bucketed.degraded_spans == 0

    def test_mixed_grid_cross_cohorts(self):
        """Devices on 10 ms and 20 ms grids whose wakes coincide in
        *time*: nanosecond key quantization must land them in one
        bucket, and the per-device span vector carries their distinct
        tick counts through one stacked solve."""
        def build(independent_cohorts):
            world = World(tick_s=0.01, seed=41,
                          independent_cohorts=independent_cohorts)
            for i in range(6):
                device = world.add_device(name=f"m{i}",
                                          tick_s=0.02 if i % 2 else 0.01,
                                          record_interval_s=1.0,
                                          decay_enabled=False)
                reserve = device.powered_reserve(0.2, name="m")
                device.spawn(napper(30.0, 0.02), "m", reserve=reserve)
            return world
        legacy = build(False)
        bucketed = build(True)
        legacy.run(120.0, barrier_s=60.0)
        bucketed.run(120.0, barrier_s=60.0)
        assert_fleets_match(bucketed, legacy)
        assert bucketed.independent_cohort_spans > 0

    def test_sharded_frontier_digests_bit_identical(self):
        """Different shard partitions change cohort membership but
        must not change any device's trajectory."""
        builder = functools.partial(poller_shard, fleet_size=10,
                                    watts=0.25, period_s=60.0,
                                    stagger_s=13.0, bytes_out=64,
                                    record_interval_s=1.0,
                                    decay_enabled=False)
        inline = ShardedWorld(builder, 10, shards=0, tick_s=0.01,
                              seed=7)
        sharded = ShardedWorld(builder, 10, shards=2, tick_s=0.01,
                               seed=7)
        a = inline.run(180.0, barrier_s=60.0)
        b = sharded.run(180.0, barrier_s=60.0)
        assert a.digest() == b.digest()
        for x, y in zip(a.digests, b.digests):
            assert x == y
        # Both executions ran the frontier scheduler and stacked work.
        assert a.independent_cohort_spans > 0
        assert b.independent_cohort_spans > 0
        assert a.independent_rounds > 1
        assert b.independent_rounds > 1


class TestMixedTickGrids:
    def test_lcm_alignment_and_solo_parity(self):
        world = World(tick_s=0.01, seed=2)
        slow_dev = world.add_device(name="slow", tick_s=0.02,
                                    record_interval_s=1.0,
                                    decay_enabled=False)
        fast_dev = world.add_device(name="fast", tick_s=0.01,
                                    record_interval_s=1.0,
                                    decay_enabled=False)
        for device in (slow_dev, fast_dev):
            reserve = device.powered_reserve(0.2, name="m")
            device.spawn(napper(30.0, 0.02), "m", reserve=reserve)
        assert world.barrier_period() == pytest.approx(0.02)
        assert not world.uniform_grid()
        world.run(120.0, barrier_s=60.0)
        assert slow_dev.clock.now == pytest.approx(120.0)
        assert fast_dev.clock.now == pytest.approx(120.0)
        assert slow_dev.clock.ticks == 6000
        assert fast_dev.clock.ticks == 12000

        # Each device is sample-identical to a solo system with the
        # same construction (no cross-device coupling exists).
        from repro.sim.engine import CinderSystem
        solo = CinderSystem(tick_s=0.02, seed=world.seed,
                            record_interval_s=1.0, decay_enabled=False)
        reserve = solo.powered_reserve(0.2, name="m")
        solo.spawn(napper(30.0, 0.02), "m", reserve=reserve)
        solo.run(120.0)
        assert np.array_equal(slow_dev.meter.samples()[0],
                              solo.meter.samples()[0])
        assert np.array_equal(slow_dev.meter.samples()[1],
                              solo.meter.samples()[1])
        assert slow_dev.battery.charge_joules == solo.battery.charge_joules

    def test_off_grid_duration_rejected(self):
        world = World(tick_s=0.01)
        world.add_device(tick_s=0.02)
        world.add_device(tick_s=0.03)
        assert world.barrier_period() == pytest.approx(0.06)
        with pytest.raises(SimulationError):
            world.run(0.05)  # not on the 0.06 s LCM grid
        with pytest.raises(SimulationError):
            world.run(0.12, barrier_s=0.05)
        with pytest.raises(SimulationError):
            world.run(1.2, independent=False)  # lockstep needs uniform
        with pytest.raises(SimulationError):
            world.run_until(lambda: True)

    def test_late_joiner_rejected(self):
        world = World(tick_s=0.01)
        world.add_device()
        world.run(1.0)
        with pytest.raises(SimulationError):
            world.add_device()  # fleet already advanced past t=0


class TestShardedWorldParity:
    def _builder(self, count):
        return functools.partial(poller_shard, fleet_size=count,
                                 watts=0.25, period_s=60.0, bytes_out=64,
                                 record_interval_s=1.0,
                                 decay_enabled=False)

    def test_sharded_digests_bit_identical_to_inline(self):
        count = 10
        inline = ShardedWorld(self._builder(count), count, shards=0,
                              tick_s=0.01, seed=7)
        sharded = ShardedWorld(self._builder(count), count, shards=2,
                               tick_s=0.01, seed=7)
        a = inline.run(180.0, barrier_s=60.0)
        b = sharded.run(180.0, barrier_s=60.0)
        da, db = a.digests, b.digests
        assert len(da) == len(db) == count
        assert a.total_radio_activations() > 0
        for x, y in zip(da, db):
            assert x == y  # dataclass equality: every field bit-equal
        assert b.worst_conservation_error() < 1e-8

    def test_partitions_cover_range(self):
        fleet = ShardedWorld(self._builder(11), 11, shards=3)
        ranges = fleet.partitions()
        assert ranges[0][0] == 0 and ranges[-1][1] == 11
        assert all(lo < hi for lo, hi in ranges)
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1
