"""Socketed chaos: network faults recover bit-identically, cross-host.

The acceptance contract for the distributed fault ladder:

* a socketed fleet under each network fault kind (``drop_msg``,
  ``delay_msg``, ``dup_msg``, ``host_crash``, ``partition``) finishes
  with a :meth:`FleetReport.digest` **bit-identical** to the
  fault-free run, under several distinct ``(fleet seed, fault seed)``
  pairs;
* a host loss *reschedules* the lost shards onto a surviving host —
  ``degraded_shards == []`` and ``shard_reschedules >= 1`` — and
  inline demotion in the parent happens only when **no** healthy host
  remains;
* a partitioned daemon survives until teardown forcibly terminates
  it (counted in ``forced_terminations``);
* chaos runs replay: the same pair twice gives identical digests and
  identical recovery telemetry.

Message-loss faults are only detectable by deadline, so every fleet
here sets ``barrier_timeout_s``; host losses are detected faster than
that through the heartbeat probes.
"""

from __future__ import annotations

import functools
import multiprocessing

import pytest

from repro.sim.faults import (DELAY_MSG, DROP_MSG, DUP_MSG, HOST_CRASH,
                              PARTITION, FaultEvent, FaultPlan)
from repro.sim.shards import ShardedWorld
from repro.sim.workload import poller_shard

#: Fleet shape shared by every run: small enough for wall-clock
#: sanity, long enough for three barriers (so barrier-1 faults leave
#: a checkpoint behind and work after recovery).
COUNT = 6
DURATION_S = 90.0
BARRIER_S = 30.0
BARRIERS = 3

#: The acceptance pairs: three distinct (fleet seed, fault seed).
PAIRS = [(7, 101), (11, 202), (23, 303)]


def _builder(count: int):
    return functools.partial(poller_shard, fleet_size=count, watts=0.25,
                             period_s=60.0, bytes_out=64,
                             record_interval_s=1.0, decay_enabled=False)


def _fleet(fleet_seed: int, shards: int = 2, hosts: int = 2,
           **kwargs) -> ShardedWorld:
    kwargs.setdefault("barrier_timeout_s", 15.0)
    kwargs.setdefault("retry_backoff_s", 0.01)
    kwargs.setdefault("heartbeat_s", 0.2)
    return ShardedWorld(_builder(COUNT), COUNT, shards=shards,
                        transport="sockets", hosts=hosts,
                        tick_s=0.01, seed=fleet_seed, **kwargs)


def _seeded_plan(fault_seed: int, kind: str) -> FaultPlan:
    counts = {DROP_MSG: "drop_msgs", DELAY_MSG: "delay_msgs",
              DUP_MSG: "dup_msgs", HOST_CRASH: "host_crashes",
              PARTITION: "partitions"}
    return FaultPlan.seeded(fault_seed, shards=2, barriers=BARRIERS,
                            crashes=0, delay_s=0.3,
                            **{counts[kind]: 1})


def _assert_no_leaked_processes():
    leaked = multiprocessing.active_children()
    assert not leaked, f"leaked host daemons: {leaked}"


@pytest.fixture(scope="module")
def clean_digest():
    """Per-fleet-seed fault-free digests, from the inline oracle."""
    cache = {}

    def get(fleet_seed: int) -> str:
        if fleet_seed not in cache:
            world = ShardedWorld(_builder(COUNT), COUNT, shards=0,
                                 tick_s=0.01, seed=fleet_seed)
            cache[fleet_seed] = world.run(DURATION_S,
                                          barrier_s=BARRIER_S).digest()
        return cache[fleet_seed]

    return get


class TestNetworkFaultBitIdentity:
    @pytest.mark.parametrize("fleet_seed,fault_seed", PAIRS)
    @pytest.mark.parametrize("kind", [DROP_MSG, DELAY_MSG, DUP_MSG,
                                      HOST_CRASH, PARTITION])
    def test_fault_kind_recovers_bit_identically(self, kind, fleet_seed,
                                                 fault_seed,
                                                 clean_digest):
        plan = _seeded_plan(fault_seed, kind)
        report = _fleet(fleet_seed, fault_plan=plan).run(
            DURATION_S, barrier_s=BARRIER_S)
        assert report.digest() == clean_digest(fleet_seed), \
            f"{kind} (fleet {fleet_seed}, fault {fault_seed})"
        assert plan.consumed == 1
        assert report.transport == "sockets"
        # Two healthy hosts means no fault here ever needs the
        # parent: degradation is reserved for zero healthy hosts.
        assert not report.degraded_shards
        if kind in (HOST_CRASH, PARTITION):
            assert report.shard_reschedules >= 1
            assert report.host_failures
        _assert_no_leaked_processes()


class TestCrossHostRescheduling:
    def test_host_loss_reschedules_onto_survivor(self, clean_digest):
        # Host 1 dies at barrier 1; its shard must finish on host 0
        # with no inline degradation — the acceptance run.
        plan = FaultPlan([FaultEvent(shard=1, barrier=1,
                                     kind=HOST_CRASH)])
        report = _fleet(7, fault_plan=plan).run(DURATION_S,
                                                barrier_s=BARRIER_S)
        assert report.digest() == clean_digest(7)
        assert report.degraded_shards == []
        assert report.shard_reschedules >= 1
        assert report.host_failures
        # The placement map records the move to the surviving host.
        assert report.placement[1] == 0
        assert report.placement[0] == 0
        reschedules = [e for e in report.recovery_events
                       if e.rung == "reschedule"]
        assert reschedules
        assert all(e.host == 0 for e in reschedules)
        # Host losses are mandatory moves: no retry budget consumed.
        assert all(e.attempt == 0 for e in reschedules)
        _assert_no_leaked_processes()

    def test_partition_forces_termination_at_teardown(self,
                                                      clean_digest):
        plan = FaultPlan([FaultEvent(shard=0, barrier=1,
                                     kind=PARTITION)])
        report = _fleet(7, fault_plan=plan).run(DURATION_S,
                                                barrier_s=BARRIER_S)
        assert report.digest() == clean_digest(7)
        assert report.degraded_shards == []
        assert report.shard_reschedules >= 1
        # The partitioned daemon was alive-but-unreachable until the
        # teardown drain gave up and terminated it.
        assert report.forced_terminations >= 1
        assert any("partitioned" in line for line in report.host_failures)
        _assert_no_leaked_processes()

    def test_zero_healthy_hosts_demotes_inline(self, clean_digest):
        # One host, and it crashes: the *only* situation in which the
        # socketed ladder falls back to inline execution.
        plan = FaultPlan([FaultEvent(shard=0, barrier=1,
                                     kind=HOST_CRASH)])
        report = _fleet(7, hosts=1, fault_plan=plan).run(
            DURATION_S, barrier_s=BARRIER_S)
        assert report.digest() == clean_digest(7)
        assert sorted(report.degraded_shards) == [0, 1]
        assert report.shard_reschedules == 0
        assert [e.rung for e in report.recovery_events
                if e.shard == 0] == ["inline"]
        _assert_no_leaked_processes()

    def test_chaos_run_is_reproducible(self, clean_digest):
        plan = FaultPlan.seeded(101, shards=2, barriers=BARRIERS,
                                crashes=0, host_crashes=1)
        fleet = _fleet(7, fault_plan=plan)
        first = fleet.run(DURATION_S, barrier_s=BARRIER_S)
        second = fleet.run(DURATION_S, barrier_s=BARRIER_S)
        assert first.digest() == second.digest() == clean_digest(7)
        assert first.shard_reschedules == second.shard_reschedules
        assert first.host_failures == second.host_failures
        assert ([ (e.shard, e.barrier, e.rung, e.host)
                  for e in first.recovery_events ]
                == [ (e.shard, e.barrier, e.rung, e.host)
                     for e in second.recovery_events ])
        _assert_no_leaked_processes()


class TestSocketedFleetBasics:
    def test_fault_free_run_matches_inline_oracle(self, clean_digest):
        report = _fleet(7).run(DURATION_S, barrier_s=BARRIER_S)
        assert report.digest() == clean_digest(7)
        assert report.transport == "sockets"
        assert report.hosts == 2
        assert report.placement == {0: 0, 1: 1}
        assert report.shard_reschedules == 0
        assert report.forced_terminations == 0
        assert not report.recovery_events
        _assert_no_leaked_processes()

    def test_knob_validation(self):
        with pytest.raises(Exception):
            ShardedWorld(_builder(4), 4, shards=2, transport="carrier-pigeon")
        with pytest.raises(Exception):
            ShardedWorld(_builder(4), 4, shards=2, hosts=2)  # processes
        with pytest.raises(Exception):
            ShardedWorld(_builder(4), 4, shards=2,
                         transport="sockets", hosts=0)
        with pytest.raises(Exception):
            ShardedWorld(_builder(4), 4, shards=2, heartbeat_s=0.0)
        with pytest.raises(Exception):
            ShardedWorld(_builder(4), 4, shards=2, drain_timeout_s=0.0)
