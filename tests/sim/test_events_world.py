"""The event-source runtime: pooled-netd fast-forward and Worlds.

Three contracts are pinned here:

* **Pooled-wait equivalence** — a netd keepalive/poller workload whose
  threads block in the §5.5.2 pooled path must produce *bit-identical
  event timing* (radio activations, wait seconds, pool level, trace
  sample streams) with ``fast_forward=True`` and ``False``; the
  fast-forwarded run must actually macro-step through the waits.
* **World parity** — a one-device :class:`~repro.sim.world.World` is
  sample-for-sample identical to a bare ``CinderSystem`` running the
  same workload.
* **Event-source devices** — a power-only device no longer vetoes
  fast-forward, a legacy stepper still does, and a custom
  ``EventSource`` bounds spans at its declared events.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy.meter import PowerMeter
from repro.sim.engine import CinderSystem
from repro.sim.events import EventSource, PeriodicSource
from repro.sim.process import CpuBurn, Sleep
from repro.sim.workload import fleet_of_pollers, periodic_poller
from repro.sim.world import World

from ..conftest import make_system


def poller_system(fast_forward: bool, decay: bool = False,
                  watts: float = 0.015, period_s: float = 600.0,
                  polls: int = 3, seed: int = 3) -> CinderSystem:
    """A device whose poller always waits in the pooled netd path.

    The tap is far too small to prepay an activation (9.5 J at 15 mW
    is ~10 minutes of accrual), so every poll blocks on
    ``required_energy`` and the engine must fast-forward *through* the
    wait to macro-step at all.
    """
    system = CinderSystem(battery_joules=15_000.0, tick_s=0.01, seed=seed,
                          record_interval_s=1.0, decay_enabled=decay,
                          fast_forward=fast_forward)
    reserve = system.powered_reserve(watts, name="poller")
    system.spawn(periodic_poller("echo", period_s=period_s, bytes_out=64,
                                 bytes_in=0, max_polls=polls),
                 "poller", reserve=reserve)
    return system


class TestPooledNetdFastForward:
    @pytest.fixture(scope="class")
    def runs(self):
        fast = poller_system(True)
        slow = poller_system(False)
        fast.run(3600.0)
        slow.run(3600.0)
        return fast, slow

    def test_macro_steps_through_pooled_waits(self, runs):
        fast, slow = runs
        # The poller spends most of the hour blocked inside netd; if
        # pooled waits still vetoed fast-forward the skipped-tick count
        # would be a tiny fraction of the run.
        assert fast.fast_forwarded_ticks > 300_000
        assert slow.fast_forwarded_ticks == 0
        assert fast.clock.ticks == slow.clock.ticks

    def test_event_timing_bit_identical(self, runs):
        fast, slow = runs
        assert fast.radio.activation_count == slow.radio.activation_count
        assert fast.netd.stats.operations == slow.netd.stats.operations
        assert (fast.netd.stats.radio_activations_requested
                == slow.netd.stats.radio_activations_requested)
        # Wait times are sums of exact tick instants: bit-identical.
        assert (fast.netd.stats.total_wait_seconds
                == slow.netd.stats.total_wait_seconds)

    def test_pool_trajectory_bit_identical(self, runs):
        fast, slow = runs
        assert fast.netd.pool.level == slow.netd.pool.level
        assert fast.netd.stats.total_billed_joules == pytest.approx(
            slow.netd.stats.total_billed_joules, rel=1e-12)
        assert fast.netd.stats.total_pool_contributions == pytest.approx(
            slow.netd.stats.total_pool_contributions, rel=1e-9)

    def test_traces_and_battery_match(self, runs):
        fast, slow = runs
        for name in ("power.system", "power.radio"):
            fast_series = fast.trace.series(name)
            slow_series = slow.trace.series(name)
            assert np.array_equal(fast_series.times, slow_series.times)
            assert np.array_equal(fast_series.values, slow_series.values)
        assert fast.battery.charge_joules == pytest.approx(
            slow.battery.charge_joules, rel=1e-9)
        assert fast.meter.total_energy_joules == pytest.approx(
            slow.meter.total_energy_joules, rel=1e-9)
        assert len(fast.meter.samples()[0]) == len(slow.meter.samples()[0])

    def test_conservation_holds(self, runs):
        fast, _ = runs
        assert fast.graph.conservation_error() == pytest.approx(0.0,
                                                                abs=1e-6)

    def test_decaying_pooled_wait_keeps_event_counts(self):
        """With decay on, sleep spans integrate the continuous ODE, so
        levels differ by O(tick) — but event *counts* and conservation
        must still agree between the two modes."""
        fast = poller_system(True, decay=True)
        slow = poller_system(False, decay=True)
        fast.run(3600.0)
        slow.run(3600.0)
        assert fast.fast_forwarded_ticks > 300_000
        assert fast.radio.activation_count == slow.radio.activation_count
        assert fast.netd.stats.operations == slow.netd.stats.operations
        assert fast.netd.stats.total_wait_seconds == pytest.approx(
            slow.netd.stats.total_wait_seconds, abs=1.0)
        assert fast.graph.conservation_error() == pytest.approx(0.0,
                                                                abs=1e-6)

    def test_non_canonical_reserve_falls_back_to_ticking(self):
        """A waiter reserve with a second feed tap has no closed form:
        the daemon must refuse quiescence during the wait (ticking is
        always correct) rather than replay a wrong trajectory."""
        systems = []
        for fast_forward in (True, False):
            system = poller_system(fast_forward, watts=0.008,
                                   period_s=1200.0, polls=1)
            side = system.new_reserve(name="side")
            system.kernel.create_tap(system.battery_reserve, side, 0.004,
                                     name="side.in")
            # Second feed into the poller's reserve: non-canonical.
            poller_reserve = system.processes[0].thread.active_reserve
            system.kernel.create_tap(side, poller_reserve, 0.002,
                                     name="side.out")
            system.run(1500.0)
            systems.append(system)
        fast, slow = systems
        assert fast.radio.activation_count == slow.radio.activation_count
        assert (fast.netd.stats.total_wait_seconds
                == slow.netd.stats.total_wait_seconds)


class TestRunUntilFastForwards:
    def test_run_until_macro_steps_and_matches_ticking(self):
        def napper(ctx):
            yield Sleep(300.0)
            yield CpuBurn(0.05)

        elapsed = {}
        for key, fast_forward in (("fast", True), ("slow", False)):
            system = make_system(fast_forward=fast_forward,
                                 record_interval_s=1.0)
            reserve = system.powered_reserve(0.2, name="n")
            process = system.spawn(napper, "n", reserve=reserve)
            elapsed[key] = system.run_until(lambda: process.finished,
                                            max_s=1000.0)
            if fast_forward:
                assert system.fast_forwarded_ticks > 10_000
        assert elapsed["fast"] == elapsed["slow"]

    def test_run_until_timeout_still_raises(self):
        from repro.errors import SimulationError
        system = make_system(fast_forward=True)
        with pytest.raises(SimulationError):
            system.run_until(lambda: False, max_s=0.5)


class TestWorld:
    def workload(self, system: CinderSystem) -> None:
        reserve = system.powered_reserve(0.02, name="p")
        system.spawn(periodic_poller("echo", period_s=120.0, bytes_out=64,
                                     bytes_in=0, max_polls=3),
                     "p", reserve=reserve)

    def test_single_device_world_matches_bare_system(self):
        world = World(tick_s=0.01, seed=5)
        device = world.add_device(name="solo", seed=5,
                                  record_interval_s=0.5)
        self.workload(device)
        world.run(600.0)

        bare = CinderSystem(seed=5, record_interval_s=0.5)
        self.workload(bare)
        bare.run(600.0)

        assert device.clock.ticks == bare.clock.ticks
        assert device.fast_forwarded_ticks == bare.fast_forwarded_ticks
        assert np.array_equal(device.meter.samples()[0],
                              bare.meter.samples()[0])
        assert np.array_equal(device.meter.samples()[1],
                              bare.meter.samples()[1])
        assert device.battery.charge_joules == bare.battery.charge_joules
        assert device.netd.pool.level == bare.netd.pool.level
        for name in ("power.system", "power.radio"):
            assert np.array_equal(device.trace.series(name).values,
                                  bare.trace.series(name).values)

    def test_fleet_stays_aligned_and_conserves(self):
        world = World(tick_s=0.01, seed=1)
        fleet = fleet_of_pollers(world, 8, watts=0.02, period_s=120.0,
                                 bytes_out=64, record_interval_s=1.0)
        world.run(600.0)
        assert len(world.devices) == 8
        assert all(d.clock.ticks == world.ticks for d in world.devices)
        assert world.fast_forwarded_ticks > 0
        assert world.conservation_error() < 1e-6
        # Staggered pollers: at least one device actually transmitted.
        assert world.total_radio_activations() > 0
        assert all(device.netd.stats.operations > 0
                   for device, _ in fleet)

    def test_world_run_until_checks_at_horizons(self):
        world = World(tick_s=0.01, seed=2)
        device = world.add_device(record_interval_s=1.0)
        reserve = device.powered_reserve(0.2, name="n")

        def napper(ctx):
            yield Sleep(200.0)

        process = device.spawn(napper, "n", reserve=reserve)
        elapsed = world.run_until(lambda: process.finished, max_s=600.0)
        assert elapsed == pytest.approx(200.02, abs=0.05)
        assert world.fast_forwarded_ticks > 0

    def test_misaligned_device_rejected(self):
        from repro.errors import SimulationError
        world = World(tick_s=0.01)
        world.add_device()
        world.run(1.0)
        with pytest.raises(SimulationError):
            world.add_device()  # fleet already ticked
        with pytest.raises(SimulationError):
            world.add_device(tick_s=0.02)


class TestDeviceEventSources:
    def test_power_only_device_no_longer_vetoes(self):
        fast, slow = (make_system(fast_forward=ff, record_interval_s=1.0)
                      for ff in (True, False))
        for system in (fast, slow):
            system.powered_reserve(0.05, name="app")
            system.add_device(power=lambda now: 0.125)
            system.run(120.0)
        assert fast.fast_forwarded_ticks > 0
        assert fast.meter.total_energy_joules == pytest.approx(
            slow.meter.total_energy_joules, rel=1e-9)
        assert len(fast.meter.samples()[0]) == len(slow.meter.samples()[0])

    def test_legacy_stepper_still_vetoes(self):
        system = make_system(fast_forward=True)
        system.add_device(stepper=lambda now: None)
        system.run(5.0)
        assert system.fast_forwarded_ticks == 0

    def test_custom_source_bounds_spans(self):
        """A periodic source's beats become engine landing ticks."""
        seen = []

        class Beat(EventSource):
            name = "beat"

            def __init__(self):
                self.period = PeriodicSource(7.0)

            def quiescent(self, now):
                return True

            def next_event(self, now):
                return self.period.next_event(now)

        system = make_system(fast_forward=True, record_interval_s=100.0)
        system.add_device(stepper=lambda now: seen.append(now),
                          source=Beat())
        system.run(30.0)
        assert system.fast_forwarded_ticks > 0
        # The stepper ran on every landing tick, including each beat.
        beats = [t for t in (7.0, 14.0, 21.0, 28.0)
                 if any(abs(t - s) < 1e-9 for s in seen)]
        assert len(beats) == 4


class TestMeterVectorizedFeed:
    @pytest.mark.parametrize("noise", [0.0, 0.03])
    def test_bulk_feed_matches_reference_bit_for_bit(self, noise):
        vec = PowerMeter(noise_fraction=noise,
                         rng=np.random.default_rng(11))
        ref = PowerMeter(noise_fraction=noise,
                         rng=np.random.default_rng(11))
        rng = np.random.default_rng(7)
        for _ in range(300):
            watts = float(rng.uniform(0.0, 3.0))
            dt = float(rng.choice([0.01, 0.07, 0.2, 1.0, 3.6,
                                   123.4567, 7200.0]))
            vec.feed(watts, dt)
            ref._feed_reference(watts, dt)
        assert np.array_equal(vec.samples()[0], ref.samples()[0])
        assert np.array_equal(vec.samples()[1], ref.samples()[1])
        assert vec._sample_windows == ref._sample_windows
        assert vec.total_energy_joules == ref.total_energy_joules
        assert vec._now == ref._now
        assert vec._window_time == ref._window_time
        assert vec._window_energy == ref._window_energy

    def test_partial_window_then_bulk(self):
        vec = PowerMeter()
        ref = PowerMeter()
        for meter, feed in ((vec, vec.feed), (ref, ref._feed_reference)):
            feed(1.0, 0.13)     # partial window open
            feed(2.0, 600.0)    # drain + 2999-ish whole windows
            feed(0.5, 0.05)
        assert np.array_equal(vec.samples()[0], ref.samples()[0])
        assert np.array_equal(vec.samples()[1], ref.samples()[1])
