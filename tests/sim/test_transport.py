"""Socket transport units: framing, deadlines, backoff, seq dedup, hostd.

The wire-level contracts under the socketed ``ShardedWorld``: one
length-prefixed pickle frame per message, per-message deadlines that
surface as :class:`TransportTimeout`, a bounded exponential-backoff
dial that gives up with :class:`HostUnreachable`, sequence numbers
that silently absorb duplicated/stale replies, and a shard-host
daemon that serves the build/run/finish verbs and tears down cleanly.
"""

from __future__ import annotations

import functools
import socket
import threading

import pytest

from repro.errors import HostUnreachable, TransportError, TransportTimeout
from repro.sim import transport
from repro.sim.hostd import HostHandle
from repro.sim.shards import ShardReport
from repro.sim.workload import poller_shard


def _pair():
    a, b = socket.socketpair()
    return a, b


class TestFraming:
    def test_round_trip(self):
        a, b = _pair()
        try:
            payload = {"verb": "run", "seq": 3, "chunks": [1.0, 2.0]}
            transport.send_msg(a, payload)
            assert transport.recv_msg(b, timeout_s=2.0) == payload
        finally:
            a.close(), b.close()

    def test_several_frames_stay_separate(self):
        a, b = _pair()
        try:
            for n in range(5):
                transport.send_msg(a, {"n": n})
            for n in range(5):
                assert transport.recv_msg(b, timeout_s=2.0) == {"n": n}
        finally:
            a.close(), b.close()

    def test_recv_deadline_raises_transport_timeout(self):
        a, b = _pair()
        try:
            with pytest.raises(TransportTimeout):
                transport.recv_msg(b, timeout_s=0.05)
        finally:
            a.close(), b.close()

    def test_peer_close_midframe_raises(self):
        a, b = _pair()
        try:
            a.sendall(b"\x00\x00\x00\x00\x00\x00\x00\x10half")
            a.close()
            with pytest.raises(TransportError):
                transport.recv_msg(b, timeout_s=2.0)
        finally:
            b.close()

    def test_corrupt_length_prefix_refused(self):
        a, b = _pair()
        try:
            a.sendall(b"\xff" * 8)  # claims ~2**64 bytes
            with pytest.raises(TransportError):
                transport.recv_msg(b, timeout_s=2.0)
        finally:
            a.close(), b.close()


class TestConnectBackoff:
    def test_unreachable_after_bounded_attempts(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(transport.time, "sleep", sleeps.append)
        # A port nothing listens on: grab one, then close it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(HostUnreachable):
            transport.connect(("127.0.0.1", port), attempts=4,
                              backoff_s=0.05)
        # Exponential schedule between attempts (none after the last).
        assert sleeps == [0.05, 0.1, 0.2]

    def test_gate_short_circuits_the_dial(self):
        def gate():
            raise HostUnreachable("partitioned")
        with pytest.raises(HostUnreachable, match="partitioned"):
            transport.connect(("127.0.0.1", 1), attempts=5, gate=gate)


def _scripted_server(replies):
    """A one-connection server that answers each request from a script.

    Each script entry is a list of reply dicts sent for that request
    (empty list = drop the reply).  Returns (address, thread).
    """
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)

    def serve():
        conn, _ = listener.accept()
        try:
            for batch in replies:
                msg = transport.recv_msg(conn, timeout_s=5.0)
                for reply in batch:
                    out = dict(reply)
                    out.setdefault("seq", msg["seq"])
                    transport.send_msg(conn, out)
            # Script exhausted: hold the connection open (a dropped
            # reply is a silence, not a hangup) until the client goes.
            while True:
                transport.recv_msg(conn, timeout_s=30.0)
        except TransportError:
            pass
        finally:
            conn.close()
            listener.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return listener.getsockname(), thread


class TestSlotClient:
    def test_duplicated_reply_is_discarded(self):
        address, thread = _scripted_server([
            [{"ok": True, "result": "a"}, {"ok": True, "result": "a"}],
            [{"ok": True, "result": "b"}],
        ])
        client = transport.SlotClient(address, slot=0)
        try:
            # The duplicate of "a" is stale by the time "b" is pending
            # and must be skipped, not returned as "b"'s answer.
            assert client.call("x", timeout_s=5.0) == "a"
            assert client.call("x", timeout_s=5.0) == "b"
        finally:
            client.close()
        thread.join(timeout=5.0)

    def test_remote_error_raises_transport_error(self):
        address, thread = _scripted_server([
            [{"ok": False, "kind": "ShardFailure", "error": "boom"}],
        ])
        client = transport.SlotClient(address, slot=3)
        try:
            with pytest.raises(TransportError, match="boom"):
                client.call("x", timeout_s=5.0)
        finally:
            client.close()
        thread.join(timeout=5.0)

    def test_missing_reply_times_out(self):
        address, thread = _scripted_server([[]])
        client = transport.SlotClient(address, slot=0)
        try:
            with pytest.raises(TransportTimeout):
                client.call("x", timeout_s=0.2)
        finally:
            client.close()
        thread.join(timeout=5.0)

    def test_probe_failure_preempts_the_deadline(self):
        address, thread = _scripted_server([[]])
        client = transport.SlotClient(address, slot=0)
        probes = []

        def probe():
            probes.append(1)
            raise HostUnreachable("host died")

        try:
            with pytest.raises(HostUnreachable):
                # The 30 s deadline never expires: the heartbeat probe
                # (every 50 ms) reports the host dead long before.
                client.call("x", timeout_s=30.0, probe=probe,
                            probe_interval_s=0.05)
        finally:
            client.close()
        assert probes
        thread.join(timeout=5.0)


class TestHostDaemon:
    def test_spawn_serve_verbs_and_graceful_stop(self):
        host = HostHandle(0)
        host.spawn()
        try:
            assert host.usable()
            builder = functools.partial(
                poller_shard, fleet_size=4, watts=0.25, period_s=60.0,
                bytes_out=64, record_interval_s=1.0,
                decay_enabled=False)
            client = host.slot_client(0)
            built = client.call(
                "build", timeout_s=30.0, builder=builder, lo=0, hi=4,
                world_kwargs={"tick_s": 0.01, "seed": 7})
            assert built == 4
            now, wall, ckpt = client.call(
                "run", timeout_s=60.0, chunk_s=30.0, independent=True,
                barrier=0, want_checkpoint=True)
            assert now == pytest.approx(30.0)
            assert wall > 0 and ckpt is not None
            report = client.call("finish", timeout_s=30.0, shard=0,
                                 lo=0, hi=4, wall_s=wall)
            assert isinstance(report, ShardReport)
            assert len(report.digests) == 4
            client.close()
        finally:
            forced = host.stop(drain_timeout_s=10.0)
        # A reachable daemon drains gracefully: nothing was forced.
        assert forced == 0
        assert host.process is None

    def test_partitioned_host_is_unusable_and_stops_forced(self):
        host = HostHandle(1)
        host.spawn()
        proc = host.process
        try:
            host.partition()
            with pytest.raises(HostUnreachable):
                host.gate()
            assert not host.usable()
            # The daemon is unreachable, not dead: it survives until
            # teardown forcibly terminates it.
            assert proc.is_alive()
        finally:
            forced = host.stop(drain_timeout_s=5.0)
        assert forced == 1
        assert not proc.is_alive()
