"""Chained topologies through the full runtime: no more degrading to ticks.

PR 2's engine fell back to tick-by-tick whenever a device carried a
proportional chain (``graph.advance_span`` refused the span class).
With the coupled span solver the whole stack — engine horizons, netd
pooled accrual over chained feeds, Worlds, GPS — macro-steps chained
devices:

* an idle-heavy system with 3-deep proportional chains fast-forwards
  (``span_refusals == 0``) and matches tick-by-tick at figure
  tolerance;
* a netd pooled wait whose poller reserve is fed *through a junction
  reserve* (root -> junction -> poller) keeps bit-identical event
  timing between the two modes;
* frozen-tap macro-steps reuse one cached span plan per epoch — the
  graph generation does not move during a pooled wait (the plan-thrash
  fix);
* GPS workloads blocked on :func:`repro.sensors.gps.fix_request`
  macro-step through pooled acquisition with identical fix timing.
"""

from __future__ import annotations

import pytest

from repro.core.tap import TapType
from repro.sensors.gps import fix_request
from repro.sim.engine import CinderSystem
from repro.sim.process import CpuBurn, Sleep
from repro.sim.workload import periodic_poller
from repro.sim.world import World


def chained_system(fast_forward: bool, decay: bool = True) -> CinderSystem:
    """An idle-heavy device whose reserves form 3-deep chains."""
    system = CinderSystem(battery_joules=15_000.0, tick_s=0.01, seed=9,
                          record_interval_s=1.0, decay_enabled=decay,
                          fast_forward=fast_forward)
    kernel = system.kernel
    for i in range(3):
        app = system.powered_reserve(0.06, name=f"app{i}")
        sub = system.new_reserve(name=f"app{i}.sub")
        subsub = system.new_reserve(name=f"app{i}.subsub")
        kernel.create_tap(app, sub, 0.05, TapType.PROPORTIONAL,
                          name=f"app{i}.t1")
        kernel.create_tap(sub, subsub, 0.04, TapType.PROPORTIONAL,
                          name=f"app{i}.t2")
        kernel.create_tap(subsub, system.battery_reserve, 0.03,
                          TapType.PROPORTIONAL, name=f"app{i}.t3")

    def maintenance(ctx):
        while True:
            yield Sleep(60.0)
            yield CpuBurn(0.02)

    worker = system.powered_reserve(0.2, name="maint")
    system.spawn(maintenance, "maint", reserve=worker)
    return system


class TestChainedDeviceFastForward:
    @pytest.mark.parametrize("decay", [False, True])
    def test_chained_device_macro_steps(self, decay):
        fast = chained_system(True, decay=decay)
        slow = chained_system(False, decay=decay)
        fast.run(1800.0)
        slow.run(1800.0)
        # The chain used to force tick-by-tick; now the span solver
        # carries it and nothing refuses.
        assert fast.fast_forwarded_ticks > 150_000
        assert fast.span_refusals == 0
        assert fast.clock.ticks == slow.clock.ticks
        # Event/meter parity: idle spans at constant power.
        assert fast.meter.total_energy_joules == pytest.approx(
            slow.meter.total_energy_joules, rel=1e-9)
        # Chained reserve trajectories at figure tolerance.
        for r_fast, r_slow in zip(fast.graph.reserves,
                                  slow.graph.reserves):
            assert r_fast.level == pytest.approx(r_slow.level, rel=5e-3,
                                                 abs=1e-6), r_fast.name
        assert fast.graph.conservation_error() == pytest.approx(
            0.0, abs=1e-6)

    def test_clamping_drain_fast_forwards_in_segments(self):
        """A drain emptying its reserve mid-span used to refuse every
        span (one degraded window for the whole run); the segmented
        engine now locates the clamp instant and macro-steps through
        it."""
        def build(fast_forward):
            system = CinderSystem(battery_joules=1_000.0, tick_s=0.01,
                                  record_interval_s=1.0,
                                  decay_enabled=False,
                                  fast_forward=fast_forward)
            shallow = system.new_reserve(name="shallow")
            system.battery_reserve.transfer_to(shallow, 0.5)
            sink = system.new_reserve(name="sink")
            # 0.5 J at 1 W clamps half a second in.
            system.kernel.create_tap(shallow, sink, 1.0, name="drain")
            return system
        fast, slow = build(True), build(False)
        fast.run(60.0)
        slow.run(60.0)
        assert fast.span_refusals == 0
        assert fast.span_segments > 0
        assert fast.fast_forwarded_ticks > 0
        for r_fast, r_slow in zip(fast.graph.reserves,
                                  slow.graph.reserves):
            assert r_fast.level == pytest.approx(
                r_slow.level, rel=5e-3, abs=2e-2), r_fast.name
        assert fast.graph.conservation_error() == pytest.approx(
            0.0, abs=1e-9)

    def test_span_refusals_count_windows_not_retries(self):
        """A residual refusal (a proportionally-fed reserve clamping
        empty *with a proportional drain of its own* — the drain's
        O(tick) flow has no closed form) degrades one contiguous
        window; the telemetry must not count every retried tick."""
        system = CinderSystem(battery_joules=1_000.0, tick_s=0.01,
                              record_interval_s=1.0, decay_enabled=False,
                              fast_forward=True)
        feeder = system.new_reserve(name="feeder")
        system.battery_reserve.transfer_to(feeder, 10.0)
        shallow = system.new_reserve(name="shallow")
        system.battery_reserve.transfer_to(shallow, 0.4)
        sink = system.new_reserve(name="sink")
        system.kernel.create_tap(feeder, shallow, 0.1,
                                 TapType.PROPORTIONAL, name="p1")
        # 0.4 J at 1 W clamps in ~0.4 s; the proportional feed plus
        # the proportional side-drain keep the emptied reserve in the
        # unsupported regime.
        system.kernel.create_tap(shallow, sink, 1.0, name="drain")
        system.kernel.create_tap(shallow, sink, 0.05,
                                 TapType.PROPORTIONAL, name="p2")
        system.run(60.0)
        # A handful of maximal windows (short certified spans may
        # interleave before the clamp), never the thousands of
        # per-tick retries the degraded stretch actually made.
        assert 1 <= system.span_refusals <= 10
        # Only the clamp-free prefix macro-stepped; the degraded
        # stretch (the vast majority of the run) ticked.
        assert system.fast_forwarded_ticks < 1_000

    def test_chained_world_macro_steps(self):
        world = World(tick_s=0.01, seed=3)
        for i in range(3):
            device = world.add_device(name=f"dev{i}",
                                      record_interval_s=1.0)
            kernel = device.kernel
            app = device.powered_reserve(0.05, name="app")
            sub = device.new_reserve(name="sub")
            kernel.create_tap(app, sub, 0.04, TapType.PROPORTIONAL,
                              name="t1")
            kernel.create_tap(sub, device.battery_reserve, 0.03,
                              TapType.PROPORTIONAL, name="t2")
        world.run(600.0)
        assert world.fast_forwarded_ticks > 100_000
        assert world.degraded_spans == 0
        assert world.conservation_error() < 1e-6


def junction_poller_system(fast_forward: bool) -> CinderSystem:
    """A pooled poller fed through a junction: root -> net budget -> app."""
    system = CinderSystem(battery_joules=15_000.0, tick_s=0.01, seed=5,
                          record_interval_s=1.0, decay_enabled=False,
                          fast_forward=fast_forward)
    junction = system.new_reserve(name="net.budget", decay_exempt=True)
    # Pre-fund and keep feeding the junction from the battery.
    system.battery_reserve.transfer_to(junction, 500.0)
    system.kernel.create_tap(system.battery_reserve, junction, 0.020,
                             name="budget.in")
    reserve = system.powered_reserve(0.015, name="poller",
                                     source=junction)
    system.spawn(periodic_poller("echo", period_s=600.0, bytes_out=64,
                                 bytes_in=0, max_polls=3),
                 "poller", reserve=reserve)
    return system


class TestChainedNetdFeeds:
    @pytest.fixture(scope="class")
    def runs(self):
        fast = junction_poller_system(True)
        slow = junction_poller_system(False)
        fast.run(3600.0)
        slow.run(3600.0)
        return fast, slow

    def test_macro_steps_through_junction_fed_waits(self, runs):
        fast, slow = runs
        assert fast.fast_forwarded_ticks > 300_000
        assert slow.fast_forwarded_ticks == 0
        assert fast.clock.ticks == slow.clock.ticks

    def test_event_timing_bit_identical(self, runs):
        fast, slow = runs
        assert fast.radio.activation_count == slow.radio.activation_count
        assert fast.netd.stats.operations == slow.netd.stats.operations
        assert (fast.netd.stats.total_wait_seconds
                == slow.netd.stats.total_wait_seconds)
        assert fast.netd.pool.level == slow.netd.pool.level

    def test_junction_books_balance(self, runs):
        fast, slow = runs
        junction_fast = fast.graph.reserves[2]
        junction_slow = slow.graph.reserves[2]
        assert junction_fast.name == "net.budget"
        assert junction_fast.level == pytest.approx(junction_slow.level,
                                                    rel=1e-9)
        assert fast.graph.conservation_error() == pytest.approx(
            0.0, abs=1e-6)

    def test_no_plan_thrash_during_pooled_wait(self, runs):
        """Frozen-tap macro-steps must reuse one cached span plan: the
        generation previously bumped twice per horizon."""
        system = junction_poller_system(True)
        system.run_until(lambda: system.netd.waiting_count == 1,
                         max_s=700.0)
        generation = system.graph.generation
        macro_before = system.fast_forwarded_ticks
        system.run(120.0)  # deep inside the pooled wait
        assert system.netd.waiting_count == 1
        assert system.fast_forwarded_ticks > macro_before  # macro-stepped
        assert system.graph.generation == generation       # zero recompiles


class TestGpsMacroStepping:
    def build(self, fast_forward: bool):
        system = CinderSystem(battery_joules=15_000.0, tick_s=0.01,
                              seed=4, record_interval_s=1.0,
                              decay_enabled=False,
                              fast_forward=fast_forward)
        daemon = system.attach_gps()
        fixes = []

        def navigator(ctx):
            while True:
                fix = yield fix_request(daemon, owner="nav")
                fixes.append((ctx.now, fix.acquired_at))
                yield Sleep(120.0)

        reserve = system.powered_reserve(0.030, name="nav")
        system.spawn(navigator, "nav", reserve=reserve)
        return system, daemon, fixes

    def test_pooled_acquisition_macro_steps_identically(self):
        fast, fast_daemon, fast_fixes = self.build(True)
        slow, slow_daemon, slow_fixes = self.build(False)
        fast.run(900.0)
        slow.run(900.0)
        # The old stepper-only attachment vetoed every span; the
        # event-source daemon macro-steps through acquisition waits.
        assert fast.fast_forwarded_ticks > 50_000
        assert slow.fast_forwarded_ticks == 0
        assert fast_fixes == slow_fixes  # bit-identical fix timing
        assert len(fast_fixes) >= 3
        assert (fast_daemon.device.acquisitions
                == slow_daemon.device.acquisitions)
        assert fast_daemon.pool.level == slow_daemon.pool.level
        assert fast.meter.total_energy_joules == pytest.approx(
            slow.meter.total_energy_joules, rel=1e-6)
        assert fast.graph.conservation_error() == pytest.approx(
            0.0, abs=1e-6)

    def test_netd_and_gps_sharing_one_reserve_stay_exact(self):
        """Both daemons' accrual analyses accept a reserve shared by a
        netd waiter and a GPS waiter; replaying both would double-count
        its feed tap, so the engine must arbitrate (tick through the
        overlap) and keep fast/slow event parity."""
        def build(fast_forward):
            system = CinderSystem(battery_joules=15_000.0, tick_s=0.01,
                                  seed=6, record_interval_s=1.0,
                                  decay_enabled=False,
                                  fast_forward=fast_forward)
            daemon = system.attach_gps()
            shared = system.powered_reserve(0.030, name="shared")

            def poller(ctx):
                yield from periodic_poller(
                    "echo", period_s=300.0, bytes_out=64, bytes_in=0,
                    max_polls=1)(ctx)

            def navigator(ctx):
                yield fix_request(daemon, owner="nav")

            system.spawn(poller, "poller", reserve=shared)
            system.spawn(navigator, "nav", reserve=shared)
            return system, daemon

        fast, fast_daemon = build(True)
        slow, slow_daemon = build(False)
        fast.run(600.0)
        slow.run(600.0)
        assert (fast_daemon.device.acquisitions
                == slow_daemon.device.acquisitions)
        assert fast.radio.activation_count == slow.radio.activation_count
        assert (fast.netd.stats.total_wait_seconds
                == slow.netd.stats.total_wait_seconds)
        assert fast.netd.pool.level == slow.netd.pool.level
        assert fast_daemon.pool.level == slow_daemon.pool.level
        assert fast.battery.charge_joules == pytest.approx(
            slow.battery.charge_joules, rel=1e-9)
        assert fast.graph.conservation_error() == pytest.approx(
            0.0, abs=1e-6)

    def test_fresh_fix_shared_without_acquisition(self):
        system, daemon, fixes = self.build(True)
        got = {}

        def rider(ctx):
            fix = yield fix_request(daemon, owner="rider")
            got["fix"] = (ctx.now, fix.acquired_at)

        reserve = system.powered_reserve(0.030, name="rider")
        # Start the rider just after the first fix is delivered.
        system.schedule_at(
            60.0, lambda: None)  # keep the heap non-trivial
        system.run_until(lambda: len(fixes) >= 1, max_s=600.0)
        system.spawn(rider, "rider", reserve=reserve)
        system.run(5.0)
        assert "fix" in got
        # The rider rode the cached fix: no second acquisition yet.
        assert daemon.cached_fixes_served == 1
