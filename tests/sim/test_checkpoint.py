"""Barrier checkpoints: snapshot/restore round-trips and replay.

The recovery contract is bit-identity: a restored (or rebuilt and
replayed) world must continue producing exactly the samples the lost
one would have.  These tests pin both capture methods —

* pickle snapshots round-trip digest-validated and the restored world,
  run further, stays bit-identical to the original;
* worlds running live simulated programs (generators) refuse to
  snapshot with :class:`CheckpointError` and fall back to the replay
  recipe, whose rebuilt world also validates against the captured
  digest;

— on randomized heterogeneous fleets (pollers, switchers, chained
reserves) and on devices caught mid-``ServiceCall``.
"""

from __future__ import annotations

import functools

import pytest

from repro.core.tap import TapType
from repro.errors import CheckpointError
from repro.sim import checkpoint
from repro.sim.workload import poller_shard
from repro.sim.world import World

from .test_fleet_parity import assert_fleets_match, build_random_fleet


def build_quiet_fleet(world: World, lo: int, hi: int) -> None:
    """Devices with taps, debt and consumption but no programs.

    No generators anywhere in the object graph, so the world is the
    pickle-snapshot happy path.
    """
    for i in range(lo, hi):
        device = world.add_device(name=f"q{i}", record_interval_s=1.0,
                                  decay_enabled=False)
        app = device.powered_reserve(0.05 + 0.01 * i, name=f"q{i}.app")
        sub = device.new_reserve(name=f"q{i}.sub")
        device.kernel.create_tap(app, sub, 0.04, TapType.PROPORTIONAL,
                                 name=f"q{i}.t1")
        debtor = device.new_reserve(name=f"q{i}.debtor")
        device.kernel.create_tap(device.battery_reserve, debtor, 0.02,
                                 name=f"q{i}.repay")
        debtor.consume(0.5 + 0.25 * i, allow_debt=True)


def poller_builder(count: int):
    return functools.partial(poller_shard, fleet_size=count, watts=0.1,
                             period_s=60.0, bytes_out=64,
                             record_interval_s=1.0, decay_enabled=False)


class TestSnapshotRoundTrip:
    def test_process_less_world_snapshots_and_continues(self):
        original = World(tick_s=0.01, seed=3)
        build_quiet_fleet(original, 0, 4)
        original.run(90.0)

        payload = original.snapshot()
        restored = World.restore(payload)
        assert checkpoint.world_digest(restored) == \
            checkpoint.world_digest(original)

        # The restored world must *continue* identically, not merely
        # match at the barrier.
        original.run(120.0)
        restored.run(120.0)
        assert_fleets_match(restored, original)
        assert checkpoint.world_digest(restored) == \
            checkpoint.world_digest(original)

    def test_snapshot_validates_digest_on_load(self):
        world = World(tick_s=0.01, seed=3)
        build_quiet_fleet(world, 0, 2)
        world.run(30.0)
        payload = bytearray(world.snapshot())
        payload[-20] ^= 0xFF
        with pytest.raises(CheckpointError):
            World.restore(bytes(payload))

    def test_world_with_programs_refuses_to_snapshot(self):
        world = World(tick_s=0.01, seed=5)
        poller_builder(3)(world, 0, 3)
        world.run(30.0)
        with pytest.raises(CheckpointError):
            world.snapshot()

    @pytest.mark.parametrize("seed", [1, 9, 23])
    def test_randomized_fleet_digest_is_deterministic(self, seed):
        worlds = []
        for _ in range(2):
            world = World(tick_s=0.01, seed=seed)
            build_random_fleet(world, seed, devices=6)
            world.run(150.0)
            worlds.append(world)
        assert checkpoint.world_digest(worlds[0]) == \
            checkpoint.world_digest(worlds[1])


class TestCapture:
    def test_capture_prefers_pickle(self):
        world = World(tick_s=0.01, seed=3)
        build_quiet_fleet(world, 0, 2)
        world.run(30.0)
        ckpt = checkpoint.capture(world, barrier=1)
        assert ckpt.method == checkpoint.METHOD_PICKLE
        assert ckpt.payload is not None
        assert ckpt.barrier == 1
        assert ckpt.now == world.now
        assert ckpt.digest == checkpoint.world_digest(world)

    def test_capture_falls_back_to_replay(self):
        world = World(tick_s=0.01, seed=5)
        poller_builder(3)(world, 0, 3)
        world.run(30.0)
        ckpt = checkpoint.capture(world, barrier=1)
        assert ckpt.method == checkpoint.METHOD_REPLAY
        assert ckpt.payload is None
        assert ckpt.digest == checkpoint.world_digest(world)

    def test_capture_skips_pickle_when_told(self):
        world = World(tick_s=0.01, seed=3)
        build_quiet_fleet(world, 0, 2)
        ckpt = checkpoint.capture(world, barrier=0, try_pickle=False)
        assert ckpt.method == checkpoint.METHOD_REPLAY
        assert ckpt.payload is None


class TestRestore:
    def _restore_kwargs(self, count, chunks):
        return dict(builder=poller_builder(count), lo=0, hi=count,
                    world_kwargs={"tick_s": 0.01, "seed": 5},
                    chunks=chunks, independent=True)

    def test_replay_restore_is_bit_identical(self):
        chunks = [60.0, 60.0, 60.0]
        world = World(tick_s=0.01, seed=5)
        poller_builder(4)(world, 0, 4)
        for chunk in chunks[:2]:
            world.run(chunk, independent=True)
        ckpt = checkpoint.capture(world, barrier=2)
        assert ckpt.method == checkpoint.METHOD_REPLAY

        rebuilt = checkpoint.restore(ckpt,
                                     **self._restore_kwargs(4, chunks))
        assert checkpoint.world_digest(rebuilt) == ckpt.digest
        # ...and continues identically through the final chunk.
        world.run(chunks[2], independent=True)
        rebuilt.run(chunks[2], independent=True)
        assert_fleets_match(rebuilt, world)

    def test_restore_mid_service_call(self):
        # A barrier landing while pollers are inside netd ServiceCalls
        # (waiting on gate replies): the replay must reproduce the
        # in-flight request state exactly.
        chunks = [59.5, 59.5]
        world = World(tick_s=0.01, seed=5)
        poller_builder(4)(world, 0, 4)
        world.run(chunks[0], independent=True)
        ckpt = checkpoint.capture(world, barrier=1)
        rebuilt = checkpoint.restore(ckpt,
                                     **self._restore_kwargs(4, chunks))
        world.run(chunks[1], independent=True)
        rebuilt.run(chunks[1], independent=True)
        assert_fleets_match(rebuilt, world)

    def test_restore_rejects_corrupted_digest(self):
        chunks = [60.0, 60.0]
        world = World(tick_s=0.01, seed=5)
        poller_builder(3)(world, 0, 3)
        world.run(chunks[0], independent=True)
        ckpt = checkpoint.capture(world, barrier=1)
        bad = checkpoint.Checkpoint(
            barrier=ckpt.barrier, now=ckpt.now,
            digest="corrupt:" + ckpt.digest[8:], payload=None,
            method=checkpoint.METHOD_REPLAY)
        with pytest.raises(CheckpointError):
            checkpoint.restore(bad, **self._restore_kwargs(3, chunks))

    def test_restore_none_replays_caller_chunks(self):
        # No checkpoint at all (capture disabled): the caller hands
        # over the full replay recipe and gets the rebuilt world back
        # with nothing to validate against.
        chunks = [60.0, 60.0]
        rebuilt = checkpoint.restore(None,
                                     **self._restore_kwargs(3, chunks))
        reference = World(tick_s=0.01, seed=5)
        poller_builder(3)(reference, 0, 3)
        for chunk in chunks:
            reference.run(chunk, independent=True)
        assert checkpoint.world_digest(rebuilt) == \
            checkpoint.world_digest(reference)

    @pytest.mark.parametrize("seed", [2, 11])
    def test_randomized_fleet_replay_round_trip(self, seed):
        # Heterogeneous fleets — switchers mid-clamp, chains, debtors,
        # pollers — through capture + rebuild-and-replay.
        def builder(world, lo, hi):
            build_random_fleet(world, seed, devices=hi - lo)

        chunks = [75.0, 75.0]
        world = World(tick_s=0.01, seed=seed)
        builder(world, 0, 6)
        world.run(chunks[0], independent=True)
        ckpt = checkpoint.capture(world, barrier=1)
        rebuilt = checkpoint.restore(
            ckpt, builder=builder, lo=0, hi=6,
            world_kwargs={"tick_s": 0.01, "seed": seed},
            chunks=chunks, independent=True)
        world.run(chunks[1], independent=True)
        rebuilt.run(chunks[1], independent=True)
        assert_fleets_match(rebuilt, world)
