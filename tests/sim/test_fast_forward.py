"""Idle fast-forward: macro-stepped runs must match tick-by-tick runs.

The engine may replace an event-free idle span with one closed-form
macro-step.  These tests pin the equivalence contract: identical event
timing (same tick instants), identical metering (constant idle power
makes the 200 ms sample stream bit-compatible), conservation within
1e-6, and figure-level agreement for the fig13 cooperative-radio
experiment, which exercises netd, the radio state machine, and decay
together.
"""

from __future__ import annotations

import pytest

from repro.figures import fig13_cooperative
from repro.sim.process import CpuBurn, Sleep, WaitFor

from ..conftest import make_system


def ff_pair(**kwargs):
    """Two identical systems, one fast-forwarding and one ticking."""
    return (make_system(fast_forward=True, **kwargs),
            make_system(fast_forward=False, **kwargs))


class TestIdleEquivalence:
    def test_pure_idle_run_matches_ticks(self):
        fast, slow = ff_pair()
        for system in (fast, slow):
            system.powered_reserve(0.070, name="app")
            system.run(60.0)
        assert fast.fast_forwarded_ticks > 0
        assert slow.fast_forwarded_ticks == 0
        assert fast.clock.ticks == slow.clock.ticks
        assert fast.graph.time == pytest.approx(slow.graph.time)
        assert (fast.meter.total_energy_joules
                == pytest.approx(slow.meter.total_energy_joules, rel=1e-9))
        assert len(fast.meter.samples()[0]) == len(slow.meter.samples()[0])
        assert fast.scheduler.total_time == pytest.approx(
            slow.scheduler.total_time)
        assert fast.graph.conservation_error() == pytest.approx(0.0,
                                                                abs=1e-6)

    def test_decaying_idle_run_conserves(self):
        system = make_system(decay_enabled=True, fast_forward=True)
        reserve = system.powered_reserve(0.070, name="app")
        system.run(1200.0)  # two decay half-lives
        assert system.fast_forwarded_ticks > 100_000
        assert system.graph.conservation_error() == pytest.approx(0.0,
                                                                  abs=1e-6)
        # 70 mW against the 600 s-half-life decay: L(t) follows
        # (c/lambda)(1 - e^{-lambda t}); at t=1200 s (two half-lives)
        # that is 60.6 J * 0.75 ~= 45.45 J.
        assert reserve.level == pytest.approx(45.45, rel=0.02)

    def test_timers_fire_on_the_same_tick(self):
        fired = {}
        fast, slow = ff_pair()
        for key, system in (("fast", fast), ("slow", slow)):
            system.schedule_at(13.37, lambda key=key, s=system:
                               fired.setdefault(key, s.clock.now))
            system.run(30.0)
        assert fired["fast"] == fired["slow"]

    def test_sleeping_process_wakes_identically(self):
        def napper(ctx):
            for _ in range(3):
                yield Sleep(7.5)
                yield CpuBurn(0.05)

        results = {}
        fast, slow = ff_pair()
        for key, system in (("fast", fast), ("slow", slow)):
            reserve = system.powered_reserve(0.5, name="napper")
            process = system.spawn(napper, "napper", reserve=reserve)
            system.run(40.0)
            results[key] = (process.finished, system.scheduler.busy_time,
                            system.meter.total_energy_joules, reserve.level)
        assert fast.fast_forwarded_ticks > 0
        assert results["fast"][0] and results["slow"][0]
        assert results["fast"][1] == pytest.approx(results["slow"][1])
        assert results["fast"][2] == pytest.approx(results["slow"][2],
                                                   rel=1e-6)
        # Reserve levels differ only by O(tick) flow discretisation.
        assert results["fast"][3] == pytest.approx(results["slow"][3],
                                                   rel=1e-2)

    def test_throttled_spinner_blocks_fast_forward(self):
        """A THROTTLED thread's reserve refills mid-span; the engine
        must keep ticking to notice the moment it can run again."""
        def spinner(ctx):
            yield CpuBurn(float("inf"))

        system = make_system(fast_forward=True)
        reserve = system.powered_reserve(0.010, name="starved")
        system.spawn(spinner, "spinner", reserve=reserve)
        system.run(5.0)
        assert system.fast_forwarded_ticks == 0
        assert system.scheduler.busy_time > 0.0


class TestPumpSemantics:
    def test_waitfor_after_sleep_polls_next_tick(self):
        """The event-indexed pump must keep the seed's visit-once-per-
        tick timing: a WaitFor yielded when a sleep completes is first
        polled on the following tick, not within the same pump."""
        times = []

        def program(ctx):
            yield Sleep(0.05)
            times.append(ctx.now)
            yield WaitFor(lambda: True)
            times.append(ctx.now)

        system = make_system()
        reserve = system.powered_reserve(0.1, name="p")
        system.spawn(program, "p", reserve=reserve)
        system.run(0.2)
        assert times == [pytest.approx(0.05), pytest.approx(0.06)]

    def test_same_tick_cascades_resolve_in_spawn_order(self):
        """A waiter spawned before a sleeper polls its predicate
        before the sleeper resumes (seed single-pass order), so a flag
        the sleeper sets is seen one tick later."""
        state = {"flag": False, "woke": None}

        def waiter(ctx):
            yield WaitFor(lambda: state["flag"])
            state["woke"] = ctx.now

        def sleeper(ctx):
            yield Sleep(0.5)
            state["flag"] = True

        system = make_system()
        reserve = system.powered_reserve(0.1, name="r")
        system.spawn(waiter, "waiter", reserve=reserve)   # spawned first
        system.spawn(sleeper, "sleeper", reserve=reserve)
        system.run(1.0)
        assert state["woke"] == pytest.approx(0.51)


class TestFig13Equivalence:
    @pytest.fixture(scope="class")
    def runs(self):
        kwargs = dict(duration_s=300.0, seed=13)
        return (fig13_cooperative.run_one(True, fast_forward=True, **kwargs),
                fig13_cooperative.run_one(True, fast_forward=False, **kwargs))

    def test_figure_level_results_match(self, runs):
        fast, slow = runs
        assert fast.system.fast_forwarded_ticks > 0
        assert fast.activations == slow.activations
        assert fast.polls_completed == slow.polls_completed
        assert fast.total_energy_j == pytest.approx(slow.total_energy_j,
                                                    rel=0.01)
        assert fast.active_time_s == pytest.approx(slow.active_time_s,
                                                   abs=2 * 0.2)

    def test_fast_forwarded_run_conserves(self, runs):
        fast, _ = runs
        assert fast.system.graph.conservation_error() == pytest.approx(
            0.0, abs=1e-6)
