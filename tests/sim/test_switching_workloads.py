"""Acceptance workload: switching spans fast-forward end to end.

The ISSUE-5 acceptance shape: a chained device carrying a mid-span
drain clamp and a debt-repayment reserve, plus a junction-fed netd
poller, must fast-forward with **zero** refusals in
``World.degraded_spans`` (the segments counted in the new
``span_segments`` telemetry instead), keep conservation under 1e-9,
and leave netd's event timing bit-identical to the tick path — the
junction's balanced feed exercising the retired clamp-budget haircut
(an exact net-rate budget is infinite for a pass-through junction).
"""

from __future__ import annotations

import pytest

from repro.core.tap import TapType
from repro.sim.engine import CinderSystem
from repro.sim.workload import periodic_poller
from repro.sim.world import World


def populate_switching_device(device) -> None:
    """Chain + clamping task drain + repaying debtor + pooled poller."""
    kernel = device.kernel
    app = device.powered_reserve(0.05, name="app")
    sub = device.new_reserve(name="sub")
    kernel.create_tap(app, sub, 0.04, TapType.PROPORTIONAL, name="chain1")
    kernel.create_tap(sub, device.battery_reserve, 0.03,
                      TapType.PROPORTIONAL, name="chain2")
    # The mid-span drain clamp: 4 J against a 30 mW net drain empties
    # the task reserve ~133 s in, then the feed passes through.
    task = device.new_reserve(name="task")
    device.battery_reserve.transfer_to(task, 4.0)
    kernel.create_tap(device.battery_reserve, task, 0.02,
                      name="task.feed")
    archive = device.new_reserve(name="archive")
    kernel.create_tap(task, archive, 0.05, name="task.drain")
    # The debt-repayment reserve: crosses zero at 300 s.
    debtor = device.new_reserve(name="debtor")
    kernel.create_tap(device.battery_reserve, debtor, 0.03, name="repay")
    debtor.consume(9.0, allow_debt=True)
    # A pooled poller fed through a *balanced* junction (inflow covers
    # the drain): the exact net-rate budget is infinite, so the pooled
    # wait macro-steps with no conservative clamp gating.
    junction = device.new_reserve(name="net.budget", decay_exempt=True)
    device.battery_reserve.transfer_to(junction, 100.0)
    kernel.create_tap(device.battery_reserve, junction, 0.08,
                      name="budget.in")
    reserve = device.powered_reserve(0.08, name="poller",
                                     source=junction)
    device.spawn(periodic_poller("echo", period_s=250.0, bytes_out=64,
                                 bytes_in=0),
                 "poller", reserve=reserve)


class TestSwitchingWorkloadAcceptance:
    @pytest.fixture(scope="class")
    def runs(self):
        world = World(tick_s=0.01, seed=4)
        fast = world.add_device(name="dev0", record_interval_s=1.0,
                                decay_enabled=False,
                                battery_joules=2_000.0)
        populate_switching_device(fast)
        world.run(600.0)
        slow = CinderSystem(battery_joules=2_000.0, tick_s=0.01, seed=4,
                            record_interval_s=1.0, decay_enabled=False,
                            fast_forward=False)
        populate_switching_device(slow)
        slow.run(600.0)
        return world, fast, slow

    def test_zero_refusals_and_segments_counted(self, runs):
        world, fast, _ = runs
        assert world.degraded_spans == 0
        assert world.span_segments > 0
        assert fast.span_segments == world.span_segments
        assert fast.graph.span_switches > 0
        assert fast.fast_forwarded_ticks > 30_000

    def test_conservation_below_1e9(self, runs):
        world, fast, _ = runs
        assert abs(fast.graph.conservation_error()) < 1e-9
        assert world.conservation_error() < 1e-9

    def test_netd_event_timing_bit_identical(self, runs):
        _, fast, slow = runs
        assert fast.clock.ticks == slow.clock.ticks
        assert fast.netd.stats.operations == slow.netd.stats.operations
        assert fast.netd.stats.operations >= 2
        assert fast.radio.activation_count == slow.radio.activation_count
        assert fast.radio.activation_count >= 1
        assert (fast.netd.stats.total_wait_seconds
                == slow.netd.stats.total_wait_seconds)
        assert fast.netd.pool.level == slow.netd.pool.level

    def test_switching_trajectories_match_ticks(self, runs):
        _, fast, slow = runs
        for r_fast, r_slow in zip(fast.graph.reserves,
                                  slow.graph.reserves):
            assert r_fast.level == pytest.approx(
                r_slow.level, rel=5e-3, abs=2e-3), r_fast.name
        # The clamp emptied the task reserve on both paths and the
        # debtor finished repaying on both paths.
        task = next(r for r in fast.graph.reserves if r.name == "task")
        debtor = next(r for r in fast.graph.reserves
                      if r.name == "debtor")
        assert task.level == pytest.approx(0.0, abs=1e-6)
        assert debtor.level > 0.0


class TestNonRootFedJunctionBudget:
    def test_clamping_upstream_feed_stays_bit_identical(self):
        """Budget soundness regression: a junction fed from a *non-root*
        reserve gets no inflow credit (its upstream can clamp), so the
        daemon's skips stay bounded by the junction's own level and
        event timing survives the upstream running dry mid-wait."""
        def build(fast_forward):
            system = CinderSystem(battery_joules=15_000.0, tick_s=0.01,
                                  seed=7, record_interval_s=1.0,
                                  decay_enabled=False,
                                  fast_forward=fast_forward)
            # upstream drains dry ~150 s in; its feed tap then clamps
            # and the junction starts depleting.
            upstream = system.new_reserve(name="upstream")
            system.battery_reserve.transfer_to(upstream, 3.0)
            junction = system.new_reserve(name="net.budget",
                                          decay_exempt=True)
            system.battery_reserve.transfer_to(junction, 8.0)
            system.kernel.create_tap(upstream, junction, 0.02,
                                     name="budget.in")
            reserve = system.powered_reserve(0.02, name="poller",
                                             source=junction)
            system.spawn(
                periodic_poller("echo", period_s=2_000.0, bytes_out=64,
                                bytes_in=0, max_polls=1),
                "poller", reserve=reserve)
            return system
        fast, slow = build(True), build(False)
        fast.run(900.0)
        slow.run(900.0)
        assert fast.clock.ticks == slow.clock.ticks
        assert fast.radio.activation_count == slow.radio.activation_count
        assert (fast.netd.stats.total_wait_seconds
                == slow.netd.stats.total_wait_seconds)
        # Event timing is exact; the pool itself only matches to
        # last-ulp scale here — the upstream's clamp tick quantizes on
        # levels that already differ by the documented span-vs-tick
        # bulk rounding.
        assert fast.netd.pool.level == pytest.approx(
            slow.netd.pool.level, rel=1e-9)
        for r_fast, r_slow in zip(fast.graph.reserves,
                                  slow.graph.reserves):
            assert r_fast.level == pytest.approx(
                r_slow.level, rel=2e-3, abs=2e-3), r_fast.name
        assert abs(fast.graph.conservation_error()) < 1e-9


class TestBalancedJunctionBudget:
    def test_balanced_junction_macro_steps_with_tiny_headroom(self):
        """A junction whose constant inflow exactly covers its drain
        macro-steps through a pooled wait even with almost no stored
        level — the old gross-drain budget (level / rate) would have
        gated the regime to tick-by-tick within a few hundred ticks.
        Event timing stays bit-identical to the tick path."""
        def build(fast_forward):
            system = CinderSystem(battery_joules=15_000.0, tick_s=0.01,
                                  seed=5, record_interval_s=1.0,
                                  decay_enabled=False,
                                  fast_forward=fast_forward)
            junction = system.new_reserve(name="net.budget",
                                          decay_exempt=True)
            # One simulated second of headroom: gross budget ~100
            # ticks, net budget infinite.
            system.battery_reserve.transfer_to(junction, 0.02)
            system.kernel.create_tap(system.battery_reserve, junction,
                                     0.02, name="budget.in")
            reserve = system.powered_reserve(0.02, name="poller",
                                             source=junction)
            system.spawn(
                periodic_poller("echo", period_s=1200.0, bytes_out=64,
                                bytes_in=0, max_polls=1),
                "poller", reserve=reserve)
            return system
        fast, slow = build(True), build(False)
        fast.run(1200.0)
        slow.run(1200.0)
        # The pooled wait (~745 s at 20 mW against the ~14.9 J pooled
        # bill) macro-stepped nearly everywhere.
        assert fast.fast_forwarded_ticks > 100_000
        assert fast.span_refusals == 0
        assert fast.radio.activation_count == slow.radio.activation_count
        assert fast.radio.activation_count == 1
        assert (fast.netd.stats.total_wait_seconds
                == slow.netd.stats.total_wait_seconds)
        assert fast.netd.pool.level == slow.netd.pool.level
        assert abs(fast.graph.conservation_error()) < 1e-9
