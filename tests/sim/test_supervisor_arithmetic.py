"""Supervisor retry arithmetic, pinned as units.

The backoff schedule and restore-deadline scaling were previously
only exercised implicitly by chaos runs — a regression (say, ``2 **
attempt`` instead of ``2 ** (attempt - 1)``) would merely have made
recovery slower, and no test would have noticed.  These tests pin the
arithmetic itself:

* exponential backoff before recovery attempt *n* (1-based) is
  exactly ``retry_backoff_s * 2**(n - 1)``, and that schedule is what
  the supervisor actually sleeps between real recovery attempts;
* the restore deadline scales with the barriers a restore may replay:
  ``barrier_timeout_s * (replayed_barriers + 1)``, where a live
  checkpoint narrows the replay to ``max(1, ckpt.barrier)`` and no
  checkpoint means all ``k`` chunks.
"""

from __future__ import annotations

import functools
import time

import pytest

from repro.sim.checkpoint import Checkpoint
from repro.sim.faults import BUILD_RAISE, FaultEvent, FaultPlan
from repro.sim.shards import ShardedWorld
from repro.sim.workload import poller_shard


def _fleet(**kwargs) -> ShardedWorld:
    builder = functools.partial(poller_shard, fleet_size=4, watts=0.25,
                                period_s=60.0, bytes_out=64,
                                record_interval_s=1.0,
                                decay_enabled=False)
    return ShardedWorld(builder, 4, shards=2, tick_s=0.01, seed=7,
                        **kwargs)


def _ckpt(barrier: int) -> Checkpoint:
    return Checkpoint(barrier=barrier, now=float(barrier), digest="x",
                      payload=None, method="replay")


class TestBackoffSchedule:
    def test_schedule_is_base_times_doubling(self):
        fleet = _fleet(retry_backoff_s=0.05)
        assert [fleet._backoff_s(n) for n in (1, 2, 3, 4, 5)] == \
            [0.05, 0.1, 0.2, 0.4, 0.8]

    def test_base_scales_linearly(self):
        assert _fleet(retry_backoff_s=0.2)._backoff_s(3) == \
            pytest.approx(0.8)
        assert _fleet(retry_backoff_s=0.01)._backoff_s(1) == \
            pytest.approx(0.01)

    def test_supervisor_sleeps_the_pinned_schedule(self, monkeypatch):
        # Two injected builder raises on the same shard force recovery
        # attempts 1 and 2; the sleeps between them must follow the
        # schedule exactly (not, e.g., 2**attempt).
        base = 0.03
        plan = FaultPlan([
            FaultEvent(shard=0, barrier=0, kind=BUILD_RAISE),
            FaultEvent(shard=0, barrier=0, kind=BUILD_RAISE),
        ])
        fleet = _fleet(retry_backoff_s=base, max_shard_retries=3,
                       fault_plan=plan)
        recorded = []
        real_sleep = time.sleep
        monkeypatch.setattr(
            time, "sleep",
            lambda s: (recorded.append(s), real_sleep(0))[1])
        report = fleet.run(30.0, barrier_s=30.0)
        assert not report.degraded_shards
        backoffs = [s for s in recorded if s >= base]
        assert backoffs == [base * 1, base * 2]


class TestRestoreTimeoutScaling:
    def test_no_checkpoint_replays_every_chunk(self):
        fleet = _fleet(barrier_timeout_s=2.0)
        # Failure at barrier k with nothing to restore from: the
        # recovery replays all k completed chunks, plus one slack.
        assert fleet._restore_timeout(None, 5) == pytest.approx(12.0)
        assert fleet._restore_timeout(None, 1) == pytest.approx(4.0)

    def test_checkpoint_narrows_the_replay(self):
        fleet = _fleet(barrier_timeout_s=2.0)
        # A checkpoint at barrier b replays at most b chunks.
        assert fleet._restore_timeout(_ckpt(3), 9) == pytest.approx(8.0)
        assert fleet._restore_timeout(_ckpt(1), 9) == pytest.approx(4.0)

    def test_pickle_floor_is_one_barrier(self):
        fleet = _fleet(barrier_timeout_s=2.0)
        # Even a barrier-0 checkpoint gets the max(1, .) floor: the
        # deadline never shrinks below two barrier timeouts.
        assert fleet._restore_timeout(_ckpt(0), 9) == pytest.approx(4.0)

    def test_no_deadline_means_no_scaling(self):
        fleet = _fleet(barrier_timeout_s=None)
        assert fleet._restore_timeout(None, 5) is None
        assert fleet._restore_timeout(_ckpt(3), 5) is None
