"""Chaos recovery: sharded fleets survive injected faults bit-identically.

The acceptance contract for fleet fault tolerance: a seeded chaos run
(worker crashes, hangs, corrupted checkpoints, builder raises) must

* complete and produce a :meth:`FleetReport.digest` **bit-identical**
  to the fault-free run of the same fleet,
* account for every injection in the supervision telemetry
  (``shard_restarts``, ``recovered_barriers``, ``degraded_shards``,
  ``shard_failures``),
* leak no worker processes past ``run()``.

Timeouts here are wall-clock (a hang is only detected by missing the
barrier deadline), so the suite keeps fleets small and chunks short;
``hang_s`` is far above the deadline so detection never races the
sleep.
"""

from __future__ import annotations

import functools
import multiprocessing

import pytest

from repro.errors import ShardFailure, SimulationError
from repro.sim.faults import (BUILD_RAISE, CORRUPT_DIGEST, CRASH, HANG,
                              FaultEvent, FaultPlan)
from repro.sim.shards import ShardedWorld
from repro.sim.workload import poller_shard


def _builder(count: int):
    return functools.partial(poller_shard, fleet_size=count, watts=0.25,
                             period_s=60.0, bytes_out=64,
                             record_interval_s=1.0, decay_enabled=False)


def _fleet(count: int = 10, shards: int = 2, **kwargs) -> ShardedWorld:
    kwargs.setdefault("retry_backoff_s", 0.01)
    return ShardedWorld(_builder(count), count, shards=shards,
                        tick_s=0.01, seed=7, **kwargs)


def _assert_no_leaked_workers():
    leaked = multiprocessing.active_children()
    assert not leaked, f"leaked worker processes: {leaked}"


@pytest.fixture(scope="module")
def clean_digest():
    """The fault-free digest every chaos run must reproduce."""
    report = _fleet().run(180.0, barrier_s=30.0)
    assert report.shard_restarts == 0
    assert report.recovered_barriers == 0
    assert not report.degraded_shards
    assert not report.shard_failures
    assert not report.recovery_events
    assert report.forced_terminations == 0
    assert report.transport == "processes"
    return report.digest()


class TestChaosRecovery:
    def test_crashes_and_hang_recover_bit_identically(self, clean_digest):
        # The ISSUE acceptance run: at least two worker crashes and one
        # hang, all recovered, digests bit-identical to fault-free.
        plan = FaultPlan([
            FaultEvent(shard=0, barrier=1, kind=CRASH),
            FaultEvent(shard=1, barrier=3, kind=CRASH),
            FaultEvent(shard=0, barrier=4, kind=HANG, hang_s=30.0),
        ])
        report = _fleet(fault_plan=plan,
                        barrier_timeout_s=3.0).run(180.0, barrier_s=30.0)
        assert report.digest() == clean_digest
        # Every injection fired and is visible in the telemetry.
        assert plan.consumed == 3
        assert report.shard_restarts == 3
        assert report.recovered_barriers == 3
        assert not report.degraded_shards
        causes = [c for cs in report.shard_failures.values() for c in cs]
        assert sum("crash" in c for c in causes) == 2
        assert sum("timeout" in c for c in causes) == 1
        # The structured mirror: one "retry" rung per injection, each
        # carrying shard, barrier, attempt and cause.
        events = report.recovery_events
        assert [(e.shard, e.barrier, e.rung) for e in events] == \
            [(0, 1, "retry"), (1, 3, "retry"), (0, 4, "retry")]
        assert all(e.attempt == 1 and e.phase == "barrier"
                   for e in events)
        _assert_no_leaked_workers()

    def test_seeded_chaos_sweep(self, clean_digest):
        # Seeded plans over several seeds: whatever the draw, recovery
        # converges on the fault-free digest.
        for seed in (3, 17):
            plan = FaultPlan.seeded(seed, shards=2, barriers=6,
                                    crashes=2)
            report = _fleet(fault_plan=plan).run(180.0, barrier_s=30.0)
            assert report.digest() == clean_digest, f"seed {seed}"
            assert report.shard_restarts == 2
            assert plan.consumed == 2
        _assert_no_leaked_workers()

    def test_chaos_run_is_reproducible(self, clean_digest):
        # The same (fleet seed, fault seed) twice: identical digests
        # and identical failure telemetry — chaos runs replay.
        plan = FaultPlan.seeded(11, shards=2, barriers=6, crashes=2)
        fleet = _fleet(fault_plan=plan)
        first = fleet.run(180.0, barrier_s=30.0)
        second = fleet.run(180.0, barrier_s=30.0)  # plan auto-rewinds
        assert first.digest() == second.digest() == clean_digest
        assert first.shard_failures == second.shard_failures
        assert first.shard_restarts == second.shard_restarts

    def test_crash_before_first_barrier(self, clean_digest):
        # No checkpoint exists yet: recovery rebuilds to time zero.
        plan = FaultPlan([FaultEvent(shard=1, barrier=0, kind=CRASH)])
        report = _fleet(fault_plan=plan).run(180.0, barrier_s=30.0)
        assert report.digest() == clean_digest
        assert report.shard_restarts == 1

    def test_recovery_without_checkpoints(self, clean_digest):
        # checkpoint=False: recovery pays a full replay from zero but
        # still converges bit-identically.
        plan = FaultPlan([FaultEvent(shard=0, barrier=3, kind=CRASH)])
        report = _fleet(fault_plan=plan,
                        checkpoint=False).run(180.0, barrier_s=30.0)
        assert report.digest() == clean_digest
        assert report.shard_restarts == 1
        assert report.recovered_barriers == 1

    def test_builder_raise_is_retried(self, clean_digest):
        plan = FaultPlan([FaultEvent(shard=0, barrier=0,
                                     kind=BUILD_RAISE)])
        report = _fleet(fault_plan=plan).run(180.0, barrier_s=30.0)
        assert report.digest() == clean_digest
        assert "build" in report.shard_failures[0][0]

    def test_genuinely_broken_builder_raises(self):
        # A builder that fails every attempt exhausts the retries and
        # surfaces ShardFailure — inline execution would not help.
        plan = FaultPlan([FaultEvent(shard=s, barrier=0,
                                     kind=BUILD_RAISE)
                          for s in (0, 0, 0)])
        fleet = _fleet(fault_plan=plan, max_shard_retries=1)
        with pytest.raises(ShardFailure):
            fleet.run(60.0, barrier_s=30.0)
        _assert_no_leaked_workers()


class TestGracefulDegradation:
    def test_exhausted_retries_demote_to_inline(self, clean_digest):
        # A corrupted checkpoint poisons every restore (digest
        # validation refuses both the payload and the replay), so the
        # next crash walks the shard down the whole ladder:
        # retry -> restore -> rebuild-replay -> inline demotion.
        plan = FaultPlan([
            FaultEvent(shard=1, barrier=1, kind=CORRUPT_DIGEST),
            FaultEvent(shard=1, barrier=2, kind=CRASH),
        ])
        report = _fleet(fault_plan=plan, max_shard_retries=1,
                        barrier_timeout_s=5.0).run(180.0, barrier_s=30.0)
        # Demoted, not diverged: the inline rebuild is authoritative.
        assert report.digest() == clean_digest
        assert report.degraded_shards == [1]
        causes = report.shard_failures[1]
        assert any("crash" in c for c in causes)
        assert any("CheckpointError" in c for c in causes)
        # The ladder's last rung is recorded as such.
        assert report.recovery_events[-1].rung == "inline"
        assert report.recovery_events[-1].shard == 1
        _assert_no_leaked_workers()

    def test_demoted_shard_finishes_remaining_barriers(self,
                                                       clean_digest):
        # Demotion early in the run: the slice completes every later
        # chunk inline alongside the healthy worker shards.
        plan = FaultPlan([
            FaultEvent(shard=0, barrier=1, kind=CORRUPT_DIGEST),
            FaultEvent(shard=0, barrier=2, kind=CRASH),
        ])
        report = _fleet(fault_plan=plan, max_shard_retries=0).run(
            180.0, barrier_s=30.0)
        assert report.digest() == clean_digest
        assert report.degraded_shards == [0]
        assert report.shard_restarts == 1


class TestSupervisionKnobs:
    def test_knob_validation(self):
        with pytest.raises(SimulationError):
            _fleet(barrier_timeout_s=0.0)
        with pytest.raises(SimulationError):
            _fleet(max_shard_retries=-1)
        with pytest.raises(SimulationError):
            _fleet(drain_timeout_s=0.0)

    def test_drain_timeout_is_configurable(self):
        # The pool-teardown join budget used to be a hard-coded 5 s;
        # a custom budget must drain a healthy fleet without force.
        report = _fleet(count=4, shards=2,
                        drain_timeout_s=2.0).run(60.0, barrier_s=30.0)
        assert report.forced_terminations == 0
        _assert_no_leaked_workers()

    def test_per_shard_walls_are_worker_side(self):
        # Walls are measured inside each worker around its own chunk,
        # so their sum cannot exceed (shards x elapsed wall) and no
        # shard is charged for the parent blocking on its siblings.
        report = _fleet(count=8, shards=4).run(120.0, barrier_s=30.0)
        assert len(report.shard_walls) == 4
        assert all(w > 0 for w in report.shard_walls)
        assert max(report.shard_walls) <= report.wall_s

    def test_fleet_report_digest_orders_globally(self):
        report = _fleet(count=9, shards=3).run(60.0, barrier_s=30.0)
        assert [d.index for d in report.digests] == list(range(9))
