"""Tests for kernel objects, ObjRefs, and container GC."""

import pytest

from repro.errors import ContainerError, NoSuchObjectError
from repro.kernel.container import Container
from repro.kernel.objects import ObjRef, ObjectType
from repro.kernel.segment import Segment


class TestKernelObject:
    def test_ids_are_unique_and_increasing(self):
        a, b = Segment(), Segment()
        assert b.object_id > a.object_id

    def test_mark_dead_is_idempotent(self):
        seg = Segment(size=8)
        seg.mark_dead()
        seg.mark_dead()
        assert not seg.alive

    def test_ensure_alive_raises_when_dead(self):
        seg = Segment()
        seg.mark_dead()
        with pytest.raises(NoSuchObjectError):
            seg.ensure_alive()


class TestContainerMembership:
    def test_put_and_get(self):
        parent = Container(name="parent")
        seg = Segment(name="data")
        parent.put(seg)
        assert parent.get(seg.object_id) is seg
        assert parent.contains(seg.object_id)
        assert seg.parent_container_id == parent.object_id

    def test_double_put_rejected(self):
        parent = Container()
        seg = Segment()
        parent.put(seg)
        with pytest.raises(ContainerError):
            parent.put(seg)

    def test_put_into_second_container_rejected(self):
        first, second = Container(), Container()
        seg = Segment()
        first.put(seg)
        with pytest.raises(ContainerError):
            second.put(seg)

    def test_remove_allows_rehoming(self):
        first, second = Container(), Container()
        seg = Segment()
        first.put(seg)
        first.remove(seg.object_id)
        second.put(seg)
        assert second.contains(seg.object_id)
        assert not first.contains(seg.object_id)

    def test_self_containment_rejected(self):
        container = Container()
        with pytest.raises(ContainerError):
            container.put(container)

    def test_quota_enforced(self):
        container = Container(quota=1)
        container.put(Segment())
        with pytest.raises(ContainerError):
            container.put(Segment())

    def test_get_missing_raises(self):
        with pytest.raises(NoSuchObjectError):
            Container().get(424242)

    def test_len_and_iter_count_live_members(self):
        container = Container()
        a, b = Segment(), Segment()
        container.put(a)
        container.put(b)
        assert len(container) == 2
        b.mark_dead()
        assert len(container) == 1
        assert list(container) == [a]


class TestRecursiveDeletion:
    def test_deleting_container_kills_subtree(self):
        root = Container(name="root")
        middle = Container(name="middle")
        leaf = Segment(name="leaf")
        root.put(middle)
        middle.put(leaf)
        root.delete_member(middle.object_id)
        assert not middle.alive
        assert not leaf.alive

    def test_delete_member_only_touches_that_subtree(self):
        root = Container()
        keep, kill = Segment(), Segment()
        root.put(keep)
        root.put(kill)
        root.delete_member(kill.object_id)
        assert keep.alive
        assert not kill.alive

    def test_walk_and_find_all(self):
        root = Container()
        inner = Container()
        seg = Segment()
        root.put(inner)
        inner.put(seg)
        names = [type(obj).__name__ for obj in root.walk()]
        assert names == ["Container", "Container", "Segment"]
        assert root.find_all(ObjectType.SEGMENT) == [seg]


class TestObjRef:
    def test_objref_is_value_like(self):
        assert ObjRef(1, 2) == ObjRef(1, 2)
        assert ObjRef(1, 2) != ObjRef(1, 3)
        assert hash(ObjRef(1, 2)) == hash(ObjRef(1, 2))
