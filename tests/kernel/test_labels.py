"""Tests for HiStar-style labels and Cinder's access checks."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LabelError
from repro.kernel.labels import (DEFAULT_LEVEL, Label, NO_PRIVILEGES,
                                 PrivilegeSet, can_modify, can_observe,
                                 can_use_reserve, check_modify,
                                 check_observe, fresh_category)


@pytest.fixture
def cats():
    return fresh_category("a"), fresh_category("b"), fresh_category("c")


class TestLabelBasics:
    def test_default_level(self):
        label = Label()
        assert label.default == DEFAULT_LEVEL

    def test_level_lookup_falls_back_to_default(self, cats):
        a, b, _ = cats
        label = Label({a: 3})
        assert label.level_of(a) == 3
        assert label.level_of(b) == DEFAULT_LEVEL

    def test_default_levels_are_normalized_away(self, cats):
        a, _, _ = cats
        label = Label({a: DEFAULT_LEVEL})
        assert label.categories() == frozenset()

    def test_rejects_out_of_range_levels(self, cats):
        a, _, _ = cats
        with pytest.raises(LabelError):
            Label({a: 7})
        with pytest.raises(LabelError):
            Label(default=-1)

    def test_rejects_non_category_keys(self):
        with pytest.raises(LabelError):
            Label({"not-a-category": 2})

    def test_equality_and_hash(self, cats):
        a, _, _ = cats
        assert Label({a: 2}) == Label({a: 2})
        assert hash(Label({a: 2})) == hash(Label({a: 2}))
        assert Label({a: 2}) != Label({a: 3})

    def test_with_level_returns_new_label(self, cats):
        a, _, _ = cats
        original = Label()
        raised = original.with_level(a, 3)
        assert original.level_of(a) == DEFAULT_LEVEL
        assert raised.level_of(a) == 3


class TestFlow:
    def test_flow_to_higher_level_allowed(self, cats):
        a, _, _ = cats
        low = Label({a: 1})
        high = Label({a: 3})
        assert low.can_flow_to(high)
        assert not high.can_flow_to(low)

    def test_flow_equal_labels(self, cats):
        a, _, _ = cats
        label = Label({a: 2})
        assert label.can_flow_to(label)

    def test_privilege_bypasses_category(self, cats):
        a, _, _ = cats
        high = Label({a: 3})
        low = Label({a: 0})
        assert not high.can_flow_to(low)
        assert high.can_flow_to(low, privileges={a})

    def test_privilege_only_bypasses_owned_category(self, cats):
        a, b, _ = cats
        tainted = Label({a: 3, b: 3})
        clean = Label()
        assert not tainted.can_flow_to(clean, privileges={a})
        assert tainted.can_flow_to(clean, privileges={a, b})

    def test_default_mismatch_blocks_flow(self):
        secret_by_default = Label(default=3)
        public = Label(default=0)
        assert not secret_by_default.can_flow_to(public)
        assert public.can_flow_to(secret_by_default)


class TestLattice:
    def test_join_takes_max(self, cats):
        a, b, _ = cats
        joined = Label({a: 3}).join(Label({b: 0}))
        assert joined.level_of(a) == 3
        assert joined.level_of(b) == max(0, DEFAULT_LEVEL) or True
        # b explicitly 0 in one side, default 1 in the other: max = 1
        assert joined.level_of(b) == 1

    def test_meet_takes_min(self, cats):
        a, _, _ = cats
        met = Label({a: 3}).meet(Label({a: 0}))
        assert met.level_of(a) == 0

    def test_join_upper_bounds_both(self, cats):
        a, b, c = cats
        x = Label({a: 2, b: 0})
        y = Label({b: 3, c: 0})
        j = x.join(y)
        assert x.can_flow_to(j)
        assert y.can_flow_to(j)

    def test_meet_lower_bounds_both(self, cats):
        a, b, c = cats
        x = Label({a: 2, b: 0})
        y = Label({b: 3, c: 0})
        m = x.meet(y)
        assert m.can_flow_to(x)
        assert m.can_flow_to(y)


@st.composite
def labels(draw):
    from repro.kernel import labels as L
    n = draw(st.integers(0, 3))
    cats = [L.Category(1000 + i) for i in range(n)]
    levels = {c: draw(st.integers(0, 3)) for c in cats}
    return Label(levels, default=draw(st.integers(0, 3)))


class TestLatticeProperties:
    @given(labels(), labels())
    def test_join_commutes(self, x, y):
        assert x.join(y) == y.join(x)

    @given(labels(), labels())
    def test_meet_commutes(self, x, y):
        assert x.meet(y) == y.meet(x)

    @given(labels(), labels(), labels())
    def test_flow_transitive(self, x, y, z):
        if x.can_flow_to(y) and y.can_flow_to(z):
            assert x.can_flow_to(z)

    @given(labels())
    def test_flow_reflexive(self, x):
        assert x.can_flow_to(x)

    @given(labels(), labels())
    def test_join_is_least_upper_bound_membership(self, x, y):
        j = x.join(y)
        assert x.can_flow_to(j) and y.can_flow_to(j)


class TestPrivilegeSet:
    def test_grant_and_drop_are_pure(self, cats):
        a, b, _ = cats
        base = PrivilegeSet()
        grown = base.grant(a, b)
        assert not base.owns(a)
        assert grown.owns(a) and grown.owns(b)
        shrunk = grown.drop(a)
        assert grown.owns(a)
        assert not shrunk.owns(a) and shrunk.owns(b)

    def test_union(self, cats):
        a, b, _ = cats
        u = PrivilegeSet(frozenset({a})).union(PrivilegeSet(frozenset({b})))
        assert u.owns(a) and u.owns(b)
        assert len(u) == 2


class TestCinderChecks:
    def test_use_reserve_requires_observe_and_modify(self, cats):
        a, _, _ = cats
        thread_label = Label({a: 1})
        # Reserve above the thread: can't observe.
        secret_reserve = Label({a: 3})
        assert not can_use_reserve(thread_label, NO_PRIVILEGES,
                                   secret_reserve)
        # Reserve below the thread: can observe, can't modify.
        public_reserve = Label({a: 0})
        assert can_observe(thread_label, NO_PRIVILEGES, public_reserve)
        assert not can_modify(thread_label, NO_PRIVILEGES, public_reserve)
        assert not can_use_reserve(thread_label, NO_PRIVILEGES,
                                   public_reserve)
        # Same level: both.
        assert can_use_reserve(thread_label, NO_PRIVILEGES, Label({a: 1}))

    def test_check_helpers_raise(self, cats):
        a, _, _ = cats
        with pytest.raises(LabelError):
            check_observe(Label(), NO_PRIVILEGES, Label({a: 3}))
        with pytest.raises(LabelError):
            check_modify(Label({a: 3}), NO_PRIVILEGES, Label())

    def test_privileged_thread_passes_checks(self, cats):
        a, _, _ = cats
        privs = PrivilegeSet(frozenset({a}))
        check_observe(Label(), privs, Label({a: 3}))
        check_modify(Label({a: 3}), privs, Label())
