"""Tests for threads, address spaces, and gate-call billing."""

import pytest

from repro.core.reserve import Reserve
from repro.errors import GateError, LabelError, ObjectError, SchedulerError
from repro.kernel.address_space import AddressSpace
from repro.kernel.gate import Gate
from repro.kernel.labels import Label, PrivilegeSet, fresh_category
from repro.kernel.segment import Segment
from repro.kernel.thread_obj import Thread, ThreadState


def make_thread_with_reserve(level=10.0, name="t"):
    thread = Thread(name=name)
    reserve = Reserve(level=level, name=f"{name}.reserve")
    thread.attach_reserve(reserve)
    return thread, reserve


class TestThreadReserves:
    def test_first_attach_becomes_active(self):
        thread, reserve = make_thread_with_reserve()
        assert thread.active_reserve is reserve

    def test_set_active_reserve_switches_billing(self):
        thread, first = make_thread_with_reserve()
        second = Reserve(level=5.0, name="second")
        thread.set_active_reserve(second)
        thread.charge(1.0)
        assert second.level == pytest.approx(4.0)
        assert first.level == pytest.approx(10.0)

    def test_has_energy_any_reserve(self):
        thread, first = make_thread_with_reserve(level=0.0)
        assert not thread.has_energy()
        second = Reserve(level=1.0)
        thread.attach_reserve(second)
        assert thread.has_energy()

    def test_detach_reaims_active(self):
        thread, first = make_thread_with_reserve()
        second = Reserve(level=5.0)
        thread.attach_reserve(second)
        thread.detach_reserve(first)
        assert thread.active_reserve is second

    def test_charge_without_reserve_raises(self):
        thread = Thread()
        with pytest.raises(SchedulerError):
            thread.charge(1.0)

    def test_charge_negative_raises(self):
        thread, _ = make_thread_with_reserve()
        with pytest.raises(SchedulerError):
            thread.charge(-1.0)

    def test_kill_clears_state(self):
        thread, _ = make_thread_with_reserve()
        thread.kill()
        assert thread.state is ThreadState.DEAD
        assert not thread.alive


class TestAddressSpace:
    def test_map_and_resolve(self):
        space = AddressSpace()
        seg = Segment(size=100)
        space.map_segment(seg, 0x1000)
        assert space.resolve(0x1050).segment is seg

    def test_overlap_rejected(self):
        space = AddressSpace()
        space.map_segment(Segment(size=100), 0x1000)
        with pytest.raises(ObjectError):
            space.map_segment(Segment(size=100), 0x1040)

    def test_unmap(self):
        space = AddressSpace()
        space.map_segment(Segment(size=10), 0x1000)
        space.unmap(0x1000)
        with pytest.raises(ObjectError):
            space.resolve(0x1000)

    def test_fault_on_unmapped(self):
        with pytest.raises(ObjectError):
            AddressSpace().resolve(0xdead)


class TestGateBilling:
    def test_caller_pays_for_service_work(self):
        """The §5.5.1 property: work in the server's space bills the
        caller's active reserve."""
        server_space = AddressSpace(name="daemon")

        def service(thread, request):
            # The daemon does 2 J of work on behalf of the caller.
            thread.charge(2.0)
            return "done"

        gate = Gate(service, target_space=server_space, name="svc")
        caller, reserve = make_thread_with_reserve(level=10.0)
        assert gate.call(caller, None) == "done"
        assert reserve.level == pytest.approx(8.0)
        assert gate.call_count == 1

    def test_thread_enters_and_exits_target_space(self):
        server_space = AddressSpace(name="daemon")
        observed = {}

        def service(thread, request):
            observed["space"] = thread.current_space
            observed["depth"] = thread.gate_depth
            return None

        gate = Gate(service, target_space=server_space)
        caller, _ = make_thread_with_reserve()
        home = AddressSpace(name="home")
        caller.home_space = home
        gate.call(caller)
        assert observed["space"] is server_space
        assert observed["depth"] == 1
        assert caller.current_space is home
        assert caller.gate_depth == 0

    def test_space_restored_on_service_exception(self):
        def service(thread, request):
            raise ValueError("boom")

        gate = Gate(service, target_space=AddressSpace())
        caller, _ = make_thread_with_reserve()
        with pytest.raises(ValueError):
            gate.call(caller)
        assert caller.gate_depth == 0

    def test_label_blocks_unprivileged_caller(self):
        secret = fresh_category("secret")
        gate = Gate(lambda t, r: "x", label=Label({secret: 3}))
        caller, _ = make_thread_with_reserve()
        with pytest.raises(LabelError):
            gate.call(caller)
        caller.privileges = PrivilegeSet(frozenset({secret}))
        assert gate.call(caller) == "x"

    def test_gate_grants_temporary_privilege(self):
        cat = fresh_category("netd-pool")
        grants = PrivilegeSet(frozenset({cat}))
        seen = {}

        def service(thread, request):
            seen["owns"] = thread.privileges.owns(cat)
            return None

        gate = Gate(service, grants=grants)
        caller, _ = make_thread_with_reserve()
        gate.call(caller)
        assert seen["owns"] is True
        assert not caller.privileges.owns(cat)

    def test_recursion_limit(self):
        gate = Gate(lambda t, r: None, target_space=AddressSpace(),
                    max_depth=3)

        def recurse(thread, request):
            if thread.gate_depth < 10:
                inner.call(thread, request)
            return None

        inner = Gate(recurse, target_space=AddressSpace(), max_depth=3)
        caller, _ = make_thread_with_reserve()
        with pytest.raises(GateError):
            inner.call(caller)

    def test_dead_gate_rejects_calls(self):
        gate = Gate(lambda t, r: None)
        gate.mark_dead()
        caller, _ = make_thread_with_reserve()
        with pytest.raises(Exception):
            gate.call(caller)


class TestSegment:
    def test_read_write_roundtrip(self):
        seg = Segment(size=4)
        seg.write(b"abcd")
        assert seg.read() == b"abcd"
        assert seg.read(1, 2) == b"bc"

    def test_write_grows_segment(self):
        seg = Segment(size=0)
        seg.write(b"hello", offset=3)
        assert seg.size == 8
        assert seg.read(0, 3) == b"\x00\x00\x00"

    def test_resize_shrink_and_grow(self):
        seg = Segment(size=4)
        seg.write(b"abcd")
        seg.resize(2)
        assert seg.read() == b"ab"
        seg.resize(4)
        assert seg.read() == b"ab\x00\x00"

    def test_out_of_bounds_read(self):
        with pytest.raises(ObjectError):
            Segment(size=2).read(0, 5)
