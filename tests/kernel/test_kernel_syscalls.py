"""Tests for the Kernel facade and the Figure 5 syscall layer."""

import pytest

from repro.core.reserve import Reserve
from repro.core.tap import Tap, TapType
from repro.errors import (LabelError, NoSuchObjectError, ObjectTypeError)
from repro.kernel import syscalls
from repro.kernel.labels import Label, PrivilegeSet, fresh_category
from repro.kernel.objects import ObjRef, ObjectType


@pytest.fixture
def shell(kernel):
    """An unconstrained thread performing syscalls."""
    return kernel.create_thread(name="shell")


class TestKernelFacade:
    def test_battery_registered_under_root(self, kernel):
        root_id = kernel.root_container.object_id
        battery = kernel.battery
        assert kernel.resolve(ObjRef(root_id, battery.object_id)) is battery

    def test_resolve_type_checked(self, kernel):
        root_id = kernel.root_container.object_id
        battery = kernel.battery
        with pytest.raises(ObjectTypeError):
            kernel.resolve(ObjRef(root_id, battery.object_id),
                           ObjectType.THREAD)

    def test_resolve_requires_container_membership(self, kernel):
        other = kernel.create_container(name="other")
        reserve = kernel.create_reserve(name="r")
        with pytest.raises(NoSuchObjectError):
            kernel.resolve(ObjRef(other.object_id, reserve.object_id))

    def test_delete_container_revokes_reserves_and_taps(self, kernel):
        container = kernel.create_container(name="app")
        reserve = kernel.create_reserve(container=container, name="r")
        tap = kernel.create_tap(kernel.battery, reserve, rate=1.0,
                                container=container, name="t")
        graph = kernel.energy_graph
        assert reserve in graph.reserves
        kernel.delete(kernel.ref_for(container))
        assert not reserve.alive
        assert not tap.alive
        assert reserve not in graph.reserves
        assert tap not in graph.taps

    def test_ref_for_roundtrip(self, kernel):
        reserve = kernel.create_reserve(name="r")
        assert kernel.resolve(kernel.ref_for(reserve)) is reserve


class TestFigure5Sequence:
    def test_energywrap_syscall_sequence(self, kernel, shell):
        """The literal Figure 5 call sequence."""
        container_id = kernel.root_container.object_id
        res_id = syscalls.reserve_create(kernel, shell, container_id)
        res = ObjRef(container_id, res_id)
        tap_id = syscalls.tap_create(
            kernel, shell, container_id,
            kernel.ref_for(kernel.battery), res)
        tap_ref = ObjRef(container_id, tap_id)
        # Limit the child to 1 mW.
        syscalls.tap_set_rate(kernel, shell, tap_ref,
                              syscalls.TAP_TYPE_CONST, 1)
        tap = kernel.resolve(tap_ref)
        assert isinstance(tap, Tap)
        assert tap.rate == pytest.approx(1e-3)  # mW -> W

        child = kernel.create_thread(name="child")
        syscalls.self_set_active_reserve(kernel, child, res)
        assert child.active_reserve is kernel.resolve(res)

    def test_reserve_transfer_and_level(self, kernel, shell):
        container_id = kernel.root_container.object_id
        res_id = syscalls.reserve_create(kernel, shell, container_id)
        res = ObjRef(container_id, res_id)
        battery_ref = kernel.ref_for(kernel.battery)
        moved = syscalls.reserve_transfer(kernel, shell, battery_ref, res,
                                          100.0)
        assert moved == pytest.approx(100.0)
        assert syscalls.reserve_level(kernel, shell, res) == pytest.approx(
            100.0)

    def test_reserve_split(self, kernel, shell):
        container_id = kernel.root_container.object_id
        res_id = syscalls.reserve_create(kernel, shell, container_id)
        res = ObjRef(container_id, res_id)
        syscalls.reserve_transfer(kernel, shell,
                                  kernel.ref_for(kernel.battery), res,
                                  1.0)
        # The §3.2 example: 1000 mJ -> 800 + 200.
        child_id = syscalls.reserve_split(kernel, shell, res, 0.2)
        child = ObjRef(container_id, child_id)
        assert syscalls.reserve_level(kernel, shell, res) == pytest.approx(
            0.8)
        assert syscalls.reserve_level(kernel, shell,
                                      child) == pytest.approx(0.2)

    def test_reserve_delete_with_reclaim(self, kernel, shell):
        container_id = kernel.root_container.object_id
        res_id = syscalls.reserve_create(kernel, shell, container_id)
        res = ObjRef(container_id, res_id)
        battery_ref = kernel.ref_for(kernel.battery)
        syscalls.reserve_transfer(kernel, shell, battery_ref, res, 50.0)
        before = kernel.battery.level
        syscalls.reserve_delete(kernel, shell, res, reclaim_to=battery_ref)
        assert kernel.battery.level == pytest.approx(before + 50.0)
        with pytest.raises(NoSuchObjectError):
            syscalls.reserve_level(kernel, shell, res)

    def test_tap_delete_revokes_flow(self, kernel, shell):
        container_id = kernel.root_container.object_id
        res_id = syscalls.reserve_create(kernel, shell, container_id)
        res = ObjRef(container_id, res_id)
        tap_id = syscalls.tap_create(kernel, shell, container_id,
                                     kernel.ref_for(kernel.battery), res)
        tap_ref = ObjRef(container_id, tap_id)
        syscalls.tap_set_rate(kernel, shell, tap_ref,
                              syscalls.TAP_TYPE_CONST, 1000)
        syscalls.tap_delete(kernel, shell, tap_ref)
        kernel.energy_graph.step(1.0)
        assert syscalls.reserve_level(kernel, shell, res) == 0.0


class TestSyscallSecurity:
    def test_unprivileged_thread_cannot_touch_labeled_reserve(self, kernel):
        secret = fresh_category("app")
        owner = kernel.create_thread(
            name="owner", privileges=PrivilegeSet(frozenset({secret})))
        container_id = kernel.root_container.object_id
        res_id = syscalls.reserve_create(kernel, owner, container_id,
                                         label=Label({secret: 3}))
        res = ObjRef(container_id, res_id)

        intruder = kernel.create_thread(name="intruder")
        with pytest.raises(LabelError):
            syscalls.reserve_level(kernel, intruder, res)
        with pytest.raises(LabelError):
            syscalls.reserve_transfer(
                kernel, intruder, kernel.ref_for(kernel.battery), res, 1.0)
        # The owner can.
        assert syscalls.reserve_level(kernel, owner, res) == 0.0

    def test_tap_embeds_creator_privileges(self, kernel):
        """§3.5: 'taps can have privileges embedded in them'."""
        secret = fresh_category("app")
        owner = kernel.create_thread(
            name="owner", privileges=PrivilegeSet(frozenset({secret})))
        container_id = kernel.root_container.object_id
        res_id = syscalls.reserve_create(kernel, owner, container_id,
                                         label=Label({secret: 3}))
        res = ObjRef(container_id, res_id)
        tap_id = syscalls.tap_create(kernel, owner, container_id,
                                     kernel.ref_for(kernel.battery), res)
        tap = kernel.resolve(ObjRef(container_id, tap_id))
        assert isinstance(tap, Tap)
        assert tap.privileges.owns(secret)
        # The tap keeps flowing into the protected reserve even though
        # no current thread could do the transfer directly.
        tap.set_rate(1.0)
        kernel.energy_graph.step(1.0)
        # (decay is on by default in a kernel graph, hence the loose rel)
        assert kernel.resolve(res).level == pytest.approx(1.0, rel=5e-3)

    def test_tap_set_rate_requires_modify_on_tap(self, kernel):
        """§5.4: only the task manager may retune foreground taps."""
        secret = fresh_category("tm")
        manager = kernel.create_thread(
            name="manager", privileges=PrivilegeSet(frozenset({secret})))
        container_id = kernel.root_container.object_id
        res_id = syscalls.reserve_create(kernel, manager, container_id)
        res = ObjRef(container_id, res_id)
        # Level 0 = integrity: others may observe the tap but cannot
        # write to it without owning the category.
        tap_id = syscalls.tap_create(kernel, manager, container_id,
                                     kernel.ref_for(kernel.battery), res,
                                     label=Label({secret: 0}))
        tap_ref = ObjRef(container_id, tap_id)
        app = kernel.create_thread(name="app")
        with pytest.raises(LabelError):
            syscalls.tap_set_rate(kernel, app, tap_ref,
                                  syscalls.TAP_TYPE_CONST, 300)
        syscalls.tap_set_rate(kernel, manager, tap_ref,
                              syscalls.TAP_TYPE_CONST, 300)
