"""Tests for the GPS device and the pooled fix daemon."""

import pytest

from repro.sensors.gps import (FixOpState, GpsDaemon, GpsDevice,
                               GpsPowerParams, GpsState)
from repro.sim.process import WaitFor
from repro.units import mW

from ..conftest import make_system


class TestGpsDevice:
    def test_cold_fix_timing(self):
        device = GpsDevice()
        ready = device.start_acquisition(0.0)
        assert ready == pytest.approx(12.0)
        device.tick(11.9)
        assert device.state is GpsState.ACQUIRING
        assert device.last_fix is None
        device.tick(12.0)
        assert device.state is GpsState.TRACKING
        assert device.last_fix is not None

    def test_linger_then_off(self):
        device = GpsDevice()
        device.start_acquisition(0.0)
        device.tick(12.0)
        device.tick(16.9)
        assert device.state is GpsState.TRACKING
        device.tick(17.1)
        assert device.state is GpsState.OFF

    def test_power_by_state(self):
        params = GpsPowerParams()
        device = GpsDevice(params)
        assert device.power_above_baseline(0.0) == 0.0
        device.start_acquisition(0.0)
        assert device.power_above_baseline(1.0) == params.acquisition_watts
        device.tick(12.0)
        assert device.power_above_baseline(12.5) == params.tracking_watts

    def test_acquisition_cost(self):
        params = GpsPowerParams()
        assert params.acquisition_cost == pytest.approx(0.36 * 12.0)

    def test_fix_freshness(self):
        device = GpsDevice()
        device.start_acquisition(0.0)
        device.tick(12.0)
        fix = device.last_fix
        assert fix.fresh(30.0, device.params.fix_validity_s)
        assert not fix.fresh(50.0, device.params.fix_validity_s)


class TestGpsDaemonUnit:
    def make(self, graph):
        device = GpsDevice()
        now = {"t": 0.0}
        daemon = GpsDaemon(graph, device, clock=lambda: now["t"])
        return device, daemon, now

    def test_funded_request_acquires(self, graph):
        device, daemon, now = self.make(graph)
        thread_reserve = graph.create_reserve(name="app",
                                              source=graph.root,
                                              level=10.0)
        from repro.kernel.thread_obj import Thread
        thread = Thread(name="app")
        thread.set_active_reserve(thread_reserve)
        op = daemon.request_fix(thread)
        assert op.state is FixOpState.ACQUIRING
        now["t"] = 12.0
        daemon.step(12.0)
        assert op.state is FixOpState.DONE
        assert op.fix is not None
        assert daemon.pooled_acquisitions == 1

    def test_fresh_fix_is_free_and_instant(self, graph):
        device, daemon, now = self.make(graph)
        from repro.kernel.thread_obj import Thread
        rich = graph.create_reserve(name="rich", source=graph.root,
                                    level=10.0)
        t1 = Thread(name="first")
        t1.set_active_reserve(rich)
        daemon.request_fix(t1)
        now["t"] = 12.0
        daemon.step(12.0)
        # Second app, broke, arrives while the fix is fresh.
        broke = graph.create_reserve(name="broke")
        t2 = Thread(name="second")
        t2.set_active_reserve(broke)
        now["t"] = 20.0
        op = daemon.request_fix(t2)
        assert op.state is FixOpState.DONE
        assert op.billed_joules == 0.0
        assert daemon.cached_fixes_served == 1

    def test_poor_requesters_pool(self, graph):
        device, daemon, now = self.make(graph)
        from repro.kernel.thread_obj import Thread
        ops = []
        reserves = []
        for name in ("a", "b"):
            reserve = graph.create_reserve(
                name=name, source=graph.root,
                level=0.6 * daemon.margin
                * device.params.acquisition_cost)
            thread = Thread(name=name)
            thread.set_active_reserve(reserve)
            ops.append(daemon.request_fix(thread))
            reserves.append(reserve)
        # Neither alone could fund it; together they did.
        assert all(op.state is FixOpState.ACQUIRING for op in ops)
        assert daemon.pooled_acquisitions == 1

    def test_unfunded_request_waits(self, graph):
        device, daemon, now = self.make(graph)
        from repro.kernel.thread_obj import Thread
        broke = graph.create_reserve(name="broke")
        thread = Thread(name="app")
        thread.set_active_reserve(broke)
        op = daemon.request_fix(thread)
        assert op.state is FixOpState.WAITING_ENERGY
        assert device.state is GpsState.OFF

    def test_tracking_receiver_serves_current_fix_not_stale(self, graph):
        """A live TRACKING receiver's position is current by
        definition: a request arriving after ``fix_validity_s`` must
        ride it for free, not burn a pooled re-acquisition that
        ``start_acquisition`` would no-op and answer with a stale fix."""
        device, daemon, now = self.make(graph)
        from repro.kernel.thread_obj import Thread
        rich = graph.create_reserve(name="rich", source=graph.root,
                                    level=10.0)
        t1 = Thread(name="first")
        t1.set_active_reserve(rich)
        daemon.request_fix(t1)
        now["t"] = 12.0
        daemon.step(12.0)
        assert device.state is GpsState.TRACKING
        # Far past the delivered fix's validity, receiver still on.
        now["t"] = 44.0
        broke = graph.create_reserve(name="broke")
        t2 = Thread(name="late")
        t2.set_active_reserve(broke)
        pool_before = daemon.pool.level
        op = daemon.request_fix(t2)
        assert op.state is FixOpState.DONE
        assert op.fix.acquired_at == pytest.approx(44.0)  # current
        assert op.billed_joules == 0.0
        assert daemon.pooled_acquisitions == 1           # no re-burn
        assert device.acquisitions == 1
        assert daemon.pool.level == pool_before


class TestGpsInSystem:
    def test_pooled_fix_in_full_engine(self):
        system = make_system()
        device = GpsDevice()
        daemon = GpsDaemon(system.graph, device,
                           clock=lambda: system.clock.now)
        system.add_device(stepper=daemon.step,
                          power=device.power_above_baseline)

        fixes = {}

        def navigator(name):
            def program(ctx):
                op = daemon.request_fix(ctx.thread, owner=name)
                yield WaitFor(lambda: op.state is FixOpState.DONE)
                fixes[name] = (ctx.now, op.fix)
            return program

        for name in ("maps", "weather"):
            reserve = system.powered_reserve(mW(300), name=name)
            system.spawn(navigator(name), name, reserve=reserve)
        system.run(40.0)
        system.meter.flush()

        assert set(fixes) == {"maps", "weather"}
        # One acquisition served both (pooling/sharing).
        assert device.acquisitions == 1
        # The acquisition draw reached the meter.
        peak = system.meter.samples()[1].max()
        assert peak > system.model.idle_watts + 0.3
