"""The accelerometer daemon: warm-up amortization, ServiceCall reads,
and fast-forward parity.

The contract mirrors the GPS daemon's: blocking ``sample_request``
reads never veto the engine's idle fast-forward, warm-up completions
land on the bit-identical tick in fast and tick-by-tick runs, and the
billing (one warm-up per burst, per-sample conversion energy) is
independent of the execution mode.
"""

import pytest

from repro.sensors.accel import (AccelDaemon, AccelDevice,
                                 AccelPowerParams, AccelState,
                                 SampleOpState, sample_request)
from repro.sim.process import Sleep

from ..conftest import make_system


class TestAccelDevice:
    def test_warmup_timing(self):
        device = AccelDevice()
        ready = device.power_up(0.0)
        assert ready == pytest.approx(device.params.warmup_s)
        device.tick(device.params.warmup_s - 0.01)
        assert device.state is AccelState.WARMING
        device.tick(device.params.warmup_s)
        assert device.state is AccelState.READY

    def test_linger_then_off(self):
        device = AccelDevice()
        device.power_up(0.0)
        device.tick(0.35)
        device.tick(0.35 + device.params.linger_s - 0.1)
        assert device.state is AccelState.READY
        device.tick(0.35 + device.params.linger_s + 0.1)
        assert device.state is AccelState.OFF

    def test_power_by_state(self):
        params = AccelPowerParams()
        device = AccelDevice(params)
        assert device.power_above_baseline(0.0) == 0.0
        device.power_up(0.0)
        assert device.power_above_baseline(0.1) == params.active_watts
        device.tick(params.warmup_s)
        assert device.power_above_baseline(0.5) == params.active_watts


class TestAccelDaemonUnit:
    def test_first_reader_pays_warmup_then_shares(self, system):
        daemon = system.attach_accel()
        reserve = system.powered_reserve(0.05, name="app")
        system.battery_reserve.transfer_to(reserve, 5.0)
        thread = system.kernel.create_thread(name="reader")
        thread.set_active_reserve(reserve)
        op = daemon.request_sample(thread)
        assert op.state is SampleOpState.WAITING_WARMUP
        assert op.billed_joules == pytest.approx(
            daemon.device.params.warmup_cost)
        # A second reader joins the same warm-up for free.
        op2 = daemon.request_sample(thread)
        assert op2.billed_joules == 0.0
        assert daemon.waiting_count == 2
        # The ready tick delivers to both.
        daemon.step(daemon.device.params.warmup_s + 0.01)
        assert op.state is SampleOpState.DONE
        assert op2.state is SampleOpState.DONE
        assert op.sample.taken_at == op2.sample.taken_at

    def test_ready_sensor_serves_synchronously(self, system):
        daemon = system.attach_accel()
        reserve = system.powered_reserve(0.05, name="app")
        system.battery_reserve.transfer_to(reserve, 5.0)
        thread = system.kernel.create_thread(name="reader")
        thread.set_active_reserve(reserve)
        daemon.request_sample(thread)
        daemon.step(daemon.device.params.warmup_s + 0.01)
        op = daemon.request_sample(thread)
        assert op.state is SampleOpState.DONE
        assert op.billed_joules == pytest.approx(
            daemon.device.params.sample_energy_j)
        assert daemon.shared_samples == 1


def _sampling_system(fast_forward: bool):
    system = make_system(seed=9, record_interval_s=1.0,
                         fast_forward=fast_forward)
    daemon = system.attach_accel()
    reserve = system.powered_reserve(0.05, name="sampler")
    system.battery_reserve.transfer_to(reserve, 20.0)
    delivered = []

    def program(ctx):
        for _ in range(3):
            sample = yield sample_request(daemon)
            delivered.append((ctx.now, sample.taken_at, sample.ax))
            yield Sleep(10.0)

    system.spawn(program, "sampler", reserve=reserve)
    return system, daemon, delivered


class TestAccelFastForwardParity:
    def test_sample_timing_bit_identical_and_macro_stepped(self):
        fast_sys, fast_daemon, fast_out = _sampling_system(True)
        slow_sys, slow_daemon, slow_out = _sampling_system(False)
        fast_sys.run(60.0)
        slow_sys.run(60.0)
        assert len(fast_out) == len(slow_out) == 3
        # Delivery instants and sample contents are bit-identical:
        # the warm-up end is a declared event the macro span lands on.
        assert fast_out == slow_out
        assert fast_daemon.device.warmups == slow_daemon.device.warmups
        assert fast_daemon.warmups_billed == slow_daemon.warmups_billed
        # The blocking reads did not veto fast-forward.
        assert fast_sys.fast_forwarded_ticks > 3_000
        assert fast_sys.span_refusals == 0
        # Billing is mode-independent.
        fast_reserve = fast_sys.graph.reserves[-1]
        slow_reserve = slow_sys.graph.reserves[-1]
        assert fast_reserve.level == pytest.approx(slow_reserve.level,
                                                   rel=1e-9)
        assert fast_sys.meter.total_energy_joules == pytest.approx(
            slow_sys.meter.total_energy_joules, rel=1e-9)

    def test_zero_linger_still_delivers(self):
        """Regression: with linger_s=0 the ready tick must deliver to
        the waiting readers before the sensor powers back off — the
        ready transition must not also expire the linger."""
        system = make_system(seed=2, record_interval_s=1.0)
        daemon = system.attach_accel(
            params=AccelPowerParams(linger_s=0.0))
        got = []

        def program(ctx):
            sample = yield sample_request(daemon)
            got.append(sample.taken_at)

        reserve = system.powered_reserve(0.02, name="r")
        system.battery_reserve.transfer_to(reserve, 2.0)
        system.spawn(program, "reader", reserve=reserve)
        system.run(5.0)
        assert len(got) == 1
        assert daemon.waiting_count == 0
        assert daemon.device.state.value == "off"

    def test_burst_amortizes_one_warmup(self):
        system = make_system(seed=3, record_interval_s=1.0)
        daemon = system.attach_accel()
        results = []

        def reader(name):
            def program(ctx):
                sample = yield sample_request(daemon)
                results.append((name, ctx.now, sample.taken_at))
            return program

        for i in range(4):
            reserve = system.powered_reserve(0.02, name=f"r{i}")
            system.battery_reserve.transfer_to(reserve, 2.0)
            system.spawn(reader(f"p{i}"), f"p{i}", reserve=reserve)
        system.run(5.0)
        assert len(results) == 4
        assert daemon.device.warmups == 1
        assert daemon.warmups_billed == 1
        # Everyone rode the same warm-up: one shared delivery instant.
        assert len({taken for _, _, taken in results}) == 1
