"""Tests for the power-state registry and the HTC Dream model (§4.2)."""

import pytest

from repro.energy.cpu import (ARITHMETIC_LOOP, MEMORY_STREAM, CpuComponent,
                              InstructionMix)
from repro.energy.model import (DREAM_BACKLIGHT_W, DREAM_CPU_ARITHMETIC_W,
                                DREAM_CPU_WORST_W, DREAM_IDLE_W,
                                CpuPowerParams, DreamPowerModel,
                                laptop_model)
from repro.energy.states import PowerStateRegistry
from repro.errors import HardwareError


class TestRegistry:
    def test_register_and_lookup(self):
        registry = PowerStateRegistry(baseline_watts=0.699)
        registry.register("cpu", "active", 0.137)
        assert registry.power("cpu", "active") == pytest.approx(0.137)
        assert registry.has("cpu", "active")
        assert not registry.has("cpu", "overdrive")

    def test_unknown_state_raises(self):
        with pytest.raises(HardwareError):
            PowerStateRegistry().power("gps", "on")

    def test_system_power_sums_increments(self):
        registry = PowerStateRegistry(baseline_watts=0.699)
        registry.register("cpu", "active", 0.137)
        registry.register("backlight", "on", 0.555)
        total = registry.system_power({"cpu": "active", "backlight": "on"})
        assert total == pytest.approx(0.699 + 0.137 + 0.555)

    def test_estimate_energy(self):
        registry = PowerStateRegistry(baseline_watts=0.5)
        registry.register("cpu", "active", 0.1)
        energy = registry.estimate_energy([("cpu", "active", 10.0)],
                                          include_baseline_for=10.0)
        assert energy == pytest.approx(0.5 * 10 + 0.1 * 10)

    def test_components_and_states(self):
        registry = PowerStateRegistry()
        registry.register("cpu", "idle", 0.0)
        registry.register("cpu", "active", 0.1)
        registry.register("radio", "active", 0.4)
        assert registry.components() == ["cpu", "radio"]
        assert registry.states_of("cpu") == ["active", "idle"]


class TestDreamConstants:
    """The §4.2 measurements, verbatim."""

    def test_idle_699mw(self):
        assert DREAM_IDLE_W == pytest.approx(0.699)

    def test_backlight_555mw(self):
        assert DREAM_BACKLIGHT_W == pytest.approx(0.555)

    def test_cpu_137mw(self):
        assert DREAM_CPU_ARITHMETIC_W == pytest.approx(0.137)

    def test_memory_worst_case_13_percent(self):
        assert DREAM_CPU_WORST_W == pytest.approx(0.137 * 1.13)

    def test_model_system_power(self):
        model = DreamPowerModel()
        assert model.system_power() == pytest.approx(0.699)
        assert model.system_power(cpu_busy=True) == pytest.approx(0.836)
        assert model.system_power(cpu_busy=True, backlight_on=True,
                                  radio_watts=0.475) == pytest.approx(
            0.699 + 0.137 + 0.555 + 0.475)

    def test_registry_compilation(self):
        registry = DreamPowerModel().registry()
        assert registry.baseline_watts == pytest.approx(0.699)
        assert registry.power("backlight", "on") == pytest.approx(0.555)
        assert registry.power("radio", "active") == pytest.approx(0.475)

    def test_laptop_model_has_no_activation_spike(self):
        model = laptop_model()
        assert model.radio.activation_cost == 0.0
        assert model.radio.idle_timeout_s == 0.0
        assert model.idle_watts > 1.0  # laptops idle hot


class TestCpuComponent:
    def test_worst_case_billing_overcharges_arithmetic(self):
        cpu = CpuComponent(mix=ARITHMETIC_LOOP)
        cpu.run(10.0)
        assert cpu.billed_energy_joules > cpu.true_energy_joules
        assert cpu.overbilling_fraction == pytest.approx(0.13, rel=0.05)

    def test_memory_stream_billed_close_to_truth(self):
        cpu = CpuComponent(mix=MEMORY_STREAM)
        cpu.run(10.0)
        # 80% memory: truth is 1.104x base, billing 1.13x.
        assert cpu.overbilling_fraction < 0.03

    def test_mix_must_sum_to_one(self):
        with pytest.raises(HardwareError):
            InstructionMix(integer=0.5, control=0.0, memory=0.0)

    def test_counters_enable_exact_billing(self):
        params = CpuPowerParams(assume_worst_case=False)
        cpu = CpuComponent(params=params, mix=ARITHMETIC_LOOP)
        cpu.run(10.0)
        assert cpu.billed_energy_joules == pytest.approx(
            cpu.true_energy_joules)

    def test_idle_accumulates_no_energy(self):
        cpu = CpuComponent()
        cpu.idle(5.0)
        assert cpu.true_energy_joules == 0.0
        assert cpu.idle_seconds == pytest.approx(5.0)
