"""Tests for the radio cost model (§4.3, §5.5.2)."""

import numpy as np
import pytest

from repro.energy.radio_model import RadioPowerParams
from repro.errors import EnergyError


@pytest.fixture
def params():
    return RadioPowerParams()


class TestCostSemantics:
    def test_single_byte_from_idle_costs_9_5J(self, params):
        """'With this workload, it costs 9.5 joules to send a single
        byte!'"""
        cost = params.send_cost(1, 1, seconds_since_activity=None)
        assert cost == pytest.approx(9.5, abs=0.01)

    def test_extension_rule_one_second(self, params):
        """'if the radio has been active for one second ... transmitting
        now only extends the active period by 1 second'."""
        cost = params.marginal_active_cost(1.0)
        assert cost == pytest.approx(params.plateau_watts * 1.0)

    def test_extension_rule_fifteen_seconds(self, params):
        """'transmitting now will extend the active period by an
        additional 15 seconds - the same action becomes much more
        expensive'."""
        cheap = params.send_cost(100, 1, seconds_since_activity=1.0)
        expensive = params.send_cost(100, 1, seconds_since_activity=15.0)
        assert expensive > 10 * cheap

    def test_extension_clamped_to_timeout(self, params):
        assert params.marginal_active_cost(500.0) == pytest.approx(
            params.plateau_watts * params.idle_timeout_s)

    def test_per_byte_dominance_inverts_for_bulk(self, params):
        """'small isolated transfers are about 1000 times more
        expensive, per byte, than large transfers' (§4.3)."""
        small = params.send_cost(1, 1, None) / 1
        bulk_bytes = 10_000_000
        bulk = params.send_cost(bulk_bytes, bulk_bytes // 1500,
                                seconds_since_activity=0.5) / bulk_bytes
        assert small / bulk > 500

    def test_negative_activity_rejected(self, params):
        with pytest.raises(EnergyError):
            params.marginal_active_cost(-1.0)


class TestCycleSynthesis:
    def test_jitter_stays_in_measured_envelope(self, params):
        rng = np.random.default_rng(0)
        for _ in range(200):
            jitter = params.sample_cycle_jitter(rng)
            joules = jitter * params.activation_joules_mean
            assert (params.activation_joules_min - 1e-9 <= joules
                    <= params.activation_joules_max + 1e-9)

    def test_flow_energy_components(self, params):
        energy = params.flow_energy(10.0, 1500, 10.0, rng=None)
        expected = (params.plateau_watts * 30.0
                    + params.per_packet_joules * 100
                    + params.per_byte_joules * 150_000)
        assert energy == pytest.approx(expected)

    def test_flow_energy_monotone_in_rate(self, params):
        energies = [params.flow_energy(r, 750, 10.0)
                    for r in (1, 5, 20, 40)]
        assert energies == sorted(energies)

    def test_transfer_seconds(self, params):
        assert params.transfer_seconds(30_000) == pytest.approx(1.0)

    def test_invalid_envelope_rejected(self):
        with pytest.raises(EnergyError):
            RadioPowerParams(activation_joules_min=12.0,
                             activation_joules_max=9.0)
