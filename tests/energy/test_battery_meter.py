"""Tests for the battery gauge (§4.1) and the simulated meter (§4.2)."""

import numpy as np
import pytest

from repro.energy.battery import Battery
from repro.energy.calibrate import (UsageInterval, intervals_from_gauge,
                                    refit_from_gauge)
from repro.energy.meter import PowerMeter
from repro.errors import EnergyError, HardwareError, SimulationError


class TestBattery:
    def test_gauge_is_coarse_integer(self):
        battery = Battery(capacity_joules=1000.0, charge_joules=567.8)
        assert battery.gauge() == 57
        assert isinstance(battery.gauge(), int)

    def test_drain_clamps_at_empty(self):
        battery = Battery(capacity_joules=100.0, charge_joules=10.0)
        assert battery.drain(25.0) == pytest.approx(10.0)
        assert battery.empty

    def test_charge_clamps_at_capacity(self):
        battery = Battery(capacity_joules=100.0, charge_joules=90.0)
        assert battery.charge(25.0) == pytest.approx(10.0)

    def test_gauge_history_must_be_ordered(self):
        battery = Battery()
        battery.record_gauge(1.0)
        with pytest.raises(HardwareError):
            battery.record_gauge(0.5)

    def test_invalid_construction(self):
        with pytest.raises(EnergyError):
            Battery(capacity_joules=0.0)
        with pytest.raises(EnergyError):
            Battery(capacity_joules=10.0, charge_joules=20.0)


class TestMeter:
    def test_samples_at_200ms(self):
        meter = PowerMeter()
        meter.feed(1.0, 1.0)
        times, watts = meter.samples()
        assert len(times) == 5
        assert np.allclose(watts, 1.0)

    def test_window_mean_of_varying_power(self):
        meter = PowerMeter()
        meter.feed(1.0, 0.1)
        meter.feed(3.0, 0.1)  # one 0.2 s window: mean 2.0
        _, watts = meter.samples()
        assert watts[0] == pytest.approx(2.0)

    def test_total_energy_exact(self):
        meter = PowerMeter()
        meter.feed(0.699, 10.0)
        assert meter.total_energy_joules == pytest.approx(6.99)

    def test_energy_between(self):
        meter = PowerMeter()
        meter.feed(2.0, 4.0)
        assert meter.energy_between(1.0, 3.0) == pytest.approx(4.0)

    def test_mean_power_between(self):
        meter = PowerMeter()
        meter.feed(0.5, 2.0)
        meter.feed(1.5, 2.0)
        assert meter.mean_power_between(0.0, 4.0) == pytest.approx(1.0)

    def test_time_and_energy_above_threshold(self):
        meter = PowerMeter()
        meter.feed(0.7, 1.0)
        meter.feed(1.2, 1.0)
        assert meter.time_above(1.0) == pytest.approx(1.0)
        assert meter.energy_above(1.0) == pytest.approx(1.2)

    def test_voltage_current_channels(self):
        meter = PowerMeter(supply_voltage=3.7)
        meter.feed(3.7, 0.4)
        _, volts, amps = meter.voltage_current_samples()
        assert np.allclose(volts, 3.7)
        assert np.allclose(amps, 1.0)

    def test_noise_is_seeded_and_bounded(self):
        rng = np.random.default_rng(7)
        meter = PowerMeter(noise_fraction=0.01, rng=rng)
        meter.feed(1.0, 10.0)
        _, watts = meter.samples()
        assert watts.std() > 0.0
        assert abs(watts.mean() - 1.0) < 0.01

    def test_flush_emits_partial_window(self):
        meter = PowerMeter()
        meter.feed(1.0, 0.1)
        assert len(meter.samples()[0]) == 0
        meter.flush()
        assert len(meter.samples()[0]) == 1

    def test_negative_power_rejected(self):
        with pytest.raises(SimulationError):
            PowerMeter().feed(-1.0, 1.0)


class TestFeedCohort:
    """The cohort-batched feed must be float-identical to feeding
    each meter alone — the independent scheduler's commit relies on
    it for bit-exact fleet parity."""

    @staticmethod
    def _meters(count, prehistory=()):
        meters = [PowerMeter() for _ in range(count)]
        for meter in meters:
            for watts, dt in prehistory:
                meter.feed(watts, dt)
        return meters

    def _check(self, prehistory, watts, dt):
        cohort = self._meters(3, prehistory)
        solo = self._meters(3, prehistory)
        cohort[0].feed_cohort(cohort[1:], watts, dt)
        for meter in solo:
            meter.feed(watts, dt)
        for a, b in zip(cohort, solo):
            assert a._sample_times == b._sample_times
            assert a._sample_watts == b._sample_watts
            assert a._sample_windows == b._sample_windows
            assert a.total_energy_joules == b.total_energy_joules
            assert a._window_time == b._window_time
            assert a._window_energy == b._window_energy
            assert a._now == b._now

    def test_whole_windows_from_clean_state(self):
        self._check((), 0.699, 1.0)

    def test_partial_window_carry_in_and_out(self):
        # 0.13 s of prehistory leaves a partial window; the cohort
        # feed must replay the drain step and the new tail exactly.
        self._check(((1.0, 0.13),), 0.3, 0.27)

    def test_sub_window_feed(self):
        self._check(((2.0, 0.05),), 0.7, 0.1)

    def test_long_span_cumsum_path(self):
        # >512 whole windows: feed() takes its vectorized branch;
        # the replayed increment chain must still match exactly.
        self._check(((1.0, 0.13),), 0.02, 200.0)

    def test_lead_state_is_unaffected_by_followers(self):
        lead_solo = self._meters(1, ((1.0, 0.13),))[0]
        cohort = self._meters(2, ((1.0, 0.13),))
        cohort[0].feed_cohort(cohort[1:], 0.5, 3.0)
        lead_solo.feed(0.5, 3.0)
        assert cohort[0].total_energy_joules == lead_solo.total_energy_joules
        assert cohort[0]._sample_times == lead_solo._sample_times


class TestCalibration:
    """§9: re-fitting the model from the coarse gauge."""

    def test_refit_recovers_planted_model(self):
        rng = np.random.default_rng(3)
        true_baseline, true_cpu, true_radio = 0.7, 0.14, 0.48
        intervals = []
        for _ in range(40):
            duration = float(rng.uniform(50, 200))
            cpu_busy = float(rng.uniform(0, duration))
            radio_busy = float(rng.uniform(0, duration))
            drained = (true_baseline * duration + true_cpu * cpu_busy
                       + true_radio * radio_busy)
            intervals.append(UsageInterval(
                duration, {"cpu": cpu_busy, "radio": radio_busy}, drained))
        baseline, watts = refit_from_gauge(intervals, ["cpu", "radio"])
        assert baseline == pytest.approx(true_baseline, rel=0.02)
        assert watts["cpu"] == pytest.approx(true_cpu, rel=0.05)
        assert watts["radio"] == pytest.approx(true_radio, rel=0.05)

    def test_intervals_from_gauge_pairs_steps(self):
        gauge = [(0.0, 100), (100.0, 99), (200.0, 97)]
        busy = [(0.0, {"cpu": 0.0}), (100.0, {"cpu": 50.0}),
                (200.0, {"cpu": 120.0})]
        intervals = intervals_from_gauge(gauge, 1000.0, busy)
        assert len(intervals) == 2
        assert intervals[0].drained_joules == pytest.approx(10.0)
        assert intervals[1].busy_seconds["cpu"] == pytest.approx(70.0)

    def test_refit_requires_data(self):
        with pytest.raises(EnergyError):
            refit_from_gauge([], ["cpu"])

    def test_misaligned_logs_rejected(self):
        with pytest.raises(EnergyError):
            intervals_from_gauge([(0.0, 100)], 1000.0, [])
