"""Tests for the MSM7201A chipset, smdd, and rild (§4.1, §7)."""

import numpy as np
import pytest

from repro.core.reserve import Reserve
from repro.energy.battery import Battery
from repro.energy.radio_model import RadioPowerParams
from repro.errors import HardwareError
from repro.hw.msm7201a import ClosedArm9, Msm7201a, SharedMemoryMailbox
from repro.hw.rild import RildDaemon
from repro.hw.smdd import SmddDaemon
from repro.net.radio import RadioDevice


@pytest.fixture
def chipset():
    radio = RadioDevice(RadioPowerParams(jitter_sigma=0.0),
                        rng=np.random.default_rng(0))
    battery = Battery(capacity_joules=1000.0, charge_joules=421.0)
    return Msm7201a.build(radio, battery, clock=lambda: 0.0)


class TestMailbox:
    def test_round_trip(self):
        mailbox = SharedMemoryMailbox()
        mailbox.post_request({"cmd": "ping", "x": 1})
        request = mailbox.take_request()
        assert request == {"cmd": "ping", "x": 1}
        mailbox.post_reply({"ok": True})
        assert mailbox.read_reply() == {"ok": True}

    def test_busy_mailbox_rejects_second_request(self):
        mailbox = SharedMemoryMailbox()
        mailbox.post_request({"cmd": "a"})
        with pytest.raises(HardwareError):
            mailbox.post_request({"cmd": "b"})

    def test_reply_without_request_rejected(self):
        with pytest.raises(HardwareError):
            SharedMemoryMailbox().read_reply()

    def test_oversized_message_rejected(self):
        from repro.kernel.segment import Segment
        mailbox = SharedMemoryMailbox(Segment(size=32))
        with pytest.raises(HardwareError):
            mailbox.post_request({"cmd": "x" * 100})

    def test_rides_a_real_segment(self):
        mailbox = SharedMemoryMailbox()
        mailbox.post_request({"cmd": "battery_level"})
        # The bytes are actually in the shared segment.
        assert b"battery_level" in mailbox.segment.read()


class TestClosedArm9:
    def test_battery_gauge_is_integer_percent(self, chipset):
        reply = chipset.call({"cmd": "battery_level"})
        assert reply == {"ok": True, "level": 42}

    def test_radio_tx_activates_radio(self, chipset):
        reply = chipset.call({"cmd": "radio_tx", "nbytes": 3000,
                              "npackets": 2})
        assert reply["ok"]
        assert chipset.arm9.radio.is_active()
        status = chipset.call({"cmd": "radio_status"})
        assert status["active"] is True
        assert status["activations"] == 1

    def test_timeout_cannot_be_changed(self, chipset):
        """§4.3: 'Because the ARM9 is closed, Cinder cannot change
        this inactivity timeout.'"""
        reply = chipset.call({"cmd": "set_radio_timeout", "seconds": 5})
        assert reply["ok"] is False
        assert chipset.arm9.radio.params.idle_timeout_s == 20.0

    def test_unknown_command_is_error_reply_not_crash(self, chipset):
        reply = chipset.call({"cmd": "format_flash"})
        assert reply["ok"] is False

    def test_sms_and_gps(self, chipset):
        assert chipset.call({"cmd": "sms_send"})["ok"]
        fix = chipset.call({"cmd": "gps_fix"})
        assert fix["ok"] and "lat" in fix


class TestBillingChain:
    """app thread -> rild gate -> smdd gate -> ARM9: caller pays."""

    def make_stack(self, kernel):
        radio = RadioDevice(RadioPowerParams(jitter_sigma=0.0),
                            rng=np.random.default_rng(0))
        battery = Battery(capacity_joules=1000.0)
        chipset = Msm7201a.build(radio, battery, clock=lambda: 0.0)
        smdd = SmddDaemon(kernel, chipset, cpu_watts=0.137)
        rild = RildDaemon(kernel, smdd, cpu_watts=0.137)
        return chipset, smdd, rild

    def test_caller_reserve_pays_whole_chain(self, kernel):
        chipset, smdd, rild = self.make_stack(kernel)
        app = kernel.create_thread(name="app")
        reserve = kernel.create_reserve(name="app.r")
        kernel.battery.transfer_to(reserve, 10.0)
        app.set_active_reserve(reserve)

        reply = rild.request(app, {"op": "data_tx", "nbytes": 1500,
                                   "npackets": 1})
        assert reply["ok"]
        # Both daemons' marshalling costs hit the app's reserve.
        assert reserve.level < 10.0
        assert smdd.calls == 1
        assert rild.stats.data_calls == 1

    def test_status_and_sms_ops(self, kernel):
        chipset, smdd, rild = self.make_stack(kernel)
        app = kernel.create_thread(name="app")
        reserve = kernel.create_reserve(name="app.r")
        kernel.battery.transfer_to(reserve, 10.0)
        app.set_active_reserve(reserve)
        assert rild.request(app, {"op": "status"})["ok"]
        assert rild.request(app, {"op": "sms"})["ok"]
        assert chipset.arm9.sms_sent == 1

    def test_voice_calls_are_silent(self, kernel):
        """§7: 'as it does not yet have a port of the audio library,
        calls are silent'."""
        _, _, rild = self.make_stack(kernel)
        app = kernel.create_thread(name="app")
        reserve = kernel.create_reserve(name="app.r")
        kernel.battery.transfer_to(reserve, 10.0)
        app.set_active_reserve(reserve)
        reply = rild.request(app, {"op": "dial", "number": "555-0100"})
        assert reply["audio"] == "silent"

    def test_bad_requests_rejected(self, kernel):
        _, smdd, rild = self.make_stack(kernel)
        app = kernel.create_thread(name="app")
        reserve = kernel.create_reserve(name="app.r")
        kernel.battery.transfer_to(reserve, 10.0)
        app.set_active_reserve(reserve)
        with pytest.raises(Exception):
            rild.request(app, {"op": "warp_drive"})
        with pytest.raises(HardwareError):
            smdd.call(app, {"not-a-cmd": 1})
