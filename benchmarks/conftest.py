"""Benchmark harness configuration.

Each ``test_bench_*`` file regenerates one paper artifact (figure or
table) under pytest-benchmark, asserting the paper's *shape* claims on
the result.  Heavy system simulations run once per benchmark
(``pedantic(rounds=1)``); analytic sweeps use the default calibrated
timing loop.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Benchmark a heavy experiment with a single round."""
    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    return _run
