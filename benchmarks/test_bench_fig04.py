"""Benchmark: regenerate Figure 4 (radio activation power trace).

Paper targets: ~9.5 J per activation cycle (8.8-11.9 envelope), 20 s
idle timeout, one activation per 40 s keep-alive packet.
"""

import numpy as np
import pytest

from repro.figures import fig04_activation


def test_bench_fig04_activation_trace(run_once):
    result = run_once(fig04_activation.run,
                      duration_s=400.0, interval_s=40.0, seed=4)
    assert result.activation_count == 10
    assert result.mean_cycle_j == pytest.approx(9.5, rel=0.15)
    assert min(result.cycle_energies) > 8.0
    assert max(result.cycle_energies) < 13.0
    # The trace itself shows distinct plateaus: significant time at
    # baseline and significant time elevated.
    baseline = 0.699
    elevated = np.count_nonzero(result.watts > baseline + 0.2)
    at_base = np.count_nonzero(result.watts < baseline + 0.05)
    assert elevated > 0.3 * len(result.watts)
    assert at_base > 0.2 * len(result.watts)
