"""Core-engine perf benchmark runner: writes BENCH_core.json.

Tracks the two hot paths this repo's performance work targets:

* **micro** — ``ResourceGraph.step`` on the canonical production
  topology (100 reserves fed from the battery, 200 taps: one constant
  feed plus one backward proportional drain per reserve, global decay
  on), compiled-FlowPlan path vs the per-object reference path.
* **macro** — a 1-simulated-hour idle-heavy ``CinderSystem`` (a
  maintenance process waking once a minute), idle fast-forward vs
  tick-by-tick, measured in wall-clock seconds.

Run from the repo root (writes ``BENCH_core.json`` next to this
checkout's ROADMAP)::

    python benchmarks/run_bench.py

The pytest wrapper ``benchmarks/test_bench_core_step.py`` executes the
same collectors and asserts the speedup floors (3x micro / 10x macro),
so the perf trajectory is enforced, not just recorded.
"""

from __future__ import annotations

import json
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:  # allow `python benchmarks/run_bench.py`
    sys.path.insert(0, _SRC)

from repro.core.graph import ResourceGraph            # noqa: E402
from repro.core.tap import TapType                    # noqa: E402
from repro.sim.engine import CinderSystem             # noqa: E402
from repro.sim.process import CpuBurn, Sleep          # noqa: E402

BENCH_PATH = os.path.join(_REPO_ROOT, "BENCH_core.json")

MICRO_RESERVES = 100
MICRO_TAPS = 200
TICK_S = 0.01
MACRO_SIM_HOURS = 1.0


def build_micro_graph() -> ResourceGraph:
    """The Figure 1 pattern at scale: battery -> N apps -> battery."""
    graph = ResourceGraph(500_000.0)  # decay enabled (paper default)
    for i in range(MICRO_RESERVES):
        reserve = graph.create_reserve(level=50.0, source=graph.root,
                                       name=f"app{i}")
        graph.create_tap(graph.root, reserve, 0.070, name=f"app{i}.in")
        graph.create_tap(reserve, graph.root, 0.1, TapType.PROPORTIONAL,
                         name=f"app{i}.back")
    assert MICRO_TAPS == 2 * MICRO_RESERVES
    return graph


def time_step_loop(step, iterations: int = 2000, repeats: int = 5) -> float:
    """Best-of-N mean microseconds per ``step(TICK_S)`` call."""
    step(TICK_S)  # warm up / compile the plan
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            step(TICK_S)
        best = min(best, (time.perf_counter() - start) / iterations)
    return best * 1e6


def run_micro() -> dict:
    vec_graph = build_micro_graph()
    ref_graph = build_micro_graph()
    vectorized_us = time_step_loop(vec_graph.step)
    reference_us = time_step_loop(ref_graph.step_reference)
    assert vec_graph.fallback_steps == 0, "micro topology must vectorize"
    return {
        "reserves": MICRO_RESERVES,
        "taps": MICRO_TAPS,
        "tick_s": TICK_S,
        "vectorized_us_per_step": round(vectorized_us, 3),
        "reference_us_per_step": round(reference_us, 3),
        "speedup": round(reference_us / vectorized_us, 2),
    }


def build_macro_system(fast_forward: bool) -> CinderSystem:
    """An idle-heavy device: one maintenance wakeup per minute."""
    def maintenance(ctx):
        while True:
            yield Sleep(60.0)
            yield CpuBurn(0.02)

    system = CinderSystem(battery_joules=15_000.0, tick_s=TICK_S,
                          record_interval_s=1.0, seed=42,
                          fast_forward=fast_forward)
    for i in range(8):
        system.powered_reserve(0.050, name=f"svc{i}")
    worker = system.powered_reserve(0.200, name="maint")
    system.spawn(maintenance, "maint", reserve=worker)
    return system


def run_macro() -> dict:
    seconds = MACRO_SIM_HOURS * 3600.0
    timings = {}
    conservation = 0.0
    skipped = 0
    for fast_forward in (True, False):
        system = build_macro_system(fast_forward)
        start = time.perf_counter()
        system.run(seconds)
        timings[fast_forward] = time.perf_counter() - start
        if fast_forward:
            conservation = system.graph.conservation_error()
            skipped = system.fast_forwarded_ticks
    return {
        "simulated_hours": MACRO_SIM_HOURS,
        "fast_forward_wall_s": round(timings[True], 3),
        "tick_wall_s": round(timings[False], 3),
        "speedup": round(timings[False] / timings[True], 2),
        "fast_forwarded_ticks": skipped,
        "conservation_error_j": conservation,
    }


def collect() -> dict:
    return {
        "bench": "core_step",
        "unix_time": int(time.time()),
        "micro": run_micro(),
        "macro": run_macro(),
    }


def write(results: dict, path: str = BENCH_PATH) -> str:
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main() -> None:  # pragma: no cover - console entry
    results = collect()
    path = write(results)
    print(json.dumps(results, indent=2, sort_keys=True))
    print(f"\nwrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
