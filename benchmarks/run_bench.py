"""Core-engine perf benchmark runner: writes BENCH_core.json.

Tracks the hot paths this repo's performance work targets:

* **micro** — ``ResourceGraph.step`` on the canonical production
  topology (100 reserves fed from the battery, 200 taps: one constant
  feed plus one backward proportional drain per reserve, global decay
  on), compiled-FlowPlan path vs the per-object reference path.
* **macro** — a 1-simulated-hour idle-heavy ``CinderSystem`` (a
  maintenance process waking once a minute), idle fast-forward vs
  tick-by-tick, measured in wall-clock seconds.
* **netd_macro** — a 1-simulated-hour pooled-netd poller whose thread
  spends almost the whole run blocked on ``required_energy``
  (§5.5.2): the closed-form pooled-wait accrual must macro-step
  through the waits with bit-identical event timing vs tick-by-tick.
* **chain_macro** — a 1-simulated-hour idle-heavy device whose
  reserves form 3-deep proportional chains (the topologies the scalar
  span closed form refused): the coupled matrix-exponential solver
  must macro-step them with zero span refusals.
* **switching_macro** — a 1-simulated-hour device whose spans cross
  piecewise-linear regime switches (constant drains clamping on
  emptied reserves, debt levels crossing zero): the segmented span
  engine must macro-step through the located switch instants with
  zero refusals.
* **fleet** — a 50-device :class:`~repro.sim.world.World` of
  staggered pollers on the global min-horizon scheduler; wall-clock
  for 10 simulated minutes plus a speedup estimate from a
  tick-by-tick slice.
* **fleet_1k_staggered** — the event-time-bucketed independent
  scheduler's headline: 1000 pollers with *randomized* poll phases
  (no comb of coinciding wakes), best-of-3 us/device-second plus the
  frontier-round and stacked-vs-scalar cohort span counts.

Run from the repo root (writes ``BENCH_core.json`` next to this
checkout's ROADMAP)::

    python benchmarks/run_bench.py

The pytest wrapper ``benchmarks/test_bench_core_step.py`` executes the
same collectors and asserts the floors (3x micro / 10x macro / 5x
netd / the fleet wall ceiling), so the perf trajectory is enforced,
not just recorded.
"""

from __future__ import annotations

import functools
import json
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:  # allow `python benchmarks/run_bench.py`
    sys.path.insert(0, _SRC)

from repro.core import segkernel                      # noqa: E402
from repro.core.graph import ResourceGraph            # noqa: E402
from repro.core.tap import TapType                    # noqa: E402
from repro.sim.engine import CinderSystem             # noqa: E402
from repro.sim.process import CpuBurn, Sleep          # noqa: E402
from repro.sim.shards import ShardedWorld             # noqa: E402
from repro.sim.workload import (fleet_of_pollers,     # noqa: E402
                                periodic_poller, poller_shard,
                                staggered_poller_shard)
from repro.sim.world import World                     # noqa: E402

BENCH_PATH = os.path.join(_REPO_ROOT, "BENCH_core.json")

MICRO_RESERVES = 100
MICRO_TAPS = 200
TICK_S = 0.01
MACRO_SIM_HOURS = 1.0
NETD_SIM_HOURS = 1.0
CHAIN_SIM_HOURS = 1.0
CHAIN_APPS = 4
SWITCH_SIM_HOURS = 1.0
SWITCH_APPS = 3
FLEET_DEVICES = 50
FLEET_SIM_S = 600.0
FLEET_TICK_SLICE_S = 60.0
#: The scaling curve: device counts, all at FLEET_1K_SIM_S simulated
#: seconds with a coarser (5 s) record cadence so the 1000-device
#: point stays a tier-1-sized run.
FLEET_SCALING_DEVICES = (50, 200, 1000)
FLEET_1K_SIM_S = 600.0
FLEET_SCALING_RECORD_S = 5.0
#: The staggered headline point: randomized poll phases (no two
#: devices share a wake schedule), forced independent scheduler.
FLEET_1K_STAGGERED_DEVICES = 1000
#: us/device-second measured on the lockstep-era independent loop
#: (one device advanced per frontier pop) right before the bucketed
#: cohort scheduler landed — the fixed reference the entry's
#: ``speedup_vs_pre_cohort`` field is computed against.
FLEET_1K_STAGGERED_PRE_COHORT_US = 31.62
#: Shard-count sensitivity sweep (0 = inline, no processes).
FLEET_SHARD_COUNTS = (0, 2, 4)
FLEET_SHARD_DEVICES = 200
FLEET_SHARD_SIM_S = 120.0
#: Socket-transport overhead point: the staggered 1k fleet, sharded
#: identically over worker pools vs shard-host daemons, four clock
#: barriers so the wire carries real barrier traffic (requests,
#: replies, checkpoints), not one degenerate round trip.
FLEET_SOCKET_SHARDS = 2
FLEET_SOCKET_HOSTS = 2
FLEET_SOCKET_BARRIER_S = 150.0


def build_micro_graph() -> ResourceGraph:
    """The Figure 1 pattern at scale: battery -> N apps -> battery."""
    graph = ResourceGraph(500_000.0)  # decay enabled (paper default)
    for i in range(MICRO_RESERVES):
        reserve = graph.create_reserve(level=50.0, source=graph.root,
                                       name=f"app{i}")
        graph.create_tap(graph.root, reserve, 0.070, name=f"app{i}.in")
        graph.create_tap(reserve, graph.root, 0.1, TapType.PROPORTIONAL,
                         name=f"app{i}.back")
    assert MICRO_TAPS == 2 * MICRO_RESERVES
    return graph


def time_step_loop(step, iterations: int = 2000, repeats: int = 5) -> float:
    """Best-of-N mean microseconds per ``step(TICK_S)`` call."""
    step(TICK_S)  # warm up / compile the plan
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            step(TICK_S)
        best = min(best, (time.perf_counter() - start) / iterations)
    return best * 1e6


def run_micro() -> dict:
    vec_graph = build_micro_graph()
    ref_graph = build_micro_graph()
    vectorized_us = time_step_loop(vec_graph.step)
    reference_us = time_step_loop(ref_graph.step_reference)
    assert vec_graph.fallback_steps == 0, "micro topology must vectorize"
    return {
        "reserves": MICRO_RESERVES,
        "taps": MICRO_TAPS,
        "tick_s": TICK_S,
        "vectorized_us_per_step": round(vectorized_us, 3),
        "reference_us_per_step": round(reference_us, 3),
        "speedup": round(reference_us / vectorized_us, 2),
    }


def build_macro_system(fast_forward: bool) -> CinderSystem:
    """An idle-heavy device: one maintenance wakeup per minute."""
    def maintenance(ctx):
        while True:
            yield Sleep(60.0)
            yield CpuBurn(0.02)

    system = CinderSystem(battery_joules=15_000.0, tick_s=TICK_S,
                          record_interval_s=1.0, seed=42,
                          fast_forward=fast_forward)
    for i in range(8):
        system.powered_reserve(0.050, name=f"svc{i}")
    worker = system.powered_reserve(0.200, name="maint")
    system.spawn(maintenance, "maint", reserve=worker)
    return system


def run_macro() -> dict:
    seconds = MACRO_SIM_HOURS * 3600.0
    timings = {}
    conservation = 0.0
    skipped = 0
    for fast_forward in (True, False):
        system = build_macro_system(fast_forward)
        start = time.perf_counter()
        system.run(seconds)
        timings[fast_forward] = time.perf_counter() - start
        if fast_forward:
            conservation = system.graph.conservation_error()
            skipped = system.fast_forwarded_ticks
    return {
        "simulated_hours": MACRO_SIM_HOURS,
        "fast_forward_wall_s": round(timings[True], 3),
        "tick_wall_s": round(timings[False], 3),
        "speedup": round(timings[False] / timings[True], 2),
        "fast_forwarded_ticks": skipped,
        "conservation_error_j": conservation,
    }


def build_netd_system(fast_forward: bool) -> CinderSystem:
    """A pooled-netd poller: 15 mW against a ~11.9 J activation bill.

    Every poll blocks in the §5.5.2 pooled path for ~13 simulated
    minutes, so virtually the whole hour is pooled waiting — exactly
    the regime the closed-form accrual must macro-step through.
    Decay is off so the sleep-span closed form (continuous ODE) and
    tick-by-tick agree bit-for-bit and the event-timing comparison is
    exact, not approximate.
    """
    system = CinderSystem(battery_joules=15_000.0, tick_s=TICK_S,
                          record_interval_s=2.0, seed=42,
                          decay_enabled=False, fast_forward=fast_forward)
    reserve = system.powered_reserve(0.015, name="poller")
    system.spawn(periodic_poller("echo", period_s=600.0, bytes_out=64,
                                 bytes_in=0), "poller", reserve=reserve)
    return system


def run_netd_macro() -> dict:
    seconds = NETD_SIM_HOURS * 3600.0
    timings = {}
    systems = {}
    for fast_forward in (True, False):
        system = build_netd_system(fast_forward)
        start = time.perf_counter()
        system.run(seconds)
        timings[fast_forward] = time.perf_counter() - start
        systems[fast_forward] = system
    fast, slow = systems[True], systems[False]
    events_identical = (
        fast.radio.activation_count == slow.radio.activation_count
        and fast.netd.stats.operations == slow.netd.stats.operations
        and fast.netd.stats.total_wait_seconds
        == slow.netd.stats.total_wait_seconds
        and fast.netd.pool.level == slow.netd.pool.level)
    return {
        "simulated_hours": NETD_SIM_HOURS,
        "fast_forward_wall_s": round(timings[True], 3),
        "tick_wall_s": round(timings[False], 3),
        "speedup": round(timings[False] / timings[True], 2),
        "fast_forwarded_ticks": fast.fast_forwarded_ticks,
        "radio_activations": fast.radio.activation_count,
        "pooled_wait_s": fast.netd.stats.total_wait_seconds,
        "events_identical": events_identical,
        "conservation_error_j": fast.graph.conservation_error(),
    }


def build_chain_system(fast_forward: bool) -> CinderSystem:
    """An idle-heavy device whose reserves form 3-deep chains.

    Each app's reserve feeds a sub-reserve which feeds a sub-sub
    reserve which drains back to the battery, all proportionally —
    exactly the chained-subdivision shape the scalar span closed form
    refused (forcing tick-by-tick) and the coupled matrix-exponential
    solver now integrates.
    """
    def maintenance(ctx):
        while True:
            yield Sleep(60.0)
            yield CpuBurn(0.02)

    system = CinderSystem(battery_joules=15_000.0, tick_s=TICK_S,
                          record_interval_s=1.0, seed=42,
                          fast_forward=fast_forward)
    kernel = system.kernel
    for i in range(CHAIN_APPS):
        app = system.powered_reserve(0.06, name=f"app{i}")
        sub = system.new_reserve(name=f"app{i}.sub")
        subsub = system.new_reserve(name=f"app{i}.subsub")
        kernel.create_tap(app, sub, 0.05, TapType.PROPORTIONAL,
                          name=f"app{i}.t1")
        kernel.create_tap(sub, subsub, 0.04, TapType.PROPORTIONAL,
                          name=f"app{i}.t2")
        kernel.create_tap(subsub, system.battery_reserve, 0.03,
                          TapType.PROPORTIONAL, name=f"app{i}.t3")
    worker = system.powered_reserve(0.200, name="maint")
    system.spawn(maintenance, "maint", reserve=worker)
    return system


def run_chain_macro() -> dict:
    seconds = CHAIN_SIM_HOURS * 3600.0
    timings = {}
    systems = {}
    for fast_forward in (True, False):
        system = build_chain_system(fast_forward)
        start = time.perf_counter()
        system.run(seconds)
        timings[fast_forward] = time.perf_counter() - start
        systems[fast_forward] = system
    fast, slow = systems[True], systems[False]
    worst_level_rel = max(
        abs(rf.level - rs.level) / max(1e-9, abs(rs.level))
        for rf, rs in zip(fast.graph.reserves, slow.graph.reserves))
    return {
        "simulated_hours": CHAIN_SIM_HOURS,
        "chain_depth": 3,
        "fast_forward_wall_s": round(timings[True], 3),
        "tick_wall_s": round(timings[False], 3),
        "speedup": round(timings[False] / timings[True], 2),
        "fast_forwarded_ticks": fast.fast_forwarded_ticks,
        "span_refusals": fast.span_refusals,
        "worst_level_rel_err": worst_level_rel,
        "conservation_error_j": fast.graph.conservation_error(),
    }


def build_switching_system(fast_forward: bool) -> CinderSystem:
    """An idle-heavy device whose spans cross regime switches.

    Chained proportional reserves plus the two switch classes the
    segmented span engine exists for: a task reserve whose constant
    drain outruns its feed (a mid-span drain clamp, after which the
    feed passes through) and a reserve repaying out of debt (the
    ``max(L, 0)`` zero-crossing, after which its backward tap
    resumes).  Before the segmented engine every span over this state
    refused and the whole run degraded to tick-by-tick.
    """
    def maintenance(ctx):
        while True:
            yield Sleep(60.0)
            yield CpuBurn(0.02)

    system = CinderSystem(battery_joules=15_000.0, tick_s=TICK_S,
                          record_interval_s=1.0, seed=43,
                          fast_forward=fast_forward)
    kernel = system.kernel
    for i in range(SWITCH_APPS):
        app = system.powered_reserve(0.06, name=f"app{i}")
        sub = system.new_reserve(name=f"app{i}.sub")
        kernel.create_tap(app, sub, 0.05, TapType.PROPORTIONAL,
                          name=f"app{i}.t1")
        kernel.create_tap(sub, system.battery_reserve, 0.04,
                          TapType.PROPORTIONAL, name=f"app{i}.t2")
        # The mid-span clamp: 20 mW in, 50 mW out, empties mid-run.
        task = system.new_reserve(name=f"task{i}")
        system.battery_reserve.transfer_to(task, 20.0 + 5.0 * i)
        kernel.create_tap(system.battery_reserve, task, 0.02,
                          name=f"task{i}.feed")
        archive = system.new_reserve(name=f"task{i}.archive")
        kernel.create_tap(task, archive, 0.05, name=f"task{i}.drain")
        # The debt repayment: crosses zero mid-run, drains resume.
        debtor = system.new_reserve(name=f"debtor{i}")
        kernel.create_tap(system.battery_reserve, debtor, 0.03,
                          name=f"debtor{i}.repay")
        kernel.create_tap(debtor, system.battery_reserve, 0.05,
                          TapType.PROPORTIONAL, name=f"debtor{i}.back")
        debtor.consume(30.0 + 10.0 * i, allow_debt=True)
    worker = system.powered_reserve(0.200, name="maint")
    system.spawn(maintenance, "maint", reserve=worker)
    return system


def run_switching_macro() -> dict:
    seconds = SWITCH_SIM_HOURS * 3600.0
    timings = {}
    systems = {}
    for fast_forward in (True, False):
        system = build_switching_system(fast_forward)
        start = time.perf_counter()
        system.run(seconds)
        timings[fast_forward] = time.perf_counter() - start
        systems[fast_forward] = system
    fast, slow = systems[True], systems[False]
    worst_level_abs = max(
        abs(rf.level - rs.level)
        for rf, rs in zip(fast.graph.reserves, slow.graph.reserves))
    return {
        "simulated_hours": SWITCH_SIM_HOURS,
        "switch_classes": ["drain_clamp", "debt_zero_crossing"],
        "fast_forward_wall_s": round(timings[True], 3),
        "tick_wall_s": round(timings[False], 3),
        "speedup": round(timings[False] / timings[True], 2),
        "fast_forwarded_ticks": fast.fast_forwarded_ticks,
        "span_refusals": fast.span_refusals,
        "span_segments": fast.span_segments,
        "span_switches": fast.graph.span_switches,
        # The segmented wall split: switch *location* (sampling +
        # bisection — the compiled-kernel target) vs segment
        # *integration* (phi-function propagation).
        "span_locate_wall_s": round(fast.graph.span_locate_wall_s, 4),
        "span_integrate_wall_s": round(
            fast.graph.span_integrate_wall_s, 4),
        "segkernel_backend": segkernel.BACKEND,
        "worst_level_abs_err": worst_level_abs,
        "conservation_error_j": fast.graph.conservation_error(),
    }


BATCH_SWITCH_DEVICES = 32
BATCH_SWITCH_SIM_S = 600.0
BATCH_SWITCH_TICK_SLICE_S = 60.0


def build_switching_fleet(fast_forward: bool,
                          batched: bool = True) -> World:
    """A one-cohort fleet where *every* span is switch-bound.

    Each device carries the two switch classes (a task reserve whose
    constant drain outruns its feed, and a debtor repaying out of
    debt), with seed levels staggered per device so the cohort's
    switch instants never coincide — the batched segment chain must
    advance every device to its *own* next switch.
    """
    world = World(tick_s=TICK_S, seed=11, fast_forward=fast_forward,
                  batched=batched)
    for i in range(BATCH_SWITCH_DEVICES):
        device = world.add_device(name=f"sw{i}", record_interval_s=5.0,
                                  decay_enabled=False)
        kernel = device.kernel
        task = device.new_reserve(name="task")
        device.battery_reserve.transfer_to(task, 2.0 + 0.11 * i)
        kernel.create_tap(device.battery_reserve, task, 0.01,
                          name="task.feed")
        archive = device.new_reserve(name="archive")
        kernel.create_tap(task, archive, 0.03, name="task.drain")
        debtor = device.new_reserve(name="debtor")
        kernel.create_tap(device.battery_reserve, debtor, 0.02,
                          name="debtor.repay")
        debtor.consume(3.0 + 0.17 * i, allow_debt=True)
    return world


def run_batched_switching() -> dict:
    """Cohort-stacked segment chains vs scalar segmented vs ticking.

    Three contracts at once: the switch-bound cohort must stay
    batched (``cohort_demotions == 0``), the stacked solve must match
    the scalar segmented reference within documented ulp tolerance
    (stacked matrix products reorder a handful of float ops), and the
    whole thing must keep the macro-step speedup class.
    """
    fast_wall = float("inf")
    world = None
    for _ in range(3):
        candidate = build_switching_fleet(True)
        start = time.perf_counter()
        candidate.run(BATCH_SWITCH_SIM_S)
        wall = time.perf_counter() - start
        if wall < fast_wall:
            fast_wall, world = wall, candidate

    # The scalar segmented reference: same fleet, cohorts disabled.
    scalar = build_switching_fleet(True, batched=False)
    scalar.run(BATCH_SWITCH_SIM_S)
    worst_rel = 0.0
    for fast_dev, ref_dev in zip(world.devices, scalar.devices):
        for rf, rs in zip(fast_dev.graph.reserves, ref_dev.graph.reserves):
            denom = max(1.0, abs(rs.level))
            worst_rel = max(worst_rel, abs(rf.level - rs.level) / denom)

    slice_wall = float("inf")
    for _ in range(3):
        tick_world = build_switching_fleet(False)
        start = time.perf_counter()
        tick_world.run(BATCH_SWITCH_TICK_SLICE_S)
        slice_wall = min(slice_wall, time.perf_counter() - start)
    speedup = ((slice_wall / BATCH_SWITCH_TICK_SLICE_S)
               / (fast_wall / BATCH_SWITCH_SIM_S))
    locate_wall = sum(d.graph.span_locate_wall_s for d in world.devices)
    integrate_wall = sum(d.graph.span_integrate_wall_s
                         for d in world.devices)
    return {
        "devices": BATCH_SWITCH_DEVICES,
        "simulated_s": BATCH_SWITCH_SIM_S,
        "fast_forward_wall_s": round(fast_wall, 3),
        "tick_slice_s": BATCH_SWITCH_TICK_SLICE_S,
        "tick_slice_wall_s": round(slice_wall, 3),
        "speedup_vs_tick": round(speedup, 2),
        "cohort_spans": world.cohort_spans,
        "cohort_demotions": world.cohort_demotions,
        "cohort_fallbacks": world.cohort_fallbacks,
        "span_refusals": sum(d.span_refusals for d in world.devices),
        "span_segments": world.span_segments,
        "span_locate_wall_s": round(locate_wall, 4),
        "span_integrate_wall_s": round(integrate_wall, 4),
        "segkernel_backend": segkernel.BACKEND,
        "worst_batched_vs_scalar_rel": worst_rel,
        "worst_conservation_error_j": max(
            abs(d.graph.conservation_error()) for d in world.devices),
    }


def build_fleet(fast_forward: bool) -> World:
    """A 50-device fleet of staggered pooled pollers."""
    world = World(tick_s=TICK_S, seed=7, fast_forward=fast_forward)
    fleet_of_pollers(world, FLEET_DEVICES, watts=0.02, period_s=300.0,
                     bytes_out=64, record_interval_s=1.0,
                     decay_enabled=False)
    return world


def run_fleet() -> dict:
    # Best-of-3 on both sides: a shared 1-core CI runner's scheduler
    # noise would otherwise dominate the ratio this bench floors
    # (best-of-2 still flaked within a few percent of the floor).
    fast_wall = float("inf")
    world = None
    for _ in range(3):
        candidate = build_fleet(True)
        start = time.perf_counter()
        candidate.run(FLEET_SIM_S)
        wall = time.perf_counter() - start
        if wall < fast_wall:
            fast_wall, world = wall, candidate

    slice_wall = float("inf")
    for _ in range(3):
        tick_world = build_fleet(False)
        start = time.perf_counter()
        tick_world.run(FLEET_TICK_SLICE_S)
        slice_wall = min(slice_wall,
                         time.perf_counter() - start)
    # Wall-clock per simulated second, extrapolated from the slice.
    speedup = (slice_wall / FLEET_TICK_SLICE_S) / (fast_wall / FLEET_SIM_S)
    return {
        "devices": FLEET_DEVICES,
        "simulated_s": FLEET_SIM_S,
        "fast_forward_wall_s": round(fast_wall, 3),
        "tick_slice_s": FLEET_TICK_SLICE_S,
        "tick_slice_wall_s": round(slice_wall, 3),
        "speedup_vs_tick": round(speedup, 2),
        "macro_steps": world.macro_steps,
        "tick_steps": world.tick_steps,
        "fast_forwarded_ticks": world.fast_forwarded_ticks,
        "cohort_spans": world.cohort_spans,
        "cohort_fallbacks": world.cohort_fallbacks,
        "horizon_cache_hits": world.horizon_cache_hits,
        "radio_activations": world.total_radio_activations(),
        "worst_conservation_error_j": world.conservation_error(),
    }


def _scaling_builder(devices: int):
    return functools.partial(
        poller_shard, fleet_size=devices, watts=0.02, period_s=300.0,
        bytes_out=64, record_interval_s=FLEET_SCALING_RECORD_S,
        decay_enabled=False)


def run_fleet_scaling() -> dict:
    """The scaling curve: wall cost per device-second vs fleet size.

    All points run in-process (shards=0) on the *independent*
    scheduler — each device macro-steps on its own horizon between
    clock barriers — so per-device cost is flat in fleet size by
    construction; the floor asserts it stays flat (a staggered
    1000-device fleet under the lockstep loop pays O(fleet events)
    iterations per device and lands an order of magnitude higher).
    """
    points = []
    for devices in FLEET_SCALING_DEVICES:
        # Best-of-3 on the headline 1000-device point: a single run
        # drifted tens of percent between bench invocations on a
        # shared runner, and the *minimum* wall is the measurement
        # least polluted by scheduler noise.  Small points stay
        # single-run — they only feed the flatness ratio.
        repeats = 3 if devices >= 1000 else 1
        report = None
        for _ in range(repeats):
            fleet = ShardedWorld(_scaling_builder(devices), devices,
                                 shards=0, tick_s=TICK_S, seed=7,
                                 fast_forward=True)
            candidate = fleet.run(FLEET_1K_SIM_S, independent=True)
            if report is None or candidate.wall_s < report.wall_s:
                report = candidate
        device_seconds = devices * FLEET_1K_SIM_S
        points.append({
            "devices": devices,
            "simulated_s": FLEET_1K_SIM_S,
            "wall_s": round(report.wall_s, 3),
            "us_per_device_second": round(
                report.wall_s / device_seconds * 1e6, 3),
            "device_seconds_per_wall_s": round(
                device_seconds / report.wall_s, 1),
            "radio_activations": report.total_radio_activations(),
            "worst_conservation_error_j":
                report.worst_conservation_error(),
        })
    return {
        "record_interval_s": FLEET_SCALING_RECORD_S,
        "scheduler": "independent",
        "points": points,
    }


def build_staggered_fleet(devices: int,
                          fast_forward: bool = True) -> World:
    """Randomized poll phases — the honest independent workload."""
    world = World(tick_s=TICK_S, seed=7, fast_forward=fast_forward)
    staggered_poller_shard(world, 0, devices, watts=0.02,
                           period_s=300.0, bytes_out=64,
                           record_interval_s=FLEET_SCALING_RECORD_S,
                           decay_enabled=False)
    return world


def run_fleet_1k_staggered(devices: int = FLEET_1K_STAGGERED_DEVICES,
                           sim_s: float = FLEET_1K_SIM_S,
                           repeats: int = 3) -> dict:
    """The bucketed cohort scheduler's headline: staggered 1k fleet.

    :func:`run_fleet_scaling` staggers poll starts evenly, which
    keeps a comb of coinciding wakes; here every phase is drawn
    uniformly in ``[0, period_s)``, so devices only share a frontier
    bucket when their horizons genuinely coincide — the workload the
    event-time-bucketed independent scheduler exists for.  Best-of-
    ``repeats`` wall (the minimum is the measurement least polluted
    by a shared runner's scheduler noise), with the frontier-round
    and stacked-vs-scalar span counts that prove the cohort path, not
    per-device fallback, carried the run.
    """
    best_wall = float("inf")
    world = None
    for _ in range(repeats):
        candidate = build_staggered_fleet(devices)
        start = time.perf_counter()
        candidate.run(sim_s, independent=True)
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_wall, world = wall, candidate
    us_per_device_second = best_wall / (devices * sim_s) * 1e6
    return {
        "devices": devices,
        "simulated_s": sim_s,
        "record_interval_s": FLEET_SCALING_RECORD_S,
        "scheduler": "independent",
        "wall_s": round(best_wall, 3),
        "us_per_device_second": round(us_per_device_second, 3),
        "pre_cohort_us_per_device_second": FLEET_1K_STAGGERED_PRE_COHORT_US,
        "speedup_vs_pre_cohort": round(
            FLEET_1K_STAGGERED_PRE_COHORT_US / us_per_device_second, 2),
        "independent_rounds": world.barrier_rounds,
        "independent_cohort_spans": world.independent_cohort_spans,
        "independent_scalar_spans": world.independent_scalar_spans,
        "horizon_polls": world.horizon_polls,
        "horizon_cache_hits": world.horizon_cache_hits,
        "radio_activations": world.total_radio_activations(),
        "worst_conservation_error_j": world.conservation_error(),
    }


def _staggered_shard_builder():
    return functools.partial(
        staggered_poller_shard, watts=0.02, period_s=300.0,
        bytes_out=64, record_interval_s=FLEET_SCALING_RECORD_S,
        decay_enabled=False)


def run_fleet_socketed(devices: int = FLEET_1K_STAGGERED_DEVICES,
                       sim_s: float = FLEET_1K_SIM_S,
                       repeats: int = 3,
                       barrier_s: float = FLEET_SOCKET_BARRIER_S) -> dict:
    """Socket-transport overhead vs in-process sharding, best-of-N.

    The same staggered fleet, the same partition, the same barrier
    cadence — once over single-worker process pools and once over
    shard-host daemons reached by TCP (:mod:`repro.sim.hostd`).  On a
    single-core runner both sides serialize onto one CPU, so the
    difference isolates what the socket tier *adds*: framing, pickle
    round trips, heartbeat probes and daemon spawn.  Digests are
    asserted bit-identical, and the floor pins the overhead ≤ 15%.
    """
    builder = _staggered_shard_builder()

    def best_of(**transport_kwargs):
        best = None
        for _ in range(repeats):
            fleet = ShardedWorld(builder, devices,
                                 shards=FLEET_SOCKET_SHARDS,
                                 tick_s=TICK_S, seed=7,
                                 fast_forward=True, **transport_kwargs)
            report = fleet.run(sim_s, barrier_s=barrier_s,
                               independent=True)
            if best is None or report.wall_s < best.wall_s:
                best = report
        return best

    in_process = best_of()
    socketed = best_of(transport="sockets", hosts=FLEET_SOCKET_HOSTS)
    assert socketed.digest() == in_process.digest(), \
        "socket transport diverged from in-process sharding"
    overhead = ((socketed.wall_s - in_process.wall_s)
                / in_process.wall_s)
    return {
        "devices": devices,
        "simulated_s": sim_s,
        "shards": FLEET_SOCKET_SHARDS,
        "hosts": FLEET_SOCKET_HOSTS,
        "barrier_s": barrier_s,
        "barriers": int(sim_s / barrier_s),
        "process_wall_s": round(in_process.wall_s, 3),
        "socket_wall_s": round(socketed.wall_s, 3),
        "overhead_frac": round(overhead, 4),
        "digest_identical": True,
        "shard_reschedules": socketed.shard_reschedules,
        "forced_terminations": socketed.forced_terminations,
        "cpu_count": os.cpu_count(),
    }


def run_fleet_shards() -> dict:
    """Shard-count sensitivity: the same fleet at 0/2/4 workers.

    On a single-core runner the process shards mostly measure IPC
    and spawn overhead (recorded honestly); with real cores they
    divide the wall clock.  ``cpu_count`` is recorded so readers can
    interpret the sweep.
    """
    builder = _scaling_builder(FLEET_SHARD_DEVICES)
    sweep = []
    for shards in FLEET_SHARD_COUNTS:
        fleet = ShardedWorld(builder, FLEET_SHARD_DEVICES, shards=shards,
                             tick_s=TICK_S, seed=7, fast_forward=True)
        report = fleet.run(FLEET_SHARD_SIM_S, independent=True)
        sweep.append({
            "shards": shards,
            "wall_s": round(report.wall_s, 3),
            "shard_walls_s": [round(w, 3) for w in report.shard_walls],
            "worst_conservation_error_j":
                report.worst_conservation_error(),
        })
    return {
        "devices": FLEET_SHARD_DEVICES,
        "simulated_s": FLEET_SHARD_SIM_S,
        "cpu_count": os.cpu_count(),
        "sweep": sweep,
    }


def run_checkpoint_overhead() -> dict:
    """Steady-state barrier-checkpoint cost on the 50-device fleet.

    One shard-sized world slice advanced barrier-to-barrier, with the
    per-barrier checkpoint capture timed directly against the barrier
    chunk's own compute.  Poller fleets run live generator programs,
    so capture settles into the cheap replay-recipe path (one state
    digest per barrier) after a single failed pickle attempt — the
    first (pickle-attempt) capture is timed separately.  Measuring
    inline rather than differencing two end-to-end sharded walls is
    deliberate: the ~1 ms/barrier quantity under test is an order of
    magnitude below the pool-spawn and scheduler jitter of paired
    process runs, and this ratio *is* the wall overhead checkpointing
    adds worker-side to a healthy run.  Floored < 5%.
    """
    from repro.sim import checkpoint as ckpt_mod

    shard_devices = FLEET_DEVICES // 2
    barriers = 10
    barrier_s = FLEET_SIM_S / barriers
    world = World(tick_s=TICK_S, seed=7, fast_forward=True)
    _scaling_builder(FLEET_DEVICES)(world, 0, shard_devices)
    run_wall = 0.0
    capture_wall = 0.0
    first_capture_s = None
    pickle_ok = None
    for barrier in range(barriers):
        start = time.perf_counter()
        world.run(barrier_s, independent=True)
        run_wall += time.perf_counter() - start
        start = time.perf_counter()
        ckpt = ckpt_mod.capture(world, barrier + 1,
                                try_pickle=pickle_ok is not False)
        pickle_ok = ckpt.method == ckpt_mod.METHOD_PICKLE
        elapsed = time.perf_counter() - start
        if first_capture_s is None:
            first_capture_s = elapsed
        capture_wall += elapsed
    return {
        "devices": FLEET_DEVICES,
        "shard_devices": shard_devices,
        "simulated_s": FLEET_SIM_S,
        "barriers": barriers,
        "run_wall_s": round(run_wall, 3),
        "capture_wall_s": round(capture_wall, 4),
        "first_capture_s": round(first_capture_s, 4),
        "capture_method": ckpt.method,
        "overhead_frac": round(capture_wall / run_wall, 4),
    }


def collect() -> dict:
    scaling = run_fleet_scaling()
    fleet_1k = next(p for p in scaling["points"] if p["devices"] >= 1000)
    return {
        "bench": "core_step",
        "unix_time": int(time.time()),
        "micro": run_micro(),
        "macro": run_macro(),
        "netd_macro": run_netd_macro(),
        "chain_macro": run_chain_macro(),
        "switching_macro": run_switching_macro(),
        "batched_switching": run_batched_switching(),
        "fleet": run_fleet(),
        "fleet_scaling": scaling,
        "fleet_1k": fleet_1k,
        "fleet_1k_staggered": run_fleet_1k_staggered(),
        "fleet_socketed": run_fleet_socketed(),
        "fleet_shards": run_fleet_shards(),
        "checkpoint_overhead": run_checkpoint_overhead(),
    }


def write(results: dict, path: str = BENCH_PATH) -> str:
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def main() -> None:  # pragma: no cover - console entry
    results = collect()
    path = write(results)
    print(json.dumps(results, indent=2, sort_keys=True))
    print(f"\nwrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
