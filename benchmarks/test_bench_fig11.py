"""Benchmark: regenerate Figure 11 (viewer with adaptation).

Paper targets: >=5x faster than the non-adaptive run, per-image bytes
shrink as energy tightens, the reserve never reaches zero.
"""

import pytest

from repro.figures import fig11_viewer_scale


def test_bench_fig11_adaptive(run_once):
    result = run_once(fig11_viewer_scale.run, seed=10)
    # "The images downloaded 5 times more quickly."
    assert result.speedup >= 5.0
    # "dropped below the threshold, but never to zero"
    assert result.adaptive.min_reserve_j > 0.0
    # Quality/bytes decline across a batch.
    first_batch = result.adaptive.stats.images[:8]
    assert first_batch[0].quality == 1.0
    assert first_batch[-1].quality < 0.5
    # The adaptive run barely stalls.
    assert result.adaptive.stats.total_stall_seconds < 5.0
