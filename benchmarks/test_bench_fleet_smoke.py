"""Quick-mode fleet perf smoke: tiny fleet, real floors, seconds not
minutes.

The full bench suite (``test_bench_core_step.py``) runs simulated
hours and a 1000-device fleet; this file is the PR-gating smoke: a
16-device, 2-simulated-minute fleet whose floors — macro-step
speedup over a tick slice, full cohort batching, conservation —
catch the same regressions in a couple of wall-clock seconds.  CI
runs it as a separate fast job so perf regressions fail pull
requests instead of silently eroding ``BENCH_core.json``; it also
rides along in tier-1.
"""

from __future__ import annotations

import time

from repro.sim.workload import fleet_of_pollers
from repro.sim.world import World

SMOKE_DEVICES = 16
SMOKE_SIM_S = 120.0
SMOKE_TICK_SLICE_S = 12.0
#: Conservative: the full bench floors 15x on the 50-device fleet;
#: the smoke fleet is smaller (less cohort amortization) and the
#: slice is short (timer noise), so the smoke floor is looser — it
#: exists to catch order-of-magnitude regressions fast.
SMOKE_SPEEDUP_FLOOR = 5.0
SMOKE_WALL_LIMIT_S = 20.0


def _build(fast_forward: bool) -> World:
    # 0.25 W against the ~11.9 J pooled activation bill: each poller
    # crosses after ~50 simulated seconds of pooled waiting, so the
    # smoke run exercises the wait, the crossing, and the transfer.
    world = World(tick_s=0.01, seed=11, fast_forward=fast_forward)
    fleet_of_pollers(world, SMOKE_DEVICES, watts=0.25, period_s=60.0,
                     bytes_out=64, record_interval_s=1.0,
                     decay_enabled=False)
    return world


def test_fleet_smoke_floors():
    fast_wall = float("inf")
    world = None
    for _ in range(2):
        candidate = _build(True)
        start = time.perf_counter()
        candidate.run(SMOKE_SIM_S)
        wall = time.perf_counter() - start
        if wall < fast_wall:
            fast_wall, world = wall, candidate

    tick_world = _build(False)
    start = time.perf_counter()
    tick_world.run(SMOKE_TICK_SLICE_S)
    slice_wall = time.perf_counter() - start

    speedup = ((slice_wall / SMOKE_TICK_SLICE_S)
               / (fast_wall / SMOKE_SIM_S))
    assert fast_wall < SMOKE_WALL_LIMIT_S, (
        f"smoke fleet took {fast_wall:.2f}s (limit {SMOKE_WALL_LIMIT_S}s)")
    assert speedup >= SMOKE_SPEEDUP_FLOOR, (
        f"smoke fleet only {speedup:.1f}x over tick-slicing "
        f"(floor {SMOKE_SPEEDUP_FLOOR}x)")
    assert world.cohort_fallbacks == 0, (
        "homogeneous smoke fleet must stay fully cohort-batched")
    assert world.conservation_error() < 1e-8
    assert world.total_radio_activations() > 0
    assert world.fast_forwarded_ticks > 100_000
