"""Ablation benchmarks over the design choices DESIGN.md calls out.

Not paper artifacts — these quantify *why* the defaults are what they
are: the 10-minute decay half-life, netd's 125 % margin, the batch
tick size, the worst-case CPU billing, and the gap to the ECOSystem
currentcy baseline.
"""

import math

import pytest

from repro.figures import ablations


def test_bench_ablation_decay_half_life(run_once):
    rows = run_once(ablations.decay_half_life_ablation)
    by_hl = {row.half_life_s: row for row in rows}
    # Hoard survival scales with the half-life: t90 ~ half_life * log2(10).
    for half_life, row in by_hl.items():
        expected = half_life * math.log2(10.0)
        assert row.survival_s == pytest.approx(expected, rel=0.05)
    # The 10-minute default keeps hoards usable for minutes, not hours.
    assert 1500 < by_hl[600.0].survival_s < 2500


def test_bench_ablation_netd_margin(run_once):
    rows = run_once(ablations.netd_margin_ablation)
    by_margin = {row.margin: row for row in rows}
    # Larger margins wait longer for the first power-up...
    assert (by_margin[1.0].first_activation_s
            < by_margin[1.25].first_activation_s
            < by_margin[1.5].first_activation_s)
    # ...but leave a healthier residual pool (1.0 scrapes bottom).
    assert by_margin[1.0].pool_floor_j < by_margin[1.25].pool_floor_j
    # All margins sustain steady-state service.
    for row in rows:
        assert row.activations >= 4


def test_bench_ablation_tick_size(run_once):
    rows = run_once(ablations.tick_size_ablation)
    for row in rows:
        # 68.5 mW on a 137 mW CPU: 50% duty at any tick.
        assert row.duty_cycle == pytest.approx(0.5, abs=0.02)
        # Figure 6b equilibrium: 700 mJ at any tick (exact integral).
        assert row.equilibrium_j == pytest.approx(0.700, rel=0.03)


def test_bench_ablation_cpu_billing(run_once):
    rows = run_once(ablations.cpu_billing_ablation)
    indexed = {(r.workload, r.worst_case): r for r in rows}
    # Worst-case billing overcharges arithmetic loops by the measured
    # 13%, but barely overcharges memory-bound streams.
    assert indexed[("arithmetic", True)].overbilling_fraction == \
        pytest.approx(0.13, abs=0.01)
    assert indexed[("memory-stream", True)].overbilling_fraction < 0.03
    # Counter-based billing is exact for both.
    assert indexed[("arithmetic", False)].overbilling_fraction == \
        pytest.approx(0.0, abs=1e-9)
    assert indexed[("memory-stream", False)].overbilling_fraction == \
        pytest.approx(0.0, abs=1e-9)


def test_bench_ablation_vs_currentcy(run_once):
    result = run_once(ablations.baseline_comparison)
    # Subdivision: Cinder's browser keeps most of its energy; the
    # currentcy browser loses ~half to its greedy plugin (§2.3).
    assert result.cinder_browser_share > 0.75
    assert result.currentcy_browser_share < 0.55
    # Delegation: pooled daemons reach the radio within one period;
    # isolated currentcy accounts cannot.
    assert result.cinder_first_activation_ok
    assert not result.currentcy_first_activation_ok
