"""Benchmark: regenerate Figure 13 (staggered vs cooperative radio).

Paper targets: the uncooperative pair staggers activations (~2/min);
the cooperative pair pools and activates once per minute, with both
apps riding the same cycle and completing the same number of polls.
"""

import pytest

from repro.figures import fig13_cooperative


def test_bench_fig13_pair(run_once):
    result = run_once(fig13_cooperative.run,
                      duration_s=fig13_cooperative.EXPERIMENT_SECONDS)
    minutes = result.coop.duration_s / 60.0
    # (a) staggered: ~two activations per minute.
    assert result.uncoop.activations / minutes == pytest.approx(2.0,
                                                                rel=0.1)
    # (b) pooled: ~one activation per minute.
    assert result.coop.activations / minutes == pytest.approx(1.0,
                                                              rel=0.15)
    # Cooperation at least ~1.5x less active radio time.
    assert (result.uncoop.active_time_s
            > 1.5 * result.coop.active_time_s)
    # Work parity: same polls completed.
    assert result.coop.polls_completed >= result.uncoop.polls_completed - 1
