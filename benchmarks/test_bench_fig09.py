"""Benchmark: regenerate Figure 9 (isolation under forking).

Paper targets: A pinned at ~68 mW throughout; B's family (B + B1 + B2)
sums to B's original share; the stacked estimates total ~137 mW and
track the measured CPU power (~139 mW).
"""

import pytest

from repro.figures import fig09_isolation


def test_bench_fig09_isolation(run_once):
    result = run_once(fig09_isolation.run, duration_s=60.0)
    rows = {c.metric: c for c in result.comparisons}
    # Isolation: A unchanged before and after B's forks.
    assert rows["A steady power"].measured == pytest.approx(0.0685,
                                                            rel=0.03)
    assert rows["A power before forks"].measured == pytest.approx(
        0.0685, rel=0.05)
    # Subdivision: B halves itself, children get quarters.
    assert rows["B steady power (after both forks)"].measured == \
        pytest.approx(0.03425, rel=0.05)
    assert rows["B1 steady power"].measured == pytest.approx(0.017125,
                                                             rel=0.08)
    # Accounting matches measurement.
    assert rows["stacked estimate sum"].measured == pytest.approx(
        rows["measured CPU power"].measured, rel=0.05)
