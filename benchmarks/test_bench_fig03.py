"""Benchmark: regenerate Figure 3 (radio flow-energy grid).

Paper targets: mean 14.3 J, min 10.5 J, max 17.6 J over the
rate x size grid; overhead dominates (small spread despite a 60,000x
spread in bytes).
"""

import pytest

from repro.figures import fig03_radio_flows


def test_bench_fig03_grid(benchmark):
    result = benchmark(fig03_radio_flows.run, seed=1)
    # Shape: the activation overhead dominates the grid.
    assert result.mean_j == pytest.approx(14.3, rel=0.15)
    assert result.max_j / result.min_j < 2.0
    # Energy grows with offered load, comparing grid corners.
    low_corner = [e for r, s, e in result.rows if r == 1 and s == 1][0]
    high_corner = [e for r, s, e in result.rows
                   if r == 40 and s == 1500][0]
    assert high_corner > low_corner
