"""Core tick-engine perf floors: vectorized step and idle fast-forward.

Unlike the figure benches (which regenerate paper artifacts), this
bench guards the engine itself: the compiled-FlowPlan ``graph.step``
must beat the per-object reference path >= 3x on the canonical
100-reserve / 200-tap topology, and the idle fast-forward must beat
tick-by-tick >= 10x wall-clock on a 1-simulated-hour idle-heavy
system — while conserving energy.  Results are also written to
``BENCH_core.json`` so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import run_bench


def test_bench_micro_vectorized_step(benchmark):
    graph = run_bench.build_micro_graph()
    graph.step(run_bench.TICK_S)  # compile the plan outside the timer
    benchmark(graph.step, run_bench.TICK_S)
    assert graph.fallback_steps == 0


def test_bench_core_speedups_and_write_json(run_once):
    results = run_once(run_bench.collect)
    run_bench.write(results)

    micro = results["micro"]
    assert micro["speedup"] >= 3.0, (
        f"vectorized graph.step only {micro['speedup']}x over reference")

    macro = results["macro"]
    assert macro["speedup"] >= 10.0, (
        f"idle fast-forward only {macro['speedup']}x over ticking")
    assert macro["fast_forwarded_ticks"] > 300_000
    assert abs(macro["conservation_error_j"]) < 1e-6
