"""Core tick-engine perf floors: vectorized step and fast-forward.

Unlike the figure benches (which regenerate paper artifacts), this
bench guards the engine itself: the compiled-FlowPlan ``graph.step``
must beat the per-object reference path >= 3x on the canonical
100-reserve / 200-tap topology; the idle fast-forward must beat
tick-by-tick >= 10x wall-clock on a 1-simulated-hour idle-heavy
system; the pooled-netd closed form must macro-step a net-wait-heavy
hour >= 5x with bit-identical event timing; the coupled span solver
must macro-step a 3-deep-chained hour >= 5x with zero span refusals
and trajectories inside the documented tolerance; the segmented span
engine must macro-step a regime-switching hour (mid-span drain
clamps, debt zero-crossings) >= 14x with zero refusals and the
switches actually located; the cohort-stacked segment chain must
carry a 32-device switch-bound fleet >= 18x with zero demotions and
ulp-level parity against the scalar segmented path; the cohort-batched
50-device World fleet must beat tick-slicing >= 12x (noise-proof
floor; typically ~16-20x); the 1000-device
``fleet_1k`` run (independent scheduler, >= 600 simulated seconds)
must finish within its wall ceiling at conservation < 1e-8; the
randomized-phase ``fleet_1k_staggered`` run must stay under the
bucketed-cohort-scheduler unit-cost ceiling (below the pre-cohort
cost) with stacked cohort spans dominating scalar fallbacks; and the
fleet scaling curve's per-device-second cost must stay flat from 50
to 1000 devices; barrier checkpointing must add < 5% wall to the
healthy 50-device sharded run; and the socket transport must carry
the staggered 1k fleet bit-identically within 15% of in-process
sharding.  Results are also written to ``BENCH_core.json`` so the
perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import run_bench

#: Wall-clock ceiling for the 50-device, 10-simulated-minute fleet —
#: generous (measured ~1.5 s locally) because CI runners are shared;
#: the machine-independent gate is the speedup ratio below.
FLEET_WALL_LIMIT_S = 60.0

#: Wall-clock ceiling for the 1000-device, 600-simulated-second run
#: (measured ~15 s locally on one core; CI runners are shared).
FLEET_1K_WALL_LIMIT_S = 90.0

#: Per-device-second cost ceiling for the same run.  Best-of-3
#: measured ~42 us/device-second; the ceiling carries ~2.5x headroom
#: because shared runners jitter, but pins the unit cost against the
#: slow drift a coarse wall limit would never catch.
FLEET_1K_US_PER_DEVICE_S = 110.0

#: Ceiling for the randomized-phase (staggered) 1000-device point on
#: the bucketed cohort scheduler: best-of-3 measured ~14.8
#: us/device-second, vs 31.62 on the pre-cohort independent loop.
#: The ceiling sits *below* the pre-cohort cost — losing the cohort
#: path is a hard failure, not noise — with ~2x headroom over the
#: measurement for shared runners.
FLEET_1K_STAGGERED_US_PER_DEVICE_S = 30.0
FLEET_1K_STAGGERED_WALL_LIMIT_S = 45.0

#: Socket-transport overhead ceiling vs in-process sharding on the
#: same partition (best-of-3 measured ~8% on one shared core; the
#: persistent heartbeat channel is what keeps it there — a fresh TCP
#: dial per probe alone costs ~18%).
FLEET_SOCKET_OVERHEAD_FRAC = 0.15


def test_bench_micro_vectorized_step(benchmark):
    graph = run_bench.build_micro_graph()
    graph.step(run_bench.TICK_S)  # compile the plan outside the timer
    benchmark(graph.step, run_bench.TICK_S)
    assert graph.fallback_steps == 0


def test_bench_core_speedups_and_write_json(run_once):
    results = run_once(run_bench.collect)
    run_bench.write(results)

    micro = results["micro"]
    assert micro["speedup"] >= 3.0, (
        f"vectorized graph.step only {micro['speedup']}x over reference")

    macro = results["macro"]
    assert macro["speedup"] >= 10.0, (
        f"idle fast-forward only {macro['speedup']}x over ticking")
    assert macro["fast_forwarded_ticks"] > 300_000
    assert abs(macro["conservation_error_j"]) < 1e-6

    netd = results["netd_macro"]
    assert netd["speedup"] >= 5.0, (
        f"pooled-netd fast-forward only {netd['speedup']}x over ticking")
    assert netd["events_identical"], (
        "pooled-netd fast-forward drifted from tick-by-tick event timing")
    assert netd["fast_forwarded_ticks"] > 300_000
    assert abs(netd["conservation_error_j"]) < 1e-6

    chain = results["chain_macro"]
    assert chain["speedup"] >= 5.0, (
        f"chained-topology fast-forward only {chain['speedup']}x over "
        f"ticking")
    assert chain["span_refusals"] == 0, (
        "the coupled span solver refused chained spans it must carry")
    assert chain["fast_forwarded_ticks"] > 300_000
    assert chain["worst_level_rel_err"] < 2e-3, (
        "chained span trajectories drifted past the documented tolerance")
    assert abs(chain["conservation_error_j"]) < 1e-6

    switching = results["switching_macro"]
    # 14x, not the ~22x measured: the certify-first fast path plus
    # the compiled switch-location kernel lifted this from ~14x, and
    # the floor trails the measurement by the same noise margin the
    # fleet floor uses.
    assert switching["speedup"] >= 14.0, (
        f"switching-topology fast-forward only {switching['speedup']}x "
        f"over ticking")
    assert switching["span_refusals"] == 0, (
        "the segmented span engine refused switching spans it must carry")
    assert switching["span_switches"] >= 2, (
        "the switching workload must actually cross regime switches")
    assert switching["span_segments"] > switching["span_switches"]
    assert switching["fast_forwarded_ticks"] > 300_000
    assert switching["worst_level_abs_err"] < 0.05, (
        "switching span trajectories drifted past the switch-instant "
        "quantization tolerance")
    assert abs(switching["conservation_error_j"]) < 1e-6
    # The wall split must actually be recorded: a switching-heavy
    # run spends measurable time in both halves of the segment loop.
    assert switching["span_locate_wall_s"] > 0.0
    assert switching["span_integrate_wall_s"] > 0.0

    batched = results["batched_switching"]
    assert batched["cohort_demotions"] == 0, (
        "the stacked segment chain demoted switch-bound devices the "
        "batched engine must carry")
    assert batched["span_refusals"] == 0
    assert batched["cohort_spans"] > 0
    assert batched["span_segments"] > batched["cohort_spans"], (
        "switch-bound cohort spans must split into multiple segments")
    # 18x is the target class (netd/chain territory); measured ~50x
    # with the numpy kernel on one core.
    assert batched["speedup_vs_tick"] >= 18.0, (
        f"cohort-stacked switching only {batched['speedup_vs_tick']}x "
        f"over tick-slicing")
    # Stacked matrix products reorder a handful of float additions
    # relative to the per-device solve; parity holds to ulp-scale
    # (measured exactly 0.0 on this fleet, bounded 1e-9 for slack).
    assert batched["worst_batched_vs_scalar_rel"] < 1e-9, (
        "batched segment chains drifted from the scalar segmented "
        "reference beyond ulp tolerance")
    assert batched["worst_conservation_error_j"] < 1e-8

    fleet = results["fleet"]
    assert fleet["devices"] >= 50
    assert fleet["fast_forward_wall_s"] < FLEET_WALL_LIMIT_S, (
        f"50-device fleet took {fleet['fast_forward_wall_s']}s "
        f"(limit {FLEET_WALL_LIMIT_S}s)")
    # 12x, not the ~16-20x typically measured: on a busy shared
    # runner the ~1.3 s fast-side wall is scheduler-noise dominated
    # and identical code measures anywhere in 13-20x; the floor
    # exists to catch structural regressions, not to re-measure the
    # run-to-run jitter.
    assert fleet["speedup_vs_tick"] >= 12.0, (
        f"cohort-batched fleet only {fleet['speedup_vs_tick']}x over "
        f"tick-slicing")
    assert fleet["cohort_fallbacks"] == 0, (
        "homogeneous poller fleet must stay fully cohort-batched")
    assert fleet["worst_conservation_error_j"] < 1e-6

    fleet_1k = results["fleet_1k"]
    assert fleet_1k["devices"] >= 1000
    assert fleet_1k["simulated_s"] >= 600.0
    assert fleet_1k["wall_s"] < FLEET_1K_WALL_LIMIT_S, (
        f"1000-device fleet took {fleet_1k['wall_s']}s "
        f"(limit {FLEET_1K_WALL_LIMIT_S}s)")
    assert fleet_1k["worst_conservation_error_j"] < 1e-8
    assert fleet_1k["radio_activations"] >= 1000
    # Explicit per-device-second ceiling, best-of-3 measured at
    # ~42 us on one shared core.  The wall limit above catches
    # catastrophic regressions; this pins the unit cost the ROADMAP
    # quotes (with ~2.5x headroom for runner noise).
    assert fleet_1k["us_per_device_second"] <= FLEET_1K_US_PER_DEVICE_S, (
        f"1000-device fleet costs {fleet_1k['us_per_device_second']} "
        f"us per device-second (ceiling {FLEET_1K_US_PER_DEVICE_S})")

    staggered = results["fleet_1k_staggered"]
    assert staggered["devices"] >= 1000
    assert staggered["simulated_s"] >= 600.0
    assert staggered["wall_s"] < FLEET_1K_STAGGERED_WALL_LIMIT_S, (
        f"staggered 1000-device fleet took {staggered['wall_s']}s "
        f"(limit {FLEET_1K_STAGGERED_WALL_LIMIT_S}s)")
    assert (staggered["us_per_device_second"]
            <= FLEET_1K_STAGGERED_US_PER_DEVICE_S), (
        f"staggered 1000-device fleet costs "
        f"{staggered['us_per_device_second']} us per device-second "
        f"(ceiling {FLEET_1K_STAGGERED_US_PER_DEVICE_S})")
    # The cohort path, not per-device fallback, must carry the run:
    # randomized phases still land whole (cohort_token, lam) groups
    # in each frontier bucket, and the poll-skip cache must fire.
    assert staggered["independent_rounds"] > 0
    assert staggered["independent_cohort_spans"] > 0
    assert (staggered["independent_cohort_spans"]
            > 10 * staggered["independent_scalar_spans"]), (
        "staggered fleet degraded to scalar spans — the frontier "
        "buckets are not forming cohorts")
    assert staggered["horizon_cache_hits"] > 0
    assert staggered["worst_conservation_error_j"] < 1e-8
    assert staggered["radio_activations"] >= 1000

    points = {p["devices"]: p
              for p in results["fleet_scaling"]["points"]}
    assert set(points) >= {50, 200, 1000}
    flatness = (points[1000]["us_per_device_second"]
                / points[50]["us_per_device_second"])
    assert flatness <= 2.5, (
        f"per-device-second cost grew {flatness:.2f}x from 50 to 1000 "
        f"devices — the world loop is not scaling sublinearly")
    for point in points.values():
        assert point["worst_conservation_error_j"] < 1e-8

    socketed = results["fleet_socketed"]
    assert socketed["digest_identical"], (
        "socket transport diverged from in-process sharding")
    assert socketed["devices"] >= 1000
    assert socketed["barriers"] >= 4, (
        "the socketed bench must cross real barriers or the wire "
        "carries no checkpoint traffic")
    # The machine-independent gate: same fleet, same partition, same
    # barrier cadence — the socket tier (framing, pickle round trips,
    # heartbeats, daemon spawn) may add at most 15% wall.
    assert socketed["overhead_frac"] <= FLEET_SOCKET_OVERHEAD_FRAC, (
        f"socket transport adds {socketed['overhead_frac']:.1%} over "
        f"in-process sharding (ceiling "
        f"{FLEET_SOCKET_OVERHEAD_FRAC:.0%})")
    # A healthy bench run must not have tripped the fault ladder.
    assert socketed["shard_reschedules"] == 0
    assert socketed["forced_terminations"] == 0

    shards = results["fleet_shards"]
    assert {entry["shards"] for entry in shards["sweep"]} >= {0, 2, 4}
    for entry in shards["sweep"]:
        assert entry["worst_conservation_error_j"] < 1e-8

    ckpt = results["checkpoint_overhead"]
    assert ckpt["barriers"] >= 10
    # <5% steady-state checkpoint cost on a healthy run: per-barrier
    # capture timed inline against the barrier chunk's own compute
    # (measured ~1%; paired end-to-end sharded walls drown the
    # quantity in pool-spawn jitter).  The program-running fleet must
    # also have settled into the cheap replay-recipe capture path.
    assert ckpt["capture_method"] == "replay"
    assert ckpt["overhead_frac"] <= 0.05, (
        f"barrier checkpoints cost {ckpt['overhead_frac']:.1%} of the "
        f"barrier compute (floor 5%)")
