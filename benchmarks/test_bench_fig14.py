"""Benchmark: regenerate Figure 14 (netd pooled reserve level).

Paper targets: the pool saws between ~125% of the activation cost and
a positive floor — "the reserve does not empty to 0".
"""

import numpy as np
import pytest

from repro.figures import fig14_netd_reserve


def test_bench_fig14_pool_sawtooth(run_once):
    result = run_once(fig14_netd_reserve.run, seed=14)
    # Fills to ~125% of 9.5 J before each activation.
    assert result.peak_j == pytest.approx(11.875, rel=0.1)
    # Never back to zero once running.
    assert result.floor_after_first_fill_j > 0.5
    # Debits of roughly one activation cost.
    assert (result.peak_j - result.floor_after_first_fill_j
            == pytest.approx(9.5, rel=0.15))
    # It is a sawtooth: many rises and falls, not a flat line.
    diffs = np.diff(result.levels)
    assert (diffs > 0).any() and (diffs < -1.0).any()
