"""Benchmark: regenerate Figure 10 (viewer without adaptation).

Paper targets: constant full-quality downloads; the reserve drains to
~0 early in each batch and the run crawls to ~2500 s.
"""

import pytest

from repro.figures import fig10_viewer_noscale


def test_bench_fig10_noscale(run_once):
    result = run_once(fig10_viewer_noscale.run, seed=10)
    # Long, stall-dominated run (paper axis: ~2500 s).
    assert result.runtime_s == pytest.approx(2500.0, rel=0.15)
    # Every image at full quality, constant bytes per image.
    assert result.stats.mean_quality() == 1.0
    _, kib = result.stats.bytes_per_image_series()
    assert max(kib) - min(kib) < 1.0
    # The reserve empties (that is what stalls the transfers)...
    assert result.min_reserve_j < 1e-3
    # ...and the downloader actually stalled for most of the run.
    assert result.stats.total_stall_seconds > 0.5 * result.runtime_s
