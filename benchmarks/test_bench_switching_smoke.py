"""Quick-mode switching-span perf smoke: seconds, not minutes.

The full bench suite's ``switching_macro`` runs a simulated hour; this
file is the PR-gating smoke: a single device whose spans cross a
mid-span drain clamp and a debt zero-crossing inside ten simulated
minutes, floored on macro-step speedup over a tick slice, zero
refusals, located switches, and conservation.  A second smoke runs a
small switch-bound *cohort* through the stacked segment chain and
asserts it stays batched (zero demotions) with ulp-level parity
against the scalar segmented path.  CI runs both in the same fast job
as the fleet smoke so a segmented-engine regression fails pull
requests before the full bench matrix finishes.
"""

from __future__ import annotations

import time

import pytest

from repro.core.tap import TapType
from repro.sim.engine import CinderSystem
from repro.sim.world import World

SMOKE_SIM_S = 600.0
SMOKE_TICK_SLICE_S = 60.0
#: Looser than the full bench's 5x: the smoke run is short (timer
#: noise) — it exists to catch order-of-magnitude regressions fast.
SMOKE_SPEEDUP_FLOOR = 3.0
SMOKE_WALL_LIMIT_S = 20.0


def _build(fast_forward: bool) -> CinderSystem:
    system = CinderSystem(battery_joules=2_000.0, tick_s=0.01,
                          record_interval_s=1.0, seed=13,
                          decay_enabled=False,
                          fast_forward=fast_forward)
    kernel = system.kernel
    # Clamp material: 1 J against a 30 mW net drain empties ~33 s in.
    task = system.new_reserve(name="task")
    system.battery_reserve.transfer_to(task, 1.0)
    kernel.create_tap(system.battery_reserve, task, 0.02,
                      name="task.feed")
    archive = system.new_reserve(name="archive")
    kernel.create_tap(task, archive, 0.05, name="task.drain")
    # Debt material: crosses zero at 60 s, backward tap resumes.
    debtor = system.new_reserve(name="debtor")
    kernel.create_tap(system.battery_reserve, debtor, 0.03, name="repay")
    kernel.create_tap(debtor, system.battery_reserve, 0.05,
                      TapType.PROPORTIONAL, name="back")
    debtor.consume(1.8, allow_debt=True)
    # Chained apps: enough live topology that the tick side pays a
    # realistic per-tick cost (a near-empty graph makes the measured
    # ratio pure timer noise — both walls land in the ~50 ms range).
    for i in range(4):
        app = system.powered_reserve(0.06, name=f"app{i}")
        sub = system.new_reserve(name=f"app{i}.sub")
        kernel.create_tap(app, sub, 0.05, TapType.PROPORTIONAL,
                          name=f"app{i}.t1")
        kernel.create_tap(sub, system.battery_reserve, 0.04,
                          TapType.PROPORTIONAL, name=f"app{i}.t2")
    return system


def test_switching_smoke_floors():
    fast_wall = float("inf")
    system = None
    for _ in range(2):
        candidate = _build(True)
        start = time.perf_counter()
        candidate.run(SMOKE_SIM_S)
        wall = time.perf_counter() - start
        if wall < fast_wall:
            fast_wall, system = wall, candidate

    # Best-of-2 on the tick side too: both walls are sub-second, so
    # a single cold run would let scheduler noise bias the ratio.
    slice_wall = float("inf")
    for _ in range(2):
        tick_system = _build(False)
        start = time.perf_counter()
        tick_system.run(SMOKE_TICK_SLICE_S)
        slice_wall = min(slice_wall, time.perf_counter() - start)

    speedup = ((slice_wall / SMOKE_TICK_SLICE_S)
               / (fast_wall / SMOKE_SIM_S))
    assert fast_wall < SMOKE_WALL_LIMIT_S, (
        f"switching smoke took {fast_wall:.2f}s "
        f"(limit {SMOKE_WALL_LIMIT_S}s)")
    assert speedup >= SMOKE_SPEEDUP_FLOOR, (
        f"switching smoke only {speedup:.1f}x over tick-slicing "
        f"(floor {SMOKE_SPEEDUP_FLOOR}x)")
    assert system.span_refusals == 0, (
        "the segmented engine refused spans the smoke workload needs")
    assert system.graph.span_switches >= 2
    assert system.span_segments > 0
    assert abs(system.graph.conservation_error()) < 1e-9


BATCH_SMOKE_DEVICES = 8
BATCH_SMOKE_SIM_S = 300.0


def _build_cohort(batched: bool) -> World:
    world = World(tick_s=0.01, seed=17, fast_forward=True,
                  batched=batched)
    for i in range(BATCH_SMOKE_DEVICES):
        device = world.add_device(name=f"sw{i}", record_interval_s=5.0,
                                  decay_enabled=False)
        task = device.new_reserve(name="task")
        # 0.21, not 0.20: a 0.2 stagger lands several clamp instants
        # exactly on the 5 s record boundary, where the span *ends* at
        # the switch and no mid-span segment split is counted.
        device.battery_reserve.transfer_to(task, 1.0 + 0.21 * i)
        device.kernel.create_tap(device.battery_reserve, task, 0.02,
                                 name="task.feed")
        archive = device.new_reserve(name="archive")
        device.kernel.create_tap(task, archive, 0.05, name="task.drain")
    return world


def test_batched_switching_smoke():
    """The stacked segment chain carries a staggered switch-bound
    cohort: zero demotions, zero refusals, ulp parity vs scalar."""
    world = _build_cohort(True)
    world.run(BATCH_SMOKE_SIM_S)
    assert world.cohort_demotions == 0, (
        "the stacked chain demoted switch-bound devices it must carry")
    assert world.cohort_spans > 0
    assert world.span_segments > 0
    assert sum(d.span_refusals for d in world.devices) == 0
    assert sum(d.graph.span_switches for d in world.devices) \
        >= BATCH_SMOKE_DEVICES

    scalar = _build_cohort(False)
    scalar.run(BATCH_SMOKE_SIM_S)
    for fast_dev, ref_dev in zip(world.devices, scalar.devices):
        for rf, rs in zip(fast_dev.graph.reserves,
                          ref_dev.graph.reserves):
            assert rf.level == pytest.approx(rs.level, rel=1e-9,
                                             abs=1e-12), rf.name
        assert abs(fast_dev.graph.conservation_error()) < 1e-9
