"""Quick-mode transport-chaos smoke: host loss, reschedule, seconds.

The socketed chaos suite proper (``tests/sim/test_transport_chaos.py``)
sweeps every network fault kind over several seed pairs; this file is
the PR-gating smoke CI runs in the fast bench job: a 6-device
two-shard fleet on two shard-host daemons loses one host mid-run and
must finish bit-identically to the fault-free run by **rescheduling**
the lost shard onto the survivor — no inline degradation, no leaked
daemons, inside a small wall budget.  A cross-host recovery
regression fails pull requests in seconds instead of surfacing as a
hung nightly.
"""

from __future__ import annotations

import functools
import multiprocessing
import time

from repro.sim.faults import HOST_CRASH, FaultEvent, FaultPlan
from repro.sim.shards import ShardedWorld
from repro.sim.workload import poller_shard

SMOKE_DEVICES = 6
SMOKE_SIM_S = 90.0
SMOKE_BARRIER_S = 30.0
SMOKE_WALL_LIMIT_S = 45.0


def _builder():
    return functools.partial(
        poller_shard, fleet_size=SMOKE_DEVICES, watts=0.25,
        period_s=60.0, bytes_out=64, record_interval_s=1.0,
        decay_enabled=False)


def _fleet(fault_plan=None) -> ShardedWorld:
    return ShardedWorld(_builder(), SMOKE_DEVICES, shards=2,
                        transport="sockets", hosts=2,
                        fault_plan=fault_plan, retry_backoff_s=0.01,
                        barrier_timeout_s=15.0, heartbeat_s=0.2,
                        tick_s=0.01, seed=7)


def _inline_digest() -> str:
    """The oracle: the same fleet inline — no processes, no sockets."""
    return ShardedWorld(_builder(), SMOKE_DEVICES, shards=0,
                        tick_s=0.01, seed=7).run(
        SMOKE_SIM_S, barrier_s=SMOKE_BARRIER_S).digest()


def test_transport_smoke_reschedules_bit_identically():
    clean_digest = _inline_digest()

    plan = FaultPlan([FaultEvent(shard=1, barrier=1, kind=HOST_CRASH)])
    start = time.perf_counter()
    chaos = _fleet(plan).run(SMOKE_SIM_S, barrier_s=SMOKE_BARRIER_S)
    wall = time.perf_counter() - start

    assert chaos.digest() == clean_digest, (
        "rescheduled socketed run diverged from the inline oracle")
    assert plan.consumed == 1
    assert chaos.transport == "sockets"
    # The acceptance shape: the lost shard moved, nothing degraded.
    assert chaos.shard_reschedules >= 1
    assert chaos.degraded_shards == []
    assert chaos.host_failures
    assert chaos.placement[1] == 0
    assert not multiprocessing.active_children(), "leaked host daemons"
    assert wall < SMOKE_WALL_LIMIT_S, (
        f"transport smoke took {wall:.2f}s (limit {SMOKE_WALL_LIMIT_S}s)")


def test_transport_smoke_seeded_crash_plus_partition():
    # The seeded version of the same gate: one host crash AND one
    # partition drawn from a fault seed.  Whatever hosts the draw
    # takes down — even both, forcing inline demotion — recovery
    # must converge on the fault-free digest, with every injection
    # consumed exactly once and no daemon outliving run().
    plan = FaultPlan.seeded(31, shards=2, barriers=3, crashes=0,
                            host_crashes=1, partitions=1)
    start = time.perf_counter()
    chaos = _fleet(plan).run(SMOKE_SIM_S, barrier_s=SMOKE_BARRIER_S)
    wall = time.perf_counter() - start

    assert chaos.digest() == _inline_digest(), (
        "seeded network-chaos run diverged from the inline oracle")
    assert plan.consumed == 2
    assert chaos.host_failures
    # The partitioned daemon survives unreachable until teardown
    # forcibly terminates it.
    assert chaos.forced_terminations >= 1
    assert not multiprocessing.active_children(), "leaked host daemons"
    assert wall < SMOKE_WALL_LIMIT_S, (
        f"seeded transport smoke took {wall:.2f}s "
        f"(limit {SMOKE_WALL_LIMIT_S}s)")
