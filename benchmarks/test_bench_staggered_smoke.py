"""Quick-mode smoke for the bucketed-cohort independent scheduler.

The full ``fleet_1k_staggered`` bench runs 1000 randomized-phase
pollers for 600 simulated seconds; this is the PR-gating slice — a
32-device, 2-simulated-minute staggered fleet whose floors (frontier
rounds actually iterate, stacked cohort spans dominate scalar
fallbacks, the poll-skip cache fires, conservation holds, and the
whole thing finishes in seconds) catch a broken or degraded cohort
path long before the full bench matrix reports.  CI runs it in the
bench-smoke job and again in the numba-kernel leg, so the scheduler
is exercised over both segkernel backends.
"""

from __future__ import annotations

import time

from repro.sim.workload import staggered_poller_shard
from repro.sim.world import World

SMOKE_DEVICES = 32
SMOKE_SIM_S = 120.0
SMOKE_WALL_LIMIT_S = 20.0


def _build() -> World:
    # 0.25 W against the ~11.9 J pooled activation bill (as in the
    # fleet smoke): every poller crosses and transfers inside the
    # 2-minute run, so the smoke covers waits, crossings, and sends.
    world = World(tick_s=0.01, seed=7, fast_forward=True)
    staggered_poller_shard(world, 0, SMOKE_DEVICES, watts=0.25,
                           period_s=60.0, bytes_out=64,
                           record_interval_s=5.0, decay_enabled=False)
    return world


def test_staggered_smoke_floors():
    world = _build()
    start = time.perf_counter()
    world.run(SMOKE_SIM_S, independent=True)
    wall = time.perf_counter() - start

    assert wall < SMOKE_WALL_LIMIT_S, (
        f"staggered smoke fleet took {wall:.2f}s "
        f"(limit {SMOKE_WALL_LIMIT_S}s)")
    assert world.barrier_rounds > 0, (
        "the independent scheduler must count its frontier rounds")
    assert world.independent_cohort_spans > 0, (
        "randomized phases must still form stacked cohort spans")
    assert (world.independent_cohort_spans
            > world.independent_scalar_spans), (
        "staggered smoke fleet degraded to scalar spans")
    assert world.horizon_cache_hits > 0, (
        "the post-commit poll-skip cache never fired")
    assert world.horizon_polls > 0
    assert world.conservation_error() < 1e-8
    assert world.total_radio_activations() >= SMOKE_DEVICES
