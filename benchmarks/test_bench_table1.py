"""Benchmark: regenerate Table 1 (cooperative sharing summary).

Paper targets over 1201 s: cooperation cuts total energy ~12.5%,
active radio time ~46.3%, active energy ~44.2%, at equal work.
"""

import pytest

from repro.figures import table1_summary


def test_bench_table1(run_once):
    result = run_once(table1_summary.run)
    rows = {r[0]: r for r in result.measured_rows()}

    # Who wins: cooperation, on every row.
    assert rows["Total Energy (J)"][2] < rows["Total Energy (J)"][1]
    assert rows["Active Time (s)"][2] < rows["Active Time (s)"][1]
    assert rows["Active Energy (J)"][2] < rows["Active Energy (J)"][1]

    # By roughly the paper's factors.
    assert rows["Total Energy (J)"][3] == pytest.approx(0.125, abs=0.06)
    assert rows["Active Time (s)"][3] == pytest.approx(0.463, abs=0.10)
    assert rows["Active Energy (J)"][3] == pytest.approx(0.442, abs=0.10)

    # Equal work in equal time.
    assert result.coop.duration_s == result.uncoop.duration_s
    assert result.coop.polls_completed >= result.uncoop.polls_completed - 1
