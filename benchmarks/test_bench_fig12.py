"""Benchmark: regenerate Figure 12 (foreground/background + hoarding).

Paper targets: (a) clean handoffs at 137 mW; (b) at 300 mW the retired
app keeps spending its hoard, competes 50/50 during the other's
foreground interval, and the last app burns ~90% CPU after retirement.
"""

import pytest

from repro.figures import fig12_background


def test_bench_fig12_both_panels(run_once):
    pair = run_once(fig12_background.run, duration_s=60.0)

    a_rows = {c.metric: c for c in pair.panel_a.comparisons}
    # (a) Background share ~7 mW, foreground ~full CPU, clean return.
    assert a_rows["A background power (0-10 s)"].measured == \
        pytest.approx(0.007, rel=0.1)
    assert a_rows["A foreground power (10-20 s)"].measured == \
        pytest.approx(0.137, rel=0.1)
    assert a_rows["A power after retirement (22-30 s)"].measured == \
        pytest.approx(0.007, rel=0.1)

    b_rows = {c.metric: c for c in pair.panel_b.comparisons}
    # (b) Hoard: full CPU after retirement, 50/50 contention, ~90% tail.
    assert b_rows["A power after retirement (20-30 s)"].measured > 0.10
    assert b_rows["A share during B's turn (30-36 s)"].measured == \
        pytest.approx(0.0685, rel=0.1)
    assert b_rows["B power after retirement (41-50 s)"].measured > 0.10
