"""Quick-mode fault-injection smoke: one crash, full recovery, seconds.

The chaos suite proper (``tests/sim/test_chaos_recovery.py``) sweeps
seeded fault plans; this file is the PR-gating smoke CI runs in the
fast bench job: a 10-device two-shard fleet with one injected worker
crash mid-run must recover bit-identically to the fault-free run,
account for the crash in the supervision telemetry, leak no worker
processes, and finish inside a small wall budget — so a recovery
regression fails pull requests in seconds instead of surfacing as a
hung nightly.
"""

from __future__ import annotations

import functools
import multiprocessing
import time

from repro.sim.faults import CRASH, FaultEvent, FaultPlan
from repro.sim.shards import ShardedWorld
from repro.sim.workload import poller_shard

SMOKE_DEVICES = 10
SMOKE_SIM_S = 120.0
SMOKE_BARRIER_S = 30.0
SMOKE_WALL_LIMIT_S = 30.0


def _fleet(fault_plan=None) -> ShardedWorld:
    builder = functools.partial(
        poller_shard, fleet_size=SMOKE_DEVICES, watts=0.25,
        period_s=60.0, bytes_out=64, record_interval_s=1.0,
        decay_enabled=False)
    return ShardedWorld(builder, SMOKE_DEVICES, shards=2,
                        fault_plan=fault_plan, retry_backoff_s=0.01,
                        tick_s=0.01, seed=7)


def test_chaos_smoke_recovers_bit_identically():
    clean = _fleet().run(SMOKE_SIM_S, barrier_s=SMOKE_BARRIER_S)
    assert clean.shard_restarts == 0

    plan = FaultPlan([FaultEvent(shard=1, barrier=2, kind=CRASH)])
    start = time.perf_counter()
    chaos = _fleet(plan).run(SMOKE_SIM_S, barrier_s=SMOKE_BARRIER_S)
    wall = time.perf_counter() - start

    assert chaos.digest() == clean.digest(), (
        "recovered chaos run diverged from the fault-free fleet")
    assert plan.consumed == 1
    assert chaos.shard_restarts == 1
    assert chaos.recovered_barriers == 1
    assert not chaos.degraded_shards
    assert any("crash" in cause
               for cause in chaos.shard_failures.get(1, []))
    assert not multiprocessing.active_children(), "leaked worker processes"
    assert wall < SMOKE_WALL_LIMIT_S, (
        f"chaos smoke took {wall:.2f}s (limit {SMOKE_WALL_LIMIT_S}s)")
