#!/usr/bin/env python3
"""Reserves beyond energy: data-plan and SMS quotas (paper §9).

"Since data plans are frequently offered in terms of megabyte quotas,
Cinder's mechanisms could be repurposed to limit application network
access by replacing the logical battery with a pool of network bytes.
Similarly, reserves could also be used to enforce SMS text message
quotas."

This example builds a 100 MiB monthly plan as the root reserve of a
second resource graph, rations it to three apps with taps (a steady
drip for mail, a big slice for maps, a burst-friendly Figure 6b
arrangement for the browser), and shows the kernel refusing an app
that exhausts its quota — no billing surprises.

Run with::

    python examples/data_plan_quota.py
"""

from repro.core.decay import DecayPolicy
from repro.core.graph import ResourceGraph
from repro.core.policy import shared_rate_limit
from repro.core.reserve import NETWORK_BYTES, SMS_MESSAGES
from repro.errors import ReserveEmptyError
from repro.units import MiB, as_MiB

SECONDS_PER_DAY = 86_400.0


def main() -> None:
    # The "battery" is the monthly plan.  Bytes do not decay.
    plan = ResourceGraph(float(MiB(100)), kind=NETWORK_BYTES,
                         root_name="data-plan",
                         decay=DecayPolicy(enabled=False))
    print(f"monthly plan: {as_MiB(plan.root.level):.0f} MiB\n")

    # Mail drips ~1 MiB/day; maps gets a 30 MiB slice up front;
    # the browser gets 2 MiB/day with a burst bank (Figure 6b shape).
    mail = plan.create_reserve(name="mail")
    plan.create_tap(plan.root, mail, MiB(1) / SECONDS_PER_DAY,
                    name="mail.drip")
    maps = plan.create_reserve(name="maps", source=plan.root,
                               level=float(MiB(30)))
    browser = shared_rate_limit(plan, plan.root,
                                MiB(2) / SECONDS_PER_DAY,
                                back_fraction=1.0 / SECONDS_PER_DAY,
                                name="browser")

    # Simulate a week, with the apps spending.
    for day in range(7):
        for _ in range(24):
            plan.step(3600.0)
        mail.consume(min(mail.level, float(MiB(0.8))))       # daily sync
        maps.consume(float(MiB(2.5)))                        # a trip
        browser.reserve.consume(min(browser.reserve.level,
                                    float(MiB(1.5))))        # browsing

    print("after one week:")
    for reserve in (mail, maps, browser.reserve):
        print(f"  {reserve.name:8s} level {as_MiB(reserve.level):6.2f} MiB"
              f"   used {as_MiB(reserve.total_consumed):6.2f} MiB")
    print(f"  plan remaining: {as_MiB(plan.root.level):.2f} MiB")

    # Quota enforcement: maps tries to grab more than it has left.
    try:
        maps.consume(float(MiB(50)))
    except ReserveEmptyError as exc:
        print(f"\nmaps over quota -> kernel refuses: {exc}")

    # SMS quotas work the same way with a message-count root.
    sms = ResourceGraph(100.0, kind=SMS_MESSAGES, root_name="sms-plan",
                        decay=DecayPolicy(enabled=False))
    kid = sms.create_reserve(name="kid", source=sms.root, level=10.0)
    for _ in range(10):
        kid.consume(1.0)
    try:
        kid.consume(1.0)
    except ReserveEmptyError:
        print("kid's 10-message SMS quota exhausted -> blocked, "
              "parent's 90 remain untouched")
    print(f"\nconservation: plan error {plan.conservation_error():.2e}, "
          f"sms error {sms.conservation_error():.2e}")


if __name__ == "__main__":
    main()
