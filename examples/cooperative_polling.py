#!/usr/bin/env python3
"""Cooperative radio access: the paper's §6.4 experiment, hands-on.

Two background daemons — a POP3 mail fetcher and an RSS downloader —
each poll every 60 seconds.  Alone, neither can afford the radio's
9.5 J activation cost more than once per two minutes.  Run them twice:

* **uncooperative** — an energy-unrestricted stack; the staggered
  polls each wake the radio, wasting its 20 s active tail twice;
* **cooperative** — Cinder's netd pools their tap income; the radio
  turns on once a minute and both apps ride the same cycle.

Prints the Table 1 rows for both runs.

Run with::

    python examples/cooperative_polling.py [duration_seconds]
"""

import sys

from repro.apps.mail import MailConfig, MailStats, mail_fetcher
from repro.apps.rss import RssConfig, RssStats, rss_downloader
from repro.sim import CinderSystem
from repro.units import fmt_duration


def run(cooperative: bool, duration_s: float) -> CinderSystem:
    system = CinderSystem(seed=7, cooperative_netd=cooperative,
                          unrestricted_netd=not cooperative)
    mail_stats, rss_stats = MailStats(), RssStats()
    if cooperative:
        # "Enough energy to turn the radio on every two minutes":
        # margin * activation / 120 s ~= 99 mW apiece.
        watts = (system.netd.activation_margin
                 * system.radio.params.activation_cost) / 120.0
        mail_reserve = system.powered_reserve(watts, name="mail")
        rss_reserve = system.powered_reserve(watts, name="rss")
    else:
        mail_reserve = rss_reserve = None
    system.spawn(mail_fetcher(MailConfig(), mail_stats), "mail",
                 reserve=mail_reserve)
    system.spawn(rss_downloader(RssConfig(), rss_stats), "rss",
                 reserve=rss_reserve)
    system.run(duration_s)
    system.meter.flush()
    system.stats = (mail_stats, rss_stats)  # stash for reporting
    return system


def report(label: str, system: CinderSystem, duration_s: float) -> None:
    mail_stats, rss_stats = system.stats
    threshold = system.model.idle_watts + 0.1
    active_s = system.meter.time_above(threshold)
    print(f"\n{label}")
    print(f"  radio activations : {system.radio.activation_count}")
    print(f"  active radio time : {fmt_duration(active_s)} "
          f"({100 * active_s / duration_s:.0f}% of the run)")
    print(f"  total energy      : "
          f"{system.meter.total_energy_joules:.0f} J")
    print(f"  polls completed   : mail {mail_stats.polls_completed}, "
          f"rss {rss_stats.polls_completed}")
    print(f"  netd pool level   : {system.netd.pool.level:.2f} J")


def main() -> None:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 600.0
    print(f"running both configurations for "
          f"{fmt_duration(duration_s)} of simulated time...")
    solo = run(cooperative=False, duration_s=duration_s)
    coop = run(cooperative=True, duration_s=duration_s)
    report("UNCOOPERATIVE (staggered polls, unrestricted stack)", solo,
           duration_s)
    report("COOPERATIVE (netd pooling, Figure 8 topology)", coop,
           duration_s)

    saved = (1.0 - coop.meter.total_energy_joules
             / solo.meter.total_energy_joules)
    threshold = solo.model.idle_watts + 0.1
    active_cut = (1.0 - coop.meter.time_above(threshold)
                  / solo.meter.time_above(threshold))
    print(f"\ncooperation saved {saved * 100:.1f}% total energy and "
          f"{active_cut * 100:.1f}% active radio time "
          f"(paper Table 1: 12.5% and 46.3%)")


if __name__ == "__main__":
    main()
