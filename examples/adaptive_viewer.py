#!/usr/bin/env python3
"""The energy-aware image gallery (§5.3/§6.2), adaptive vs not.

A downloader thread fetches batches of interlaced PNG images from a
gallery server, funded by a 2 mW tap into its own reserve.  The user
pauses between batches — 40 s at first, 5 s less each time — so less
energy accumulates before each successive batch.

The *adaptive* viewer watches its reserve level and requests only a
fraction of each interlaced image when energy runs low: lower quality,
but it keeps moving.  The *non-adaptive* viewer always fetches full
images and stalls whenever the reserve empties.

Run with::

    python examples/adaptive_viewer.py
"""

from repro.apps.image_viewer import (ViewerConfig, ViewerStats,
                                     image_viewer_downloader)
from repro.figures.fig10_viewer_noscale import (DOWNLOADER_TAP_W,
                                                PAPER_RESERVE_START_J,
                                                build_system)
from repro.units import fmt_duration


def run(adaptive: bool) -> ViewerStats:
    system = build_system(seed=1)
    reserve = system.powered_reserve(DOWNLOADER_TAP_W, name="downloader")
    system.battery_reserve.transfer_to(reserve, PAPER_RESERVE_START_J)
    stats = ViewerStats()
    config = ViewerConfig(adaptive=adaptive)
    process = system.spawn(image_viewer_downloader(config, stats),
                           "viewer", reserve=reserve)
    system.run_until(lambda: process.finished, max_s=6000.0)
    return stats


def describe(label: str, stats: ViewerStats) -> None:
    print(f"\n{label}")
    print(f"  finished in       : {fmt_duration(stats.finished_at)}")
    print(f"  images downloaded : {len(stats.images)}")
    print(f"  mean quality      : {stats.mean_quality() * 100:.0f}%")
    print(f"  data transferred  : {stats.total_bytes / 2**20:.1f} MiB")
    print(f"  time stalled      : "
          f"{fmt_duration(stats.total_stall_seconds)}")
    kib = [record.nbytes / 1024 for record in stats.images[:8]]
    print("  first batch (KiB) : "
          + ", ".join(f"{k:.0f}" for k in kib))


def main() -> None:
    print("downloading 9 batches of 8 images, pauses 40,35,30,... s")
    adaptive = run(adaptive=True)
    plain = run(adaptive=False)
    describe("ADAPTIVE (interlaced partial fetches)", adaptive)
    describe("NON-ADAPTIVE (full images, stalls when broke)", plain)
    speedup = plain.finished_at / adaptive.finished_at
    print(f"\nadaptation finished {speedup:.1f}x sooner "
          f"(paper: 'less than one-fifth the time')")


if __name__ == "__main__":
    main()
