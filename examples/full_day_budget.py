#!/usr/bin/env python3
"""A full day of device use, guaranteed (the paper's intro example).

"Outside of manually configuring applications and periodically
checking battery use, today's systems cannot do something as simple as
controlling email polling to ensure a full day of device use."

With reserves and taps it *is* simple: divide the battery by the
target lifetime, subtract the undelegatable baseline, and hand out the
rest as tap rates.  This example plans a 24-hour budget for a
mostly-suspended phone (25 mW suspend draw), sizes the mail daemon's
tap from the poll interval it must sustain, then *enforces* the plan
in simulation and checks the projected lifetime.

Run with::

    python examples/full_day_budget.py
"""

from repro.core.planner import (LifetimeBudget, income_for_poll_interval,
                                poll_interval_for)
from repro.sim import CinderSystem, spinner
from repro.units import as_mW, fmt_duration, fmt_power, hours

BATTERY_J = 15_300.0          # a full G1 battery
TARGET_S = hours(24)
SUSPEND_W = 0.025             # mostly-suspended baseline


def main() -> None:
    budget = LifetimeBudget(BATTERY_J, TARGET_S,
                            baseline_watts=SUSPEND_W,
                            safety_margin=0.05)
    print(f"battery {BATTERY_J / 1000:.1f} kJ, target "
          f"{fmt_duration(TARGET_S)}, suspend draw "
          f"{fmt_power(SUSPEND_W)}")
    print(f"discretionary power: "
          f"{fmt_power(budget.discretionary_watts)}\n")

    # Mail must poll every 10 minutes; two pooled daemons share radio
    # activations (Figure 13b), so each needs:
    mail_watts = income_for_poll_interval(600.0, sharers=2)
    rss_watts = income_for_poll_interval(600.0, sharers=2)
    print(f"mail/rss polling every 10 min (pooled): "
          f"{as_mW(mail_watts):.1f} mW each")

    plan = (budget
            .grant("mail", watts=mail_watts)
            .grant("rss", watts=rss_watts)
            .grant("browser", weight=3.0)   # interactive use
            .grant("music", weight=1.0)
            .solve())

    print("\nplanned tap rates:")
    for name, watts in sorted(plan.rates.items()):
        print(f"  {name:8s} {as_mW(watts):7.2f} mW")
    projected = plan.lifetime_with_baseline(BATTERY_J, SUSPEND_W)
    print(f"\nworst-case lifetime if everyone spends flat out: "
          f"{fmt_duration(projected)} (target {fmt_duration(TARGET_S)})")

    # Enforce it: wire the plan into a live system and burn hard.
    system = CinderSystem(battery_joules=BATTERY_J, seed=5)
    children = LifetimeBudget(BATTERY_J, TARGET_S,
                              baseline_watts=SUSPEND_W,
                              safety_margin=0.05) \
        .grant("mail", watts=mail_watts) \
        .grant("rss", watts=rss_watts) \
        .grant("browser", weight=3.0) \
        .grant("music", weight=1.0) \
        .apply(system.graph)
    # The browser goes rogue and spins continuously...
    system.spawn(spinner(), "browser",
                 reserve=children["browser"].reserve)
    system.run(hours(0.5))

    spent = children["browser"].reserve.total_consumed
    rate = spent / hours(0.5)
    print(f"\nrogue browser after 30 simulated minutes: spent "
          f"{spent:.1f} J = {as_mW(rate):.2f} mW average")
    print(f"  -> pinned at its planned "
          f"{as_mW(plan.rates['browser']):.2f} mW; "
          f"the day's budget holds no matter what it does")


if __name__ == "__main__":
    main()
