#!/usr/bin/env python3
"""GPS fix sharing: the netd recipe applied to another peripheral.

The paper groups GPS with the radio as devices whose "complex,
non-linear power models" reward OS-level coordination (§5.5).  A cold
fix costs ~4.3 J (12 s at 360 mW); once acquired, a position is fresh
for ~30 s and free to share.

Three location-hungry apps each earn 150 mW.  Uncoordinated, each
would pay for its own acquisition.  Through the pooled gpsd daemon
they fund *one* acquisition together and all ride the same fix —
delegation again, just like the radio pool.

Run with::

    python examples/gps_sharing.py
"""

from repro.sensors.gps import FixOpState, GpsDaemon, GpsDevice
from repro.sim import CinderSystem
from repro.sim.process import Sleep, WaitFor
from repro.units import fmt_energy, mW


def main() -> None:
    system = CinderSystem(seed=11)
    device = GpsDevice()
    daemon = GpsDaemon(system.graph, device,
                       clock=lambda: system.clock.now)
    system.add_device(stepper=daemon.step,
                      power=device.power_above_baseline)

    results = {}

    def navigator(name, start_delay):
        def program(ctx):
            if start_delay:
                yield Sleep(start_delay)
            op = daemon.request_fix(ctx.thread, owner=name)
            yield WaitFor(lambda: op.state is FixOpState.DONE)
            results[name] = (ctx.now, op.billed_joules)
        return program

    # maps and weather ask together; fitness asks ~30 s later, while
    # the fix is still fresh — it pays nothing.
    for name, delay in (("maps", 0.0), ("weather", 0.0),
                        ("fitness", 32.0)):
        reserve = system.powered_reserve(mW(150), name=name)
        system.spawn(navigator(name, delay), name, reserve=reserve)

    system.run(60.0)
    system.meter.flush()

    cost = device.params.acquisition_cost
    print(f"cold fix cost: {fmt_energy(cost)} "
          f"({device.params.cold_fix_s:.0f} s at "
          f"{device.params.acquisition_watts * 1e3:.0f} mW)\n")
    for name in ("maps", "weather", "fitness"):
        when, billed = results[name]
        print(f"  {name:8s} got a fix at t={when:5.1f} s, "
              f"contributed {fmt_energy(billed)}")
    print(f"\nacquisitions performed : {device.acquisitions} "
          f"(three apps, one cold fix)")
    print(f"cached fixes served    : {daemon.cached_fixes_served}")
    print(f"pool residual          : {fmt_energy(daemon.pool.level)}")
    peak = system.meter.samples()[1].max()
    print(f"peak measured draw     : {peak:.3f} W "
          f"(idle {system.model.idle_watts:.3f} W + GPS)")


if __name__ == "__main__":
    main()
