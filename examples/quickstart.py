#!/usr/bin/env python3
"""Quickstart: reserves, taps, and the energy-aware scheduler.

Builds the paper's Figure 1 scenario — a 15 kJ battery feeding a web
browser through a 750 mW tap so the device lasts at least 5 hours —
then demonstrates the three §2.2 mechanisms in one minute of simulated
time:

* **isolation**  — a runaway process cannot exceed its tap;
* **subdivision** — the browser carves a plugin sandbox out of its own
  power;
* **delegation** — the browser tops up the starving plugin at runtime.

Run with::

    python examples/quickstart.py
"""

from repro.core.policy import shared_rate_limit
from repro.sim import CinderSystem, spinner
from repro.units import as_mW, fmt_duration, fmt_energy, fmt_power, mW


def main() -> None:
    # A phone with the paper's example battery.
    system = CinderSystem(battery_joules=15_000.0, seed=42)
    battery = system.battery_reserve
    print(f"battery: {fmt_energy(battery.level)}")

    # Figure 1: the browser behind a 750 mW tap.  15 kJ / 750 mW
    # guarantees ~5.6 hours even if the browser burns flat out.
    browser = system.powered_reserve(mW(750), name="browser")
    system.spawn(spinner(), "browser", reserve=browser)
    guaranteed = battery.level / 0.750
    print(f"browser rate-limited to 750 mW -> battery lasts at least "
          f"{fmt_duration(guaranteed)}")

    # Subdivision (Figure 6b): the browser gives a plugin 70 mW of its
    # own power, banked up to 700 mJ, unused energy flowing back.
    plugin = shared_rate_limit(system.graph, browser, mW(70),
                               back_fraction=0.1, name="plugin")
    system.spawn(spinner(), "plugin", reserve=plugin.reserve)
    print(f"plugin sandbox: {fmt_power(plugin.forward.rate)} feed, "
          f"{fmt_energy(plugin.equilibrium_level)} burst bank")

    # Run a minute of simulated time.
    system.run(60.0)

    browser_w = system.ledger.total_for("browser") / 60.0
    plugin_w = system.ledger.total_for("plugin") / 60.0
    print(f"\nafter 60 s:")
    print(f"  browser consumed {as_mW(browser_w):6.1f} mW "
          f"(CPU-bound at 137 mW)")
    print(f"  plugin  consumed {as_mW(plugin_w):6.1f} mW "
          f"(capped by its 70 mW tap)")
    print(f"  battery level    {fmt_energy(battery.level)}")
    print(f"  measured draw    "
          f"{fmt_power(system.meter.mean_power_between(0, 60.0))} "
          f"(idle 699 mW + CPU 137 mW)")

    # Delegation: the browser can hand the plugin a lump sum too.
    moved = browser.transfer_to(plugin.reserve, 0.5)
    print(f"\nbrowser delegates {fmt_energy(moved)} to the plugin "
          f"(reserve now {fmt_energy(plugin.reserve.level)})")

    # Isolation, the negative space: neither process could outspend
    # its tap, and the kernel can prove where every joule went.
    total = system.ledger.total()
    print(f"\nledger total {fmt_energy(total)}; "
          f"conservation error "
          f"{system.graph.conservation_error():.2e} J")


if __name__ == "__main__":
    main()
