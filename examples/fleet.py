#!/usr/bin/env python3
"""A 50-handset fleet on one shared clock: the World runtime, hands-on.

Every device is a full Cinder system — kernel, energy graph, radio,
netd, metered battery — running a background poller billed to a 20 mW
tap.  The tap is far too small to prepay the radio's ~11.9 J
power-up bill, so every poll blocks in netd's §5.5.2 pooled path for
minutes of simulated time.  The :class:`~repro.sim.world.World`
scheduler advances the whole fleet by the global min-event-horizon:
pooled waits, sleeps and radio timeouts are all fast-forwarded in
closed form, and every event still lands on its exact tick.

Prints fleet-wide totals plus the scheduler's macro/tick split.

Run with::

    python examples/fleet.py [devices] [duration_seconds]
"""

import sys
import time

from repro.sim import World, fleet_of_pollers
from repro.units import fmt_duration


def main() -> None:
    devices = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    duration_s = float(sys.argv[2]) if len(sys.argv) > 2 else 600.0

    world = World(tick_s=0.01, seed=7)
    fleet = fleet_of_pollers(world, devices, watts=0.02, period_s=300.0,
                             bytes_out=64, record_interval_s=1.0)
    print(f"running {devices} devices for {fmt_duration(duration_s)} "
          f"of simulated time...")
    start = time.perf_counter()
    world.run(duration_s)
    wall = time.perf_counter() - start

    polls = sum(device.netd.stats.operations for device, _ in fleet)
    waits = sum(device.netd.stats.total_wait_seconds
                for device, _ in fleet)
    print(f"\nFLEET ({devices} devices, shared remote hosts)")
    print(f"  wall clock        : {wall:.2f} s "
          f"({duration_s * devices / max(wall, 1e-9):.0f} device-seconds/s)")
    print(f"  world iterations  : {world.macro_steps} macro-steps, "
          f"{world.tick_steps} tick rounds")
    print(f"  ticks skipped     : {world.fast_forwarded_ticks} "
          f"across the fleet")
    print(f"  radio activations : {world.total_radio_activations()}")
    print(f"  polls submitted   : {polls} "
          f"(pooled waiting: {fmt_duration(waits)})")
    print(f"  metered energy    : {world.total_metered_energy():.0f} J")
    print(f"  conservation      : worst |error| "
          f"{world.conservation_error():.2e} J")


if __name__ == "__main__":
    main()
