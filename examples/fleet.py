#!/usr/bin/env python3
"""A fleet of handsets at fleet tier: cohorts, barriers, shards.

Every device is a full Cinder system — kernel, energy graph, radio,
netd, metered battery — running a background poller billed to a 20 mW
tap.  The tap is far too small to prepay the radio's ~11.9 J
power-up bill, so every poll blocks in netd's §5.5.2 pooled path for
minutes of simulated time.  The :class:`~repro.sim.world.World`
scheduler fast-forwards pooled waits, sleeps and radio timeouts in
closed form — cohort-batched across the fleet, with every event
still landing on its exact tick — and
:class:`~repro.sim.shards.ShardedWorld` partitions the same fleet
across worker processes that synchronize on clock barriers.

Run with::

    python examples/fleet.py [devices] [duration_seconds] [shards]

``shards`` 0 (default) runs in-process with the cohort-batched
lockstep scheduler; ``shards`` >= 1 runs that many single-worker
process shards on the independent (barrier) scheduler.
"""

import functools
import sys
import time

from repro.sim import ShardedWorld, World, fleet_of_pollers, poller_shard
from repro.units import fmt_duration


def main() -> None:
    devices = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    duration_s = float(sys.argv[2]) if len(sys.argv) > 2 else 600.0
    shards = int(sys.argv[3]) if len(sys.argv) > 3 else 0

    print(f"running {devices} devices for {fmt_duration(duration_s)} "
          f"of simulated time"
          + (f" across {shards} process shards..." if shards else
             " (in-process, cohort-batched)..."))
    start = time.perf_counter()
    if shards:
        builder = functools.partial(
            poller_shard, fleet_size=devices, watts=0.02, period_s=300.0,
            bytes_out=64, record_interval_s=1.0, decay_enabled=False)
        fleet = ShardedWorld(builder, devices, shards=shards,
                             tick_s=0.01, seed=7)
        report = fleet.run(duration_s)
        wall = time.perf_counter() - start
        polls = sum(d.netd_operations for d in report.digests)
        waits = sum(d.netd_wait_seconds for d in report.digests)
        print(f"\nFLEET ({devices} devices, {shards} shards)")
        print(f"  wall clock        : {wall:.2f} s "
              f"({duration_s * devices / max(wall, 1e-9):.0f} "
              f"device-seconds/s)")
        print("  shard walls       : "
              + ", ".join(f"{w:.2f}s" for w in report.shard_walls))
        print(f"  radio activations : {report.total_radio_activations()}")
        print(f"  polls submitted   : {polls} "
              f"(pooled waiting: {fmt_duration(waits)})")
        print(f"  metered energy    : {report.total_metered_energy():.0f} J")
        print(f"  conservation      : worst |error| "
              f"{report.worst_conservation_error():.2e} J")
        return

    world = World(tick_s=0.01, seed=7)
    fleet = fleet_of_pollers(world, devices, watts=0.02, period_s=300.0,
                             bytes_out=64, record_interval_s=1.0,
                             decay_enabled=False)
    world.run(duration_s)
    wall = time.perf_counter() - start

    polls = sum(device.netd.stats.operations for device, _ in fleet)
    waits = sum(device.netd.stats.total_wait_seconds
                for device, _ in fleet)
    print(f"\nFLEET ({devices} devices, shared remote hosts)")
    print(f"  wall clock        : {wall:.2f} s "
          f"({duration_s * devices / max(wall, 1e-9):.0f} device-seconds/s)")
    print(f"  world iterations  : {world.macro_steps} macro-steps, "
          f"{world.tick_steps} tick rounds")
    print(f"  cohort batching   : {world.cohort_spans} stacked spans, "
          f"{world.cohort_ticks} stacked ticks, "
          f"{world.cohort_fallbacks} fallbacks")
    print(f"  horizon cache     : {world.horizon_cache_hits} hits / "
          f"{world.horizon_polls} polls")
    print(f"  ticks skipped     : {world.fast_forwarded_ticks} "
          f"across the fleet")
    print(f"  radio activations : {world.total_radio_activations()}")
    print(f"  polls submitted   : {polls} "
          f"(pooled waiting: {fmt_duration(waits)})")
    print(f"  metered energy    : {world.total_metered_energy():.0f} J")
    print(f"  conservation      : worst |error| "
          f"{world.conservation_error():.2e} J")


if __name__ == "__main__":
    main()
