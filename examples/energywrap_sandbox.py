#!/usr/bin/env python3
"""energywrap: sandboxing buggy or malicious programs (§5.1/§6.1).

Recreates the Figure 9 story interactively: a well-behaved process A
and a fork-happy process B each receive half the CPU's power budget.
B spawns children — but because B wires its children to *its own*
reserve with quarter-rate taps, A's share is untouched, and B's family
can never exceed B's allotment.

Also shows the composability the paper stresses: energywrap wrapping
energywrap, shell-script style.

Run with::

    python examples/energywrap_sandbox.py
"""

from repro.apps.energywrap import energywrap, wrap_child
from repro.sim import CinderSystem, spinner
from repro.sim.process import Fork
from repro.units import as_mW, mW


def main() -> None:
    system = CinderSystem(battery_joules=15_000.0, seed=3)

    # $ energywrap 68.5mW ./well_behaved &
    victim = energywrap(system, mW(68.5), spinner(), "A")

    sandbox = {}  # filled right after energywrap returns

    def fork_bomb(ctx):
        # B re-wraps its own children at quarter rate — subdivision.
        def wire(child):
            wrapped = wrap_child(system, sandbox["B"].process,
                                 mW(68.5) / 4, spinner(),
                                 child.name + ".sandbox")
            child.thread.set_active_reserve(wrapped.reserve)
        yield Fork(spinner(), name="B1", setup=wire)
        yield Fork(spinner(), name="B2", setup=wire)
        yield from spinner()(ctx)

    # $ energywrap 68.5mW ./fork_bomb &
    sandbox["B"] = energywrap(system, mW(68.5), fork_bomb, "B")

    system.run(60.0)

    print("after 60 s (CPU costs 137 mW; each sandbox fed 68.5 mW):\n")
    ledger = system.ledger
    for name in ("A", "B", "B1", "B2"):
        watts = ledger.total_for(name) / 60.0
        print(f"  {name:10s} {as_mW(watts):6.1f} mW")
    family = sum(ledger.total_for(n) for n in ("B", "B1", "B2")) / 60.0
    print(f"\n  B's family together: {as_mW(family):.1f} mW "
          f"(pinned at B's 68.5 mW allotment)")
    print(f"  A kept its exact half despite B's forks — isolation.")

    util = system.scheduler.utilization
    print(f"\n  CPU utilization {util * 100:.1f}% | measured draw "
          f"{system.meter.mean_power_between(0, 60):.3f} W")


if __name__ == "__main__":
    main()
