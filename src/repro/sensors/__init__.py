"""Sensor peripherals beyond the radio: GPS and the accelerometer.

The paper names GPS with the radio as the devices whose non-linear
power profiles reward OS coordination (§5.5); this package applies the
netd recipe (pooled funding, shared results) to position fixes, and
the same warm-up-amortization structure to accelerometer reads.  Both
daemons are event sources with ``ServiceCall`` blocking requests, so
sensor waits never veto the engine's fast-forward.
"""

from .accel import (AccelDaemon, AccelDevice, AccelPowerParams,
                    AccelState, Sample, SampleOp, SampleOpState,
                    sample_request)
from .gps import (Fix, FixOp, FixOpState, GpsDaemon, GpsDevice,
                  GpsPowerParams, GpsState, fix_request)

__all__ = [
    "AccelDaemon", "AccelDevice", "AccelPowerParams", "AccelState",
    "Sample", "SampleOp", "SampleOpState", "sample_request",
    "Fix", "FixOp", "FixOpState", "GpsDaemon", "GpsDevice",
    "GpsPowerParams", "GpsState", "fix_request",
]
