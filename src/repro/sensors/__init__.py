"""Sensor peripherals beyond the radio: the GPS receiver.

The paper names GPS with the radio as the devices whose non-linear
power profiles reward OS coordination (§5.5); this package applies the
netd recipe (pooled funding, shared results) to position fixes.
"""

from .gps import (Fix, FixOp, FixOpState, GpsDaemon, GpsDevice,
                  GpsPowerParams, GpsState)

__all__ = [
    "Fix", "FixOp", "FixOpState", "GpsDaemon", "GpsDevice",
    "GpsPowerParams", "GpsState",
]
