"""The accelerometer: a warm-up-amortized sampling sensor daemon.

The paper's §5.5 argument — expensive peripherals need OS-level
admission so their fixed costs amortize across consumers — applies
beyond the radio and GPS: a MEMS accelerometer must power up and
settle (warm-up) before its first valid reading, after which samples
are essentially free while it stays powered.  This daemon applies the
same Cinder recipe at a smaller scale: the first reader pays the
warm-up (billed to its reserve, post-paid into debt if need be —
"threads can debit their own reserves up to or into debt even if the
cost can only be determined after-the-fact", §5.5.2), every reader
riding a powered sensor pays only the per-sample conversion energy,
and the part lingers briefly after the last read so bursts share one
warm-up.

The daemon is a first-class *event source* (:mod:`repro.sim.events`
protocol) from day one: programs block on a reading with
:func:`sample_request` — a :class:`~repro.sim.process.ServiceCall`,
mirroring :func:`repro.sensors.gps.fix_request` — instead of spinning
a per-tick ``WaitFor`` predicate, so a blocked read never vetoes the
engine's idle fast-forward.  The sensor's only instants of change (a
warm-up completing, the linger window expiring) are declared through
``next_event`` and its draw is constant between them, so warm-up waits
macro-step and land on the bit-identical delivery tick the tick loop
would reach.  Register through
:meth:`repro.sim.engine.DeviceRuntime.attach_accel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional

from ..kernel.thread_obj import Thread, ThreadState


@dataclass(frozen=True)
class AccelPowerParams:
    """Energy constants for a G1-class MEMS accelerometer."""

    #: Power-up and settling time before the first valid sample.
    warmup_s: float = 0.35
    #: Extra draw while powered (warming or sampling).
    active_watts: float = 0.012
    #: How long the part stays powered after the last read.
    linger_s: float = 1.5
    #: Per-sample conversion energy billed to the reader.
    sample_energy_j: float = 0.0004

    @property
    def warmup_cost(self) -> float:
        """Energy of one power-up (the amortized expense)."""
        return self.active_watts * self.warmup_s


class AccelState(Enum):
    """Sensor power states."""

    OFF = "off"
    WARMING = "warming"
    READY = "ready"


@dataclass
class Sample:
    """One delivered reading (synthetic but deterministic)."""

    taken_at: float
    ax: float = 0.0
    ay: float = 0.0
    az: float = 9.81

    @classmethod
    def at(cls, now: float) -> "Sample":
        # A deterministic, time-keyed synthetic motion signal: the
        # same instant yields the same reading on every code path.
        return cls(taken_at=now,
                   ax=0.2 * math.sin(0.7 * now),
                   ay=0.1 * math.cos(1.3 * now))


class AccelDevice:
    """The sensor state machine (physical side)."""

    def __init__(self, params: Optional[AccelPowerParams] = None) -> None:
        self.params = params if params is not None else AccelPowerParams()
        self.state = AccelState.OFF
        self.warmup_started = -float("inf")
        self.last_use = -float("inf")
        self.warmups = 0
        self.samples_served = 0

    def power_up(self, now: float) -> float:
        """Start (or join) a warm-up; returns the ready instant."""
        if self.state is AccelState.OFF:
            self.state = AccelState.WARMING
            self.warmup_started = now
            self.warmups += 1
        self.last_use = now
        if self.state is AccelState.READY:
            return now
        return self.warmup_started + self.params.warmup_s

    def tick(self, now: float) -> None:
        """Advance the state machine (timestamp-driven, replay-free)."""
        if (self.state is AccelState.WARMING
                and now - self.warmup_started >= self.params.warmup_s):
            self.state = AccelState.READY
            # Becoming ready counts as use: the linger window runs
            # from the first servable instant, not from power-on.
            self.last_use = now
            # The ready instant itself never also expires the linger
            # (with linger_s=0 that would power off before the daemon
            # delivers to the readers who paid for this warm-up).
            return
        if (self.state is AccelState.READY
                and now - self.last_use >= self.params.linger_s):
            self.state = AccelState.OFF

    def power_above_baseline(self, now: float) -> float:
        """Instantaneous extra draw (constant within each state)."""
        if self.state is AccelState.OFF:
            return 0.0
        return self.params.active_watts


class SampleOpState(Enum):
    """Lifecycle of one sample request."""

    WAITING_WARMUP = "waiting-warmup"
    DONE = "done"


@dataclass
class SampleOp:
    """One application's pending sample request."""

    thread: Thread
    owner: str
    submitted_at: float
    state: SampleOpState = SampleOpState.WAITING_WARMUP
    sample: Optional[Sample] = None
    billed_joules: float = 0.0


class AccelDaemon:
    """Blocking sample service over one shared sensor.

    Also an event source (duck-typed, like netd and gpsd): a blocked
    read waits only on the warm-up instant, which the daemon declares
    via ``next_event``, so the engine macro-steps straight to the
    delivery tick.  There is no per-tick accrual to replay — billing
    is post-paid at power-up and delivery — so ``advance_span`` needs
    no override and every answer is firm.
    """

    #: EventSource protocol: display name for horizon diagnostics.
    name = "acceld"
    #: Every instant this daemon reports is exact and time-invariant.
    horizon_firm = True

    def __init__(self, device: AccelDevice,
                 clock: Callable[[], float]) -> None:
        self.device = device
        self._clock = clock
        self._queue: List[SampleOp] = []
        self.warmups_billed = 0
        self.shared_samples = 0

    # -- request path ---------------------------------------------------------------

    def request_sample(self, thread: Thread, owner: str = "") -> SampleOp:
        """Ask for a reading; blocks the thread until the sensor serves.

        A READY sensor serves synchronously (the per-sample conversion
        energy is debited, §5.5.2-style into debt if the reserve is
        shallow); otherwise the caller joins — or starts, and is
        billed for — the warm-up and is resumed at its exact end tick.
        """
        now = self._clock()
        op = SampleOp(thread=thread, owner=owner or thread.name,
                      submitted_at=now)
        device = self.device
        if device.state is AccelState.READY:
            self._deliver(op, now)
            self.shared_samples += 1
            return op
        starting = device.state is AccelState.OFF
        device.power_up(now)
        if starting:
            cost = device.params.warmup_cost
            thread.active_reserve.consume(cost, allow_debt=True)
            op.billed_joules += cost
            self.warmups_billed += 1
        thread.state = ThreadState.BLOCKED
        self._queue.append(op)
        return op

    def _deliver(self, op: SampleOp, now: float) -> None:
        cost = self.device.params.sample_energy_j
        op.thread.active_reserve.consume(cost, allow_debt=True)
        op.billed_joules += cost
        op.sample = Sample.at(now)
        op.state = SampleOpState.DONE
        self.device.last_use = now
        self.device.samples_served += 1

    def step(self, now: float) -> None:
        """Advance the sensor and deliver to ready waiters (stepper)."""
        self.device.tick(now)
        if self.device.state is AccelState.READY and self._queue:
            for op in list(self._queue):
                self._deliver(op, now)
            self._queue.clear()

    @property
    def waiting_count(self) -> int:
        """Requests blocked on the warm-up."""
        return len(self._queue)

    # -- event-source interface (engine idle fast-forward) ---------------------------

    def quiescent(self, now: float) -> bool:
        """True iff skipping ticks cannot change the daemon's behavior.

        A warming sensor changes only at its declared ready instant; a
        ready sensor with no pending reads changes only at the linger
        expiry.  Undelivered ops on a ready sensor (one boundary tick)
        veto so the pending delivery executes.
        """
        if self._queue and self.device.state is not AccelState.WARMING:
            return False
        return True

    def next_event(self, now: float) -> Optional[float]:
        """The next instant the daemon's state or draw can change."""
        device = self.device
        if device.state is AccelState.WARMING:
            return device.warmup_started + device.params.warmup_s
        if device.state is AccelState.READY:
            return device.last_use + device.params.linger_s
        return None

    def span_frozen_taps(self, now: float):
        """No self-integrated taps: billing is event-instant only."""
        return ()

    def advance_span(self, now: float, span: float) -> None:
        """Nothing accrues per tick; state is timestamp-derived."""


def sample_request(daemon: AccelDaemon, owner: str = ""):
    """A yieldable blocking sample read (macro-step friendly).

    Returns a :class:`~repro.sim.process.ServiceCall` that submits
    through :meth:`AccelDaemon.request_sample` and resumes the program
    with the delivered :class:`Sample` — the accelerometer analogue of
    :func:`repro.sensors.gps.fix_request`.  Unlike polling
    ``WaitFor(lambda: op.state ...)``, the wait does not veto the
    engine's fast-forward, so warm-up waits macro-step to their exact
    delivery tick.
    """
    from ..sim.process import ServiceCall
    return ServiceCall(
        submit=lambda thread: daemon.request_sample(thread, owner=owner),
        poll=lambda op: (op.sample
                         if op.state is SampleOpState.DONE else None))
