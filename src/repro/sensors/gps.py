"""GPS: the platform's other expensive, non-linear peripheral.

The paper names GPS alongside the radio as a device whose "complex,
non-linear power models" reward careful OS-level control (§5.5): a
cold fix holds the receiver at high power for tens of seconds, after
which a fix is *shareable* — any number of applications can consume a
recent position for free.  That is the same amortization structure as
the radio's activation cost, so the daemon here applies the same
Cinder recipe netd uses: requesters pool energy in a decay-exempt
reserve until one acquisition is funded, then everyone waiting rides
the same fix.

Like the radio, the physical receiver lives behind the closed ARM9
(§4.1, Figure 15) — the chipset's ``gps_fix`` command returns the
position; this module models its energy and its sharing policy.

The daemon is also a first-class *event source*
(:mod:`repro.sim.events` protocol): pooled-acquisition waits have the
same closed form as netd's §5.5.2 pooled path — each tick deposits
``rate * tick`` into every waiter's reserve, decay takes its fraction,
the pump drains the rest into the pool — so the daemon predicts the
exact acquisition tick and replays skipped accrual in bulk (the shared
:mod:`repro.core.pooling` machinery).  Receiver state changes (fix
ready, linger expiry) are declared as events, and the receiver's draw
is constant between them.  Register through
:meth:`repro.sim.engine.DeviceRuntime.attach_gps` and block on a fix
with :func:`fix_request` to get macro-stepping GPS workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional, Tuple

from ..core.graph import ResourceGraph
from ..core.pooling import (PooledAccrual, analyze_pooled_accrual,
                            replay_pooled_accrual)
from ..core.reserve import Reserve
from ..core.tap import Tap
from ..errors import HardwareError
from ..kernel.thread_obj import Thread, ThreadState


@dataclass(frozen=True)
class GpsPowerParams:
    """Energy constants for a G1-class GPS receiver."""

    #: Time to first fix from a cold receiver.
    cold_fix_s: float = 12.0
    #: Extra draw while acquiring.
    acquisition_watts: float = 0.36
    #: Extra draw while tracking (receiver on, fix held).
    tracking_watts: float = 0.18
    #: How long the receiver keeps tracking after the last consumer.
    linger_s: float = 5.0
    #: How long a delivered fix stays fresh (shareable for free).
    fix_validity_s: float = 30.0

    @property
    def acquisition_cost(self) -> float:
        """Energy of one cold fix (the pooled expense)."""
        return self.acquisition_watts * self.cold_fix_s


class GpsState(Enum):
    """Receiver power states."""

    OFF = "off"
    ACQUIRING = "acquiring"
    TRACKING = "tracking"


@dataclass
class Fix:
    """A delivered position."""

    acquired_at: float
    lat: float = 37.4275
    lon: float = -122.1697

    def fresh(self, now: float, validity_s: float) -> bool:
        return now - self.acquired_at <= validity_s


class GpsDevice:
    """The receiver state machine (physical side)."""

    def __init__(self, params: Optional[GpsPowerParams] = None) -> None:
        self.params = params if params is not None else GpsPowerParams()
        self.state = GpsState.OFF
        self.acquire_started = -float("inf")
        self.last_use = -float("inf")
        self.last_fix: Optional[Fix] = None
        self.acquisitions = 0
        self.total_on_seconds = 0.0
        self._on_since = 0.0

    def start_acquisition(self, now: float) -> float:
        """Power up; returns the time the fix will be ready."""
        if self.state is GpsState.OFF:
            self.state = GpsState.ACQUIRING
            self.acquire_started = now
            self.acquisitions += 1
            self._on_since = now
        self.last_use = now
        if self.state is GpsState.TRACKING:
            return now  # already have a fix
        return self.acquire_started + self.params.cold_fix_s

    def current_fix(self, now: float) -> Optional[Fix]:
        """The position a powered-up receiver can serve right now.

        A TRACKING receiver updates its position continuously, so its
        fix is current by definition — timestamped ``now`` and cached
        as ``last_fix`` (this is what keeps long-lived sharing from
        handing out stale positions while the receiver stays on).
        Otherwise the last delivered fix, which may be stale.
        """
        if self.state is GpsState.TRACKING:
            self.last_fix = Fix(acquired_at=now)
        return self.last_fix

    def tick(self, now: float) -> None:
        """Advance the state machine."""
        if (self.state is GpsState.ACQUIRING
                and now - self.acquire_started >= self.params.cold_fix_s):
            self.state = GpsState.TRACKING
            self.last_fix = Fix(acquired_at=now)
            # Delivering the fix counts as use; the linger window runs
            # from here, not from power-on.
            self.last_use = now
        if (self.state is GpsState.TRACKING
                and now - self.last_use >= self.params.linger_s):
            self.total_on_seconds += now - self._on_since
            self.state = GpsState.OFF

    def power_above_baseline(self, now: float) -> float:
        """Instantaneous extra draw."""
        if self.state is GpsState.ACQUIRING:
            return self.params.acquisition_watts
        if self.state is GpsState.TRACKING:
            return self.params.tracking_watts
        return 0.0


class FixOpState(Enum):
    """Lifecycle of one fix request."""

    WAITING_ENERGY = "waiting-energy"
    ACQUIRING = "acquiring"
    DONE = "done"


@dataclass
class FixOp:
    """One application's pending fix request."""

    thread: Thread
    owner: str
    submitted_at: float
    state: FixOpState = FixOpState.WAITING_ENERGY
    fix: Optional[Fix] = None
    billed_joules: float = 0.0


class GpsDaemon:
    """Pooled, cached fix service — netd's recipe applied to GPS.

    Also an event source (duck-typed, like netd): during a pooled
    acquisition wait the daemon computes the exact tick the pool will
    cover ``margin * acquisition_cost`` and replays the skipped
    accrual in closed form, and while the receiver acquires or tracks
    it reports the next state-change instant so the engine's macro
    spans land exactly on it.
    """

    #: EventSource protocol: display name for horizon diagnostics.
    name = "gpsd"

    #: Within this many ticks of the predicted crossing the daemon
    #: switches from the analytic bound to an exact scalar replay.
    SPAN_SCAN_WINDOW = 64

    def __init__(self, graph: ResourceGraph, device: GpsDevice,
                 clock: Callable[[], float],
                 margin: float = 1.1,
                 tick_s: Optional[float] = None,
                 ticks: Optional[Callable[[], int]] = None) -> None:
        if margin < 1.0:
            raise HardwareError("margin must be >= 1")
        self.graph = graph
        self.device = device
        self._clock = clock
        self.margin = margin
        #: Engine tick size and tick counter (wired by
        #: ``DeviceRuntime.attach_gps``) — required for the closed-form
        #: pooled accrual; without them the daemon never claims
        #: quiescence over a non-empty queue.
        self.tick_s = tick_s
        self._ticks = ticks
        self.pool: Reserve = graph.create_reserve(name="gpsd.pool",
                                                  decay_exempt=True)
        self._queue: List[FixOp] = []
        self.cached_fixes_served = 0
        self.pooled_acquisitions = 0
        #: (now, accrual-or-None) — one closed-form analysis per tick.
        self._span_cache: Optional[Tuple[float,
                                         Optional[PooledAccrual]]] = None
        #: Persistent regime analysis (revalidated across ticks; the
        #: full graph walk only reruns when the key or the cheap state
        #: invariants break — mirrors netd).
        self._regime: Optional[Tuple[tuple, PooledAccrual]] = None
        #: EventSource protocol: False when the last ``next_event``
        #: answer was a conservative checkpoint (see netd).
        self.horizon_firm = True

    def required_energy(self) -> float:
        """The pool level one acquisition must reach (margin included)."""
        return self.margin * self.device.params.acquisition_cost

    # -- request path ---------------------------------------------------------------

    def request_fix(self, thread: Thread, owner: str = "") -> FixOp:
        """Ask for a position; blocks the thread until one is fresh."""
        now = self._clock()
        op = FixOp(thread=thread, owner=owner or thread.name,
                   submitted_at=now)
        fix = self.device.current_fix(now)
        if fix is not None and fix.fresh(now, self.device.params.fix_validity_s):
            # Sharing: a fresh fix (or a live tracking receiver, whose
            # position is current by definition) is free to additional
            # consumers — never queue behind a powered-up receiver.
            op.fix = fix
            op.state = FixOpState.DONE
            self.device.last_use = now
            self.cached_fixes_served += 1
            return op
        thread.state = ThreadState.BLOCKED
        self._queue.append(op)
        self._span_cache = None  # the closed-form analysis is stale
        self.step(now)
        return op

    def step(self, now: float) -> None:
        """Advance pending requests (engine device stepper)."""
        self._span_cache = None  # per-tick execution mutates the regime
        self.device.tick(now)
        waiting = [o for o in self._queue
                   if o.state is FixOpState.WAITING_ENERGY]
        if waiting and self.device.state is GpsState.OFF:
            # Pool toward a cold acquisition only while the receiver is
            # actually off — a tracking receiver serves for free below,
            # so the acquisition bill is never burned on a no-op
            # ``start_acquisition``.
            required = self.required_energy()
            for op in waiting:
                reserve = op.thread.active_reserve
                if reserve.level > 0.0:
                    moved = reserve.transfer_to(
                        self.pool, min(reserve.level,
                                       max(0.0, required - self.pool.level)))
                    op.billed_joules += moved
            if self.pool.level + 1e-12 >= required:
                self.pool.consume(self.device.params.acquisition_cost)
                self.device.start_acquisition(now)
                self.pooled_acquisitions += 1
                for op in waiting:
                    op.state = FixOpState.ACQUIRING
        elif waiting and self.device.state is GpsState.ACQUIRING:
            for op in waiting:
                op.state = FixOpState.ACQUIRING
        # Deliver once tracking — a live receiver's position is current
        # by definition, so any straggler still marked WAITING rides it
        # for free too.
        if self.device.state is GpsState.TRACKING:
            for op in [o for o in self._queue
                       if o.state in (FixOpState.ACQUIRING,
                                      FixOpState.WAITING_ENERGY)]:
                op.fix = self.device.current_fix(now)
                op.state = FixOpState.DONE
                self.device.last_use = now
                self._queue.remove(op)

    @property
    def waiting_count(self) -> int:
        """Requests not yet satisfied."""
        return len(self._queue)

    # -- event-source interface (engine idle fast-forward) --------------------------
    #
    # Mirrors netd's: the pooled-acquisition wait is the shared
    # canonical-accrual regime from repro.core.pooling, and the
    # receiver state machine's transitions (fix ready, linger expiry)
    # are its only other instants of change — both are declared as
    # events, so the engine macro-steps everything in between.

    def quiescent(self, now: float) -> bool:
        """True iff skipping ticks cannot change the daemon's behavior."""
        device = self.device
        waiting = [o for o in self._queue
                   if o.state is FixOpState.WAITING_ENERGY]
        if device.state is GpsState.OFF:
            if not self._queue:
                return True
            if len(waiting) != len(self._queue):
                return False  # undelivered ops with the receiver off
            return self._accrual(now) is not None
        if device.state is GpsState.ACQUIRING:
            # The ready instant is an event; a WAITING op would be
            # marked ACQUIRING by the next step, so tick it through.
            return not waiting
        # TRACKING: pending deliveries happen on the next tick; an
        # idle tracking receiver only changes at the linger expiry.
        return not self._queue

    def next_event(self, now: float) -> Optional[float]:
        """The next instant the daemon's state or draw can change."""
        self.horizon_firm = True
        device = self.device
        if device.state is GpsState.ACQUIRING:
            return device.acquire_started + device.params.cold_fix_s
        if device.state is GpsState.TRACKING:
            return device.last_use + device.params.linger_s
        if not self._queue:
            return None
        accrual = self._accrual(now)
        if accrual is None or not accrual.addends:
            return None  # starved waiters: other sources bound the span
        tick_s = self.tick_s
        # Same tick-index convention as netd: the pump's next run is at
        # the pending tick, with one fresh round of accrual, so the
        # j-th future check lands on tick base + j - 1.
        base_tick = self._ticks()
        required = self.required_energy()
        pool_level = self.pool.level
        if pool_level + 1e-12 >= required:
            return base_tick * tick_s  # affordable at the pending tick
        window = self.SPAN_SCAN_WINDOW
        skip = accrual.analytic_skip_ticks(sum(accrual.addends),
                                           pool_level, required, tick_s,
                                           window)
        if skip is not None:
            self.horizon_firm = False  # re-derived later lands farther
            return (base_tick + skip) * tick_s
        # Exact scalar replay of the pump's own float arithmetic —
        # including the per-op clamp at the remaining shortfall.
        pool_sim = pool_level
        for round_no in range(1, 2 * window + 1):
            for addend in accrual.addends:
                pool_sim = pool_sim + min(addend,
                                          max(0.0, required - pool_sim))
            if pool_sim + 1e-12 >= required:
                return (base_tick + round_no - 1) * tick_s
        self.horizon_firm = False
        return (base_tick + 2 * window - 1) * tick_s  # checkpoint

    def span_frozen_taps(self, now: float) -> List[Tap]:
        """Feed taps the daemon integrates itself over the next span."""
        accrual = self._accrual(now)
        if accrual is None:
            return []
        return accrual.frozen_taps()

    def advance_span(self, now: float, span: float) -> None:
        """Replay ``span`` seconds of pooled accrual in closed form."""
        accrual = self._accrual(now)
        if accrual is None or self.tick_s is None:
            return
        ticks = int(round(span / self.tick_s))
        if ticks <= 0:
            return

        def credit(op: FixOp, amount: float) -> None:
            op.billed_joules += amount

        replay_pooled_accrual(self.graph, self.pool, accrual, ticks,
                              credit)
        self._span_cache = None

    def _accrual(self, now: float) -> Optional[PooledAccrual]:
        """The cached closed-form analysis for this tick (or None).

        Mirrors netd's two cache layers: a per-``now`` memo over a
        persistent regime revalidated with cheap invariants (key
        match, waiters still drained to zero, budgets healthy) so the
        graph-walking analysis only reruns when the regime changes.
        """
        cache = self._span_cache
        if cache is not None and cache[0] == now:
            return cache[1]
        accrual = self._revalidate_regime(now)
        if accrual is None:
            accrual = self._compute_accrual(now)
            self._regime = (None if accrual is None
                            else (self._regime_key(), accrual))
        self._span_cache = (now, accrual)
        return accrual

    def _regime_key(self) -> tuple:
        policy = self.graph.decay_policy
        return (self.graph.generation, policy.enabled, policy.lam,
                tuple(id(op) for op in self._queue))

    def _revalidate_regime(self, now: float) -> Optional[PooledAccrual]:
        regime = self._regime
        if regime is None or regime[0] != self._regime_key():
            return None
        accrual = regime[1]
        if self.device.state is not GpsState.OFF:
            return None
        for op in self._queue:
            if op.state is not FixOpState.WAITING_ENERGY:
                return None
        if self.pool._level < 0.0:
            return None
        for entry in accrual.entries:
            if entry.reserve._level != 0.0:
                return None  # an external deposit broke the regime
        if accrual.budget_ticks(self.tick_s) < 4 * self.SPAN_SCAN_WINDOW:
            return None
        return accrual

    def _compute_accrual(self, now: float) -> Optional[PooledAccrual]:
        if self.tick_s is None or self._ticks is None:
            return None
        if self.device.state is not GpsState.OFF:
            return None
        waiting = [o for o in self._queue
                   if o.state is FixOpState.WAITING_ENERGY]
        if not waiting or len(waiting) != len(self._queue):
            return None
        accrual = analyze_pooled_accrual(
            self.graph, self.pool, waiting,
            reserve_of=lambda op: getattr(op.thread, "_active_reserve",
                                          None),
            tick_s=self.tick_s)
        if accrual is None:
            return None
        if accrual.budget_ticks(self.tick_s) < 4 * self.SPAN_SCAN_WINDOW:
            return None
        return accrual


def fix_request(daemon: GpsDaemon, owner: str = ""):
    """A yieldable blocking fix request (macro-step friendly).

    Returns a :class:`~repro.sim.process.ServiceCall` that submits
    through :meth:`GpsDaemon.request_fix` and resumes the program with
    the delivered :class:`Fix` — the GPS analogue of yielding a
    ``NetRequest``.  Unlike polling ``WaitFor(lambda: op.state ...)``,
    the wait does not veto the engine's fast-forward, so a pooled
    acquisition macro-steps straight to its crossing tick.
    """
    from ..sim.process import ServiceCall
    return ServiceCall(
        submit=lambda thread: daemon.request_fix(thread, owner=owner),
        poll=lambda op: op.fix if op.state is FixOpState.DONE else None)
