"""GPS: the platform's other expensive, non-linear peripheral.

The paper names GPS alongside the radio as a device whose "complex,
non-linear power models" reward careful OS-level control (§5.5): a
cold fix holds the receiver at high power for tens of seconds, after
which a fix is *shareable* — any number of applications can consume a
recent position for free.  That is the same amortization structure as
the radio's activation cost, so the daemon here applies the same
Cinder recipe netd uses: requesters pool energy in a decay-exempt
reserve until one acquisition is funded, then everyone waiting rides
the same fix.

Like the radio, the physical receiver lives behind the closed ARM9
(§4.1, Figure 15) — the chipset's ``gps_fix`` command returns the
position; this module models its energy and its sharing policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from ..core.graph import ResourceGraph
from ..core.reserve import Reserve
from ..errors import HardwareError
from ..kernel.thread_obj import Thread, ThreadState


@dataclass(frozen=True)
class GpsPowerParams:
    """Energy constants for a G1-class GPS receiver."""

    #: Time to first fix from a cold receiver.
    cold_fix_s: float = 12.0
    #: Extra draw while acquiring.
    acquisition_watts: float = 0.36
    #: Extra draw while tracking (receiver on, fix held).
    tracking_watts: float = 0.18
    #: How long the receiver keeps tracking after the last consumer.
    linger_s: float = 5.0
    #: How long a delivered fix stays fresh (shareable for free).
    fix_validity_s: float = 30.0

    @property
    def acquisition_cost(self) -> float:
        """Energy of one cold fix (the pooled expense)."""
        return self.acquisition_watts * self.cold_fix_s


class GpsState(Enum):
    """Receiver power states."""

    OFF = "off"
    ACQUIRING = "acquiring"
    TRACKING = "tracking"


@dataclass
class Fix:
    """A delivered position."""

    acquired_at: float
    lat: float = 37.4275
    lon: float = -122.1697

    def fresh(self, now: float, validity_s: float) -> bool:
        return now - self.acquired_at <= validity_s


class GpsDevice:
    """The receiver state machine (physical side)."""

    def __init__(self, params: Optional[GpsPowerParams] = None) -> None:
        self.params = params if params is not None else GpsPowerParams()
        self.state = GpsState.OFF
        self.acquire_started = -float("inf")
        self.last_use = -float("inf")
        self.last_fix: Optional[Fix] = None
        self.acquisitions = 0
        self.total_on_seconds = 0.0
        self._on_since = 0.0

    def start_acquisition(self, now: float) -> float:
        """Power up; returns the time the fix will be ready."""
        if self.state is GpsState.OFF:
            self.state = GpsState.ACQUIRING
            self.acquire_started = now
            self.acquisitions += 1
            self._on_since = now
        self.last_use = now
        if self.state is GpsState.TRACKING:
            return now  # already have a fix
        return self.acquire_started + self.params.cold_fix_s

    def tick(self, now: float) -> None:
        """Advance the state machine."""
        if (self.state is GpsState.ACQUIRING
                and now - self.acquire_started >= self.params.cold_fix_s):
            self.state = GpsState.TRACKING
            self.last_fix = Fix(acquired_at=now)
            # Delivering the fix counts as use; the linger window runs
            # from here, not from power-on.
            self.last_use = now
        if (self.state is GpsState.TRACKING
                and now - self.last_use >= self.params.linger_s):
            self.total_on_seconds += now - self._on_since
            self.state = GpsState.OFF

    def power_above_baseline(self, now: float) -> float:
        """Instantaneous extra draw."""
        if self.state is GpsState.ACQUIRING:
            return self.params.acquisition_watts
        if self.state is GpsState.TRACKING:
            return self.params.tracking_watts
        return 0.0


class FixOpState(Enum):
    """Lifecycle of one fix request."""

    WAITING_ENERGY = "waiting-energy"
    ACQUIRING = "acquiring"
    DONE = "done"


@dataclass
class FixOp:
    """One application's pending fix request."""

    thread: Thread
    owner: str
    submitted_at: float
    state: FixOpState = FixOpState.WAITING_ENERGY
    fix: Optional[Fix] = None
    billed_joules: float = 0.0


class GpsDaemon:
    """Pooled, cached fix service — netd's recipe applied to GPS."""

    def __init__(self, graph: ResourceGraph, device: GpsDevice,
                 clock: Callable[[], float],
                 margin: float = 1.1) -> None:
        if margin < 1.0:
            raise HardwareError("margin must be >= 1")
        self.graph = graph
        self.device = device
        self._clock = clock
        self.margin = margin
        self.pool: Reserve = graph.create_reserve(name="gpsd.pool",
                                                  decay_exempt=True)
        self._queue: List[FixOp] = []
        self.cached_fixes_served = 0
        self.pooled_acquisitions = 0

    # -- request path ---------------------------------------------------------------

    def request_fix(self, thread: Thread, owner: str = "") -> FixOp:
        """Ask for a position; blocks the thread until one is fresh."""
        now = self._clock()
        op = FixOp(thread=thread, owner=owner or thread.name,
                   submitted_at=now)
        fix = self.device.last_fix
        if fix is not None and fix.fresh(now, self.device.params.fix_validity_s):
            # Sharing: a fresh fix is free to additional consumers.
            op.fix = fix
            op.state = FixOpState.DONE
            self.device.last_use = now
            self.cached_fixes_served += 1
            return op
        thread.state = ThreadState.BLOCKED
        self._queue.append(op)
        self.step(now)
        return op

    def step(self, now: float) -> None:
        """Advance pending requests (engine device stepper)."""
        self.device.tick(now)
        waiting = [o for o in self._queue
                   if o.state is FixOpState.WAITING_ENERGY]
        if waiting and self.device.state is not GpsState.ACQUIRING:
            required = self.margin * self.device.params.acquisition_cost
            for op in waiting:
                reserve = op.thread.active_reserve
                if reserve.level > 0.0:
                    moved = reserve.transfer_to(
                        self.pool, min(reserve.level,
                                       max(0.0, required - self.pool.level)))
                    op.billed_joules += moved
            if self.pool.level + 1e-12 >= required:
                self.pool.consume(self.device.params.acquisition_cost)
                self.device.start_acquisition(now)
                self.pooled_acquisitions += 1
                for op in waiting:
                    op.state = FixOpState.ACQUIRING
        elif waiting and self.device.state is GpsState.ACQUIRING:
            for op in waiting:
                op.state = FixOpState.ACQUIRING
        # Deliver once tracking.
        if self.device.state is GpsState.TRACKING:
            for op in [o for o in self._queue
                       if o.state is FixOpState.ACQUIRING]:
                op.fix = self.device.last_fix
                op.state = FixOpState.DONE
                self.device.last_use = now
                self._queue.remove(op)

    @property
    def waiting_count(self) -> int:
        """Requests not yet satisfied."""
        return len(self._queue)
