"""HiStar-style security labels.

Every Cinder kernel object — including the new reserve and tap types —
carries a *label* (paper §3.1, §3.5).  A label maps *categories* (opaque
identifiers, allocated at runtime) to *levels* 0..3, with a default
level for unlisted categories.  Threads additionally *own* categories,
written ``*`` in HiStar notation; ownership lets a thread bypass the
level comparison for that category.

The checks Cinder layers on top (paper §3.5):

* **observe**  — information flows object → thread, so the object's
  label must flow to the thread's clearance.
* **modify**   — information flows thread → object.
* **use** (reserves) — requires both observe *and* modify: a failed
  consume reveals the level (observe) and a successful one changes it
  (modify).

Taps embed privileges (a set of owned categories) so that a tap may
move energy between two reserves its creator could access, even when
later users of the graph cannot (§3.5 "taps can have privileges
embedded in them").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Optional

from ..errors import LabelError

#: Levels are small ints.  3 is "most tainted/secret", 0 is "most public".
MIN_LEVEL = 0
MAX_LEVEL = 3
DEFAULT_LEVEL = 1

_category_counter = itertools.count(1)


def fresh_category(name: str = "") -> "Category":
    """Allocate a new, globally unique category."""
    return Category(next(_category_counter), name)


def reset_category_counter() -> None:
    """Reset category ids (test isolation only)."""
    global _category_counter
    _category_counter = itertools.count(1)


@dataclass(frozen=True)
class Category:
    """An opaque protection domain identifier.

    Real HiStar categories are 61-bit random numbers; sequential ints
    are fine in simulation and make failures reproducible.
    """

    ident: int
    name: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.name:
            return f"Category({self.ident}:{self.name})"
        return f"Category({self.ident})"


class Label:
    """An immutable mapping from categories to levels with a default.

    Instances are value objects: hashable, comparable, and safe to
    share between kernel objects.
    """

    __slots__ = ("_levels", "_default")

    def __init__(
        self,
        levels: Optional[Dict[Category, int]] = None,
        default: int = DEFAULT_LEVEL,
    ) -> None:
        if not MIN_LEVEL <= default <= MAX_LEVEL:
            raise LabelError(f"default level {default} out of range")
        cleaned: Dict[Category, int] = {}
        for category, level in (levels or {}).items():
            if not isinstance(category, Category):
                raise LabelError(f"label keys must be Category, got {category!r}")
            if not MIN_LEVEL <= level <= MAX_LEVEL:
                raise LabelError(f"level {level} out of range for {category!r}")
            if level != default:  # normalize: never store the default
                cleaned[category] = level
        self._levels: Dict[Category, int] = cleaned
        self._default = default

    # -- accessors ---------------------------------------------------------

    @property
    def default(self) -> int:
        """Level assigned to categories not explicitly listed."""
        return self._default

    def level_of(self, category: Category) -> int:
        """The level of ``category`` under this label."""
        return self._levels.get(category, self._default)

    def categories(self) -> FrozenSet[Category]:
        """Categories explicitly mentioned (level differs from default)."""
        return frozenset(self._levels)

    def items(self) -> Iterator[tuple]:
        """Iterate explicit (category, level) pairs."""
        return iter(self._levels.items())

    # -- lattice operations --------------------------------------------------

    def can_flow_to(
        self,
        other: "Label",
        privileges: Iterable[Category] = (),
    ) -> bool:
        """True if information may flow ``self`` -> ``other``.

        Holds iff for every category ``c`` not in ``privileges``,
        ``self(c) <= other(c)``.  Owned categories are exempt — that is
        HiStar's ``*``.
        """
        owned = frozenset(privileges)
        for category in self.categories() | other.categories():
            if category in owned:
                continue
            if self.level_of(category) > other.level_of(category):
                return False
        if self._default > other._default:
            # Some unmentioned category would violate the flow unless the
            # privilege set is unbounded (it never is here).
            return False
        return True

    def join(self, other: "Label") -> "Label":
        """Least upper bound: category-wise max (taint accumulation)."""
        default = max(self._default, other._default)
        levels = {
            category: max(self.level_of(category), other.level_of(category))
            for category in self.categories() | other.categories()
        }
        return Label(levels, default)

    def meet(self, other: "Label") -> "Label":
        """Greatest lower bound: category-wise min."""
        default = min(self._default, other._default)
        levels = {
            category: min(self.level_of(category), other.level_of(category))
            for category in self.categories() | other.categories()
        }
        return Label(levels, default)

    def with_level(self, category: Category, level: int) -> "Label":
        """A copy of this label with one category's level replaced."""
        levels = dict(self._levels)
        levels[category] = level
        return Label(levels, self._default)

    # -- value-object protocol ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self._default == other._default and self._levels == other._levels

    def __hash__(self) -> int:
        return hash((self._default, frozenset(self._levels.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{cat.ident}:{lvl}" for cat, lvl in sorted(
            self._levels.items(), key=lambda item: item[0].ident)]
        parts.append(f"default:{self._default}")
        return "Label{" + ", ".join(parts) + "}"


#: The completely public label: anyone may observe and modify.
PUBLIC = Label()


@dataclass(frozen=True)
class PrivilegeSet:
    """A set of owned categories (HiStar ``*`` privileges).

    Threads carry one; taps embed one (§3.5).  Frozen so privileges
    cannot be grown by mutating a shared set — delegation must go
    through :meth:`grant`.
    """

    owned: FrozenSet[Category] = field(default_factory=frozenset)

    def grant(self, *categories: Category) -> "PrivilegeSet":
        """A new privilege set additionally owning ``categories``."""
        return PrivilegeSet(self.owned | frozenset(categories))

    def drop(self, *categories: Category) -> "PrivilegeSet":
        """A new privilege set without ``categories``."""
        return PrivilegeSet(self.owned - frozenset(categories))

    def owns(self, category: Category) -> bool:
        """True if this set owns ``category``."""
        return category in self.owned

    def union(self, other: "PrivilegeSet") -> "PrivilegeSet":
        """Combined privileges (used when taps embed creator privilege)."""
        return PrivilegeSet(self.owned | other.owned)

    def __iter__(self) -> Iterator[Category]:
        return iter(self.owned)

    def __len__(self) -> int:
        return len(self.owned)


NO_PRIVILEGES = PrivilegeSet()


# ---------------------------------------------------------------------------
# Cinder's access checks (paper §3.5)
# ---------------------------------------------------------------------------


def can_observe(subject_label: Label, subject_privs: PrivilegeSet,
                object_label: Label) -> bool:
    """May a subject see an object's state?  object -> subject flow."""
    return object_label.can_flow_to(subject_label, subject_privs.owned)


def can_modify(subject_label: Label, subject_privs: PrivilegeSet,
               object_label: Label) -> bool:
    """May a subject change an object's state?  subject -> object flow."""
    return subject_label.can_flow_to(object_label, subject_privs.owned)


def can_use_reserve(subject_label: Label, subject_privs: PrivilegeSet,
                    reserve_label: Label) -> bool:
    """Consuming from a reserve requires observe *and* modify (§3.5)."""
    return (
        can_observe(subject_label, subject_privs, reserve_label)
        and can_modify(subject_label, subject_privs, reserve_label)
    )


def check_observe(subject_label: Label, subject_privs: PrivilegeSet,
                  object_label: Label, what: str = "object") -> None:
    """Raise :class:`LabelError` unless observe is permitted."""
    if not can_observe(subject_label, subject_privs, object_label):
        raise LabelError(f"cannot observe {what}")


def check_modify(subject_label: Label, subject_privs: PrivilegeSet,
                 object_label: Label, what: str = "object") -> None:
    """Raise :class:`LabelError` unless modify is permitted."""
    if not can_modify(subject_label, subject_privs, object_label):
        raise LabelError(f"cannot modify {what}")
