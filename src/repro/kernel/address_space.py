"""Address spaces: mappings from virtual regions to segments.

A HiStar *process* is a convention: a container holding an address
space and one or more threads (paper §7.1).  Gate calls move a thread
*between* address spaces, which is the hinge of Cinder's IPC billing:
the thread keeps its own reserves while running the server's code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ObjectError
from .labels import Label
from .objects import KernelObject, ObjectType
from .segment import Segment


@dataclass(frozen=True)
class Mapping:
    """One virtual region backed by a segment."""

    va: int
    segment: Segment
    writable: bool = True

    @property
    def end(self) -> int:
        return self.va + self.segment.size


class AddressSpace(KernelObject):
    """An ordered set of non-overlapping segment mappings."""

    TYPE = ObjectType.ADDRESS_SPACE

    def __init__(self, label: Optional[Label] = None, name: str = "") -> None:
        super().__init__(label=label, name=name)
        self._mappings: List[Mapping] = []

    def map_segment(self, segment: Segment, va: int,
                    writable: bool = True) -> Mapping:
        """Map ``segment`` at virtual address ``va``."""
        self.ensure_alive()
        segment.ensure_alive()
        new = Mapping(va, segment, writable)
        for existing in self._mappings:
            if new.va < existing.end and existing.va < new.end:
                raise ObjectError(
                    f"mapping at {va:#x} overlaps existing at {existing.va:#x}")
        self._mappings.append(new)
        self._mappings.sort(key=lambda m: m.va)
        return new

    def unmap(self, va: int) -> None:
        """Remove the mapping starting exactly at ``va``."""
        self.ensure_alive()
        for index, mapping in enumerate(self._mappings):
            if mapping.va == va:
                del self._mappings[index]
                return
        raise ObjectError(f"no mapping at {va:#x}")

    def resolve(self, va: int) -> Mapping:
        """The mapping covering ``va``."""
        self.ensure_alive()
        for mapping in self._mappings:
            if mapping.va <= va < mapping.end:
                return mapping
        raise ObjectError(f"fault: no mapping covers {va:#x}")

    def mappings(self) -> List[Mapping]:
        """All mappings, sorted by virtual address."""
        return list(self._mappings)

    def on_delete(self) -> None:
        self._mappings.clear()
