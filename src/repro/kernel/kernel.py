"""The kernel facade: object table, containers, and creation services.

This ties the HiStar object zoo together with Cinder's resource graph.
One :class:`Kernel` owns:

* the root container (everything lives under it, so deleting a subtree
  revokes reserves and taps exactly as §3.2/§5.2 describe);
* one :class:`~repro.core.graph.ResourceGraph` per resource kind, the
  energy graph rooted at the battery reserve;
* the object table mapping ids to live objects, used by the
  Figure 5-style syscall layer in :mod:`repro.kernel.syscalls`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from ..errors import NoSuchObjectError, ObjectTypeError
from .address_space import AddressSpace
from .container import Container
from .device import Device
from .gate import Gate, ServiceFn
from .labels import Label, NO_PRIVILEGES, PrivilegeSet
from .objects import KernelObject, ObjRef, ObjectType
from .segment import Segment
from .thread_obj import Thread

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.graph import ResourceGraph
    from ..core.reserve import Reserve
    from ..core.tap import Tap, TapType


class Kernel:
    """A single simulated Cinder kernel instance."""

    def __init__(self, battery_joules: float,
                 battery_capacity: Optional[float] = None) -> None:
        # Imported here, not at module scope: the core package's
        # objects subclass KernelObject, so core imports this package
        # and a module-level import would be circular.
        from ..core.graph import ResourceGraph
        from ..core.reserve import ENERGY

        self.root_container = Container(name="root")
        self._objects: Dict[int, KernelObject] = {
            self.root_container.object_id: self.root_container}
        #: Resource graphs by kind; energy always exists.
        self.graphs: Dict[str, "ResourceGraph"] = {
            ENERGY: ResourceGraph(battery_joules, kind=ENERGY,
                                  root_capacity=battery_capacity),
        }
        self._energy_kind = ENERGY
        self._register(self.energy_graph.root, self.root_container)

    # -- plumbing -----------------------------------------------------------------

    @property
    def energy_graph(self) -> "ResourceGraph":
        """The graph rooted at the battery."""
        return self.graphs[self._energy_kind]

    @property
    def battery(self) -> "Reserve":
        """The root reserve (the system battery, §3.4)."""
        return self.energy_graph.root

    def add_graph(self, kind: str, graph: "ResourceGraph") -> None:
        """Register a graph for another resource kind (§9 quotas)."""
        self.graphs[kind] = graph
        self._register(graph.root, self.root_container)

    def _register(self, obj: KernelObject, container: Container) -> KernelObject:
        self._objects[obj.object_id] = obj
        if obj.parent_container_id == 0 and obj is not self.root_container:
            container.put(obj)
        return obj

    # -- lookup ------------------------------------------------------------------

    def get_object(self, object_id: int) -> KernelObject:
        """Resolve a bare object id to a live object."""
        obj = self._objects.get(object_id)
        if obj is None or not obj.alive:
            raise NoSuchObjectError(f"object {object_id} does not exist")
        return obj

    def get_container(self, container_id: int) -> Container:
        """Resolve an id that must name a live container."""
        obj = self.get_object(container_id)
        if not isinstance(obj, Container):
            raise ObjectTypeError(f"object {container_id} is not a container")
        return obj

    def resolve(self, ref: ObjRef,
                expected: Optional[ObjectType] = None) -> KernelObject:
        """Resolve an ``OBJREF(container, object)`` pair.

        The object must actually be reachable through the named
        container — that is what makes ObjRefs revocable handles.
        """
        container = self.get_container(ref.container_id)
        obj = container.get(ref.object_id)
        if expected is not None and obj.TYPE is not expected:
            raise ObjectTypeError(
                f"object {ref.object_id} is a {obj.TYPE.value}, "
                f"expected {expected.value}")
        return obj

    def ref_for(self, obj: KernelObject) -> ObjRef:
        """The canonical ObjRef for an object (via its parent container)."""
        return ObjRef(obj.parent_container_id or
                      self.root_container.object_id, obj.object_id)

    # -- creation services ----------------------------------------------------------

    def create_container(self, parent: Optional[Container] = None,
                         label: Optional[Label] = None, name: str = "",
                         quota: Optional[int] = None) -> Container:
        """Create a container under ``parent`` (root by default)."""
        container = Container(label=label, name=name, quota=quota)
        self._register(container,
                       parent if parent is not None else self.root_container)
        return container

    def create_reserve(self, container: Optional[Container] = None,
                       label: Optional[Label] = None, name: str = "",
                       kind: Optional[str] = None,
                       decay_exempt: bool = False) -> "Reserve":
        """Create an empty reserve in the given kind's graph."""
        graph = self.graphs[kind if kind is not None else self._energy_kind]
        reserve = graph.create_reserve(name=name, label=label,
                                       decay_exempt=decay_exempt)
        self._register(reserve, container if container is not None else self.root_container)
        return reserve

    def create_tap(self, source: "Reserve", sink: "Reserve",
                   rate: float = 0.0,
                   tap_type: Optional["TapType"] = None,
                   container: Optional[Container] = None,
                   label: Optional[Label] = None,
                   privileges: PrivilegeSet = NO_PRIVILEGES,
                   name: str = "", kind: Optional[str] = None) -> "Tap":
        """Create a tap in the given kind's graph."""
        from ..core.tap import TapType as ConcreteTapType

        graph = self.graphs[kind if kind is not None else self._energy_kind]
        tap = graph.create_tap(
            source, sink, rate,
            tap_type if tap_type is not None else ConcreteTapType.CONST,
            name=name, label=label, privileges=privileges)
        self._register(tap, container if container is not None else self.root_container)
        return tap

    def create_thread(self, container: Optional[Container] = None,
                      label: Optional[Label] = None,
                      privileges: PrivilegeSet = NO_PRIVILEGES,
                      name: str = "") -> Thread:
        """Create a kernel thread object."""
        thread = Thread(label=label, privileges=privileges, name=name)
        self._register(thread, container if container is not None else self.root_container)
        return thread

    def create_segment(self, size: int = 0,
                       container: Optional[Container] = None,
                       label: Optional[Label] = None,
                       name: str = "") -> Segment:
        """Create a segment."""
        segment = Segment(size=size, label=label, name=name)
        self._register(segment, container if container is not None else self.root_container)
        return segment

    def create_address_space(self, container: Optional[Container] = None,
                             label: Optional[Label] = None,
                             name: str = "") -> AddressSpace:
        """Create an address space."""
        space = AddressSpace(label=label, name=name)
        self._register(space, container if container is not None else self.root_container)
        return space

    def create_gate(self, service: ServiceFn,
                    target_space: Optional[AddressSpace] = None,
                    container: Optional[Container] = None,
                    label: Optional[Label] = None,
                    grants: PrivilegeSet = NO_PRIVILEGES,
                    name: str = "") -> Gate:
        """Create a gate bound to ``service``."""
        gate = Gate(service, target_space=target_space, label=label,
                    grants=grants, name=name)
        self._register(gate, container if container is not None else self.root_container)
        return gate

    def create_device(self, component: str, initial_state: str,
                      container: Optional[Container] = None,
                      label: Optional[Label] = None,
                      name: str = "") -> Device:
        """Create a device object."""
        device = Device(component, initial_state, label=label, name=name)
        self._register(device, container if container is not None else self.root_container)
        return device

    # -- deletion --------------------------------------------------------------------

    def delete(self, ref: ObjRef) -> None:
        """Delete an object (recursively, for containers) via its ref."""
        from ..core.reserve import Reserve
        from ..core.tap import Tap

        container = self.get_container(ref.container_id)
        obj = container.get(ref.object_id)
        if isinstance(obj, Reserve):
            for graph in self.graphs.values():
                if obj in graph.reserves:
                    graph.delete_reserve(obj)
                    break
            if container.contains(ref.object_id):
                container.remove(ref.object_id)
            obj.mark_dead()
        elif isinstance(obj, Tap):
            for graph in self.graphs.values():
                if obj in graph.taps:
                    graph.delete_tap(obj)
                    break
            if container.contains(ref.object_id):
                container.remove(ref.object_id)
            obj.mark_dead()
        else:
            container.delete_member(ref.object_id)
        # A recursive container delete may have killed reserves and taps;
        # keep the graph registries consistent with the object tree.
        for graph in self.graphs.values():
            graph.sweep_dead()
