"""Containers: hierarchical ownership and garbage collection.

Containers are HiStar's answer to resource revocation (paper §3.1):
every kernel object must be referenced by a container or it is garbage
collected, and deleting a container recursively deletes everything
under it.  The paper leans on this for taps: "When a particular page is
no longer being handled ... the taps associated with that page can be
automatically garbage collected, effectively revoking those power
sources" (§5.2), and for reserves: "reserves can be deleted directly or
indirectly when some ancestor of their container is deleted" (§3.2).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..errors import ContainerError, NoSuchObjectError
from .labels import Label
from .objects import KernelObject, ObjectType


class Container(KernelObject):
    """A kernel object that holds references to other kernel objects."""

    TYPE = ObjectType.CONTAINER

    def __init__(self, label: Optional[Label] = None, name: str = "",
                 quota: Optional[int] = None) -> None:
        super().__init__(label=label, name=name)
        #: object id -> object, in insertion order.
        self._entries: Dict[int, KernelObject] = {}
        #: Optional cap on the number of directly-held entries.
        self.quota = quota

    # -- membership ----------------------------------------------------------

    def put(self, obj: KernelObject) -> None:
        """Place ``obj`` into this container.

        An object lives in exactly one container; re-parenting requires
        an explicit :meth:`remove` first.
        """
        self.ensure_alive()
        obj.ensure_alive()
        if obj.object_id in self._entries:
            raise ContainerError(
                f"object {obj.object_id} already in container {self.object_id}")
        if obj.parent_container_id not in (0, self.object_id):
            raise ContainerError(
                f"object {obj.object_id} already owned by container "
                f"{obj.parent_container_id}")
        if self.quota is not None and len(self._entries) >= self.quota:
            raise ContainerError(
                f"container {self.object_id} quota ({self.quota}) exhausted")
        if obj is self:
            raise ContainerError("container cannot contain itself")
        self._entries[obj.object_id] = obj
        obj.parent_container_id = self.object_id

    def remove(self, object_id: int) -> KernelObject:
        """Unlink an object without deleting it (caller must re-home it)."""
        self.ensure_alive()
        try:
            obj = self._entries.pop(object_id)
        except KeyError:
            raise NoSuchObjectError(
                f"object {object_id} not in container {self.object_id}")
        obj.parent_container_id = 0
        return obj

    def get(self, object_id: int) -> KernelObject:
        """Look up a live direct member by id."""
        self.ensure_alive()
        obj = self._entries.get(object_id)
        if obj is None or not obj.alive:
            raise NoSuchObjectError(
                f"object {object_id} not in container {self.object_id}")
        return obj

    def contains(self, object_id: int) -> bool:
        """True if a live object with ``object_id`` is a direct member."""
        obj = self._entries.get(object_id)
        return obj is not None and obj.alive

    def members(self) -> List[KernelObject]:
        """Live direct members, in insertion order."""
        return [obj for obj in self._entries.values() if obj.alive]

    def __len__(self) -> int:
        return len(self.members())

    def __iter__(self) -> Iterator[KernelObject]:
        return iter(self.members())

    # -- recursive deletion ---------------------------------------------------

    def on_delete(self) -> None:
        """Recursively delete everything this container references."""
        for obj in list(self._entries.values()):
            obj.mark_dead()
        self._entries.clear()

    def delete_member(self, object_id: int) -> None:
        """Delete a direct member (and, recursively, its subtree)."""
        obj = self.get(object_id)
        del self._entries[object_id]
        obj.mark_dead()

    # -- traversal -------------------------------------------------------------

    def walk(self) -> Iterator[KernelObject]:
        """Depth-first iteration over the live subtree, self first."""
        self.ensure_alive()
        yield self
        for obj in self.members():
            if isinstance(obj, Container):
                yield from obj.walk()
            else:
                yield obj

    def find_all(self, object_type: ObjectType) -> List[KernelObject]:
        """All live objects of ``object_type`` in the subtree."""
        return [obj for obj in self.walk() if obj.TYPE is object_type]
