"""Device kernel objects.

A device wraps one power-drawing hardware component (CPU, backlight,
radio, GPS...).  The *power meaning* of its states lives in
:mod:`repro.energy.states`; the kernel object only tracks which state
the component is in and for how long, which is exactly the information
the paper's state-based energy model consumes (§4.2).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import HardwareError
from .labels import Label
from .objects import KernelObject, ObjectType


class Device(KernelObject):
    """A hardware component with named power states."""

    TYPE = ObjectType.DEVICE

    def __init__(self, component: str, initial_state: str,
                 label: Optional[Label] = None, name: str = "") -> None:
        super().__init__(label=label, name=name or component)
        self.component = component
        self._state = initial_state
        #: Cumulative seconds spent in each state.
        self.state_durations: Dict[str, float] = {initial_state: 0.0}
        #: Number of transitions into each state.
        self.entry_counts: Dict[str, int] = {initial_state: 1}

    @property
    def state(self) -> str:
        """Current power state name."""
        return self._state

    def set_state(self, new_state: str) -> None:
        """Transition to ``new_state`` (no-op if already there)."""
        self.ensure_alive()
        if not new_state:
            raise HardwareError("device state must be a non-empty string")
        if new_state == self._state:
            return
        self._state = new_state
        self.state_durations.setdefault(new_state, 0.0)
        self.entry_counts[new_state] = self.entry_counts.get(new_state, 0) + 1

    def accumulate(self, dt: float) -> None:
        """Account ``dt`` seconds in the current state."""
        if dt < 0:
            raise HardwareError("cannot accumulate negative time")
        self.state_durations[self._state] = (
            self.state_durations.get(self._state, 0.0) + dt)

    def time_in(self, state: str) -> float:
        """Total seconds spent in ``state`` so far."""
        return self.state_durations.get(state, 0.0)
