"""Gates: protected control transfer, and the billing trick behind netd.

A gate is "a named entry point in an address space" (paper §5.5.1).
Unlike message-passing IPC, *the calling thread itself* enters the
server's address space and runs the server's code.  Because Cinder
bills consumption to the running thread's active reserve, the caller
pays for everything the service does on its behalf — no message
tracking or heuristic attribution needed.  Section 7.1 contrasts this
with Linux, where a daemon reading a pipe cannot even tell who wrote
the request.

In simulation a gate binds a Python callable ``service(thread,
request) -> response``.  While the callable runs, the thread's current
address space is the server's, its active reserve is unchanged, and
any ``thread.charge(...)`` lands on the caller — tests assert exactly
this property.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import GateError
from .address_space import AddressSpace
from .labels import (Label, NO_PRIVILEGES, PrivilegeSet, check_observe)
from .objects import KernelObject, ObjectType
from .thread_obj import Thread

ServiceFn = Callable[[Thread, Any], Any]


class Gate(KernelObject):
    """A named, label-protected entry point into an address space."""

    TYPE = ObjectType.GATE

    def __init__(
        self,
        service: ServiceFn,
        target_space: Optional[AddressSpace] = None,
        label: Optional[Label] = None,
        grants: PrivilegeSet = NO_PRIVILEGES,
        name: str = "",
        max_depth: int = 32,
    ) -> None:
        super().__init__(label=label, name=name)
        self.service = service
        self.target_space = target_space
        #: Privileges temporarily granted to threads while inside the gate
        #: (HiStar gates can carry privilege; netd uses this to touch its
        #: pooled reserve on behalf of callers).
        self.grants = grants
        self.max_depth = max_depth
        #: Statistics: number of completed calls through this gate.
        self.call_count: int = 0

    def call(self, thread: Thread, request: Any = None) -> Any:
        """Run the service as ``thread`` — billing stays with the caller.

        Raises :class:`~repro.errors.LabelError` if the thread may not
        observe the gate (you cannot jump through a gate you cannot
        name), and :class:`GateError` on runaway recursion.
        """
        self.ensure_alive()
        thread.ensure_alive()
        check_observe(thread.label, thread.privileges, self.label,
                      what=f"gate {self.name!r}")
        if thread.gate_depth >= self.max_depth:
            raise GateError(
                f"gate {self.name!r}: call depth {thread.gate_depth} "
                f"exceeds limit {self.max_depth}")

        entered = False
        original_privs = thread.privileges
        if self.target_space is not None:
            thread.enter_space(self.target_space)
            entered = True
        if len(self.grants):
            thread.privileges = thread.privileges.union(self.grants)
        try:
            response = self.service(thread, request)
        finally:
            thread.privileges = original_privs
            if entered:
                thread.exit_space()
        self.call_count += 1
        return response

    def on_delete(self) -> None:
        # A dead gate keeps its statistics but can no longer be called
        # (ensure_alive in call()).
        pass
