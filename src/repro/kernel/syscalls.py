"""The C-style syscall surface from the paper's Figure 5.

The ``energywrap`` excerpt shows the API Cinder applications program
against::

    res_id = reserve_create(container_id, res_label);
    tap_id = tap_create(container_id, root_reserve, res, tap_label);
    tap_set_rate(tap, TAP_TYPE_CONST, 1);       // mW
    self_set_active_reserve(res);

This module reproduces those entry points (plus the transfer, level
and delete calls the rest of §5 implies) as functions over a
:class:`~repro.kernel.kernel.Kernel` and a calling
:class:`~repro.kernel.thread_obj.Thread`.  Every call performs the
label checks of §3.5 with the *caller's* label and privileges.

Note the units quirk kept for fidelity: ``tap_set_rate`` takes
**milliwatts** for constant taps, as in the paper's "Limit the child
to 1 mW" comment; the object-level API is SI throughout.
"""

from __future__ import annotations

from typing import Optional

from ..core.reserve import Reserve
from ..core.tap import TAP_TYPE_CONST, TAP_TYPE_PROPORTIONAL, Tap, TapType
from ..errors import LabelError
from .kernel import Kernel
from .labels import Label, check_modify, check_observe
from .objects import ObjRef, ObjectType
from .thread_obj import Thread

__all__ = [
    "TAP_TYPE_CONST", "TAP_TYPE_PROPORTIONAL",
    "reserve_create", "reserve_level", "reserve_transfer",
    "reserve_delete", "reserve_split",
    "tap_create", "tap_set_rate", "tap_delete",
    "self_set_active_reserve", "self_get_active_reserve",
]


def _resolve_reserve(kernel: Kernel, ref: ObjRef) -> Reserve:
    obj = kernel.resolve(ref, ObjectType.RESERVE)
    assert isinstance(obj, Reserve)
    return obj


def _resolve_tap(kernel: Kernel, ref: ObjRef) -> Tap:
    obj = kernel.resolve(ref, ObjectType.TAP)
    assert isinstance(obj, Tap)
    return obj


# -- reserves -------------------------------------------------------------------


def reserve_create(kernel: Kernel, thread: Thread, container_id: int,
                   label: Optional[Label] = None, name: str = "") -> int:
    """Create an empty reserve in ``container_id``; returns its id."""
    container = kernel.get_container(container_id)
    check_modify(thread.label, thread.privileges, container.label,
                 what=f"container {container.name!r}")
    reserve = kernel.create_reserve(container=container, label=label,
                                    name=name)
    return reserve.object_id


def reserve_level(kernel: Kernel, thread: Thread, ref: ObjRef) -> float:
    """Read a reserve's level (requires observe)."""
    reserve = _resolve_reserve(kernel, ref)
    check_observe(thread.label, thread.privileges, reserve.label,
                  what=f"reserve {reserve.name!r}")
    return reserve.level


def reserve_transfer(kernel: Kernel, thread: Thread, source_ref: ObjRef,
                     sink_ref: ObjRef, joules: float) -> float:
    """Reserve-to-reserve transfer; needs modify on both ends (§3.2)."""
    source = _resolve_reserve(kernel, source_ref)
    sink = _resolve_reserve(kernel, sink_ref)
    for reserve in (source, sink):
        check_observe(thread.label, thread.privileges, reserve.label,
                      what=f"reserve {reserve.name!r}")
        check_modify(thread.label, thread.privileges, reserve.label,
                     what=f"reserve {reserve.name!r}")
    return source.transfer_to(sink, joules)


def reserve_split(kernel: Kernel, thread: Thread, ref: ObjRef,
                  joules: float, container_id: Optional[int] = None,
                  label: Optional[Label] = None, name: str = "") -> int:
    """Subdivide: new reserve seeded with ``joules`` from ``ref`` (§3.2)."""
    parent = _resolve_reserve(kernel, ref)
    check_observe(thread.label, thread.privileges, parent.label,
                  what=f"reserve {parent.name!r}")
    check_modify(thread.label, thread.privileges, parent.label,
                 what=f"reserve {parent.name!r}")
    container = kernel.get_container(
        container_id if container_id is not None
        else (parent.parent_container_id or kernel.root_container.object_id))
    check_modify(thread.label, thread.privileges, container.label,
                 what=f"container {container.name!r}")
    child = kernel.create_reserve(container=container, label=label, name=name)
    parent.transfer_to(child, joules)
    return child.object_id


def reserve_delete(kernel: Kernel, thread: Thread, ref: ObjRef,
                   reclaim_to: Optional[ObjRef] = None) -> None:
    """Delete a reserve, optionally reclaiming its level first."""
    reserve = _resolve_reserve(kernel, ref)
    check_modify(thread.label, thread.privileges, reserve.label,
                 what=f"reserve {reserve.name!r}")
    target = None
    if reclaim_to is not None:
        target = _resolve_reserve(kernel, reclaim_to)
        check_modify(thread.label, thread.privileges, target.label,
                     what=f"reserve {target.name!r}")
    for graph in kernel.graphs.values():
        if reserve in graph.reserves:
            graph.delete_reserve(reserve, reclaim_to=target)
            return
    reserve.mark_dead()


# -- taps ------------------------------------------------------------------------


def tap_create(kernel: Kernel, thread: Thread, container_id: int,
               source_ref: ObjRef, sink_ref: ObjRef,
               label: Optional[Label] = None, name: str = "") -> int:
    """Create a zero-rate tap between two reserves; returns its id.

    The caller must be able to observe and modify both endpoints; the
    caller's privileges are embedded into the tap (§3.5), so the tap
    keeps working even if its creator later drops them.
    """
    container = kernel.get_container(container_id)
    check_modify(thread.label, thread.privileges, container.label,
                 what=f"container {container.name!r}")
    source = _resolve_reserve(kernel, source_ref)
    sink = _resolve_reserve(kernel, sink_ref)
    for reserve in (source, sink):
        check_observe(thread.label, thread.privileges, reserve.label,
                      what=f"reserve {reserve.name!r}")
        check_modify(thread.label, thread.privileges, reserve.label,
                     what=f"reserve {reserve.name!r}")
    tap = kernel.create_tap(source, sink, rate=0.0, container=container,
                            label=label, privileges=thread.privileges,
                            name=name)
    return tap.object_id


def tap_set_rate(kernel: Kernel, thread: Thread, ref: ObjRef,
                 tap_type: TapType, rate: float) -> None:
    """Set a tap's rate — **milliwatts** for CONST taps (Figure 5),
    fraction/second for PROPORTIONAL taps."""
    tap = _resolve_tap(kernel, ref)
    check_modify(thread.label, thread.privileges, tap.label,
                 what=f"tap {tap.name!r}")
    if tap_type is TapType.CONST:
        tap.set_rate(rate * 1e-3, tap_type)
    else:
        tap.set_rate(rate, tap_type)


def tap_delete(kernel: Kernel, thread: Thread, ref: ObjRef) -> None:
    """Delete a tap (revoking the power source, §5.2)."""
    tap = _resolve_tap(kernel, ref)
    check_modify(thread.label, thread.privileges, tap.label,
                 what=f"tap {tap.name!r}")
    for graph in kernel.graphs.values():
        if tap in graph.taps:
            graph.delete_tap(tap)
            return
    tap.mark_dead()


# -- thread self-calls --------------------------------------------------------------


def self_set_active_reserve(kernel: Kernel, thread: Thread,
                            ref: ObjRef) -> None:
    """Switch the calling thread's billing target (Figure 5)."""
    reserve = _resolve_reserve(kernel, ref)
    check_observe(thread.label, thread.privileges, reserve.label,
                  what=f"reserve {reserve.name!r}")
    check_modify(thread.label, thread.privileges, reserve.label,
                 what=f"reserve {reserve.name!r}")
    thread.set_active_reserve(reserve)


def self_get_active_reserve(kernel: Kernel, thread: Thread) -> ObjRef:
    """The ObjRef of the calling thread's active reserve."""
    return kernel.ref_for(thread.active_reserve)
