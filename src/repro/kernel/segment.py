"""Segments: the byte-storage kernel object.

Segments exist in this reproduction mostly to make address spaces and
the smdd shared-memory mailbox (paper §7, Figure 16) real: the ARM11
and the closed ARM9 communicate through a shared segment, and Cinder
maps that segment into a privileged user-level process.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ObjectError
from .labels import Label
from .objects import KernelObject, ObjectType


class Segment(KernelObject):
    """A resizable array of bytes with label-protected access."""

    TYPE = ObjectType.SEGMENT

    def __init__(self, size: int = 0, label: Optional[Label] = None,
                 name: str = "") -> None:
        super().__init__(label=label, name=name)
        if size < 0:
            raise ObjectError("segment size must be non-negative")
        self._data = bytearray(size)

    @property
    def size(self) -> int:
        """Current length in bytes."""
        return len(self._data)

    def resize(self, new_size: int) -> None:
        """Grow (zero-filled) or shrink the segment."""
        self.ensure_alive()
        if new_size < 0:
            raise ObjectError("segment size must be non-negative")
        if new_size > len(self._data):
            self._data.extend(b"\x00" * (new_size - len(self._data)))
        else:
            del self._data[new_size:]

    def read(self, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Read ``length`` bytes at ``offset`` (to the end by default)."""
        self.ensure_alive()
        if offset < 0 or offset > len(self._data):
            raise ObjectError(f"read offset {offset} out of bounds")
        if length is None:
            return bytes(self._data[offset:])
        if length < 0 or offset + length > len(self._data):
            raise ObjectError("read past end of segment")
        return bytes(self._data[offset:offset + length])

    def write(self, data: bytes, offset: int = 0) -> None:
        """Write ``data`` at ``offset``, growing the segment if needed."""
        self.ensure_alive()
        if offset < 0:
            raise ObjectError("write offset must be non-negative")
        end = offset + len(data)
        if end > len(self._data):
            self.resize(end)
        self._data[offset:end] = data

    def on_delete(self) -> None:
        self._data = bytearray()
