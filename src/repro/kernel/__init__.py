"""HiStar-style kernel substrate: objects, labels, containers, gates.

Cinder extends HiStar (Zeldovich et al., OSDI 2006) with two new kernel
object types; this subpackage provides the six originals plus the
label machinery and the gate-call IPC whose caller-pays billing Cinder
relies on (paper §3.1, §5.5.1).
"""

from .address_space import AddressSpace, Mapping
from .container import Container
from .device import Device
from .gate import Gate
from .kernel import Kernel
from .labels import (Category, Label, NO_PRIVILEGES, PUBLIC, PrivilegeSet,
                     can_modify, can_observe, can_use_reserve,
                     fresh_category)
from .objects import KernelObject, ObjRef, ObjectType
from .segment import Segment
from .thread_obj import Thread, ThreadState

__all__ = [
    "AddressSpace", "Mapping", "Container", "Device", "Gate", "Kernel",
    "Category", "Label", "NO_PRIVILEGES", "PUBLIC", "PrivilegeSet",
    "can_modify", "can_observe", "can_use_reserve", "fresh_category",
    "KernelObject", "ObjRef", "ObjectType", "Segment", "Thread",
    "ThreadState",
]
