"""Kernel thread objects.

Threads are the billable principals in Cinder: "All threads draw from
one or more energy reserves.  Cinder's CPU scheduler is energy-aware
and allows a thread to run only when at least one of its energy
reserves is not empty" (paper §3.2).  Each thread has an *active*
reserve that consumption is charged to — including consumption caused
while the thread is executing inside another address space via a gate
call (§5.5.1), which is what makes IPC billing land on the caller.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, List, Optional

from ..errors import SchedulerError
from .labels import Label, NO_PRIVILEGES, PrivilegeSet
from .objects import KernelObject, ObjectType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.reserve import Reserve
    from .address_space import AddressSpace


class ThreadState(Enum):
    """Lifecycle states the scheduler distinguishes."""

    RUNNABLE = "runnable"
    BLOCKED = "blocked"     # waiting on a condition (e.g., netd pooling)
    SLEEPING = "sleeping"   # waiting on the clock
    THROTTLED = "throttled"  # wants CPU but its reserves are empty
    DEAD = "dead"


class Thread(KernelObject):
    """A schedulable, billable execution context."""

    TYPE = ObjectType.THREAD

    def __init__(
        self,
        label: Optional[Label] = None,
        privileges: PrivilegeSet = NO_PRIVILEGES,
        name: str = "",
    ) -> None:
        super().__init__(label=label, name=name)
        self.privileges = privileges
        self.state = ThreadState.RUNNABLE
        #: Reserves this thread may draw from (order = draw preference).
        self._reserves: List["Reserve"] = []
        self._active_reserve: Optional["Reserve"] = None
        #: Home address space, and the stack of spaces entered by gates.
        self.home_space: Optional["AddressSpace"] = None
        self._space_stack: List["AddressSpace"] = []
        #: Wall-clock seconds of CPU this thread has executed.
        self.cpu_time: float = 0.0
        #: Wake deadline when SLEEPING (simulation seconds).
        self.wake_at: float = 0.0

    # -- reserves -----------------------------------------------------------

    def attach_reserve(self, reserve: "Reserve") -> None:
        """Add a reserve to this thread's draw set.

        The first attached reserve becomes the active reserve.
        """
        reserve.ensure_alive()
        if reserve not in self._reserves:
            self._reserves.append(reserve)
        if self._active_reserve is None:
            self._active_reserve = reserve

    def detach_reserve(self, reserve: "Reserve") -> None:
        """Remove a reserve; re-aims the active reserve if needed."""
        if reserve in self._reserves:
            self._reserves.remove(reserve)
        if self._active_reserve is reserve:
            self._active_reserve = self._reserves[0] if self._reserves else None

    def set_active_reserve(self, reserve: "Reserve") -> None:
        """Make ``reserve`` the billing target (``self_set_active_reserve``)."""
        reserve.ensure_alive()
        if reserve not in self._reserves:
            self._reserves.append(reserve)
        self._active_reserve = reserve

    @property
    def active_reserve(self) -> "Reserve":
        """The reserve consumption is charged to."""
        if self._active_reserve is None:
            raise SchedulerError(
                f"thread {self.name!r} has no active reserve")
        return self._active_reserve

    @property
    def reserves(self) -> List["Reserve"]:
        """All reserves this thread may draw from (copy)."""
        return list(self._reserves)

    def has_energy(self) -> bool:
        """True if at least one attached reserve is non-empty (§3.2)."""
        return any(r.alive and r.level > 0.0 for r in self._reserves)

    def charge(self, joules: float) -> float:
        """Bill ``joules`` to the active reserve; returns amount charged.

        Charging may push the reserve into (bounded) debt — the paper
        explicitly allows debiting "up to or into debt" for costs only
        known after the fact (§5.5.2); the scheduler also relies on
        this so a quantum's cost can slightly overdraw and be repaid by
        the thread's taps before it runs again.
        """
        if joules < 0:
            raise SchedulerError("cannot charge a negative amount")
        return self.active_reserve.consume(joules, allow_debt=True)

    # -- address spaces / gate traversal -------------------------------------

    @property
    def current_space(self) -> Optional["AddressSpace"]:
        """The space the thread is executing in right now."""
        if self._space_stack:
            return self._space_stack[-1]
        return self.home_space

    def enter_space(self, space: "AddressSpace") -> None:
        """Push an address space (gate entry)."""
        space.ensure_alive()
        self._space_stack.append(space)

    def exit_space(self) -> None:
        """Pop back toward home (gate return)."""
        if not self._space_stack:
            raise SchedulerError("thread is already in its home space")
        self._space_stack.pop()

    @property
    def gate_depth(self) -> int:
        """How many nested gate calls the thread is inside."""
        return len(self._space_stack)

    # -- lifecycle ------------------------------------------------------------

    def kill(self) -> None:
        """Stop the thread permanently."""
        self.state = ThreadState.DEAD
        self.mark_dead()

    def on_delete(self) -> None:
        self.state = ThreadState.DEAD
        self._reserves.clear()
        self._active_reserve = None
        self._space_stack.clear()
