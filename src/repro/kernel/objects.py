"""Kernel object base machinery.

HiStar is built from six first-class kernel object types (segments,
threads, address spaces, devices, containers, gates); Cinder adds two
more (reserves and taps).  All of them share: a unique id, a security
label, a human-readable name (debugging only), liveness, and membership
in exactly one container (except the root container itself).

``ObjRef`` mirrors the paper's ``OBJREF(container_id, object_id)``
pairs from Figure 5: naming an object always names the container you
reached it through, which is what makes hierarchical revocation work.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..errors import NoSuchObjectError
from .labels import Label, PUBLIC


class ObjectType(Enum):
    """The eight kernel object types (six HiStar + two Cinder)."""

    SEGMENT = "segment"
    THREAD = "thread"
    ADDRESS_SPACE = "address_space"
    DEVICE = "device"
    CONTAINER = "container"
    GATE = "gate"
    RESERVE = "reserve"
    TAP = "tap"


@dataclass(frozen=True)
class ObjRef:
    """A (container id, object id) pair, as used by the syscall API."""

    container_id: int
    object_id: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ObjRef({self.container_id}, {self.object_id})"


_object_id_counter = itertools.count(1)


def _next_object_id() -> int:
    return next(_object_id_counter)


def reset_object_id_counter() -> None:
    """Reset ids (test isolation only)."""
    global _object_id_counter
    _object_id_counter = itertools.count(1)


class KernelObject:
    """Base class for every kernel object.

    Subclasses set :attr:`TYPE`.  Deletion is a *mark*: containers do
    the recursive sweep, and dead objects raise on further use via
    :meth:`ensure_alive`.
    """

    TYPE: ObjectType = ObjectType.SEGMENT  # overridden by subclasses

    def __init__(self, label: Optional[Label] = None, name: str = "") -> None:
        self.object_id: int = _next_object_id()
        self.label: Label = label if label is not None else PUBLIC
        self.name: str = name
        self.alive: bool = True
        #: Containing container's object id (0 until placed; root stays 0).
        self.parent_container_id: int = 0

    # -- lifecycle ---------------------------------------------------------

    def mark_dead(self) -> None:
        """Mark the object deleted; idempotent."""
        if self.alive:
            self.alive = False
            self.on_delete()

    def on_delete(self) -> None:
        """Subclass hook run once when the object dies."""

    def ensure_alive(self) -> None:
        """Raise if this object has been deleted or GC'd."""
        if not self.alive:
            raise NoSuchObjectError(
                f"{self.TYPE.value} {self.object_id} ({self.name!r}) is dead")

    # -- debugging ----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "" if self.alive else " DEAD"
        name = f" {self.name!r}" if self.name else ""
        return f"<{self.TYPE.value} #{self.object_id}{name}{status}>"
