"""rild: the radio interface layer daemon (paper §7, Figure 16).

On Android the RIL is an open generic library plus a closed,
binary-only ``libril.so``; Cinder had to run the blob behind a
compatibility shim.  Structurally, rild sits between consumers (netd,
the dialer) and smdd: it translates radio-level requests (dial, SMS,
data) into mailbox commands, and exports its own gates.

In this reproduction rild demonstrates the full §5.5.1 billing chain:
``app thread -> netd gate -> rild gate -> smdd gate -> ARM9``, with
every hop executing on the app's thread and charging the app's
reserve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import HardwareError, NetworkError
from ..kernel.address_space import AddressSpace
from ..kernel.gate import Gate
from ..kernel.kernel import Kernel
from ..kernel.thread_obj import Thread
from .smdd import SmddDaemon

#: Marshalling cost per RIL request, billed to the caller.
RILD_CALL_CPU_S = 0.0005


@dataclass
class RilStats:
    """What the daemon has done so far."""

    data_calls: int = 0
    sms_sent: int = 0
    voice_calls: int = 0
    status_queries: int = 0


class RildDaemon:
    """The RIL front-end: gates for data, SMS, voice, status."""

    def __init__(self, kernel: Kernel, smdd: SmddDaemon,
                 cpu_watts: float) -> None:
        self.kernel = kernel
        self.smdd = smdd
        self.cpu_watts = cpu_watts
        self.space: AddressSpace = kernel.create_address_space(name="rild")
        self.gate: Gate = kernel.create_gate(
            self._service, target_space=self.space, name="rild.request")
        self.stats = RilStats()

    def _service(self, thread: Thread, request: Any) -> Dict[str, Any]:
        if not isinstance(request, dict) or "op" not in request:
            raise HardwareError("rild expects an {'op': ...} dict")
        thread.charge(self.cpu_watts * RILD_CALL_CPU_S)
        op = request["op"]
        if op == "data_tx":
            self.stats.data_calls += 1
            return self.smdd.call(thread, {
                "cmd": "radio_tx",
                "nbytes": int(request.get("nbytes", 0)),
                "npackets": int(request.get("npackets", 0)),
            })
        if op == "sms":
            self.stats.sms_sent += 1
            return self.smdd.call(thread, {"cmd": "sms_send"})
        if op == "dial":
            # Voice works, "but as it does not yet have a port of the
            # audio library, calls are silent" (§7).
            self.stats.voice_calls += 1
            return {"ok": True, "audio": "silent",
                    "number": request.get("number", "")}
        if op == "status":
            self.stats.status_queries += 1
            return self.smdd.call(thread, {"cmd": "radio_status"})
        raise NetworkError(f"rild: unknown op {op!r}")

    def request(self, thread: Thread, op: Dict[str, Any]) -> Dict[str, Any]:
        """Issue a RIL request through the gate (caller is billed)."""
        return self.gate.call(thread, op)
