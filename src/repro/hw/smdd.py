"""smdd: the user-level shared-memory daemon (paper §7, Figure 16).

"We first mapped the shared memory segment into a privileged
user-level process and ported the Android Linux kernel's shared memory
device to userspace.  This daemon, smdd, exports ARM9 services via
gate calls to other consumers, including the radio interface library."

smdd is the *only* process that touches the mailbox segment; everyone
else goes through its gate.  Because gate callers execute the service
with their own active reserve, the energy cost of poking the ARM9 is
billed to whichever application ultimately asked — the §5.5.1
accounting property, demonstrated end-to-end in the hw tests.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..errors import HardwareError
from ..kernel.address_space import AddressSpace
from ..kernel.gate import Gate
from ..kernel.kernel import Kernel
from ..kernel.thread_obj import Thread
from .msm7201a import Msm7201a

#: Nominal CPU seconds of marshalling per mailbox round trip; billed
#: to the calling thread's reserve through ``thread.charge``.
SMDD_CALL_CPU_S = 0.0005


class SmddDaemon:
    """Exports the ARM9 command set as a single gate service."""

    def __init__(self, kernel: Kernel, chipset: Msm7201a,
                 cpu_watts: float) -> None:
        self.kernel = kernel
        self.chipset = chipset
        self.cpu_watts = cpu_watts
        #: smdd's own address space; gate callers enter it (Figure 16).
        self.space: AddressSpace = kernel.create_address_space(name="smdd")
        self.space.map_segment(self.chipset.mailbox.segment, 0x1000_0000)
        self.gate: Gate = kernel.create_gate(
            self._service, target_space=self.space, name="smdd.call")
        self.calls = 0

    def _service(self, thread: Thread, request: Any) -> Dict[str, Any]:
        if not isinstance(request, dict) or "cmd" not in request:
            raise HardwareError("smdd expects a {'cmd': ...} dict")
        # Marshalling work happens on the *caller's* thread, in smdd's
        # address space — so the caller pays for it (§5.5.1).
        thread.charge(self.cpu_watts * SMDD_CALL_CPU_S)
        self.calls += 1
        return self.chipset.call(dict(request, owner=thread.name))

    def call(self, thread: Thread, command: Dict[str, Any]
             ) -> Dict[str, Any]:
        """Convenience wrapper: go through the gate properly."""
        return self.gate.call(thread, command)
