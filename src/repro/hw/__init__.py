"""The HTC Dream hardware substrate (paper §4.1, §7).

A two-core MSM7201A chipset simulation: a closed ARM9 owning the radio
and battery sensor, a shared-memory mailbox, and the user-level smdd
and rild daemons that export ARM9 services as HiStar gates.
"""

from .msm7201a import ClosedArm9, Msm7201a, SharedMemoryMailbox
from .rild import RilStats, RildDaemon
from .smdd import SmddDaemon

__all__ = [
    "ClosedArm9", "Msm7201a", "SharedMemoryMailbox",
    "RilStats", "RildDaemon", "SmddDaemon",
]
