"""The MSM7201A two-core chipset (paper §4.1, §7, Figures 2/15/16).

"The MSM7201A chipset includes two cores: the ARM11 runs application
code (Cinder), while a secure ARM9 controls the radio and other
sensitive features.  Accessing these features requires communicating
between the cores using a combination of shared memory and interrupt
lines."

The structural constraints the paper works around are enforced here:

* the ARM9 is **closed** — the ARM11 side can only send it commands
  over the mailbox; there is no command to change the radio's 20 s
  inactivity timeout ("Because the ARM9 is closed, Cinder cannot
  change this inactivity timeout", §4.3);
* the battery sensor is ARM9-owned and reports only an **integer from
  0 to 100** (§4.1).

The mailbox rides a real :class:`~repro.kernel.segment.Segment`, as on
the hardware, and smdd maps that segment to export gate services.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..energy.battery import Battery
from ..errors import HardwareError
from ..kernel.segment import Segment
from ..net.radio import RadioDevice

#: Mailbox framing: a 4-byte big-endian length prefix, then JSON.
_LEN_BYTES = 4


class SharedMemoryMailbox:
    """The shared segment + interrupt line between the two cores."""

    def __init__(self, segment: Optional[Segment] = None) -> None:
        self.segment = segment if segment is not None else Segment(
            size=4096, name="smd.shared")
        self._request_ready = False
        self._reply_ready = False

    # -- ARM11 side -----------------------------------------------------------------

    def post_request(self, message: Dict[str, Any]) -> None:
        """Write a command and raise the 'interrupt'."""
        if self._request_ready:
            raise HardwareError("mailbox busy: previous request unserviced")
        payload = json.dumps(message).encode()
        if len(payload) + _LEN_BYTES > self.segment.size:
            raise HardwareError(
                f"mailbox overflow: {len(payload)} byte message")
        self.segment.write(len(payload).to_bytes(_LEN_BYTES, "big"), 0)
        self.segment.write(payload, _LEN_BYTES)
        self._request_ready = True
        self._reply_ready = False

    def read_reply(self) -> Dict[str, Any]:
        """Collect the ARM9's answer."""
        if not self._reply_ready:
            raise HardwareError("no reply pending")
        self._reply_ready = False
        return self._read()

    # -- ARM9 side --------------------------------------------------------------------

    def take_request(self) -> Dict[str, Any]:
        """ARM9 interrupt handler: consume the pending command."""
        if not self._request_ready:
            raise HardwareError("no request pending")
        self._request_ready = False
        return self._read()

    def post_reply(self, message: Dict[str, Any]) -> None:
        """ARM9 writes its answer back."""
        payload = json.dumps(message).encode()
        self.segment.write(len(payload).to_bytes(_LEN_BYTES, "big"), 0)
        self.segment.write(payload, _LEN_BYTES)
        self._reply_ready = True

    def _read(self) -> Dict[str, Any]:
        length = int.from_bytes(self.segment.read(0, _LEN_BYTES), "big")
        return json.loads(self.segment.read(_LEN_BYTES, length).decode())


class ClosedArm9:
    """The secure coprocessor: radio, battery sensor, (stub) GPS.

    Its command set is *fixed*; anything else returns an error reply,
    never an exception into the caller — the real firmware does not
    crash because Cinder asked nicely.
    """

    COMMANDS = ("radio_tx", "radio_status", "battery_level", "gps_fix",
                "sms_send")

    def __init__(self, radio: RadioDevice, battery: Battery,
                 clock: Callable[[], float]) -> None:
        self.radio = radio
        self.battery = battery
        self._clock = clock
        self.sms_sent = 0

    def handle(self, command: Dict[str, Any]) -> Dict[str, Any]:
        """Service one mailbox command."""
        name = command.get("cmd")
        now = self._clock()
        if name == "radio_tx":
            nbytes = int(command.get("nbytes", 0))
            npackets = int(command.get("npackets", 0))
            owner = str(command.get("owner", ""))
            transfer = self.radio.begin_transfer(now, nbytes, npackets,
                                                 owner=owner)
            return {"ok": True, "done_at": transfer.end}
        if name == "radio_status":
            return {"ok": True, "active": self.radio.is_active(),
                    "activations": self.radio.activation_count}
        if name == "battery_level":
            # The famous integer 0..100 — all you get (§4.1).
            return {"ok": True, "level": self.battery.gauge()}
        if name == "gps_fix":
            return {"ok": True, "lat": 37.4275, "lon": -122.1697,
                    "source": "stub"}
        if name == "sms_send":
            self.sms_sent += 1
            return {"ok": True, "queued": self.sms_sent}
        if name == "set_radio_timeout":
            # Deliberately rejected: the timeout is firmware-fixed (§4.3).
            return {"ok": False, "error": "unsupported command"}
        return {"ok": False, "error": f"unknown command {name!r}"}


@dataclass
class Msm7201a:
    """The assembled chipset: mailbox + closed coprocessor."""

    mailbox: SharedMemoryMailbox
    arm9: ClosedArm9

    @classmethod
    def build(cls, radio: RadioDevice, battery: Battery,
              clock: Callable[[], float]) -> "Msm7201a":
        """Wire a chipset around existing radio/battery models."""
        return cls(mailbox=SharedMemoryMailbox(),
                   arm9=ClosedArm9(radio, battery, clock))

    def call(self, command: Dict[str, Any]) -> Dict[str, Any]:
        """One full ARM11 -> ARM9 -> ARM11 round trip."""
        self.mailbox.post_request(command)
        request = self.mailbox.take_request()
        self.mailbox.post_reply(self.arm9.handle(request))
        return self.mailbox.read_reply()
