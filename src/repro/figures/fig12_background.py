"""Figure 12: foreground/background control, and hoarding (§6.3).

Paper: two processes spin on the CPU, sharing a 14 mW background pool
(~10 % of the 137 mW CPU).  The task manager brings A to the
foreground for 10-20 s and B for 30-40 s.

(a) foreground tap = 137 mW — exactly the CPU's cost.  Clean
handoffs: the foregrounded app jumps to ~137 mW, drops back to its
~7 mW background share immediately on retirement.

(b) foreground tap = 300 mW — more than the CPU can spend.  The
foregrounded app *accumulates* the excess; after retirement it keeps
running off its hoard: A competes with B at ~50/50 while B is
foregrounded, and B uses ~90 % of the CPU after 40 s until its hoard
drains.  This is the experiment motivating the global decay (§5.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..apps.task_manager import TaskManager
from ..sim.engine import CinderSystem
from ..sim.workload import spinner
from ..units import mW
from .common import FigureResult, format_table, window_mean

PAPER_CPU_W = 0.137
PAPER_BG_POOL_W = 0.014


@dataclass
class Fig12Result(FigureResult):
    """Stacked estimates for one panel (a or b)."""

    foreground_watts: float = 0.0
    series: Dict[str, Tuple[List[float], List[float]]] = field(
        default_factory=dict)
    measured_minus_idle: Tuple[List[float], List[float]] = field(
        default_factory=lambda: ([], []))


def run_panel(foreground_watts: float, duration_s: float = 60.0,
              seed: int = 12) -> Fig12Result:
    """One Figure 12 panel with the paper's focus schedule."""
    system = CinderSystem(tick_s=0.01, seed=seed)
    manager = TaskManager(system, foreground_watts=foreground_watts,
                          background_pool_watts=PAPER_BG_POOL_W)
    process_a = system.spawn(spinner(), "A")
    process_b = system.spawn(spinner(), "B")
    manager.add_app("A", process_a.thread)
    manager.add_app("B", process_b.thread)

    manager.schedule_focus(10.0, "A")
    manager.schedule_focus(20.0, None)
    manager.schedule_focus(30.0, "B")
    manager.schedule_focus(40.0, None)
    system.run(duration_s)
    system.meter.flush()

    result = Fig12Result(foreground_watts=foreground_watts)
    result.series = system.ledger.stacked_power_series(
        ["A", "B"], duration_s, bin_s=1.0)
    times, watts = system.meter.samples()
    idle = system.model.idle_watts
    result.measured_minus_idle = (
        list(times), [max(0.0, w - idle) for w in watts])

    a_times, a_watts = result.series["A"]
    b_times, b_watts = result.series["B"]
    bg_share = PAPER_BG_POOL_W / 2.0
    result.add("A background power (0-10 s)", bg_share,
               window_mean(a_times, a_watts, 2.0, 10.0), "W")
    # The foregrounded app cannot bill more than the CPU costs, and the
    # background app still claims its ~5 % of quanta.
    result.add("A foreground power (10-20 s)", PAPER_CPU_W,
               window_mean(a_times, a_watts, 12.0, 20.0), "W")
    if foreground_watts <= PAPER_CPU_W:
        # (a): clean handoff — A returns to background share at 20 s.
        result.add("A power after retirement (22-30 s)", bg_share,
                   window_mean(a_times, a_watts, 22.0, 30.0), "W")
        result.add("B foreground power (30-40 s)", PAPER_CPU_W,
                   window_mean(b_times, b_watts, 32.0, 40.0), "W")
    else:
        # (b): hoarding — A keeps spending after retirement, competes
        # ~50/50 during B's foreground interval, and B burns its hoard
        # at ~90 % CPU after 40 s.
        result.add("A power after retirement (20-30 s)", PAPER_CPU_W,
                   window_mean(a_times, a_watts, 21.0, 29.0), "W",
                   note="hoard spends at full CPU")
        result.add("A share during B's turn (30-36 s)", PAPER_CPU_W / 2,
                   window_mean(a_times, a_watts, 30.0, 36.0), "W",
                   note="paper: 'each receives a 50% share'")
        result.add("B share during its turn (30-36 s)", PAPER_CPU_W / 2,
                   window_mean(b_times, b_watts, 30.0, 36.0), "W")
        result.add("B power after retirement (41-50 s)",
                   0.9 * PAPER_CPU_W,
                   window_mean(b_times, b_watts, 41.0, 50.0), "W",
                   note="paper: '~90% of the CPU until it exhausts'")
    return result


@dataclass
class Fig12Pair:
    """Both panels."""

    panel_a: Fig12Result
    panel_b: Fig12Result


def run(duration_s: float = 60.0, seed: int = 12) -> Fig12Pair:
    """Run both Figure 12 panels."""
    return Fig12Pair(
        panel_a=run_panel(mW(137), duration_s, seed),
        panel_b=run_panel(mW(300), duration_s, seed),
    )


def render(pair: Fig12Pair) -> str:
    """Per-second tables for both panels plus comparisons."""
    parts = []
    for label, result in (("(a) fg tap = 137 mW", pair.panel_a),
                          ("(b) fg tap = 300 mW", pair.panel_b)):
        rows = []
        times = result.series["A"][0]
        for second in range(0, len(times), 5):
            rows.append((
                f"{times[second]:.0f}s",
                f"{result.series['A'][1][second] * 1e3:.1f}",
                f"{result.series['B'][1][second] * 1e3:.1f}",
            ))
        parts.append(f"Figure 12 {label} - accounting estimates (mW)")
        parts.append(format_table(("t", "A", "B"), rows))
        parts.append(result.summary())
        parts.append("")
    return "\n".join(parts)


def main() -> None:  # pragma: no cover - console entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
