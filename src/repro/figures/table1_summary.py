"""Table 1: energy and active-time savings from cooperation (§6.4).

Paper Table 1 (20-minute runs, same work in both):

    =============  ========  ======  =======
    metric         Non-Coop  Coop    Improv
    =============  ========  ======  =======
    Total Time     1201 s    1201 s  N/A
    Total Energy   1238 J    1083 J  12.5 %
    Active Time    949 s     510 s   46.3 %
    Active Energy  1064 J    594 J   44.2 %
    =============  ========  ======  =======

"In total, 12.5% less energy is used in the same time interval for an
equivalent amount of work."  We recompute every row from the simulated
meter trace using the paper's reduction: a sample is *active* when its
power exceeds the idle baseline (radio plateau present).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from .common import FigureResult, format_table
from .fig13_cooperative import EXPERIMENT_SECONDS, CoopRun, run_one

#: The paper's rows: (metric, non-coop, coop, improvement fraction).
PAPER_ROWS = {
    "total_time_s": (1201.0, 1201.0, None),
    "total_energy_j": (1238.0, 1083.0, 0.125),
    "active_time_s": (949.0, 510.0, 0.463),
    "active_energy_j": (1064.0, 594.0, 0.442),
}


@dataclass
class Table1Result(FigureResult):
    """Measured rows next to the paper's."""

    uncoop: CoopRun = None  # type: ignore[assignment]
    coop: CoopRun = None    # type: ignore[assignment]

    def measured_rows(self) -> List[Tuple[str, float, float, float]]:
        """(metric, non-coop, coop, improvement) from the meter."""
        rows = []
        pairs = [
            ("Total Time (s)", self.uncoop.duration_s, self.coop.duration_s),
            ("Total Energy (J)", self.uncoop.total_energy_j,
             self.coop.total_energy_j),
            ("Active Time (s)", self.uncoop.active_time_s,
             self.coop.active_time_s),
            ("Active Energy (J)", self.uncoop.active_energy_j,
             self.coop.active_energy_j),
        ]
        for metric, non_coop, coop in pairs:
            improvement = (1.0 - coop / non_coop) if non_coop else 0.0
            rows.append((metric, non_coop, coop, improvement))
        return rows


def run(duration_s: float = EXPERIMENT_SECONDS, seed: int = 13,
        tick_s: float = 0.01,
        runs: Tuple[CoopRun, CoopRun] = None) -> Table1Result:
    """Produce Table 1 from a fresh (or supplied) pair of runs."""
    result = Table1Result()
    if runs is not None:
        result.uncoop, result.coop = runs
    else:
        result.uncoop = run_one(False, duration_s, seed, tick_s)
        result.coop = run_one(True, duration_s, seed, tick_s)

    measured = {row[0]: row for row in result.measured_rows()}
    result.add("total energy improvement", 0.125,
               measured["Total Energy (J)"][3])
    result.add("active time improvement", 0.463,
               measured["Active Time (s)"][3])
    result.add("active energy improvement", 0.442,
               measured["Active Energy (J)"][3])
    result.add("non-coop active time", 949.0,
               measured["Active Time (s)"][1], "s")
    result.add("coop active time", 510.0,
               measured["Active Time (s)"][2], "s")
    result.add("non-coop total energy", 1238.0,
               measured["Total Energy (J)"][1], "J")
    result.add("coop total energy", 1083.0,
               measured["Total Energy (J)"][2], "J")
    result.notes.append(
        "work parity: "
        f"non-coop completed {result.uncoop.polls_completed} polls, "
        f"coop completed {result.coop.polls_completed}")
    return result


def render(result: Table1Result) -> str:
    """Both the measured table and the paper-vs-measured comparison."""
    rows = []
    for metric, non_coop, coop, improvement in result.measured_rows():
        improv = "N/A" if metric.startswith("Total Time") else (
            f"{improvement * 100:.1f}%")
        rows.append((metric, f"{non_coop:.0f}", f"{coop:.0f}", improv))
    parts = [
        "Table 1 - cooperative resource sharing in Cinder (measured)",
        format_table(("metric", "Non-Coop", "Coop", "Improv"), rows),
        "",
        result.summary(),
    ]
    return "\n".join(parts)


def main() -> None:  # pragma: no cover - console entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
