"""Generate the paper's design-diagram topologies from live objects.

Figures 1, 6a, 6b, 7 and 8 are *diagrams* of reserve/tap graphs rather
than measurements.  This module builds each topology with the real
policy helpers and renders it (Graphviz dot + a text summary), so the
documentation diagrams are guaranteed to match what the code actually
wires — and tests can assert the structures exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..core.decay import DecayPolicy
from ..core.graph import ResourceGraph
from ..core.policy import (foreground_background_slot, rate_limit,
                           shared_rate_limit)
from ..core.tap import TapType
from ..units import mW


@dataclass
class Diagram:
    """One rendered topology."""

    name: str
    caption: str
    graph: ResourceGraph

    def dot(self) -> str:
        """Graphviz source."""
        return self.graph.to_dot()

    def text(self) -> str:
        """A terse text rendering: every edge on one line."""
        lines = [f"{self.name}: {self.caption}"]
        for tap in self.graph.taps:
            unit = ("W" if tap.tap_type is TapType.CONST else "/s")
            lines.append(f"  {tap.source.name} --{tap.rate:g}{unit}--> "
                         f"{tap.sink.name}")
        return "\n".join(lines)


def _fresh_graph() -> ResourceGraph:
    return ResourceGraph(15_000.0, decay=DecayPolicy(enabled=False))


def figure1() -> Diagram:
    """A 15 kJ battery feeding a browser via a 750 mW tap."""
    graph = _fresh_graph()
    rate_limit(graph, graph.root, mW(750), name="browser")
    return Diagram(
        "Figure 1",
        "battery -> 750 mW tap -> browser; the battery lasts >= 5.6 h",
        graph)


def figure6a() -> Diagram:
    """Browser subdividing a plugin reserve (no sharing)."""
    graph = _fresh_graph()
    browser = rate_limit(graph, graph.root, mW(700), name="browser")
    rate_limit(graph, browser.reserve, mW(70), name="plugin")
    return Diagram(
        "Figure 6a",
        "browser runs >= 6 h; plugin capped at 10% of its energy",
        graph)


def figure6b() -> Diagram:
    """Figure 6a plus 0.1x backward proportional sharing taps."""
    graph = _fresh_graph()
    browser = rate_limit(graph, graph.root, mW(700), name="browser")
    graph.create_tap(browser.reserve, graph.root, 0.1,
                     TapType.PROPORTIONAL, name="browser.back")
    shared_rate_limit(graph, browser.reserve, mW(70), 0.1, name="plugin")
    return Diagram(
        "Figure 6b",
        "backward proportional taps return unused energy; plugin banks "
        "up to 700 mJ, browser up to 7000 mJ",
        graph)


def figure7() -> Diagram:
    """The task manager's foreground/background arrangement."""
    graph = _fresh_graph()
    fg = graph.create_reserve(name="foreground")
    graph.create_tap(graph.root, fg, mW(137), name="fg.in")
    bg = graph.create_reserve(name="background")
    graph.create_tap(graph.root, bg, mW(14), name="bg.in")
    for name in ("rss", "mail"):
        slot = foreground_background_slot(graph, fg, bg, name=name)
        slot.background.set_rate(mW(7))
        if name == "rss":  # the figure shows RSS foregrounded
            slot.bring_to_foreground(mW(137))
    return Diagram(
        "Figure 7",
        "each app fed by a background tap (always on) and a foreground "
        "tap the task manager toggles; rss shown foregrounded",
        graph)


def figure8() -> Diagram:
    """The netd pooling topology for the §6.4 experiment."""
    graph = _fresh_graph()
    pool = graph.create_reserve(name="netd.pool", decay_exempt=True)
    for name in ("mail", "rss"):
        child = rate_limit(graph, graph.root, mW(99), name=name)
        graph.create_tap(child.reserve, pool, mW(99),
                         name=f"{name}.contrib")
    return Diagram(
        "Figure 8",
        "daemons' reserves drain into the shared netd reserve while "
        "blocked; the radio turns on when the pool covers 125% of the "
        "activation cost",
        graph)


#: All diagrams in paper order.
ALL_DIAGRAMS: List[Callable[[], Diagram]] = [
    figure1, figure6a, figure6b, figure7, figure8,
]


def render_all() -> str:
    """Every topology as text (used by the docs and the smoke test)."""
    return "\n\n".join(builder().text() for builder in ALL_DIAGRAMS)


def main() -> None:  # pragma: no cover - console entry
    for builder in ALL_DIAGRAMS:
        diagram = builder()
        print(diagram.text())
        print()
        print(diagram.dot())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
