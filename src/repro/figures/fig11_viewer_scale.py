"""Figure 11: the image viewer *with* energy-aware scaling (§6.2).

Paper: "Image viewer with energy-aware scaling of image quality
enabled.  As energy becomes scarce, quality is lowered and less data
is downloaded per image.  The experiment takes less than one-fifth the
time to complete within the energy budget versus the non-adaptive
viewer due to adaptation to reduced available energy."  Also: "the
level of energy present in the reserve dropped below the threshold,
but never to zero" and "the images downloaded 5 times more quickly".

Shape targets: >=5x faster completion than Figure 10's run, declining
per-image bytes across batches, reserve floor strictly above zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import FigureResult, ascii_chart
from .fig10_viewer_noscale import Fig10Result, run_viewer

PAPER_SPEEDUP = 5.0


@dataclass
class Fig11Result(FigureResult):
    """Adaptive run plus the speedup versus the non-adaptive run."""

    adaptive: Fig10Result = None      # type: ignore[assignment]
    non_adaptive: Fig10Result = None  # type: ignore[assignment]
    speedup: float = 0.0


def run(seed: int = 10) -> Fig11Result:
    """Run both viewers and compare."""
    result = Fig11Result()
    result.adaptive = run_viewer(adaptive=True, seed=seed)
    result.non_adaptive = run_viewer(adaptive=False, seed=seed)
    result.speedup = (result.non_adaptive.runtime_s
                      / max(1e-9, result.adaptive.runtime_s))

    result.add("speedup vs non-adaptive", PAPER_SPEEDUP, result.speedup,
               "x", note="paper: 'downloaded 5 times more quickly'")
    result.add("reserve floor", 0.02,
               result.adaptive.min_reserve_j, "J",
               note="'dropped below the threshold, but never to zero'")
    first = result.adaptive.stats.images[0]
    last = result.adaptive.stats.images[-1]
    result.add("first image bytes (KiB)", 700.0, first.nbytes / 1024.0)
    result.add("late image bytes shrink", 1.0,
               1.0 - last.nbytes / max(1, first.nbytes),
               note="quality drops as pauses shorten")
    result.add("total stall time", 0.0,
               result.adaptive.stats.total_stall_seconds, "s",
               note="adaptive viewer should barely stall")
    return result


def render(result: Fig11Result) -> str:
    """Reserve trace, per-image bars, and the comparison."""
    adaptive = result.adaptive
    times, kib = adaptive.stats.bytes_per_image_series()
    parts = [
        "Figure 11 - reserve level with application scaling",
        ascii_chart(adaptive.reserve_times, adaptive.reserve_levels * 1e6,
                    height=10, title="downloader reserve", unit="uJ"),
        "",
        "per-image downloads (KiB): "
        + ", ".join(f"{k:.0f}" for k in kib[:24])
        + (" ..." if len(kib) > 24 else ""),
        "",
        f"adaptive runtime:     {adaptive.runtime_s:.0f} s",
        f"non-adaptive runtime: {result.non_adaptive.runtime_s:.0f} s",
        "",
        result.summary(),
    ]
    return "\n".join(parts)


def main() -> None:  # pragma: no cover - console entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
