"""Figure 14: the netd pooled reserve level over time (§6.4).

Paper: "The level of the reserve into which the two background
applications transfer their allotted joules.  When the reserve reaches
a level sufficient to pay for the cost of transitioning the radio to
the active state, it is debited, the radio is turned on, and the
processes proceed to use the network. ... netd requires 125% of this
level before turning the radio on ... Therefore, the reserve does not
empty to 0."

Shape targets: a sawtooth charging toward ~125 % of the activation
cost, sharp debits at each radio power-up, and a floor that never
returns to zero after the first cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..sim.trace import TimeSeries
from .common import FigureResult, ascii_chart
from .fig13_cooperative import EXPERIMENT_SECONDS, CoopRun, run_one

PAPER_MARGIN = 1.25
PAPER_ACTIVATION_J = 9.5


@dataclass
class Fig14Result(FigureResult):
    """The pool level series plus its characteristic values."""

    times: np.ndarray = field(default_factory=lambda: np.empty(0))
    levels: np.ndarray = field(default_factory=lambda: np.empty(0))
    peak_j: float = 0.0
    floor_after_first_fill_j: float = 0.0


def run(duration_s: float = EXPERIMENT_SECONDS, seed: int = 14,
        tick_s: float = 0.01, coop_run: CoopRun = None) -> Fig14Result:
    """Extract the netd pool series from a cooperative §6.4 run."""
    run_ = coop_run if coop_run is not None else run_one(
        True, duration_s, seed, tick_s)
    series: TimeSeries = run_.system.trace.series("netd.pool")
    times, levels = series.times, series.values

    result = Fig14Result(times=times, levels=levels)
    result.peak_j = float(levels.max()) if levels.size else 0.0
    # The floor, once the pool has filled at least once.
    first_fill = int(np.argmax(levels > 0.5 * PAPER_ACTIVATION_J))
    debited = levels[first_fill:]
    result.floor_after_first_fill_j = float(debited.min()) if debited.size else 0.0

    threshold = PAPER_MARGIN * run_.system.radio.params.activation_cost
    result.add("pool peak level", threshold, result.peak_j, "J",
               note="fills to ~125% of the activation cost")
    result.add("pool floor after first fill",
               threshold - PAPER_ACTIVATION_J,
               result.floor_after_first_fill_j, "J",
               note="'the reserve does not empty to 0'")
    result.add("debit per activation", PAPER_ACTIVATION_J,
               result.peak_j - result.floor_after_first_fill_j, "J")
    return result


def render(result: Fig14Result) -> str:
    """The sawtooth plus the comparison table."""
    parts = [
        "Figure 14 - netd reserve level over time",
        ascii_chart(result.times, result.levels, height=10,
                    title="netd pool level", unit="J"),
        "",
        result.summary(),
    ]
    return "\n".join(parts)


def main() -> None:  # pragma: no cover - console entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
