"""Ablations over the design choices DESIGN.md calls out.

Each function isolates one mechanism and sweeps its parameter:

* **Decay half-life** (§5.2.2's 10-minute choice): how long a
  Figure 12b-style hoard survives after the app retires to the
  background.
* **netd activation margin** (Figure 14's 125 %): the pool's residual
  floor and the first-activation latency.
* **Tick size** (the batch-transfer period, §3.3): duty cycles and
  tap equilibria must be invariant.
* **CPU billing policy** (§4.2's worst-case assumption): how much the
  model over-bills for non-memory-bound workloads vs counter-based
  billing.
* **Cinder vs currentcy** (§2.3): the browser-share and pooling
  comparisons from :mod:`repro.baselines`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..baselines.comparison import (plugin_scenario_cinder,
                                    plugin_scenario_currentcy,
                                    pooling_scenario_cinder,
                                    pooling_scenario_currentcy)
from ..core.decay import DecayPolicy
from ..core.graph import ResourceGraph
from ..energy.cpu import ARITHMETIC_LOOP, MEMORY_STREAM, CpuComponent
from ..energy.model import CpuPowerParams
from ..sim.engine import CinderSystem
from ..sim.workload import periodic_poller, spinner
from ..units import KiB, mW


# -- decay half-life --------------------------------------------------------------


@dataclass
class DecayAblationRow:
    """Hoard survival under one half-life setting."""

    half_life_s: float
    hoard_joules: float
    survival_s: float  # time until 90% of the hoard is gone


def decay_half_life_ablation(
    half_lives_s: Tuple[float, ...] = (60.0, 300.0, 600.0, 1800.0),
    hoard_joules: float = 1.6,
) -> List[DecayAblationRow]:
    """How fast each half-life reclaims a Figure 12b hoard.

    An idle reserve holds the hoard; nothing feeds it.  The 10-minute
    default lets a briefly-foregrounded app do "an elevated amount of
    work briefly" (§6.3) while bounding long-term hoarding.
    """
    rows = []
    for half_life in half_lives_s:
        graph = ResourceGraph(1000.0, decay=DecayPolicy(half_life))
        hoard = graph.create_reserve(name="hoard", source=graph.root,
                                     level=hoard_joules)
        elapsed = 0.0
        dt = 1.0
        while hoard.level > 0.1 * hoard_joules and elapsed < 50_000:
            graph.step(dt)
            elapsed += dt
        rows.append(DecayAblationRow(half_life, hoard_joules, elapsed))
    return rows


# -- netd activation margin -------------------------------------------------------


@dataclass
class MarginAblationRow:
    """Pooling behavior under one activation margin."""

    margin: float
    first_activation_s: float
    pool_floor_j: float
    activations: int


def netd_margin_ablation(
    margins: Tuple[float, ...] = (1.0, 1.25, 1.5),
    duration_s: float = 400.0,
) -> List[MarginAblationRow]:
    """Sweep the Figure 14 margin.

    1.0 leaves the pool empty after each power-up (risking transfers
    the pool cannot cover); larger margins delay the first activation
    but leave a healthier floor.
    """
    rows = []
    # Income held fixed across the sweep (sized for the largest margin)
    # so the margin alone moves the first-activation latency.
    per_app = (max(margins) * 9.5) / 120.0
    for margin in margins:
        system = CinderSystem(tick_s=0.02, decay_enabled=False, seed=1)
        system.netd.activation_margin = margin
        for name in ("mail", "rss"):
            reserve = system.powered_reserve(per_app, name=name)
            system.spawn(periodic_poller(name, 60.0, 0.0,
                                         bytes_in=KiB(30)),
                         name, reserve=reserve)
        system.watch_reserve(system.netd.pool, "pool")
        system.run(duration_s)
        series = system.trace.series("pool")
        levels = series.values
        times = series.times
        # first activation = first drop of ~an activation cost
        first = float("nan")
        for i in range(1, len(levels)):
            if levels[i - 1] - levels[i] > 5.0:
                first = float(times[i])
                break
        import numpy as np
        after = levels[np.argmax(levels > 5.0):] if (levels > 5.0).any() \
            else levels
        rows.append(MarginAblationRow(
            margin, first, float(after.min()) if len(after) else 0.0,
            system.radio.activation_count))
    return rows


# -- tick size invariance ------------------------------------------------------------


@dataclass
class TickAblationRow:
    """Scheduler/tap behavior at one tick size."""

    tick_s: float
    duty_cycle: float
    equilibrium_j: float


def tick_size_ablation(
    ticks_s: Tuple[float, ...] = (0.002, 0.01, 0.05),
    duration_s: float = 80.0,
) -> List[TickAblationRow]:
    """Duty cycle (68.5 mW tap on a 137 mW CPU => 50 %) and the
    Figure 6b equilibrium (70 mW / 0.1/s => 700 mJ) across tick sizes.
    """
    from ..core.policy import shared_rate_limit

    rows = []
    for tick in ticks_s:
        system = CinderSystem(tick_s=tick, decay_enabled=False, seed=2)
        reserve = system.powered_reserve(mW(68.5), name="app")
        process = system.spawn(spinner(), "app", reserve=reserve)
        child = shared_rate_limit(system.graph, system.battery_reserve,
                                  mW(70), 0.1, name="bank")
        system.run(duration_s)
        duty = process.thread.cpu_time / duration_s
        rows.append(TickAblationRow(tick, duty, child.reserve.level))
    return rows


# -- CPU billing policy --------------------------------------------------------------


@dataclass
class BillingAblationRow:
    """Over-billing for one workload under one policy."""

    workload: str
    worst_case: bool
    overbilling_fraction: float


def cpu_billing_ablation() -> List[BillingAblationRow]:
    """§4.2: the Dream lacks counters, so Cinder assumes all-memory.

    With counters (Koala/Mantis-style, §8.2) billing tracks truth; the
    ablation quantifies what the worst-case assumption costs each
    workload class.
    """
    rows = []
    for name, mix in (("arithmetic", ARITHMETIC_LOOP),
                      ("memory-stream", MEMORY_STREAM)):
        for worst in (True, False):
            cpu = CpuComponent(CpuPowerParams(assume_worst_case=worst),
                               mix=mix)
            cpu.run(100.0)
            rows.append(BillingAblationRow(name, worst,
                                           cpu.overbilling_fraction))
    return rows


# -- Cinder vs currentcy ----------------------------------------------------------------


@dataclass
class BaselineComparisonResult:
    """Both §2.3 scenarios, both systems."""

    cinder_browser_share: float
    currentcy_browser_share: float
    cinder_first_activation_ok: bool
    currentcy_first_activation_ok: bool


def baseline_comparison(duration_s: float = 90.0) -> BaselineComparisonResult:
    """Quantify what delegation and subdivision buy over currentcy."""
    cinder_plugin = plugin_scenario_cinder()
    eco_plugin = plugin_scenario_currentcy()
    cinder_pool = pooling_scenario_cinder(duration_s=duration_s)
    eco_pool = pooling_scenario_currentcy(duration_s=duration_s)
    return BaselineComparisonResult(
        cinder_browser_share=cinder_plugin.browser_share,
        currentcy_browser_share=eco_plugin.browser_share,
        cinder_first_activation_ok=cinder_pool.activations >= 1,
        currentcy_first_activation_ok=eco_pool.activations >= 1,
    )
