"""Figure 13: uncooperative vs cooperative radio access (§6.4).

Paper: "Two background applications, a pop3 mail and an RSS fetcher,
each poll every sixty seconds.  a) Since they are not coordinated,
their use of the radio is staggered, resulting in increased power
consumption ... b) The same mail and RSS background applications using
reserves and limits to coordinate their access to the radio data path.
Enough energy is allocated to each application to turn the radio on
every two minutes.  By pooling their resources, they are able to turn
the radio on at most every sixty seconds."

Setup: the RSS fetcher starts at t=0, the mail fetcher 15 s later,
both with 60 s poll intervals, for 1201 s (Table 1's span).  In the
cooperative run each app's tap supplies exactly enough to fund a
(margin-inflated) radio activation every two minutes:
``1.25 * 9.5 J / 120 s ~= 99 mW``.  (The paper's Figure 8 caption says
37.5 mW apiece, which cannot fund its own stated "every two minutes"
activation budget of 9.5 J; we keep the *behavioral* spec — see
EXPERIMENTS.md.)

Shape targets: staggered activations roughly double active radio time;
cooperative runs activate once per minute with both apps riding the
same cycle.

Stagger note: the paper says the mail daemon starts 15 s after the RSS
daemon, but its Figure 13a trace shows *non-overlapping* staggered
activations ("neither takes advantage of the other having brought the
radio out of the low power idle state") — impossible with a 15 s
offset under a 20 s idle timeout, where the second poll would always
catch the radio still active.  The uncooperative baseline therefore
defaults to the anti-phase offset (30 s) that matches the paper's
observed trace; pass ``uncoop_offset_s=15.0`` for the literal-text
schedule.  EXPERIMENTS.md discusses the discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..apps.mail import MailConfig, MailStats, mail_fetcher
from ..apps.rss import RssConfig, RssStats, rss_downloader
from ..sim.engine import CinderSystem
from .common import FigureResult, ascii_chart

#: Table 1's experiment length.
EXPERIMENT_SECONDS = 1201.0


@dataclass
class CoopRun:
    """Everything one §6.4 run produces."""

    cooperative: bool
    system: CinderSystem = None  # type: ignore[assignment]
    mail_stats: MailStats = field(default_factory=MailStats)
    rss_stats: RssStats = field(default_factory=RssStats)
    duration_s: float = EXPERIMENT_SECONDS

    # -- Table 1 quantities ---------------------------------------------------------

    @property
    def total_energy_j(self) -> float:
        return self.system.meter.total_energy_joules

    @property
    def active_threshold_w(self) -> float:
        """Samples above this are 'radio active' (baseline + margin)."""
        return self.system.model.idle_watts + 0.1

    @property
    def active_time_s(self) -> float:
        return self.system.meter.time_above(self.active_threshold_w)

    @property
    def active_energy_j(self) -> float:
        return self.system.meter.energy_above(self.active_threshold_w)

    @property
    def activations(self) -> int:
        return self.system.radio.activation_count

    @property
    def polls_completed(self) -> int:
        return self.mail_stats.polls_completed + self.rss_stats.polls_completed

    def power_trace(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.system.meter.samples()


def run_one(cooperative: bool, duration_s: float = EXPERIMENT_SECONDS,
            seed: int = 13, tick_s: float = 0.01,
            mail_offset_s: Optional[float] = None,
            fast_forward: bool = True) -> CoopRun:
    """One §6.4 run: cooperative (netd pooling) or unrestricted.

    ``mail_offset_s`` defaults to 15 s (the paper's text) for the
    cooperative run — pooling makes the offset irrelevant — and to
    30 s for the uncooperative run, matching the non-overlapping
    staggered activations of the paper's Figure 13a trace (see the
    module docstring).
    """
    system = CinderSystem(
        tick_s=tick_s, seed=seed,
        cooperative_netd=cooperative,
        unrestricted_netd=not cooperative,
        fast_forward=fast_forward,
    )
    run = CoopRun(cooperative=cooperative, system=system,
                  duration_s=duration_s)

    if mail_offset_s is None:
        mail_offset_s = 15.0 if cooperative else 30.0
    mail_config = MailConfig(start_offset_s=mail_offset_s)
    rss_config = RssConfig()
    if cooperative:
        # "Enough energy ... to turn the radio on every two minutes."
        per_app_watts = (system.netd.activation_margin
                         * system.radio.params.activation_cost) / 120.0
        mail_reserve = system.powered_reserve(per_app_watts, name="mail")
        rss_reserve = system.powered_reserve(per_app_watts, name="rss")
    else:
        mail_reserve = rss_reserve = None

    system.spawn(mail_fetcher(mail_config, run.mail_stats), "mail",
                 reserve=mail_reserve)
    system.spawn(rss_downloader(rss_config, run.rss_stats), "rss",
                 reserve=rss_reserve)
    system.watch_reserve(system.netd.pool, "netd.pool")
    system.run(duration_s)
    system.meter.flush()
    return run


@dataclass
class Fig13Result(FigureResult):
    """Both runs side by side."""

    uncoop: CoopRun = None  # type: ignore[assignment]
    coop: CoopRun = None    # type: ignore[assignment]


def run(duration_s: float = EXPERIMENT_SECONDS, seed: int = 13,
        tick_s: float = 0.01) -> Fig13Result:
    """Run the Figure 13 pair and compare activation behavior."""
    result = Fig13Result()
    result.uncoop = run_one(False, duration_s, seed, tick_s)
    result.coop = run_one(True, duration_s, seed, tick_s)

    minutes = duration_s / 60.0
    result.add("uncoop activations / min", 2.0,
               result.uncoop.activations / minutes,
               note="staggered: each poll wakes the radio")
    result.add("coop activations / min", 1.0,
               result.coop.activations / minutes,
               note="pooled: both apps ride one cycle")
    result.add("coop active-time reduction", 0.463,
               1.0 - result.coop.active_time_s
               / max(1e-9, result.uncoop.active_time_s),
               note="paper Table 1: 46.3%")
    result.add("work parity (polls coop/uncoop)", 1.0,
               result.coop.polls_completed
               / max(1, result.uncoop.polls_completed),
               note="same work in the same time")
    return result


def render(result: Fig13Result) -> str:
    """Both power traces plus the comparison table."""
    parts = ["Figure 13 - radio access power traces (1201 s)"]
    for label, run_ in (("(a) uncooperative", result.uncoop),
                        ("(b) cooperative", result.coop)):
        times, watts = run_.power_trace()
        parts.append(ascii_chart(times, watts, height=8,
                                 title=f"{label}: system power", unit="W"))
        parts.append(
            f"    activations={run_.activations} "
            f"active={run_.active_time_s:.0f}s "
            f"energy={run_.total_energy_j:.0f}J "
            f"polls={run_.polls_completed}")
    parts.append("")
    parts.append(result.summary())
    return "\n".join(parts)


def main() -> None:  # pragma: no cover - console entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
