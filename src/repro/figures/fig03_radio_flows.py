"""Figure 3: radio data-path energy for 10-second flows.

Paper: "Radio data path power consumption for 10 second flows across
six different packet rates and three packet sizes.  Short flows are
dominated by the 9.5 J baseline cost shown in Figure 4.  For this
simple static test, data rate has only a small effect on the total
energy consumption.  The average cost is 14.3 J (minimum: 10.5,
maximum: 17.6)."

We sweep the same grid against the radio model: rates
{1, 2, 5, 10, 20, 40} pkt/s, sizes {1, 750, 1500} B, 10 s UDP flows
echoed by the server.  Shape targets: activation overhead dominates
(every cell lands within ~±30 % of the mean), energy rises mildly with
rate and size, and the envelope is in the paper's 10–18 J band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..energy.radio_model import RadioPowerParams
from ..net.packets import (FIG3_FLOW_SECONDS, FIG3_PACKET_RATES,
                           FIG3_PACKET_SIZES, echo_flow_grid, grid_summary)
from .common import Comparison, FigureResult, format_table

#: Paper headline numbers.
PAPER_MEAN_J = 14.3
PAPER_MIN_J = 10.5
PAPER_MAX_J = 17.6


@dataclass
class Fig3Result(FigureResult):
    """Grid rows plus summary statistics."""

    rows: List[Tuple[float, int, float]] = field(default_factory=list)
    mean_j: float = 0.0
    min_j: float = 0.0
    max_j: float = 0.0

    def series_for_size(self, size: int) -> Tuple[List[float], List[float]]:
        """One plotted line: (packet rates, joules) for a packet size."""
        rates = [rate for rate, s, _ in self.rows if s == size]
        joules = [e for _, s, e in self.rows if s == size]
        return rates, joules


def run(rates=FIG3_PACKET_RATES, sizes=FIG3_PACKET_SIZES,
        duration_s: float = FIG3_FLOW_SECONDS, seed: int = 1) -> Fig3Result:
    """Evaluate the Figure 3 grid."""
    params = RadioPowerParams()
    rows = echo_flow_grid(params, rates=rates, sizes=sizes,
                          duration_s=duration_s, seed=seed)
    mean_j, min_j, max_j = grid_summary(rows)
    result = Fig3Result(rows=rows, mean_j=mean_j, min_j=min_j, max_j=max_j)
    result.add("average flow energy", PAPER_MEAN_J, mean_j, "J")
    result.add("minimum flow energy", PAPER_MIN_J, min_j, "J")
    result.add("maximum flow energy", PAPER_MAX_J, max_j, "J")
    result.notes.append(
        "activation overhead dominates: max/min = "
        f"{max_j / min_j:.2f}x despite a 60,000x spread in bytes sent")
    return result


def render(result: Fig3Result) -> str:
    """The figure as text: one row per (size, rate) cell."""
    table_rows = [(f"{size} B/pkt", f"{rate:g} pkt/s", f"{energy:.2f} J")
                  for rate, size, energy in sorted(
                      result.rows, key=lambda r: (r[1], r[0]))]
    parts = ["Figure 3 - 10 s flow energy across packet sizes and rates",
             format_table(("packet size", "rate", "energy"), table_rows),
             "", result.summary()]
    return "\n".join(parts)


def main() -> None:  # pragma: no cover - console entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
