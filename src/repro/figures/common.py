"""Shared scaffolding for the figure/table reproductions.

Every ``figures.figNN_*`` module exposes ``run(...) -> <Result>`` and
``render(result) -> str``; this module provides the pieces they share:
paper-vs-measured comparison rows, fixed-width tables, and a terminal
ASCII chart for eyeballing traces without matplotlib (which is not
available offline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured row for EXPERIMENTS.md."""

    metric: str
    paper: float
    measured: float
    unit: str = ""
    note: str = ""

    @property
    def ratio(self) -> float:
        """measured / paper (inf when the paper value is zero)."""
        if self.paper == 0:
            return float("inf")
        return self.measured / self.paper

    def row(self) -> Tuple[str, str, str, str]:
        return (self.metric,
                f"{self.paper:g} {self.unit}".strip(),
                f"{self.measured:.4g} {self.unit}".strip(),
                f"{self.ratio:.2f}x" if np.isfinite(self.ratio) else "-")


def comparison_table(comparisons: Sequence[Comparison]) -> str:
    """Render comparisons as a fixed-width table."""
    rows = [("metric", "paper", "measured", "ratio")]
    rows.extend(c.row() for c in comparisons)
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    lines = []
    for index, row in enumerate(rows):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """A plain fixed-width table."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    all_rows = [list(headers)] + text_rows
    widths = [max(len(row[i]) for row in all_rows)
              for i in range(len(headers))]
    lines = ["  ".join(cell.ljust(widths[i])
                       for i, cell in enumerate(row)).rstrip()
             for row in all_rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def ascii_chart(times: Sequence[float], values: Sequence[float],
                width: int = 72, height: int = 12,
                title: str = "", unit: str = "") -> str:
    """A quick terminal line chart (column maxima, row buckets)."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size == 0:
        return f"{title}: (no data)"
    vmin, vmax = float(values.min()), float(values.max())
    if vmax == vmin:
        vmax = vmin + 1.0
    t0, t1 = float(times.min()), float(times.max())
    span = (t1 - t0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    columns = np.clip(((times - t0) / span * (width - 1)).astype(int),
                      0, width - 1)
    # Plot the max value per column so spikes stay visible.
    col_value = np.full(width, np.nan)
    for column, value in zip(columns, values):
        if np.isnan(col_value[column]) or value > col_value[column]:
            col_value[column] = value
    for column in range(width):
        if np.isnan(col_value[column]):
            continue
        level = (col_value[column] - vmin) / (vmax - vmin)
        row = int(round(level * (height - 1)))
        grid[height - 1 - row][column] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{vmax:.3g} {unit}".rstrip())
    lines.extend("|" + "".join(row) for row in grid)
    lines.append(f"{vmin:.3g} {unit}".rstrip()
                 + f"  [{t0:.0f} .. {t1:.0f} s]")
    return "\n".join(lines)


def window_mean(times: Sequence[float], values: Sequence[float],
                start: float, end: float) -> float:
    """Mean of samples within [start, end)."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    mask = (times >= start) & (times < end)
    if not mask.any():
        return 0.0
    return float(values[mask].mean())


@dataclass
class FigureResult:
    """Base class for figure results: comparisons + free-form notes."""

    comparisons: List[Comparison] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, metric: str, paper: float, measured: float,
            unit: str = "", note: str = "") -> None:
        """Record one paper-vs-measured comparison."""
        self.comparisons.append(Comparison(metric, paper, measured, unit,
                                           note))

    def summary(self) -> str:
        """The comparison table plus notes."""
        parts = [comparison_table(self.comparisons)] if self.comparisons else []
        parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)
