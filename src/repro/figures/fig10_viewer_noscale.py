"""Figure 10: the image viewer *without* energy-aware scaling (§6.2).

Paper: "The same image viewer application as in §5.3, but without
dynamic scaling of image quality.  The line represents energy in the
downloader's reserve while the bars represent the amount of data
downloaded per image."  Every batch downloads full-quality images; the
reserve "runs out soon after the start of each batch ... with the
image transfers stalling until enough energy is available for the
thread to continue, causing a long run time" (~2500 s on the paper's
axis).

The experiment ran on a Lenovo T60p laptop, so the platform model is
:func:`repro.energy.model.laptop_model` (linear network cost, no
activation spike).  The downloader's reserve is fed by a constant tap;
pauses shrink from 40 s by 5 s per batch, so less energy accumulates
before each successive batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..apps.image_viewer import (ViewerConfig, ViewerStats,
                                 image_viewer_downloader)
from ..energy.model import laptop_model
from ..energy.radio_model import RadioPowerParams
from ..net.remote import ImageServer, RemoteHosts
from ..sim.engine import CinderSystem
from ..units import KiB, uJ
from .common import FigureResult, ascii_chart

#: Calibration: tap rate feeding the downloader's reserve, and the
#: per-byte network cost.  Chosen so the non-adaptive run stalls into
#: the paper's ~2500 s regime while the reserve plot spans the same
#: ~0-200,000 uJ axis as Figure 10.
DOWNLOADER_TAP_W = 2.0e-3
PER_BYTE_J = 1.0e-7
#: The §6.2 note: each image ~2.7 MiB on disk; the full interlaced
#: download moves ~700 KiB (the Figure 10 transfer axis).
FULL_IMAGE_BYTES = KiB(700)

PAPER_RUNTIME_S = 2500.0
PAPER_RESERVE_START_J = 0.2


@dataclass
class Fig10Result(FigureResult):
    """Reserve trace, per-image bars, and the headline runtime."""

    stats: ViewerStats = field(default_factory=ViewerStats)
    reserve_times: np.ndarray = field(default_factory=lambda: np.empty(0))
    reserve_levels: np.ndarray = field(default_factory=lambda: np.empty(0))
    runtime_s: float = 0.0
    min_reserve_j: float = 0.0


def build_system(seed: int) -> CinderSystem:
    """A laptop-platform system with the viewer's network cost model."""
    model = laptop_model()
    model.radio = RadioPowerParams(
        activation_joules_mean=0.0, activation_joules_min=0.0,
        activation_joules_max=0.0, idle_timeout_s=0.0, plateau_watts=0.0,
        ramp_extra_watts=0.0, per_packet_joules=0.0,
        per_byte_joules=PER_BYTE_J, throughput_bytes_per_s=60_000,
        jitter_sigma=0.0)
    hosts = RemoteHosts.default()
    hosts.register("images", ImageServer(full_image_bytes=FULL_IMAGE_BYTES))
    return CinderSystem(tick_s=0.01, seed=seed, model=model, hosts=hosts)


def run_viewer(adaptive: bool, seed: int = 10,
               max_s: float = 6000.0) -> Fig10Result:
    """Run the §6.2 experiment with or without adaptation."""
    system = build_system(seed)
    reserve = system.powered_reserve(DOWNLOADER_TAP_W, name="downloader")
    # The paper's plot starts with a charged reserve (~0.2 J).
    system.battery_reserve.transfer_to(reserve, PAPER_RESERVE_START_J)
    system.watch_reserve(reserve, "downloader")

    config = ViewerConfig(adaptive=adaptive,
                          full_image_bytes=FULL_IMAGE_BYTES)
    stats = ViewerStats()
    process = system.spawn(image_viewer_downloader(config, stats),
                           "viewer", reserve=reserve)
    system.run_until(lambda: process.finished, max_s=max_s)

    series = system.trace.series("downloader")
    result = Fig10Result(stats=stats, reserve_times=series.times,
                         reserve_levels=series.values,
                         runtime_s=stats.finished_at,
                         min_reserve_j=series.min_value())
    return result


def run(seed: int = 10) -> Fig10Result:
    """Figure 10: adaptation off."""
    result = run_viewer(adaptive=False, seed=seed)
    result.add("run time", PAPER_RUNTIME_S, result.runtime_s, "s",
               note="stalls dominate")
    result.add("reserve peak level", PAPER_RESERVE_START_J,
               float(result.reserve_levels.max()), "J",
               note="the charged starting level, Fig. 10's y-axis top")
    result.add("reserve reaches empty", 0.0, result.min_reserve_j, "J",
               note="non-adaptive run drains to ~0 (stall)")
    result.add("mean quality", 1.0, result.stats.mean_quality(),
               note="no scaling: every image full quality")
    return result


def render(result: Fig10Result) -> str:
    """Reserve trace plus per-image transfer sizes."""
    times, kib = result.stats.bytes_per_image_series()
    parts = [
        "Figure 10 - reserve level without application scaling",
        ascii_chart(result.reserve_times, result.reserve_levels * 1e6,
                    height=10, title="downloader reserve", unit="uJ"),
        "",
        "per-image downloads (KiB): "
        + ", ".join(f"{k:.0f}" for k in kib[:24])
        + (" ..." if len(kib) > 24 else ""),
        "",
        result.summary(),
    ]
    return "\n".join(parts)


def main() -> None:  # pragma: no cover - console entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
