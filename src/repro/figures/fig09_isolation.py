"""Figure 9: isolation, subdivision and delegation under forking.

Paper: "Stacked graph of Cinder's CPU energy accounting estimates
during isolated process execution.  Process A's energy consumption is
isolated from other processes' energy use despite B's periodic
spawning of child processes (B1 and B2).  The sum of the estimated
power of the individual processes closely matches the measured true
power consumption of the CPU of about 139 mW."

Setup (§6.1): A and B each get ~68 mW taps (half the 137 mW CPU).  At
~5 s B forks B1, at ~10 s B forks B2 — each child fed by a tap from
*B's own reserve* at one quarter of B's rate, so after both forks B
nets half its original power and A is untouched.

Shape targets: A holds ~68 mW throughout; B steps 68 -> 51 -> 34 mW;
B1 and B2 arrive at ~17 mW each; the stacked sum tracks the measured
CPU power (~137-139 mW).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..sim.engine import CinderSystem
from ..sim.process import Process
from ..sim.workload import forking_spinner, spinner
from ..units import mW
from .common import FigureResult, format_table, window_mean

PAPER_CPU_W = 0.137
PAPER_MEASURED_CPU_W = 0.139
PAPER_APP_W = 0.0685
PAPER_CHILD_W = PAPER_APP_W / 4.0


@dataclass
class Fig9Result(FigureResult):
    """Stacked per-process power estimates plus the measured line."""

    #: principal -> (bin times, watts); 1 s bins like the paper's plot.
    series: Dict[str, Tuple[List[float], List[float]]] = field(
        default_factory=dict)
    measured_cpu_w: float = 0.0
    stacked_sum_w: float = 0.0


def run(duration_s: float = 60.0, fork1_s: float = 5.0,
        fork2_s: float = 10.0, seed: int = 9) -> Fig9Result:
    """Run the §6.1 experiment."""
    system = CinderSystem(tick_s=0.01, seed=seed)
    reserve_a = system.powered_reserve(mW(68.5), name="A")
    reserve_b = system.powered_reserve(mW(68.5), name="B")

    def wire_child(child: Process) -> None:
        """B subdivides: child reserve fed at 1/4 of B's rate from B."""
        child_reserve = system.graph.create_reserve(name=child.name)
        system.graph.create_tap(reserve_b, child_reserve, mW(68.5) / 4.0,
                                name=f"{child.name}.in")
        child.thread.set_active_reserve(child_reserve)

    forks = {fork1_s: ("B1", wire_child), fork2_s: ("B2", wire_child)}
    system.spawn(spinner(), "A", reserve=reserve_a)
    system.spawn(forking_spinner(forks), "B", reserve=reserve_b)
    system.run(duration_s)
    system.meter.flush()

    result = Fig9Result()
    principals = ["A", "B", "B1", "B2"]
    result.series = system.ledger.stacked_power_series(
        principals, duration_s, bin_s=1.0)
    result.measured_cpu_w = (system.meter.mean_power_between(0, duration_s)
                             - system.model.idle_watts)
    # steady-state means over the final 30 s (all forks done)
    steady = {p: window_mean(*result.series[p], duration_s - 30.0,
                             duration_s) for p in principals}
    result.stacked_sum_w = sum(steady.values())

    result.add("A steady power", PAPER_APP_W, steady["A"], "W")
    result.add("B steady power (after both forks)", PAPER_APP_W / 2.0,
               steady["B"], "W")
    result.add("B1 steady power", PAPER_CHILD_W, steady["B1"], "W")
    result.add("B2 steady power", PAPER_CHILD_W, steady["B2"], "W")
    result.add("stacked estimate sum", PAPER_CPU_W, result.stacked_sum_w,
               "W")
    result.add("measured CPU power", PAPER_MEASURED_CPU_W,
               result.measured_cpu_w, "W")
    # The isolation claim: A's share before vs after B's forks.
    before = window_mean(*result.series["A"], 0.0, fork1_s)
    result.add("A power before forks", PAPER_APP_W, before, "W",
               note="isolation: unchanged by B's children")
    return result


def render(result: Fig9Result) -> str:
    """Per-second stacked estimates plus the comparison table."""
    rows = []
    times = result.series["A"][0]
    for second in range(0, len(times), 5):
        row = [f"{times[second]:.0f}s"]
        for principal in ("A", "B", "B1", "B2"):
            watts = result.series[principal][1]
            row.append(f"{watts[second] * 1e3:.1f}")
        rows.append(row)
    parts = [
        "Figure 9 - stacked CPU accounting estimates (mW), 5 s cadence",
        format_table(("t", "A", "B", "B1", "B2"), rows),
        "",
        result.summary(),
    ]
    return "\n".join(parts)


def main() -> None:  # pragma: no cover - console entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
