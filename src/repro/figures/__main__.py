"""Regenerate every figure and table: ``python -m repro.figures``."""

from __future__ import annotations

import sys
import time

from . import ALL_FIGURES


def main(argv: list) -> int:
    """Run all artifacts (or those whose label matches an argument)."""
    wanted = [arg.lower() for arg in argv]
    for label, module in ALL_FIGURES:
        if wanted and not any(w in label.lower() for w in wanted):
            continue
        started = time.time()
        result = module.run()
        elapsed = time.time() - started
        print("=" * 72)
        print(f"{label}  ({module.__name__}, {elapsed:.1f}s)")
        print("=" * 72)
        print(module.render(result))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
