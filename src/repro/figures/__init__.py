"""Figure and table reproductions: one module per paper artifact.

Each module exposes ``run(...) -> Result`` and ``render(result) ->
str``; ``python -m repro.figures`` regenerates everything.  The
benchmark harness under ``benchmarks/`` wraps the same ``run``
functions with pytest-benchmark.

Index (see DESIGN.md §4 for workloads and parameters):

========  ==============================================
artifact  module
========  ==============================================
Fig. 3    :mod:`repro.figures.fig03_radio_flows`
Fig. 4    :mod:`repro.figures.fig04_activation`
Fig. 9    :mod:`repro.figures.fig09_isolation`
Fig. 10   :mod:`repro.figures.fig10_viewer_noscale`
Fig. 11   :mod:`repro.figures.fig11_viewer_scale`
Fig. 12   :mod:`repro.figures.fig12_background`
Fig. 13   :mod:`repro.figures.fig13_cooperative`
Fig. 14   :mod:`repro.figures.fig14_netd_reserve`
Table 1   :mod:`repro.figures.table1_summary`
========  ==============================================
"""

from . import (ablations, diagrams, fig03_radio_flows, fig04_activation,
               fig09_isolation, fig10_viewer_noscale, fig11_viewer_scale,
               fig12_background, fig13_cooperative, fig14_netd_reserve,
               table1_summary)
from .common import Comparison, FigureResult, ascii_chart, comparison_table

#: (artifact label, module) in paper order.
ALL_FIGURES = [
    ("Figure 3", fig03_radio_flows),
    ("Figure 4", fig04_activation),
    ("Figure 9", fig09_isolation),
    ("Figure 10", fig10_viewer_noscale),
    ("Figure 11", fig11_viewer_scale),
    ("Figure 12", fig12_background),
    ("Figure 13", fig13_cooperative),
    ("Figure 14", fig14_netd_reserve),
    ("Table 1", table1_summary),
]

__all__ = [
    "ALL_FIGURES", "Comparison", "FigureResult", "ascii_chart",
    "comparison_table", "ablations", "diagrams",
]
