"""Figure 4: the radio activation power trace.

Paper: "Cost of transitioning from the lowest radio power state to
active.  One UDP packet is transmitted approximately every 40 seconds
to enable the radio.  The device fully sleeps after 20 seconds, but
the average plateau consumes an additional 9.5 J of energy over
baseline (minimum 8.8 J, maximum 11.9 J)."

We run the same workload through the full system — a keep-alive
process sending one 1-byte UDP packet every 40 s for 400 s — and
recover per-cycle energies from the simulated Agilent trace exactly as
the paper did: integrate (power - baseline) over each cycle window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..energy.model import DreamPowerModel
from ..sim.engine import CinderSystem
from ..sim.workload import keepalive_sender
from .common import FigureResult, ascii_chart

PAPER_MEAN_J = 9.5
PAPER_MIN_J = 8.8
PAPER_MAX_J = 11.9
PAPER_TIMEOUT_S = 20.0


@dataclass
class Fig4Result(FigureResult):
    """The measured trace plus per-cycle activation energies."""

    times: np.ndarray = field(default_factory=lambda: np.empty(0))
    watts: np.ndarray = field(default_factory=lambda: np.empty(0))
    cycle_energies: List[float] = field(default_factory=list)
    activation_count: int = 0
    mean_cycle_j: float = 0.0


def run(duration_s: float = 400.0, interval_s: float = 40.0,
        seed: int = 4, meter_noise: float = 0.01) -> Fig4Result:
    """Run the keep-alive workload and aggregate the meter trace."""
    system = CinderSystem(tick_s=0.01, seed=seed, meter_noise=meter_noise,
                          unrestricted_netd=True)
    count = int(duration_s // interval_s)
    system.spawn(keepalive_sender(interval_s=interval_s, nbytes=1,
                                  count=count), "keepalive")
    system.run(duration_s)
    system.meter.flush()

    times, watts = system.meter.samples()
    baseline = system.model.idle_watts
    result = Fig4Result(times=times, watts=watts,
                        activation_count=system.radio.activation_count)
    # Per-cycle energy over baseline, integrated over each 40 s window.
    for index in range(count):
        start, end = index * interval_s, (index + 1) * interval_s
        mask = (times > start) & (times <= end)
        over = np.clip(watts[mask] - baseline, 0.0, None)
        result.cycle_energies.append(
            float(over.sum() * system.meter.sample_interval_s))
    result.mean_cycle_j = float(np.mean(result.cycle_energies))

    result.add("mean activation energy", PAPER_MEAN_J,
               result.mean_cycle_j, "J")
    result.add("min activation energy", PAPER_MIN_J,
               float(np.min(result.cycle_energies)), "J")
    result.add("max activation energy", PAPER_MAX_J,
               float(np.max(result.cycle_energies)), "J")
    result.add("activations", count, result.activation_count)
    # The radio spends ~(ramp + timeout) active per cycle; check the
    # 20 s timeout is honored.
    active_per_cycle = (system.radio.total_active_seconds
                        / max(1, result.activation_count))
    result.add("active seconds per cycle",
               PAPER_TIMEOUT_S, active_per_cycle, "s",
               note="timeout + transfer time")
    return result


def render(result: Fig4Result) -> str:
    """The trace chart plus the comparison table."""
    parts = [
        "Figure 4 - radio activation power draw (1 B UDP every 40 s)",
        ascii_chart(result.times, result.watts, title="system power",
                    unit="W"),
        "",
        "per-cycle energy over baseline: "
        + ", ".join(f"{e:.1f} J" for e in result.cycle_energies),
        "",
        result.summary(),
    ]
    return "\n".join(parts)


def main() -> None:  # pragma: no cover - console entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
