"""Energy accounting substrate: the HTC Dream power model (paper §4).

Offline-measured constants (§4.2), the radio's non-linear cost model
(§4.3), a simulated Agilent E3644A meter for "measured" traces, the
physical battery with its coarse ARM9 gauge (§4.1), and the §9
gauge-based model refinement.
"""

from .battery import Battery
from .calibrate import UsageInterval, intervals_from_gauge, refit_from_gauge
from .cpu import (ARITHMETIC_LOOP, MEMORY_STREAM, TYPICAL_APP, CpuComponent,
                  InstructionMix)
from .meter import DEFAULT_SAMPLE_INTERVAL_S, PowerMeter
from .model import (DREAM_BACKLIGHT_W, DREAM_BATTERY_FULL_J, DREAM_BATTERY_J,
                    DREAM_CPU_ARITHMETIC_W, DREAM_CPU_MEMORY_FACTOR,
                    DREAM_CPU_WORST_W, DREAM_IDLE_W, CpuPowerParams,
                    DreamPowerModel, laptop_model)
from .radio_model import RadioPowerParams
from .states import PowerState, PowerStateRegistry

__all__ = [
    "Battery", "UsageInterval", "intervals_from_gauge", "refit_from_gauge",
    "ARITHMETIC_LOOP", "MEMORY_STREAM", "TYPICAL_APP", "CpuComponent",
    "InstructionMix", "DEFAULT_SAMPLE_INTERVAL_S", "PowerMeter",
    "DREAM_BACKLIGHT_W", "DREAM_BATTERY_FULL_J", "DREAM_BATTERY_J",
    "DREAM_CPU_ARITHMETIC_W", "DREAM_CPU_MEMORY_FACTOR", "DREAM_CPU_WORST_W",
    "DREAM_IDLE_W", "CpuPowerParams", "DreamPowerModel", "laptop_model",
    "RadioPowerParams", "PowerState", "PowerStateRegistry",
]
