"""A simulated Agilent E3644A DC power supply.

The paper's ground truth: "All measurements were taken using an
Agilent Technologies E3644A, a DC power supply with a current sense
resistor that can be sampled remotely via an RS-232 interface.  We
sampled both voltage and current approximately every 200 ms, and
aggregated our results from this data" (§4.2).

The simulator feeds this meter the *true* instantaneous system power
each tick; the meter quantizes it into 200 ms samples of voltage and
current (with optional sense-resistor noise), from which experiments
recover energy by aggregation — so figures compare Cinder's model
*estimates* against "measured" power exactly the way the paper does.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError

#: The paper's sampling cadence.
DEFAULT_SAMPLE_INTERVAL_S = 0.2


class PowerMeter:
    """Accumulates true power and emits sampled V/I readings."""

    def __init__(self, sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
                 supply_voltage: float = 3.7,
                 noise_fraction: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if sample_interval_s <= 0:
            raise SimulationError("sample interval must be positive")
        self.sample_interval_s = sample_interval_s
        self.supply_voltage = supply_voltage
        self.noise_fraction = noise_fraction
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # accumulation within the current sample window
        self._window_energy = 0.0
        self._window_time = 0.0
        self._now = 0.0
        # emitted samples (each covers its own window duration; the
        # final flushed sample may cover a partial window)
        self._sample_times: List[float] = []
        self._sample_watts: List[float] = []
        self._sample_windows: List[float] = []
        #: Exact integrated energy (the meter's internal totalizer).
        self.total_energy_joules = 0.0

    # -- feeding -------------------------------------------------------------------

    def feed(self, watts: float, dt: float) -> None:
        """Integrate true power over ``dt`` seconds; emit due samples.

        A fast-forwarded span may cover hours at constant power; the
        scalar one-window-at-a-time loop (kept as
        :meth:`_feed_reference`, the differential-testing oracle)
        would cost thousands of Python iterations.  Whole windows are
        instead emitted in bulk with numpy while reproducing the
        reference bit-for-bit: running times and the energy totalizer
        advance through ``numpy.cumsum`` (sequential, so identical to
        repeated ``+=``), window means repeat one scalar-computed
        value, and noise draws come from one array call, which
        consumes the generator stream exactly like per-emit scalar
        draws.
        """
        if dt < 0:
            raise SimulationError("dt must be non-negative")
        if watts < 0:
            raise SimulationError("negative system power")
        interval = self.sample_interval_s
        remaining = dt
        # Drain a partially-filled window with reference arithmetic.
        while remaining > 0.0 and self._window_time > 0.0:
            remaining = self._feed_one(watts, remaining)
        if remaining <= 0.0:
            return
        estimate = int(remaining / interval)
        if estimate >= 512:
            # Long idle spans (hours of windows): the numpy chain.
            # The reference loop's remainder sequence is repeated
            # ``remaining -= interval``; cumsum reproduces it exactly,
            # and an iteration is a whole window iff the remainder
            # *before* it was >= interval.
            chain = np.empty(estimate + 1)
            chain[0] = remaining
            chain[1:] = -interval
            after = np.cumsum(chain)[1:]
            before = np.empty(estimate)
            before[0] = remaining
            before[1:] = after[:-1]
            whole = int(np.argmin(before >= interval)) \
                if not (before >= interval).all() else estimate
            if whole >= 4:
                self._emit_whole_windows(watts, whole)
                remaining = float(after[whole - 1])
        elif remaining >= interval:
            # Short spans (a fleet macro-step is a handful of 200 ms
            # windows): a fused scalar loop over whole windows — the
            # exact per-window float chain ``_feed_one`` + ``_emit``
            # produce, minus their call and bookkeeping overhead.
            window_energy = watts * interval
            mean = window_energy / interval
            noise = self.noise_fraction
            rng = self._rng
            now = self._now
            total = self.total_energy_joules
            times = self._sample_times
            sample_watts = self._sample_watts
            windows = self._sample_windows
            while remaining >= interval:
                total += window_energy
                now += interval
                remaining -= interval
                mean_watts = mean
                if noise > 0.0:
                    mean_watts *= 1.0 + rng.normal(0.0, noise)
                    mean_watts = max(0.0, mean_watts)
                times.append(now)
                sample_watts.append(mean_watts)
                windows.append(interval)
            self._now = now
            self.total_energy_joules = total
        # Tail (plus any sub-window feed): the reference loop.
        while remaining > 0.0:
            remaining = self._feed_one(watts, remaining)

    def feed_cohort(self, followers: List["PowerMeter"], watts: float,
                    dt: float) -> None:
        """Feed one constant-power span to this meter and ``followers``.

        Fleet schedulers call this when a whole commit cohort shares
        the same ``(watts, dt)`` and every meter is *phase-aligned*:
        identical ``sample_interval_s``, ``noise_fraction == 0`` and
        identical ``(_window_time, _window_energy, _now)``.  Under
        those guards every meter's :meth:`feed` would emit the same
        sample block and apply the same totalizer increment sequence
        — only the starting totalizer differs — so the lead meter runs
        the ordinary :meth:`feed` once and each follower extends its
        sample arrays with the shared block and replays the exact
        increment chain from its own total.  Bit-identical to feeding
        each meter individually; callers must fall back to that when
        any guard fails (noise draws consume per-meter rng streams).
        """
        mark = len(self._sample_times)
        interval = self.sample_interval_s
        t0 = self._window_time
        self.feed(watts, dt)
        times = self._sample_times[mark:]
        sample_watts = self._sample_watts[mark:]
        windows = self._sample_windows[mark:]
        # The exact totalizer increments feed() applied, re-derived
        # through the same float chain (each branch of feed() adds
        # watts * step per reference iteration and watts * interval
        # per whole window — including the cumsum bulk path, which is
        # bit-identical to the repeated scalar chain by construction).
        incs: List[float] = []
        remaining = dt
        if remaining > 0.0 and t0 > 0.0:
            step = min(remaining, interval - t0)
            incs.append(watts * step)
            remaining -= step
        while remaining >= interval:
            incs.append(watts * interval)
            remaining -= interval
        if remaining > 0.0:
            incs.append(watts * remaining)
        window_time = self._window_time
        window_energy = self._window_energy
        now = self._now
        for meter in followers:
            meter._sample_times.extend(times)
            meter._sample_watts.extend(sample_watts)
            meter._sample_windows.extend(windows)
            total = meter.total_energy_joules
            for inc in incs:
                total += inc
            meter.total_energy_joules = total
            meter._window_time = window_time
            meter._window_energy = window_energy
            meter._now = now

    def _feed_one(self, watts: float, remaining: float) -> float:
        """One reference iteration; returns the remaining time."""
        room = self.sample_interval_s - self._window_time
        step = min(remaining, room)
        self._window_energy += watts * step
        self._window_time += step
        self.total_energy_joules += watts * step
        self._now += step
        remaining -= step
        if self._window_time >= self.sample_interval_s - 1e-12:
            self._emit()
        return remaining

    def _feed_reference(self, watts: float, dt: float) -> None:
        """The original scalar loop (kept as the differential oracle)."""
        if dt < 0:
            raise SimulationError("dt must be non-negative")
        if watts < 0:
            raise SimulationError("negative system power")
        remaining = dt
        while remaining > 0.0:
            remaining = self._feed_one(watts, remaining)

    def _emit_whole_windows(self, watts: float, count: int) -> None:
        """Bulk-emit ``count`` whole windows at constant ``watts``.

        Entered only with an empty accumulation window, so every
        window repeats the same scalar arithmetic the reference loop
        would perform: energy ``watts * interval``, duration exactly
        one interval, mean ``(watts * interval) / interval``.
        """
        interval = self.sample_interval_s
        window_energy = watts * interval
        mean = window_energy / interval
        # Running chains, sequential through cumsum (element 0 seeds
        # the chain with the current scalar value).
        chain = np.empty(count + 1)
        chain[0] = self._now
        chain[1:] = interval
        times = np.cumsum(chain)[1:]
        self._now = float(times[-1])
        chain[0] = self.total_energy_joules
        chain[1:] = window_energy
        self.total_energy_joules = float(np.cumsum(chain)[-1])
        if self.noise_fraction > 0.0:
            draws = self._rng.normal(0.0, self.noise_fraction, count)
            means = np.maximum(0.0, mean * (1.0 + draws))
        else:
            means = np.full(count, mean)
        self._sample_times.extend(times.tolist())
        self._sample_watts.extend(means.tolist())
        self._sample_windows.extend([interval] * count)

    def _emit(self) -> None:
        mean_watts = self._window_energy / self._window_time
        if self.noise_fraction > 0.0:
            mean_watts *= 1.0 + self._rng.normal(0.0, self.noise_fraction)
            mean_watts = max(0.0, mean_watts)
        self._sample_times.append(self._now)
        self._sample_watts.append(mean_watts)
        self._sample_windows.append(self._window_time)
        self._window_energy = 0.0
        self._window_time = 0.0

    def flush(self) -> None:
        """Emit a final partial sample (end of experiment).

        Sub-nanosecond residue from float accumulation is discarded
        rather than emitted as a bogus duplicate sample.
        """
        if self._window_time > 1e-9:
            self._emit()
        else:
            self._window_energy = 0.0
            self._window_time = 0.0

    # -- readings --------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Meter-local time (seconds of power fed so far)."""
        return self._now

    @property
    def sample_count(self) -> int:
        """Emitted samples so far, without materializing the arrays
        (:meth:`samples` copies the whole history — too heavy for the
        per-barrier checkpoint digests that only need the count)."""
        return len(self._sample_times)

    def samples(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, watts) arrays of emitted samples."""
        return (np.asarray(self._sample_times, dtype=float),
                np.asarray(self._sample_watts, dtype=float))

    def voltage_current_samples(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, volts, amps) — the raw channels the Agilent reports."""
        times, watts = self.samples()
        volts = np.full_like(watts, self.supply_voltage)
        amps = np.divide(watts, volts, out=np.zeros_like(watts),
                         where=volts > 0)
        return times, volts, amps

    # -- aggregation (how the paper reduces its data) ------------------------------------

    def energy_between(self, start: float, end: float) -> float:
        """Trapezoid-free energy estimate from samples in [start, end).

        Each 200 ms sample is a window mean, so summing
        ``watts * interval`` is exact up to window boundaries.
        """
        if end < start:
            raise SimulationError("end before start")
        times, watts = self.samples()
        total = 0.0
        for time, power, window in zip(times, watts,
                                       self._sample_windows):
            window_start = time - window
            overlap = min(end, time) - max(start, window_start)
            if overlap > 0:
                total += power * overlap
        return total

    def mean_power_between(self, start: float, end: float) -> float:
        """Average measured power over [start, end)."""
        if end <= start:
            return 0.0
        return self.energy_between(start, end) / (end - start)

    def time_above(self, threshold_watts: float) -> float:
        """Seconds of samples whose mean exceeded ``threshold_watts``.

        Used to compute Table 1's "Active Time" from the measured
        trace (active = baseline + radio plateau present).
        """
        _, watts = self.samples()
        windows = np.asarray(self._sample_windows, dtype=float)
        return float(windows[watts > threshold_watts].sum())

    def energy_above(self, threshold_watts: float) -> float:
        """Energy within samples above the threshold (Table 1's
        "Active Energy")."""
        _, watts = self.samples()
        windows = np.asarray(self._sample_windows, dtype=float)
        mask = watts > threshold_watts
        return float((watts[mask] * windows[mask]).sum())
