"""Model refinement from the coarse battery gauge (paper §9).

"Using the HTC Dream's limited battery level information Cinder could
adapt its energy model based on past component and application usage,
dynamically refining its costs."

Given (a) the ARM9's 0–100 gauge history and (b) the per-component
state durations Cinder already tracks (§4.2), we re-fit the
per-component power increments by least squares: each gauge step of
1 % corresponds to ``capacity / 100`` joules drained, and the drain
over an interval is ``baseline * dt + sum_i watts_i * busy_i``.  With
enough intervals of varied component activity the system of equations
is overdetermined and :func:`numpy.linalg.lstsq` recovers the watts.

This is deliberately the *simple* version the paper gestures at —
"evaluating the complex and dynamic system this would yield will
require additional research".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import EnergyError


@dataclass(frozen=True)
class UsageInterval:
    """One observation window: wall time plus component busy seconds."""

    duration_s: float
    busy_seconds: Dict[str, float]
    #: Joules drained over the window (from gauge deltas).
    drained_joules: float


def intervals_from_gauge(
    gauge_history: Sequence[Tuple[float, int]],
    capacity_joules: float,
    busy_log: Sequence[Tuple[float, Dict[str, float]]],
) -> List[UsageInterval]:
    """Pair gauge steps with cumulative component busy-time logs.

    ``busy_log`` holds (time, {component: cumulative busy seconds})
    snapshots taken at the same instants as the gauge samples.
    """
    if len(gauge_history) != len(busy_log):
        raise EnergyError("gauge history and busy log must align")
    joules_per_percent = capacity_joules / 100.0
    intervals: List[UsageInterval] = []
    for (t0, g0), (t1, g1), (_, b0), (_, b1) in zip(
            gauge_history, gauge_history[1:], busy_log, busy_log[1:]):
        if t1 <= t0:
            raise EnergyError("gauge samples must be strictly ordered")
        drained = (g0 - g1) * joules_per_percent
        busy = {component: b1.get(component, 0.0) - b0.get(component, 0.0)
                for component in set(b0) | set(b1)}
        intervals.append(UsageInterval(t1 - t0, busy, max(0.0, drained)))
    return intervals


def refit_from_gauge(intervals: Sequence[UsageInterval],
                     components: Sequence[str]
                     ) -> Tuple[float, Dict[str, float]]:
    """Least-squares re-fit of (baseline watts, per-component watts).

    Returns ``(baseline, {component: watts})``.  Negative solutions are
    clamped to zero — a fit artifact of coarse gauges, not physics.
    """
    if not intervals:
        raise EnergyError("need at least one interval")
    rows = []
    targets = []
    for interval in intervals:
        row = [interval.duration_s]
        row.extend(interval.busy_seconds.get(c, 0.0) for c in components)
        rows.append(row)
        targets.append(interval.drained_joules)
    matrix = np.asarray(rows, dtype=float)
    vector = np.asarray(targets, dtype=float)
    solution, *_ = np.linalg.lstsq(matrix, vector, rcond=None)
    baseline = max(0.0, float(solution[0]))
    watts = {component: max(0.0, float(value))
             for component, value in zip(components, solution[1:])}
    return baseline, watts
