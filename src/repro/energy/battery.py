"""Battery model: physical charge state and the coarse ARM9 gauge.

Two views of the same battery, deliberately kept distinct:

* the **root reserve** of the resource graph — the *logical* energy
  budget Cinder subdivides among applications (paper §3.4);
* the **physical charge**, drained by everything the meter sees
  (baseline idle draw included), exposed only as "an integer from 0 to
  100" because the closed ARM9 owns the battery sensors (§4.1).

Keeping them separate mirrors the platform reality the paper works
around: Cinder budgets with its model while the hardware reports a
coarse gauge, and §9's future work is exactly reconciling the two —
see :meth:`Battery.gauge_history` and
:func:`repro.energy.calibrate.refit_from_gauge`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import EnergyError, HardwareError
from .model import DREAM_BATTERY_FULL_J


class Battery:
    """Physical battery with a coarse percentage gauge."""

    def __init__(self, capacity_joules: float = DREAM_BATTERY_FULL_J,
                 charge_joules: Optional[float] = None) -> None:
        if capacity_joules <= 0:
            raise EnergyError("battery capacity must be positive")
        self.capacity_joules = float(capacity_joules)
        self._charge = (self.capacity_joules if charge_joules is None
                        else float(charge_joules))
        if not 0.0 <= self._charge <= self.capacity_joules:
            raise EnergyError("charge must lie within [0, capacity]")
        self._gauge_history: List[Tuple[float, int]] = []

    # -- physical state ----------------------------------------------------------

    @property
    def charge_joules(self) -> float:
        """Remaining physical energy."""
        return self._charge

    @property
    def empty(self) -> bool:
        """True when fully drained."""
        return self._charge <= 0.0

    def drain(self, joules: float) -> float:
        """Remove energy (clamped at empty); returns amount removed."""
        if joules < 0:
            raise EnergyError("cannot drain a negative amount")
        removed = min(joules, self._charge)
        self._charge -= removed
        return removed

    def charge(self, joules: float) -> float:
        """Add energy (clamped at capacity); returns amount added."""
        if joules < 0:
            raise EnergyError("cannot charge a negative amount")
        added = min(joules, self.capacity_joules - self._charge)
        self._charge += added
        return added

    # -- the ARM9's interface (§4.1) -----------------------------------------------

    def gauge(self) -> int:
        """The only reading the closed ARM9 exposes: an int in 0..100."""
        fraction = self._charge / self.capacity_joules
        return max(0, min(100, int(round(fraction * 100))))

    def record_gauge(self, time_s: float) -> int:
        """Sample the gauge, keeping a history for model refinement (§9)."""
        reading = self.gauge()
        if self._gauge_history and time_s < self._gauge_history[-1][0]:
            raise HardwareError("gauge samples must be time-ordered")
        self._gauge_history.append((time_s, reading))
        return reading

    def gauge_history(self) -> List[Tuple[float, int]]:
        """(time, percent) samples recorded so far (copy)."""
        return list(self._gauge_history)
