"""CPU component model (paper §4.2).

The Dream's ARM11 "lacks a floating point unit, leaving us with only
integer, control flow, and memory instructions", and has no
performance counters, so Cinder bills the worst case.  This module
models the gap between *billed* and *true* CPU power for experiments
that compare model estimates against the meter (Fig. 9's dotted line
sits slightly below the 137 mW billing when the workload is not
purely memory-bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HardwareError
from .model import CpuPowerParams


#: The instruction classes the ARM11 offers (no FPU).
INSTRUCTION_CLASSES = ("integer", "control", "memory")


@dataclass(frozen=True)
class InstructionMix:
    """Fractions of each instruction class in a workload."""

    integer: float = 1.0
    control: float = 0.0
    memory: float = 0.0

    def __post_init__(self) -> None:
        total = self.integer + self.control + self.memory
        if any(f < 0 for f in (self.integer, self.control, self.memory)):
            raise HardwareError("instruction fractions must be non-negative")
        if abs(total - 1.0) > 1e-9:
            raise HardwareError(f"instruction mix sums to {total}, not 1")


#: Canned mixes used by workloads and tests.
ARITHMETIC_LOOP = InstructionMix(integer=0.9, control=0.1, memory=0.0)
MEMORY_STREAM = InstructionMix(integer=0.1, control=0.1, memory=0.8)
TYPICAL_APP = InstructionMix(integer=0.5, control=0.2, memory=0.3)


class CpuComponent:
    """True-power CPU model with busy-time accounting."""

    def __init__(self, params: CpuPowerParams = CpuPowerParams(),
                 mix: InstructionMix = TYPICAL_APP) -> None:
        self.params = params
        self.mix = mix
        self.busy_seconds = 0.0
        self.idle_seconds = 0.0
        self.true_energy_joules = 0.0
        self.billed_energy_joules = 0.0

    def true_watts(self) -> float:
        """Actual increment for the current instruction mix.

        Memory instructions scale the arithmetic-loop power by the
        measured 13 %; integer/control draw the base amount.
        """
        scale = 1.0 + (self.params.memory_factor - 1.0) * self.mix.memory
        return self.params.arithmetic_watts * scale

    def billed_watts(self) -> float:
        """What Cinder charges (worst case unless counters exist)."""
        return self.params.active_watts(self.mix.memory)

    def run(self, dt: float) -> float:
        """Account ``dt`` busy seconds; returns true energy used."""
        if dt < 0:
            raise HardwareError("dt must be non-negative")
        self.busy_seconds += dt
        true = self.true_watts() * dt
        self.true_energy_joules += true
        self.billed_energy_joules += self.billed_watts() * dt
        return true

    def idle(self, dt: float) -> None:
        """Account ``dt`` idle seconds (no increment over baseline)."""
        if dt < 0:
            raise HardwareError("dt must be non-negative")
        self.idle_seconds += dt

    @property
    def overbilling_fraction(self) -> float:
        """How far billing exceeds truth (0 when the mix is all-memory)."""
        if self.true_energy_joules == 0.0:
            return 0.0
        return (self.billed_energy_joules / self.true_energy_joules) - 1.0
