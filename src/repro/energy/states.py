"""Component power-state registry.

The paper's energy model (§4.2) "uses device states and their duration
to estimate energy consumption" — the standard offline-measurement
technique of ECOSystem, PowerScope and Quanto.  This registry is the
lookup table such a model compiles to: ``(component, state) -> watts``.

The watts stored here are *increments over the platform baseline*, the
way the paper reports them ("spinning the CPU increases consumption by
137 mW"), so summing the active increments plus the baseline gives the
system draw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..errors import HardwareError


@dataclass(frozen=True)
class PowerState:
    """One row of the offline-measured model."""

    component: str
    state: str
    watts: float

    def key(self) -> Tuple[str, str]:
        return (self.component, self.state)


class PowerStateRegistry:
    """The compiled device-state power model."""

    def __init__(self, baseline_watts: float = 0.0) -> None:
        if baseline_watts < 0:
            raise HardwareError("baseline power must be non-negative")
        #: Platform draw with every component in its lowest state.
        self.baseline_watts = baseline_watts
        self._states: Dict[Tuple[str, str], PowerState] = {}

    def register(self, component: str, state: str, watts: float) -> PowerState:
        """Add or replace one (component, state) measurement."""
        if watts < 0:
            raise HardwareError(
                f"negative increment for {component}/{state}")
        row = PowerState(component, state, watts)
        self._states[row.key()] = row
        return row

    def power(self, component: str, state: str) -> float:
        """The increment over baseline for ``component`` in ``state``."""
        try:
            return self._states[(component, state)].watts
        except KeyError:
            raise HardwareError(
                f"no measurement for {component!r} in state {state!r}")

    def has(self, component: str, state: str) -> bool:
        """True if the pair has been measured."""
        return (component, state) in self._states

    def components(self) -> List[str]:
        """Component names present, sorted."""
        return sorted({component for component, _ in self._states})

    def states_of(self, component: str) -> List[str]:
        """State names measured for ``component``, sorted."""
        return sorted(state for comp, state in self._states
                      if comp == component)

    def system_power(self, active: Dict[str, str]) -> float:
        """Baseline plus the increments of each component's state.

        ``active`` maps component -> current state; unmentioned
        components contribute nothing (their low state is the
        baseline).
        """
        return self.baseline_watts + sum(
            self.power(component, state) for component, state in active.items())

    def estimate_energy(self, intervals: Iterable[Tuple[str, str, float]],
                        include_baseline_for: float = 0.0) -> float:
        """Integrate the model over (component, state, seconds) tuples.

        ``include_baseline_for`` adds baseline draw for that many
        seconds — the caller decides the wall-clock span since
        component intervals may overlap.
        """
        total = self.baseline_watts * include_baseline_for
        for component, state, seconds in intervals:
            if seconds < 0:
                raise HardwareError("negative interval duration")
            total += self.power(component, state) * seconds
        return total
