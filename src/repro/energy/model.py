"""The HTC Dream power model (paper §4.2–§4.3).

Measured constants, quoted from the paper:

* "While idling in Cinder, the Dream uses about **699 mW** and another
  **555 mW** when the backlight is on."
* "Spinning the CPU increases consumption by **137 mW**."
* "Memory-intensive instruction streams increase CPU power draw by
  **13 %** over a simple arithmetic loop" — but the Dream has no
  counters to observe the mix, so the model "assumes the worst case
  power draw (all memory intensive operations)".
* Radio: a single activation cycle "consumes an additional **9.5 J**
  of energy over baseline (minimum 8.8 J, maximum 11.9 J)" and the
  device "fully sleeps after **20 seconds**" of inactivity (§4.3).

Derived values: the activation plateau's mean extra draw is
9.5 J / 20 s = 475 mW, which also reconciles Table 1 (1064 J over
949 active seconds ≈ 1.12 W ≈ 699 mW baseline + radio).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import mW
from .radio_model import RadioPowerParams
from .states import PowerStateRegistry

# -- §4.2 constants ------------------------------------------------------------

#: System draw with screen off, CPU idle, radio asleep.
DREAM_IDLE_W = mW(699)
#: Additional draw with the backlight on.
DREAM_BACKLIGHT_W = mW(555)
#: Additional draw while the CPU executes (simple arithmetic loop).
DREAM_CPU_ARITHMETIC_W = mW(137)
#: Memory-bound streams draw 13 % more than the arithmetic loop.
DREAM_CPU_MEMORY_FACTOR = 1.13
#: Worst-case CPU increment — what Cinder's model charges (§4.2).
DREAM_CPU_WORST_W = DREAM_CPU_ARITHMETIC_W * DREAM_CPU_MEMORY_FACTOR

#: The Figure 1 example battery (15 kJ).
DREAM_BATTERY_J = 15_000.0
#: A full HTC Dream battery (1150 mAh @ 3.7 V nominal ~ 15.3 kJ); the
#: examples' 15 kJ round number is deliberately close.
DREAM_BATTERY_FULL_J = 15_300.0

#: Nominal supply voltage used to derive current readings on the meter.
DREAM_SUPPLY_VOLTAGE = 3.7


@dataclass(frozen=True)
class CpuPowerParams:
    """CPU model knobs (§4.2)."""

    arithmetic_watts: float = DREAM_CPU_ARITHMETIC_W
    memory_factor: float = DREAM_CPU_MEMORY_FACTOR
    #: The Dream cannot observe the instruction mix, so Cinder assumes
    #: every instruction is memory-intensive.
    assume_worst_case: bool = True

    def active_watts(self, memory_fraction: float = 1.0) -> float:
        """Increment for a CPU running a given memory-op fraction.

        With ``assume_worst_case`` the fraction is ignored and the
        worst case billed — exactly the paper's accounting choice.
        """
        if self.assume_worst_case:
            memory_fraction = 1.0
        memory_fraction = min(1.0, max(0.0, memory_fraction))
        scale = 1.0 + (self.memory_factor - 1.0) * memory_fraction
        return self.arithmetic_watts * scale


@dataclass
class DreamPowerModel:
    """The full platform model used by the simulator and the figures."""

    idle_watts: float = DREAM_IDLE_W
    backlight_watts: float = DREAM_BACKLIGHT_W
    cpu: CpuPowerParams = field(default_factory=CpuPowerParams)
    radio: RadioPowerParams = field(default_factory=RadioPowerParams)
    supply_voltage: float = DREAM_SUPPLY_VOLTAGE

    @property
    def cpu_active_watts(self) -> float:
        """The increment the scheduler bills per busy quantum.

        §6.1 bills "running the CPU" at 137 mW — the measured spinning
        cost.  The worst-case all-memory figure (+13 %) is available
        as :attr:`cpu_worst_watts` for the instruction-mix ablation.
        """
        return self.cpu.arithmetic_watts

    @property
    def cpu_worst_watts(self) -> float:
        """The all-memory worst case Cinder would bill without counters."""
        return self.cpu.active_watts()

    def registry(self) -> PowerStateRegistry:
        """Compile into a (component, state) -> watts registry."""
        registry = PowerStateRegistry(baseline_watts=self.idle_watts)
        registry.register("cpu", "idle", 0.0)
        registry.register("cpu", "active", self.cpu_active_watts)
        registry.register("cpu", "active-arith", self.cpu.arithmetic_watts)
        registry.register("backlight", "off", 0.0)
        registry.register("backlight", "on", self.backlight_watts)
        registry.register("radio", "idle", 0.0)
        registry.register("radio", "ramp", self.radio.ramp_extra_watts)
        registry.register("radio", "active", self.radio.plateau_watts)
        return registry

    def system_power(self, cpu_busy: bool = False, backlight_on: bool = False,
                     radio_watts: float = 0.0) -> float:
        """Instantaneous system draw for a simple state combination."""
        power = self.idle_watts
        if cpu_busy:
            power += self.cpu_active_watts
        if backlight_on:
            power += self.backlight_watts
        return power + radio_watts


def laptop_model() -> "DreamPowerModel":
    """The Lenovo T60p stand-in used for the §6.2 image viewer runs.

    The paper ran the image-viewer experiment on a laptop, where the
    network interface has a *linear* cost (no dominant activation
    spike) — the viewer experiment is about reserve-level adaptation,
    not radio non-linearity.  We model that by zeroing the radio's
    fixed costs and leaving a per-byte marginal cost.
    """
    radio = RadioPowerParams(
        activation_joules_mean=0.0,
        activation_joules_min=0.0,
        activation_joules_max=0.0,
        idle_timeout_s=0.0,
        plateau_watts=0.0,
        ramp_extra_watts=0.0,
        per_packet_joules=0.0,
        # WiFi-class marginal transfer energy, dominant term for the viewer.
        per_byte_joules=20e-9,
        throughput_bytes_per_s=2_000_000,
    )
    return DreamPowerModel(
        idle_watts=18.0,       # T60p idle, screen on
        backlight_watts=0.0,   # folded into idle for the laptop
        radio=radio,
    )
