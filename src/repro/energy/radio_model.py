"""Radio energy model (paper §4.3, Figures 3 and 4).

The HTC Dream's radio has the most non-linear power profile on the
platform: "small isolated transfers are about 1000 times more
expensive, per byte, than large transfers", because transmitting from
idle commits the device to a full activation cycle — the closed ARM9
keeps the radio awake for a fixed, non-configurable 20 s after the
last packet, and the whole cycle costs ≈9.5 J over baseline (8.8 min,
11.9 max).  "With this workload, it costs 9.5 joules to send a single
byte!"

Cost semantics netd relies on (§5.5.2):

* radio idle → the next send pays a *full cycle*:
  ``plateau_watts × idle_timeout``  (≈ 9.5 J);
* radio active, last activity ``a`` seconds ago → a send now extends
  the active period by exactly ``a`` seconds, so the marginal cost is
  ``plateau_watts × a`` — back-to-back traffic is nearly free, and
  letting the radio almost sleep before transmitting is nearly as
  expensive as a fresh activation.

Marginal per-packet/per-byte costs are small; their values here are
fitted so the Figure 3 grid (rates 1–40 pkt/s, sizes 1–1500 B, 10 s
flows) spans roughly the paper's 10.5–17.6 J envelope around a
14.3 J mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import EnergyError


@dataclass(frozen=True)
class RadioPowerParams:
    """Calibrated radio constants (HTC Dream defaults)."""

    #: Mean energy over baseline of one minimal activation cycle (§4.3).
    activation_joules_mean: float = 9.5
    activation_joules_min: float = 8.8
    activation_joules_max: float = 11.9
    #: The ARM9's fixed inactivity timeout; Cinder cannot change it.
    idle_timeout_s: float = 20.0
    #: Extra draw while the radio is in its active plateau.
    #: 9.5 J / 20 s = 475 mW keeps a minimal cycle at the measured cost.
    plateau_watts: float = 0.475
    #: Brief extra draw at the start of a cycle (the Fig. 4 spike); its
    #: energy is part of the cycle budget, not additional to it.
    ramp_extra_watts: float = 0.9
    ramp_duration_s: float = 1.0
    #: Marginal cost per transmitted/received packet.
    per_packet_joules: float = 1.0e-3
    #: Marginal cost per transmitted/received byte.
    per_byte_joules: float = 1.5e-6
    #: Sustained EDGE-class goodput for transfer-time modeling.
    throughput_bytes_per_s: float = 30_000.0
    #: Std-dev of the per-cycle cost multiplier (truncated to keep
    #: cycle energy within [min, max]); Fig. 4's "outliers ... occur
    #: unpredictably".
    jitter_sigma: float = 0.12

    def __post_init__(self) -> None:
        if self.activation_joules_min > self.activation_joules_max:
            raise EnergyError("activation min exceeds max")
        if self.idle_timeout_s < 0 or self.plateau_watts < 0:
            raise EnergyError("radio parameters must be non-negative")

    # -- cost estimation (what netd charges; §5.5.2) -------------------------

    @property
    def activation_cost(self) -> float:
        """Expected cost of waking the radio from idle (one full cycle)."""
        return self.activation_joules_mean

    def marginal_active_cost(self, seconds_since_activity: float) -> float:
        """Cost of sending now while the radio is already active.

        Equals the active-period extension: transmit 1 s after the
        last packet and you extend the cycle by 1 s; wait 15 s and the
        same packet costs 15 s of plateau power.
        """
        if seconds_since_activity < 0:
            raise EnergyError("seconds_since_activity must be >= 0")
        extension = min(seconds_since_activity, self.idle_timeout_s)
        return self.plateau_watts * extension

    def send_cost(self, nbytes: int, npackets: int = 1,
                  seconds_since_activity: Optional[float] = None) -> float:
        """Total billed cost of a send: state cost + marginal data cost.

        ``seconds_since_activity`` of ``None`` means the radio is idle
        (full activation); otherwise the extension rule applies.
        """
        if seconds_since_activity is None:
            state_cost = self.activation_cost
        else:
            state_cost = self.marginal_active_cost(seconds_since_activity)
        return (state_cost
                + self.per_packet_joules * max(0, npackets)
                + self.per_byte_joules * max(0, nbytes))

    def transfer_seconds(self, nbytes: int) -> float:
        """Wall-clock time to move ``nbytes`` at sustained goodput."""
        if self.throughput_bytes_per_s <= 0:
            return 0.0
        return nbytes / self.throughput_bytes_per_s

    # -- cycle synthesis (what the device actually draws) ----------------------

    def sample_cycle_jitter(self, rng: np.random.Generator) -> float:
        """Multiplier on plateau power for one activation cycle.

        Cycle costs vary between 8.8 and 11.9 J around the 9.5 J mean
        ("outliers, such as the penultimate transition, occur
        unpredictably" — Fig. 4).  We draw a truncated normal over the
        measured range, expressed as a plateau-power multiplier.
        """
        for _ in range(16):
            sample = rng.normal(1.0, self.jitter_sigma)
            joules = sample * self.activation_joules_mean
            if self.activation_joules_min <= joules <= self.activation_joules_max:
                return sample
        return 1.0

    def flow_energy(self, packets_per_s: float, bytes_per_packet: int,
                    duration_s: float,
                    rng: Optional[np.random.Generator] = None) -> float:
        """Energy over baseline of one isolated flow (the Fig. 3 quantity).

        The radio activates at flow start, stays active through the
        flow, then rides the timeout back to sleep:
        ``plateau × (duration + timeout) + marginal data costs``.
        """
        if packets_per_s < 0 or duration_s < 0:
            raise EnergyError("flow parameters must be non-negative")
        jitter = 1.0 if rng is None else self.sample_cycle_jitter(rng)
        npackets = packets_per_s * duration_s
        nbytes = npackets * bytes_per_packet
        plateau = self.plateau_watts * jitter * (duration_s + self.idle_timeout_s)
        return (plateau
                + self.per_packet_joules * npackets
                + self.per_byte_joules * nbytes)
