"""Baseline systems the paper compares against.

ECOSystem's *currentcy* (§2.1/§2.3/§8.1): flat per-application energy
accounts without delegation or subdivision.  Implemented so the
comparison experiments can show concretely where Cinder's reserves and
taps win.
"""

from .comparison import (PluginScenarioResult, PoolingScenarioResult,
                         plugin_scenario_cinder, plugin_scenario_currentcy,
                         pooling_scenario_cinder,
                         pooling_scenario_currentcy)
from .currentcy import CurrentcyAccount, CurrentcyManager

__all__ = [
    "PluginScenarioResult", "PoolingScenarioResult",
    "plugin_scenario_cinder", "plugin_scenario_currentcy",
    "pooling_scenario_cinder", "pooling_scenario_currentcy",
    "CurrentcyAccount", "CurrentcyManager",
]
