"""Head-to-head: Cinder's reserves/taps vs the currentcy baseline.

Two scenarios straight from the paper's motivation (§2.2/§2.3):

1. **Plugin protection** (subdivision + isolation).  A browser hosts a
   greedy plugin.  Under Cinder the browser subdivides: the plugin's
   reserve is fed by a low-rate tap and the browser keeps the rest.
   Under currentcy the plugin *shares the browser's account* ("child
   processes share the resources of their parent"), so a greedy plugin
   starves the browser's own rendering.

2. **Radio pooling** (delegation).  Two daemons each earn half the
   radio's activation cost per poll period.  Under Cinder they pool
   through netd and the radio turns on every period.  Under currentcy
   accounts cannot combine balances, so neither ever affords an
   activation alone (until ~two periods' worth accumulates — half the
   service rate at the same total income).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReserveEmptyError
from .currentcy import CurrentcyManager

#: Scenario constants (scaled-down versions of the paper's numbers).
CPU_WATTS = 0.137
ACTIVATION_J = 9.5


@dataclass
class PluginScenarioResult:
    """Outcome of the plugin-protection scenario for one system."""

    system: str
    browser_work_joules: float
    plugin_work_joules: float

    @property
    def browser_share(self) -> float:
        total = self.browser_work_joules + self.plugin_work_joules
        if total == 0:
            return 0.0
        return self.browser_work_joules / total


def plugin_scenario_cinder(duration_s: float = 60.0,
                           browser_watts: float = 0.1,
                           plugin_fraction: float = 0.2,
                           dt: float = 0.01) -> PluginScenarioResult:
    """Cinder: the browser subdivides; the plugin cannot exceed its tap."""
    from ..core.decay import DecayPolicy
    from ..core.graph import ResourceGraph

    graph = ResourceGraph(10_000.0, decay=DecayPolicy(enabled=False))
    browser = graph.create_reserve(name="browser")
    graph.create_tap(graph.root, browser, browser_watts)
    plugin = graph.create_reserve(name="plugin")
    graph.create_tap(browser, plugin, browser_watts * plugin_fraction)

    browser_work = plugin_work = 0.0
    steps = int(duration_s / dt)
    for _ in range(steps):
        graph.step(dt)
        quantum = CPU_WATTS * dt
        # The plugin is greedy: it spends whenever it can.
        if plugin.can_afford(quantum):
            plugin.consume(quantum)
            plugin_work += quantum
        if browser.can_afford(quantum):
            browser.consume(quantum)
            browser_work += quantum
    return PluginScenarioResult("cinder", browser_work, plugin_work)


def plugin_scenario_currentcy(duration_s: float = 60.0,
                              browser_watts: float = 0.1,
                              dt: float = 0.01) -> PluginScenarioResult:
    """ECOSystem: the plugin shares the browser's account and, being
    greedy and scheduled first, eats the browser's income."""
    manager = CurrentcyManager(10_000.0, epoch_s=1.0,
                               budget_watts=browser_watts)
    account = manager.add_account("browser", share=1.0)
    manager.fork_into("browser", "plugin")  # the only option (§2.3)

    browser_work = plugin_work = 0.0
    steps = int(duration_s / dt)
    for _ in range(steps):
        manager.step(dt)
        quantum = CPU_WATTS * dt
        # Greedy plugin spends first from the *shared* account.
        if account.can_spend(quantum):
            account.spend(quantum)
            plugin_work += quantum
        if account.can_spend(quantum):
            account.spend(quantum)
            browser_work += quantum
    return PluginScenarioResult("currentcy", browser_work, plugin_work)


@dataclass
class PoolingScenarioResult:
    """Outcome of the radio-pooling scenario for one system."""

    system: str
    activations: int
    duration_s: float

    @property
    def activations_per_period(self) -> float:
        periods = self.duration_s / 60.0
        return self.activations / periods if periods else 0.0


def pooling_scenario_cinder(duration_s: float = 600.0,
                            dt: float = 0.1) -> PoolingScenarioResult:
    """Cinder: two daemons pool via a netd-style shared reserve."""
    from ..core.decay import DecayPolicy
    from ..core.graph import ResourceGraph

    graph = ResourceGraph(100_000.0, decay=DecayPolicy(enabled=False))
    per_app_watts = (ACTIVATION_J / 2.0) / 60.0  # half a cycle per minute
    apps = []
    for name in ("mail", "rss"):
        reserve = graph.create_reserve(name=name)
        graph.create_tap(graph.root, reserve, per_app_watts)
        apps.append(reserve)
    pool = graph.create_reserve(name="pool", decay_exempt=True)

    activations = 0
    steps = int(duration_s / dt)
    for _ in range(steps):
        graph.step(dt)
        # Both daemons always want the radio: contribute and check.
        for reserve in apps:
            reserve.transfer_to(pool, reserve.level)
        if pool.can_afford(ACTIVATION_J):
            pool.consume(ACTIVATION_J)
            activations += 1
    return PoolingScenarioResult("cinder", activations, duration_s)


def pooling_scenario_currentcy(duration_s: float = 600.0,
                               dt: float = 0.1) -> PoolingScenarioResult:
    """ECOSystem: separate accounts cannot combine for the power-up."""
    per_app_watts = (ACTIVATION_J / 2.0) / 60.0
    manager = CurrentcyManager(100_000.0, epoch_s=1.0,
                               budget_watts=2 * per_app_watts)
    accounts = [manager.add_account("mail", share=1.0,
                                    cap=10 * ACTIVATION_J),
                manager.add_account("rss", share=1.0,
                                    cap=10 * ACTIVATION_J)]

    activations = 0
    steps = int(duration_s / dt)
    for _ in range(steps):
        manager.step(dt)
        for account in accounts:
            # Each app must afford the radio *alone*.
            if account.can_spend(ACTIVATION_J):
                account.spend(ACTIVATION_J)
                activations += 1
    return PoolingScenarioResult("currentcy", activations, duration_s)
