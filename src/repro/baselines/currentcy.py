"""The ECOSystem "currentcy" baseline (paper §2.1, §2.3, §8.1).

ECOSystem [Zeng 2002, 2003] is the prior system Cinder measures its
abstractions against.  Its model:

* Energy is minted as **currentcy** and handed to *applications* —
  "a flat hierarchy of energy principals" — at each accounting epoch.
* Each application has an **allotment** (its per-epoch income) and a
  **cap** ("the ability to spend a certain amount of energy, up to a
  fixed cap"); unspent currentcy accumulates up to the cap and is
  discarded beyond it.
* Children share their parent's container: "child processes share the
  resources of their parent" — there is no subdivision, so a browser
  cannot protect itself from its plugin (§2.3's example).
* There is no delegation: applications cannot pool currentcy for a
  shared expense like a radio power-up (§2.3: "prior systems do not
  permit delegation").

This module implements that model faithfully enough to *demonstrate*
those limitations next to Cinder's reserves and taps — see
``repro.figures.ablation_baseline`` and the comparison tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import EnergyError, ReserveEmptyError


@dataclass
class CurrentcyAccount:
    """One application's flat energy account."""

    name: str
    #: Currentcy minted for this account each epoch (joules/epoch).
    allotment: float
    #: Hard ceiling on accumulated currentcy (the ECOSystem cap).
    cap: float
    balance: float = 0.0
    total_spent: float = 0.0
    total_discarded: float = 0.0
    #: Threads/processes sharing this account (the flat hierarchy:
    #: children land in their parent's account).
    members: List[str] = field(default_factory=list)

    def credit(self, amount: float) -> float:
        """Epoch income; excess over the cap is discarded."""
        if amount < 0:
            raise EnergyError("cannot credit a negative amount")
        accepted = min(amount, max(0.0, self.cap - self.balance))
        self.balance += accepted
        self.total_discarded += amount - accepted
        return accepted

    def spend(self, amount: float) -> float:
        """Debit the account; refuses overdrafts like the original."""
        if amount < 0:
            raise EnergyError("cannot spend a negative amount")
        if self.balance < amount:
            raise ReserveEmptyError(
                f"account {self.name!r}: need {amount:.6g}, have "
                f"{self.balance:.6g}")
        self.balance -= amount
        self.total_spent += amount
        return amount

    def can_spend(self, amount: float) -> bool:
        """True if the balance covers ``amount``."""
        return self.balance >= amount


class CurrentcyManager:
    """Epoch-based minting over a shared battery budget.

    ECOSystem mints currentcy proportionally to a target discharge
    rate; we model that as a fixed joules-per-epoch budget divided
    among accounts by their allotment weights.
    """

    def __init__(self, battery_joules: float, epoch_s: float = 1.0,
                 budget_watts: float = 1.0) -> None:
        if epoch_s <= 0:
            raise EnergyError("epoch must be positive")
        if budget_watts < 0:
            raise EnergyError("budget must be non-negative")
        self.battery_joules = float(battery_joules)
        self.epoch_s = epoch_s
        self.budget_watts = budget_watts
        self._accounts: Dict[str, CurrentcyAccount] = {}
        self._elapsed_in_epoch = 0.0
        self.epochs = 0

    # -- accounts -----------------------------------------------------------------

    def add_account(self, name: str, share: float,
                    cap: Optional[float] = None) -> CurrentcyAccount:
        """Register an application with a share of the epoch budget.

        ``share`` is a weight; allotments are (re)computed whenever
        membership changes so the budget is fully distributed.
        """
        if name in self._accounts:
            raise EnergyError(f"account {name!r} exists")
        account = CurrentcyAccount(name=name, allotment=share,
                                   cap=cap if cap is not None
                                   else self.budget_watts * self.epoch_s * 10)
        account.members.append(name)
        self._accounts[name] = account
        return account

    def account(self, name: str) -> CurrentcyAccount:
        """Look up an account."""
        return self._accounts[name]

    def account_of(self, member: str) -> CurrentcyAccount:
        """The account a process belongs to (flat hierarchy lookup)."""
        for acct in self._accounts.values():
            if member in acct.members:
                return acct
        raise EnergyError(f"no account holds member {member!r}")

    def fork_into(self, parent_member: str, child: str) -> CurrentcyAccount:
        """ECOSystem fork semantics: the child *shares* the parent's
        account (§2.3) — no subdivision, no protection."""
        account = self.account_of(parent_member)
        account.members.append(child)
        return account

    # -- minting -------------------------------------------------------------------

    def _mint(self) -> None:
        total_share = sum(a.allotment for a in self._accounts.values())
        if total_share <= 0:
            return
        epoch_joules = min(self.budget_watts * self.epoch_s,
                           self.battery_joules)
        self.battery_joules -= epoch_joules
        for account in self._accounts.values():
            account.credit(epoch_joules * account.allotment / total_share)
        self.epochs += 1

    def step(self, dt: float) -> None:
        """Advance time; mint at epoch boundaries."""
        if dt < 0:
            raise EnergyError("dt must be non-negative")
        self._elapsed_in_epoch += dt
        while self._elapsed_in_epoch >= self.epoch_s - 1e-12:
            self._elapsed_in_epoch -= self.epoch_s
            self._mint()

    # -- the limitations, as queries -------------------------------------------------

    def can_delegate(self) -> bool:
        """ECOSystem cannot delegate (§2.3)."""
        return False

    def can_subdivide(self) -> bool:
        """ECOSystem cannot subdivide within an application (§2.3)."""
        return False
