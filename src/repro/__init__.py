"""repro: a simulation reproduction of the Cinder operating system.

    Roy, Rumble, Stutsman, Levis, Mazières, Zeldovich.
    "Energy Management in Mobile Devices with the Cinder Operating
    System."  EuroSys 2011.

Cinder treats energy as a first-class OS resource through two kernel
abstractions: **reserves** (quantities) and **taps** (rates), composed
into a battery-rooted resource consumption graph that gives
applications isolation, delegation and subdivision of energy.

Package layout (see DESIGN.md for the full inventory):

* :mod:`repro.kernel`  — HiStar-style substrate: labels, containers,
  threads, gates (caller-pays IPC billing).
* :mod:`repro.core`    — the contribution: reserves, taps, the graph,
  decay, the energy-aware scheduler, accounting.
* :mod:`repro.energy`  — the HTC Dream power model, simulated meter,
  battery and calibration.
* :mod:`repro.sim`     — the discrete-time engine and process model.
* :mod:`repro.hw`      — the two-core MSM7201A chipset, smdd, rild.
* :mod:`repro.net`     — the radio state machine and netd, the
  cooperative network stack.
* :mod:`repro.apps`    — energywrap, browser/plugin, image viewer,
  task manager, mail/RSS daemons.
* :mod:`repro.figures` — one module per paper figure/table.

Quickstart::

    from repro.sim import CinderSystem, spinner
    from repro.units import mW

    system = CinderSystem(battery_joules=15_000.0)
    app = system.powered_reserve(mW(750), name="browser")
    system.spawn(spinner(), "browser", reserve=app)
    system.run(10.0)
"""

from .core import (ConsumptionLedger, DecayPolicy, EnergyAwareScheduler,
                   Reserve, ResourceGraph, Tap, TapType)
from .kernel import Kernel, Label, ObjRef
from .sim import CinderSystem

__version__ = "1.0.0"

__all__ = [
    "Reserve", "ResourceGraph", "Tap", "TapType", "EnergyAwareScheduler",
    "DecayPolicy", "ConsumptionLedger", "Kernel", "Label", "ObjRef",
    "CinderSystem", "__version__",
]
