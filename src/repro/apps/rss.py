"""The RSS feed downloader daemon (paper §5.5, §6.4).

The second Figure 13 daemon: starts at t=0 with a 60 second poll
interval.  Structurally identical to the mail fetcher; kept separate
because the experiments (and Figure 7/8) treat them as distinct
principals with their own reserves and taps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional

from ..sim.process import NetRequest, ProcessContext, SleepUntil
from ..units import KiB


@dataclass
class RssConfig:
    """§6.4 parameters for the RSS downloader."""

    poll_period_s: float = 60.0
    start_offset_s: float = 0.0
    #: Conditional-GET request headers.
    bytes_out: int = 512
    #: Expected feed document size per poll.
    bytes_in: int = KiB(60)
    destination: str = "rss"
    max_polls: Optional[int] = None


@dataclass
class RssStats:
    """What the downloader observed."""

    polls_completed: int = 0
    items_fetched: int = 0
    total_bytes: int = 0
    total_billed_joules: float = 0.0
    total_wait_seconds: float = 0.0
    poll_times: List[float] = field(default_factory=list)

    def checks_per_hour(self, elapsed_s: float) -> float:
        """Service quality: feed refreshes per hour actually achieved."""
        if elapsed_s <= 0:
            return 0.0
        return self.polls_completed * 3600.0 / elapsed_s


def rss_downloader(config: RssConfig, stats: RssStats
                   ) -> Callable[[ProcessContext], Generator]:
    """The daemon program: poll the feed on a fixed grid."""
    def program(ctx: ProcessContext) -> Generator:
        if config.start_offset_s > 0:
            yield SleepUntil(config.start_offset_s)
        polls = 0
        while config.max_polls is None or polls < config.max_polls:
            reply = yield NetRequest(
                bytes_out=config.bytes_out,
                bytes_in=config.bytes_in,
                destination=config.destination,
            )
            polls += 1
            stats.polls_completed += 1
            stats.total_bytes += reply.bytes_in + reply.bytes_out
            stats.total_billed_joules += reply.billed_joules
            stats.total_wait_seconds += reply.wait_seconds
            stats.poll_times.append(ctx.now)
            if isinstance(reply.response, dict):
                stats.items_fetched += int(reply.response.get("items", 0))
            next_poll = config.start_offset_s + polls * config.poll_period_s
            if next_poll > ctx.now:
                yield SleepUntil(next_poll)
    return program
