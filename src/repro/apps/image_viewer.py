"""The energy-aware network picture gallery (paper §5.3, §6.2).

"The application has a separate thread for downloading images, using
an energy reserve distinct from the main thread. ... The application
checks the levels in the reserve periodically.  A drop in the reserve
level indicates that the downloader is consuming energy too quickly
and will be throttled if it cannot curb consumption.  In this case,
the downloader only requests partial data from the remote interlaced
PNG images, which yields a lower quality image in exchange for reduced
data transfer."

The §6.2 experiment mimics "a user loading a page of images, pausing
to view the images, and then requesting more", with the first pause
40 s and "each successive pause being 5 seconds shorter".  Figures 10
and 11 plot the downloader's reserve level and per-image bytes, with
and without adaptation; the adaptive run finishes >5x sooner and its
reserve never empties.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Generator, List, Tuple

from ..sim.process import NetRequest, ProcessContext, Sleep
from ..units import KiB


@dataclass
class ViewerConfig:
    """Experiment parameters (defaults calibrated to the §6.2 shape)."""

    batches: int = 9
    images_per_batch: int = 8
    #: Bytes of a full-quality interlaced PNG download.
    full_image_bytes: int = KiB(700)
    #: First inter-batch pause; each later pause is ``pause_step_s``
    #: shorter (floored at zero).
    initial_pause_s: float = 40.0
    pause_step_s: float = 5.0
    #: Energy-aware scaling on (Fig. 11) or off (Fig. 10).
    adaptive: bool = True
    #: Reserve level at (or above) which full quality is requested;
    #: below it, quality scales down.
    comfort_level_j: float = 0.15
    #: Smallest interlace fraction worth requesting.
    min_fraction: float = 1.0 / 16.0
    #: When below the comfort level, cap one image's estimated energy
    #: at this fraction of the current reserve level — the downloader
    #: paces itself so the reserve "never [drops] to zero" (§6.2).
    spend_fraction: float = 0.25
    #: The app's own estimate of network energy per byte, calibrated
    #: from its reserve's consumption accounting (§3.2 makes the
    #: statistics available to applications).
    est_joules_per_byte: float = 1.0e-7
    destination: str = "images"
    request_overhead_bytes: int = 512
    #: Delay before the first request (user opening the app); lets the
    #: traces show the charged starting level.
    startup_delay_s: float = 1.0


@dataclass
class ImageRecord:
    """One completed image download."""

    index: int
    start_time: float
    end_time: float
    nbytes: int
    quality: float
    reserve_before: float
    wait_seconds: float


@dataclass
class ViewerStats:
    """Collected by the downloader as it runs."""

    images: List[ImageRecord] = field(default_factory=list)
    batch_times: List[Tuple[float, float]] = field(default_factory=list)
    finished_at: float = math.nan

    @property
    def total_bytes(self) -> int:
        return sum(record.nbytes for record in self.images)

    @property
    def total_stall_seconds(self) -> float:
        return sum(record.wait_seconds for record in self.images)

    def mean_quality(self) -> float:
        if not self.images:
            return 0.0
        return sum(r.quality for r in self.images) / len(self.images)

    def bytes_per_image_series(self) -> Tuple[List[float], List[float]]:
        """(completion times, KiB per image) — the Fig. 10/11 bars."""
        times = [record.end_time for record in self.images]
        kib = [record.nbytes / 1024.0 for record in self.images]
        return times, kib


def choose_fraction(config: ViewerConfig, reserve_level: float) -> float:
    """The adaptation policy: scale quality with available energy.

    At or above the comfort level, full quality.  Below it, request
    the largest interlace fraction whose estimated cost stays within
    ``spend_fraction`` of the current level, floored at
    ``min_fraction`` — a drop in the level directly lowers quality,
    the §5.3 behavior.
    """
    if not config.adaptive:
        return 1.0
    if config.comfort_level_j <= 0 or reserve_level >= config.comfort_level_j:
        return 1.0
    full_cost = config.full_image_bytes * config.est_joules_per_byte
    if full_cost <= 0:
        return 1.0
    fraction = config.spend_fraction * max(0.0, reserve_level) / full_cost
    return min(1.0, max(config.min_fraction, fraction))


def image_viewer_downloader(
    config: ViewerConfig,
    stats: ViewerStats,
) -> Callable[[ProcessContext], Generator]:
    """The downloader thread's program.

    Requests each image at the quality chosen from the reserve level,
    declaring the partial size so netd's gating (and therefore the
    stall behavior of the non-adaptive run) applies.
    """
    def program(ctx: ProcessContext) -> Generator:
        if config.startup_delay_s > 0:
            yield Sleep(config.startup_delay_s)
        image_index = 0
        for batch in range(config.batches):
            batch_start = ctx.now
            for _ in range(config.images_per_batch):
                if config.adaptive:
                    # Pace rather than stall: if even the lowest quality
                    # would overdraw the budget, wait for the tap — this
                    # is why the adaptive reserve "never [drops] to
                    # zero" (§6.2).
                    floor = (config.min_fraction * config.full_image_bytes
                             * config.est_joules_per_byte
                             / max(1e-9, config.spend_fraction))
                    while ctx.reserve_level() < floor:
                        yield Sleep(1.0)
                level = ctx.reserve_level()
                fraction = choose_fraction(config, level)
                nbytes = int(math.ceil(fraction * config.full_image_bytes))
                start = ctx.now
                reply = yield NetRequest(
                    bytes_out=config.request_overhead_bytes,
                    bytes_in=nbytes,
                    destination=config.destination,
                    payload={"image": image_index, "fraction": fraction},
                )
                quality = fraction
                if isinstance(reply.response, dict):
                    quality = float(reply.response.get("quality", fraction))
                stats.images.append(ImageRecord(
                    index=image_index, start_time=start, end_time=ctx.now,
                    nbytes=reply.bytes_in, quality=quality,
                    reserve_before=level,
                    wait_seconds=reply.wait_seconds))
                image_index += 1
            stats.batch_times.append((batch_start, ctx.now))
            pause = max(0.0,
                        config.initial_pause_s - batch * config.pause_step_s)
            if batch < config.batches - 1 and pause > 0:
                yield Sleep(pause)
        stats.finished_at = ctx.now
    return program
