"""SMS messaging under quota reserves (paper §9 + §7).

Cinder "can send and receive SMS text messages" through the rild/smdd
chain (§7), and §9 proposes enforcing *message-count* quotas with
reserves: "reserves could also be used to enforce SMS text message
quotas".  This app combines the two: each send consumes one unit from
an SMS-kind reserve *and* the radio energy for the message, both
billed to the sending thread, with the quota check happening before
any hardware is touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional

from ..core.reserve import Reserve, SMS_MESSAGES
from ..errors import ReserveEmptyError
from ..hw.rild import RildDaemon
from ..kernel.thread_obj import Thread
from ..sim.process import ProcessContext, Sleep

#: Energy for one 140-byte message burst (tiny next to activation).
SMS_ENERGY_J = 0.05


@dataclass
class SmsStats:
    """What the messenger observed."""

    sent: int = 0
    rejected_quota: int = 0
    rejected_energy: int = 0
    send_times: List[float] = field(default_factory=list)


class SmsSender:
    """Quota-gated SMS sending over the RIL."""

    def __init__(self, rild: RildDaemon, quota: Reserve,
                 energy_cost_j: float = SMS_ENERGY_J) -> None:
        if quota.kind != SMS_MESSAGES:
            raise ReserveEmptyError(
                f"quota reserve holds {quota.kind}, not {SMS_MESSAGES}")
        self.rild = rild
        self.quota = quota
        self.energy_cost_j = energy_cost_j

    def send(self, thread: Thread, number: str = "") -> bool:
        """Send one message as ``thread``; returns True on success.

        Order matters: the quota is checked (and consumed) first, so a
        quota-exhausted app never even wakes the radio; the energy is
        billed to the thread's active reserve through the gate chain.
        """
        if not self.quota.can_afford(1.0):
            return False
        if not thread.active_reserve.can_afford(self.energy_cost_j):
            return False
        self.quota.consume(1.0)
        thread.charge(self.energy_cost_j)
        reply = self.rild.request(thread, {"op": "sms",
                                           "number": number})
        return bool(reply.get("ok"))


def sms_burst_program(
    sender: SmsSender,
    stats: SmsStats,
    count: int,
    interval_s: float = 1.0,
) -> Callable[[ProcessContext], Generator]:
    """A messenger that tries to send ``count`` texts."""
    def program(ctx: ProcessContext) -> Generator:
        for _ in range(count):
            if not sender.quota.can_afford(1.0):
                stats.rejected_quota += 1
            elif not ctx.thread.active_reserve.can_afford(
                    sender.energy_cost_j):
                stats.rejected_energy += 1
            elif sender.send(ctx.thread):
                stats.sent += 1
                stats.send_times.append(ctx.now)
            yield Sleep(interval_s)
    return program
