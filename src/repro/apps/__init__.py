"""Applications from the paper's §5: the users of reserves and taps."""

from .browser import (BrowserApp, BrowserConfig, BrowserStats,
                      ExtensionMailbox)
from .energywrap import WrappedProcess, energywrap, wrap_child
from .image_viewer import (ImageRecord, ViewerConfig, ViewerStats,
                           choose_fraction, image_viewer_downloader)
from .mail import MailConfig, MailStats, mail_fetcher
from .plugin import (PluginSandbox, bursty_plugin, make_plugin_sandbox,
                     runaway_plugin)
from .rss import RssConfig, RssStats, rss_downloader
from .sms import SmsSender, SmsStats, sms_burst_program
from .task_manager import (DEFAULT_BACKGROUND_POOL_W, DEFAULT_FOREGROUND_W,
                           ManagedApp, TaskManager)

__all__ = [
    "BrowserApp", "BrowserConfig", "BrowserStats", "ExtensionMailbox",
    "WrappedProcess", "energywrap", "wrap_child",
    "ImageRecord", "ViewerConfig", "ViewerStats", "choose_fraction",
    "image_viewer_downloader",
    "MailConfig", "MailStats", "mail_fetcher",
    "PluginSandbox", "bursty_plugin", "make_plugin_sandbox",
    "runaway_plugin",
    "RssConfig", "RssStats", "rss_downloader",
    "SmsSender", "SmsStats", "sms_burst_program",
    "DEFAULT_BACKGROUND_POOL_W", "DEFAULT_FOREGROUND_W", "ManagedApp",
    "TaskManager",
]
