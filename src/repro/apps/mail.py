"""The POP3-style background mail fetcher (paper §5.5, §6.4).

One of the two daemons in the Figure 13 experiments: polls its server
every 60 seconds, starting 15 seconds after the RSS downloader.  Its
energy allotment alone can power the radio only "every two minutes";
pooling through netd restores one-minute service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional

from ..sim.process import NetRequest, ProcessContext, SleepUntil
from ..units import KiB


@dataclass
class MailConfig:
    """§6.4 parameters for the mail daemon."""

    poll_period_s: float = 60.0
    #: "Fifteen seconds later, a mail fetcher daemon starts."
    start_offset_s: float = 15.0
    #: Outbound POP3 chatter per poll (USER/PASS/STAT/RETR...).
    bytes_out: int = 512
    #: Expected inbound bytes per poll (headers + bodies).
    bytes_in: int = KiB(30)
    destination: str = "mail"
    max_polls: Optional[int] = None


@dataclass
class MailStats:
    """What the daemon observed."""

    polls_completed: int = 0
    messages_fetched: int = 0
    total_bytes: int = 0
    total_billed_joules: float = 0.0
    total_wait_seconds: float = 0.0
    poll_times: List[float] = field(default_factory=list)

    def checks_per_hour(self, elapsed_s: float) -> float:
        """Service quality metric: how often mail actually got checked."""
        if elapsed_s <= 0:
            return 0.0
        return self.polls_completed * 3600.0 / elapsed_s


def mail_fetcher(config: MailConfig, stats: MailStats
                 ) -> Callable[[ProcessContext], Generator]:
    """The daemon program: poll on a fixed grid, record outcomes."""
    def program(ctx: ProcessContext) -> Generator:
        if config.start_offset_s > 0:
            yield SleepUntil(config.start_offset_s)
        polls = 0
        while config.max_polls is None or polls < config.max_polls:
            reply = yield NetRequest(
                bytes_out=config.bytes_out,
                bytes_in=config.bytes_in,
                destination=config.destination,
            )
            polls += 1
            stats.polls_completed += 1
            stats.total_bytes += reply.bytes_in + reply.bytes_out
            stats.total_billed_joules += reply.billed_joules
            stats.total_wait_seconds += reply.wait_seconds
            stats.poll_times.append(ctx.now)
            if isinstance(reply.response, dict):
                stats.messages_fetched += int(
                    reply.response.get("messages", 0))
            next_poll = config.start_offset_s + polls * config.poll_period_s
            if next_poll > ctx.now:
                yield SleepUntil(next_poll)
    return program
