"""The task manager: foreground/background energy policy (paper §5.4).

Figure 7's arrangement: each application's reserve is fed by two taps —
one from a *foreground* reserve (high-rate feed from the battery) and
one from a *background* reserve (low-rate feed).  "An application's
tap to the background reserve always allows energy to flow; however,
the foreground tap is set to a rate of 0 while the application is
running in the background, and is set to a high value when the
application is running in the foreground.  The task manager is the
creator of the tap connecting the application to the foreground
reserve and, by default, is the only thread privileged to modify the
parameters on the tap."

The privilege claim is enforced here with a real label: foreground
taps carry a category only the manager's thread owns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.policy import ForegroundBackgroundSlot, foreground_background_slot
from ..core.reserve import Reserve
from ..errors import SchedulerError
from ..kernel.labels import Label, PrivilegeSet, fresh_category
from ..kernel.thread_obj import Thread
from ..sim.engine import CinderSystem
from ..sim.process import ServiceCall
from ..units import mW

#: Figure 12 defaults: 14 mW shared by the background pool, 137 mW
#: (the exact CPU cost) to the foreground app.
DEFAULT_BACKGROUND_POOL_W = mW(14)
DEFAULT_FOREGROUND_W = mW(137)


@dataclass
class ManagedApp:
    """One application under task-manager control."""

    name: str
    slot: ForegroundBackgroundSlot

    @property
    def reserve(self) -> Reserve:
        return self.slot.reserve


class TaskManager:
    """Owns the Figure 7 reserve topology and the focus policy."""

    def __init__(
        self,
        system: CinderSystem,
        foreground_watts: float = DEFAULT_FOREGROUND_W,
        background_pool_watts: float = DEFAULT_BACKGROUND_POOL_W,
    ) -> None:
        self.system = system
        self.foreground_watts = foreground_watts
        self.background_pool_watts = background_pool_watts
        graph = system.graph
        battery = system.battery_reserve

        # The manager's privilege: a category only it owns.  Foreground
        # taps carry it at level 0 (an integrity category): information
        # cannot flow from ordinary threads *into* the tap, so only the
        # manager may retune it (§5.4), while anyone may observe it.
        self._category = fresh_category("task-manager")
        self.privileges = PrivilegeSet(frozenset({self._category}))
        self._tap_label = Label({self._category: 0})

        self.foreground_pool = graph.create_reserve(name="fg.pool")
        graph.create_tap(battery, self.foreground_pool, foreground_watts,
                         name="fg.pool.in")
        self.background_pool = graph.create_reserve(name="bg.pool")
        graph.create_tap(battery, self.background_pool,
                         background_pool_watts, name="bg.pool.in")

        self._apps: Dict[str, ManagedApp] = {}
        self._focused: Optional[str] = None

    # -- membership -----------------------------------------------------------------

    def add_app(self, name: str, thread: Optional[Thread] = None
                ) -> ManagedApp:
        """Register an app: wire its dual-tap slot, rebalance shares."""
        if name in self._apps:
            raise SchedulerError(f"app {name!r} already managed")
        slot = foreground_background_slot(
            self.system.graph, self.foreground_pool, self.background_pool,
            name=name)
        slot.foreground.label = self._tap_label
        app = ManagedApp(name=name, slot=slot)
        self._apps[name] = app
        if thread is not None:
            thread.set_active_reserve(slot.reserve)
        self._rebalance_background()
        return app

    def _rebalance_background(self) -> None:
        """Split the background pool's feed evenly across apps."""
        if not self._apps:
            return
        share = self.background_pool_watts / len(self._apps)
        for app in self._apps.values():
            app.slot.background.set_rate(share)

    # -- focus policy ------------------------------------------------------------------

    def focus(self, name: str) -> None:
        """Bring ``name`` to the foreground; everyone else goes back."""
        if name not in self._apps:
            raise SchedulerError(f"no managed app {name!r}")
        for app_name, app in self._apps.items():
            if app_name == name:
                app.slot.bring_to_foreground(self.foreground_watts)
            else:
                app.slot.send_to_background()
        self._focused = name

    def unfocus(self) -> None:
        """Send everything to the background (home screen)."""
        for app in self._apps.values():
            app.slot.send_to_background()
        self._focused = None

    @property
    def focused(self) -> Optional[str]:
        """The currently foregrounded app name, if any."""
        return self._focused

    def apps(self) -> List[ManagedApp]:
        """Managed apps in registration order."""
        return list(self._apps.values())

    def app(self, name: str) -> ManagedApp:
        """Look up one managed app."""
        return self._apps[name]

    # -- blocking focus waits (ServiceCall, macro-step friendly) -------------------------

    def focus_request(self, name: str,
                      foreground: bool = True) -> ServiceCall:
        """A yieldable block until ``name`` gains (or loses) focus.

        The polling-daemon pattern used to be
        ``yield WaitFor(lambda: manager.focused == name)`` — and a
        ``WaitFor`` predicate is re-polled every tick, which vetoes
        the engine's fast-forward for the whole wait (a poller fleet
        under task-manager control degraded to tick-by-tick).  Focus
        changes are *events* — they happen inside scheduled callbacks
        (:meth:`schedule_focus`) or synchronous calls — so the wait is
        expressed as a :class:`~repro.sim.process.ServiceCall`: the
        engine macro-steps straight to the focus-change tick, polls
        there, and resumes the program on exactly the tick a per-tick
        predicate would have fired on.  Resumes with the app's
        :class:`ManagedApp` on a foreground wait, ``True`` on a
        background wait.
        """
        if name not in self._apps:
            raise SchedulerError(f"no managed app {name!r}")

        def poll(op: object) -> Optional[object]:
            if (self._focused == name) != foreground:
                return None
            return self._apps[name] if foreground else True

        return ServiceCall(submit=lambda thread: name, poll=poll)

    # -- scripting helper (the Figure 12 schedules) ---------------------------------------

    def schedule_focus(self, when: float, name: Optional[str]) -> None:
        """At time ``when``, focus ``name`` (None = all background)."""
        if name is None:
            self.system.schedule_at(when, self.unfocus)
        else:
            self.system.schedule_at(when, lambda: self.focus(name))
