"""Plugin sandboxing: subdivision with reclaim and anti-hoarding.

Companion to :mod:`repro.apps.browser`, isolating the *plugin* side of
§5.2: a possibly untrusted Flash-style plugin gets "full control over
a fraction of its [host's] energy allotment" while the host stays
protected.  Exposes the Figure 6b proportional-tap arrangement as a
reusable sandbox, plus the §5.2.2 hoarding probes used by tests:
``reserve_clone`` semantics and the fast-to-slow transfer rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from ..core.graph import ResourceGraph
from ..core.policy import SharedChild, shared_rate_limit
from ..core.reserve import Reserve
from ..errors import HoardingError
from ..kernel.labels import Label, NO_PRIVILEGES, PrivilegeSet, fresh_category
from ..sim.process import CpuBurn, ProcessContext, Sleep


@dataclass
class PluginSandbox:
    """A plugin's energy cage within its host application."""

    graph: ResourceGraph
    host_reserve: Reserve
    child: SharedChild
    #: The host's privilege over the sandbox taps.
    host_privileges: PrivilegeSet

    @property
    def reserve(self) -> Reserve:
        """The plugin's own reserve."""
        return self.child.reserve

    @property
    def burst_capacity_joules(self) -> float:
        """How much the plugin can bank for bursts (Figure 6b's 700 mJ)."""
        return self.child.equilibrium_level

    def try_hoard(self, amount: float,
                  privileges: PrivilegeSet = NO_PRIVILEGES) -> Reserve:
        """What a malicious plugin would do: stash energy in a fresh
        reserve with no backward taps.

        Under the §5.2.2 ``reserve_clone`` discipline this *fails*:
        the clone inherits the backward taps the plugin cannot remove,
        and a raw checked transfer to a slower-draining reserve raises
        :class:`~repro.errors.HoardingError`.  Returns the clone so
        tests can verify the inherited drains.
        """
        clone = self.graph.clone_reserve(self.reserve, privileges,
                                         name=f"{self.reserve.name}/stash")
        # The checked transfer only succeeds because the clone drains
        # at least as fast as the original (inherited taps).
        self.graph.checked_transfer(self.reserve, clone, amount, privileges)
        return clone


def make_plugin_sandbox(
    graph: ResourceGraph,
    host_reserve: Reserve,
    plugin_watts: float,
    back_fraction: float = 0.1,
    name: str = "plugin",
) -> PluginSandbox:
    """Build the Figure 6b cage: feed + backward proportional tap.

    The sandbox taps are labeled with a fresh category owned by the
    host, so the plugin can neither raise its feed nor remove its
    taxation.
    """
    # Level 0 = an integrity category: the plugin cannot modify (remove
    # or retune) the sandbox taps, only the host's privilege can.
    category = fresh_category(f"{name}-sandbox")
    host_privileges = PrivilegeSet(frozenset({category}))
    tap_label = Label({category: 0})
    child = shared_rate_limit(graph, host_reserve, plugin_watts,
                              back_fraction, name=name)
    child.forward.label = tap_label
    child.backward.label = tap_label
    return PluginSandbox(graph=graph, host_reserve=host_reserve,
                         child=child, host_privileges=host_privileges)


def bursty_plugin(
    burst_cpu_s: float = 0.5,
    idle_s: float = 5.0,
    bursts: Optional[int] = None,
) -> Callable[[ProcessContext], Generator]:
    """A plugin that alternates hungry bursts with idle stretches.

    The Figure 6b design exists exactly for this profile: the reserve
    banks up to the equilibrium level during idle periods, funds the
    burst at full device power, then returns the excess.
    """
    def program(ctx: ProcessContext) -> Generator:
        count = 0
        while bursts is None or count < bursts:
            yield CpuBurn(burst_cpu_s)
            yield Sleep(idle_s)
            count += 1
    return program


def runaway_plugin() -> Callable[[ProcessContext], Generator]:
    """A buggy/malicious plugin that spins forever (§2.2's motivation)."""
    def program(ctx: ProcessContext) -> Generator:
        yield CpuBurn(math.inf)
    return program
