"""energywrap: sandbox any program with an energy rate (paper §5.1).

"energywrap takes a rate limit and a path to an application binary.
The utility creates a new reserve and attaches it to the reserve in
which energywrap started by a tap with the rate given as input.  After
forking, energywrap begins drawing resources from the newly allocated
reserve rather than the original reserve of the parent process and
executes the specified program."

This module follows the paper's Figure 5 excerpt through the *syscall
layer* — ``reserve_create``, ``tap_create``, ``tap_set_rate``,
``self_set_active_reserve`` — so the label checks and ObjRef plumbing
run exactly as a C caller would exercise them.  Like the original, it
composes: a wrapped program can itself call :func:`energywrap` on its
children (§6.1's B wrapping B1 and B2 is built this way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from ..core.reserve import Reserve
from ..core.tap import Tap
from ..kernel import syscalls
from ..kernel.objects import ObjRef
from ..kernel.thread_obj import Thread
from ..sim.engine import CinderSystem
from ..sim.process import Process, ProcessContext
from ..units import as_mW


@dataclass
class WrappedProcess:
    """What energywrap returns: the process plus its sandbox objects."""

    process: Process
    reserve: Reserve
    tap: Tap

    @property
    def rate_watts(self) -> float:
        """The sandbox's configured rate limit."""
        return self.tap.rate


def energywrap(
    system: CinderSystem,
    rate_watts: float,
    program: Callable[[ProcessContext], Generator],
    name: str,
    source: Optional[Reserve] = None,
    shell_thread: Optional[Thread] = None,
) -> WrappedProcess:
    """Run ``program`` limited to ``rate_watts``, Figure 5 style.

    ``source`` is the reserve the sandbox draws from (the caller's own
    reserve when wrapping children; the battery for top-level use).
    ``shell_thread`` is the thread performing the syscalls — it needs
    observe/modify on ``source``; a fresh root-labeled thread is used
    if omitted, mirroring a shell invocation.
    """
    kernel = system.kernel
    container_id = kernel.root_container.object_id
    if source is None:
        source = system.battery_reserve
    if shell_thread is None:
        shell_thread = kernel.create_thread(name=f"{name}.energywrap")

    # Figure 5, line by line (sans error handling):
    # res_id = reserve_create(container_id, res_label);
    res_id = syscalls.reserve_create(kernel, shell_thread, container_id,
                                     name=f"{name}.reserve")
    res = ObjRef(container_id, res_id)
    # tap_id = tap_create(container_id, root_reserve, res, tap_label);
    tap_id = syscalls.tap_create(kernel, shell_thread, container_id,
                                 kernel.ref_for(source), res,
                                 name=f"{name}.tap")
    tap_ref = ObjRef(container_id, tap_id)
    # tap_set_rate(tap, TAP_TYPE_CONST, <mW>);
    syscalls.tap_set_rate(kernel, shell_thread, tap_ref,
                          syscalls.TAP_TYPE_CONST, as_mW(rate_watts))

    # if (fork() == 0) { self_set_active_reserve(res); execv(...); }
    process = system.spawn(program, name)
    syscalls.self_set_active_reserve(kernel, process.thread, res)

    reserve = kernel.resolve(res)
    tap = kernel.resolve(tap_ref)
    assert isinstance(reserve, Reserve) and isinstance(tap, Tap)
    return WrappedProcess(process=process, reserve=reserve, tap=tap)


def wrap_child(
    system: CinderSystem,
    parent: Process,
    rate_watts: float,
    program: Callable[[ProcessContext], Generator],
    name: str,
) -> WrappedProcess:
    """Wrap a child under the *parent's own* reserve (§6.1).

    "Rather than have its children draw from B's own reserve, B
    creates two new reserves subdividing and delegating its power to
    each using two taps" — the child's tap drains the parent's
    reserve, so the parent's policies compose with the system's.
    """
    return energywrap(system, rate_watts, program, name,
                      source=parent.thread.active_reserve,
                      shell_thread=parent.thread)
