"""The energy-constrained web browser and its extension (paper §5.2).

"Cinder includes a simple graphical web browser based on links2 ...
augmented with an extension running in a separate process, whose
energy usage is subdivided and isolated from the browser.  The browser
can send requests to the extension process (for ad blocking, etc.),
and if the extension is unresponsive due to lack of energy the browser
can display the unaugmented page."

The browser's defensive posture is Figure 6: the extension draws from
its own reserve, fed by a low-rate tap from the browser's reserve (6a),
optionally with backward proportional taps so unused energy is shared
rather than hoarded (6b).  Per-page taps (§5.2) are modeled too:
opening a page adds a tap into the extension reserve; closing the page
deletes it, revoking that power source.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from ..core.policy import SharedChild, shared_rate_limit
from ..core.reserve import Reserve
from ..core.tap import Tap, TapType
from ..errors import SimulationError
from ..sim.engine import CinderSystem
from ..sim.process import CpuBurn, ProcessContext, Sleep, WaitFor
from ..units import mW


class ExtensionMailbox:
    """A tiny request/reply channel between browser and extension."""

    def __init__(self) -> None:
        self._requests: List[int] = []
        self._replies: Dict[int, bool] = {}
        self._next_id = 0

    def post(self) -> int:
        """Browser side: submit a filtering request; returns its id."""
        request_id = self._next_id
        self._next_id += 1
        self._requests.append(request_id)
        return request_id

    def take(self) -> Optional[int]:
        """Extension side: pop the oldest pending request."""
        if self._requests:
            return self._requests.pop(0)
        return None

    def reply(self, request_id: int) -> None:
        """Extension side: mark a request serviced."""
        self._replies[request_id] = True

    def has_reply(self, request_id: int) -> bool:
        """Browser side: did the extension answer yet?"""
        return self._replies.get(request_id, False)

    @property
    def pending(self) -> int:
        return len(self._requests)


@dataclass
class BrowserStats:
    """Outcome counters for the browser loop."""

    pages_loaded: int = 0
    pages_augmented: int = 0
    pages_plain: int = 0

    @property
    def augmented_fraction(self) -> float:
        if self.pages_loaded == 0:
            return 0.0
        return self.pages_augmented / self.pages_loaded


@dataclass
class BrowserConfig:
    """Workload knobs."""

    pages: int = 20
    #: CPU seconds the browser spends rendering one page.
    render_cpu_s: float = 0.2
    #: CPU seconds the extension spends filtering one page.
    filter_cpu_s: float = 0.3
    #: How long the browser waits before giving up on the extension.
    extension_timeout_s: float = 3.0
    #: Think time between pages.
    think_s: float = 1.0


class BrowserApp:
    """Wiring for the browser + extension pair (Figure 6)."""

    def __init__(
        self,
        system: CinderSystem,
        browser_watts: float = mW(700),
        extension_watts: float = mW(70),
        back_fraction: float = 0.1,
        share_unused: bool = True,
        config: Optional[BrowserConfig] = None,
    ) -> None:
        self.system = system
        self.config = config if config is not None else BrowserConfig()
        graph = system.graph
        battery = system.battery_reserve

        self.browser_reserve = graph.create_reserve(name="browser")
        graph.create_tap(battery, self.browser_reserve, browser_watts,
                         name="browser.in")
        if share_unused:
            # Figure 6b: both reserves return unused energy upstream.
            graph.create_tap(self.browser_reserve, battery, back_fraction,
                             TapType.PROPORTIONAL, name="browser.back")
            child = shared_rate_limit(graph, self.browser_reserve,
                                      extension_watts, back_fraction,
                                      name="extension")
            self.extension_reserve = child.reserve
            self.extension_tap: Tap = child.forward
        else:
            # Figure 6a: plain subdivision, no sharing of the unused.
            self.extension_reserve = graph.create_reserve(name="extension")
            self.extension_tap = graph.create_tap(
                self.browser_reserve, self.extension_reserve,
                extension_watts, name="extension.in")

        self.mailbox = ExtensionMailbox()
        self.stats = BrowserStats()
        self._page_taps: Dict[str, Tap] = {}

    # -- per-page taps (§5.2) -------------------------------------------------------

    def open_page(self, page_id: str, watts: float = mW(10)) -> Tap:
        """Scale extension power with open pages: one tap per page."""
        if page_id in self._page_taps:
            raise SimulationError(f"page {page_id!r} already open")
        tap = self.system.graph.create_tap(
            self.browser_reserve, self.extension_reserve, watts,
            name=f"page.{page_id}")
        self._page_taps[page_id] = tap
        return tap

    def close_page(self, page_id: str) -> None:
        """Navigating away garbage-collects the page's tap (§5.2)."""
        tap = self._page_taps.pop(page_id, None)
        if tap is None:
            raise SimulationError(f"page {page_id!r} is not open")
        self.system.graph.delete_tap(tap)

    @property
    def open_pages(self) -> int:
        return len(self._page_taps)

    # -- the two programs -------------------------------------------------------------

    def browser_program(self) -> Callable[[ProcessContext], Generator]:
        """Render pages, asking the extension to augment each one."""
        config, mailbox, stats = self.config, self.mailbox, self.stats

        def program(ctx: ProcessContext) -> Generator:
            for _ in range(config.pages):
                yield CpuBurn(config.render_cpu_s)
                request_id = mailbox.post()
                deadline = ctx.now + config.extension_timeout_s
                yield WaitFor(lambda rid=request_id, dl=deadline:
                              mailbox.has_reply(rid) or ctx.now >= dl)
                stats.pages_loaded += 1
                if mailbox.has_reply(request_id):
                    stats.pages_augmented += 1
                else:
                    # Unresponsive extension: show the plain page (§5.2).
                    stats.pages_plain += 1
                yield Sleep(config.think_s)
        return program

    def extension_program(self) -> Callable[[ProcessContext], Generator]:
        """Service filtering requests as energy allows."""
        config, mailbox = self.config, self.mailbox

        def program(ctx: ProcessContext) -> Generator:
            while True:
                yield WaitFor(lambda: mailbox.pending > 0)
                request_id = mailbox.take()
                if request_id is None:
                    continue
                yield CpuBurn(config.filter_cpu_s)
                mailbox.reply(request_id)
        return program

    def launch(self) -> None:
        """Spawn both processes with their reserves attached."""
        self.system.spawn(self.browser_program(), "browser",
                          reserve=self.browser_reserve)
        self.system.spawn(self.extension_program(), "extension",
                          reserve=self.extension_reserve)
