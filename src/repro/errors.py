"""Exception hierarchy for the Cinder reproduction.

Kernel-style errors deliberately mirror the error conditions a real
Cinder/HiStar kernel would return from syscalls (permission failures,
missing objects, resource exhaustion), so application code written
against :mod:`repro.kernel.syscalls` handles failures the way the
paper's C applications do.
"""

from __future__ import annotations


class CinderError(Exception):
    """Base class for every error raised by this package."""


class LabelError(CinderError):
    """An information-flow or privilege check failed."""


class PermissionError_(LabelError):
    """A thread lacked the privileges to observe/modify/use an object.

    Named with a trailing underscore to avoid shadowing the builtin; the
    public API re-exports it as ``KernelPermissionError``.
    """


#: Public alias for the permission failure (avoids the builtin name).
KernelPermissionError = PermissionError_


class ObjectError(CinderError):
    """Problems locating or using kernel objects."""


class NoSuchObjectError(ObjectError):
    """An object id did not resolve (deleted, GC'd, or never existed)."""


class ObjectTypeError(ObjectError):
    """An object was not of the expected kernel type."""


class ContainerError(ObjectError):
    """Container-specific failures (e.g., adding to a dead container)."""


class EnergyError(CinderError):
    """Resource/energy management failures."""


class ReserveEmptyError(EnergyError):
    """A consume was attempted against an empty (or too-shallow) reserve."""


class DebtLimitError(EnergyError):
    """A forced debit would push a reserve past its debt limit."""


class TapError(EnergyError):
    """Invalid tap configuration (bad rate, missing endpoint, self-loop)."""


class HoardingError(EnergyError):
    """A transfer violates the anti-hoarding rules of ``reserve_clone``."""


class SchedulerError(CinderError):
    """Scheduler misconfiguration (e.g., thread with no reserve)."""


class SimulationError(CinderError):
    """Engine-level failures (time going backward, double-registration)."""


class ShardFailure(SimulationError):
    """A fleet shard worker failed (crash, broken pool, worker raise).

    Raised by the :class:`~repro.sim.shards.ShardedWorld` supervisor
    when a shard cannot be recovered by retry, checkpoint restore,
    rebuild-and-replay, cross-host rescheduling, *or* inline demotion;
    individual recovered failures are recorded in
    :attr:`~repro.sim.shards.FleetReport.shard_failures` (and, with
    full context — shard, barrier, attempt, host, recovery rung — in
    :attr:`~repro.sim.shards.FleetReport.recovery_events`) instead of
    raising.  Messages carry the shard id, the barrier index, the
    attempt count and (when socketed) the host, so a surfaced failure
    is diagnosable without re-running the chaos experiment.
    """


class ShardTimeout(ShardFailure):
    """A shard missed its per-barrier deadline (hung or overloaded)."""


class TransportError(SimulationError):
    """A shard-transport socket operation failed (framing, I/O, peer
    loss).  The supervisor treats these as recoverable shard failures
    — reconnect, restore, reschedule — never as run aborts."""


class TransportTimeout(TransportError):
    """A transport send/recv missed its per-message deadline (lost
    message, overloaded host, or a reply delayed past the timeout)."""


class HostUnreachable(TransportError):
    """A shard host is gone from this side of the network: its daemon
    process died, it stopped answering heartbeats, or a partition cut
    it off.  The supervisor responds by *rescheduling* the host's
    shards onto surviving hosts (restore or rebuild-replay), demoting
    to inline execution only when no healthy host remains."""


class CheckpointError(SimulationError):
    """A world checkpoint could not be captured or faithfully restored
    (unpicklable state, digest mismatch after a round-trip)."""


class GateError(CinderError):
    """Gate call failures (no service bound, re-entrancy violations)."""


class HardwareError(CinderError):
    """Simulated hardware faults (mailbox overflow, bad ARM9 command)."""


class NetworkError(CinderError):
    """Network stack failures (unknown host, oversized datagram)."""
