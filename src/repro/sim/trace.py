"""Time-series recording for experiments.

The figure harnesses need the same artifacts the paper plots: power
traces sampled like the Agilent meter, reserve levels over time
(Figures 10, 11, 14), and stacked per-principal power estimates
(Figures 9, 12).  :class:`TimeSeries` is the primitive;
:class:`TraceRecorder` is a named bag of them attached to the engine.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError


class TimeSeries:
    """An append-only (time, value) series with analysis helpers."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, time: float, value: float) -> None:
        """Add a sample; times must be non-decreasing."""
        if self._times and time < self._times[-1] - 1e-12:
            raise SimulationError(
                f"series {self.name!r}: time went backward "
                f"({time} < {self._times[-1]})")
        self._times.append(time)
        self._values.append(value)

    # -- access -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Sample times as an array."""
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        """Sample values as an array."""
        return np.asarray(self._values, dtype=float)

    def last(self) -> float:
        """Most recent value."""
        if not self._values:
            raise SimulationError(f"series {self.name!r} is empty")
        return self._values[-1]

    # -- analysis -----------------------------------------------------------------

    def value_at(self, time: float) -> float:
        """Zero-order-hold lookup: latest sample at or before ``time``."""
        times = self.times
        index = int(np.searchsorted(times, time, side="right")) - 1
        if index < 0:
            raise SimulationError(
                f"series {self.name!r} has no sample before {time}")
        return self._values[index]

    def mean_between(self, start: float, end: float) -> float:
        """Arithmetic mean of samples within [start, end)."""
        times, values = self.times, self.values
        mask = (times >= start) & (times < end)
        if not mask.any():
            return 0.0
        return float(values[mask].mean())

    def max_between(self, start: float, end: float) -> float:
        """Max of samples within [start, end)."""
        times, values = self.times, self.values
        mask = (times >= start) & (times < end)
        if not mask.any():
            return 0.0
        return float(values[mask].max())

    def min_value(self) -> float:
        """Global minimum (the Fig. 11 'never reaches zero' check)."""
        if not self._values:
            raise SimulationError(f"series {self.name!r} is empty")
        return float(self.values.min())

    def integrate(self) -> float:
        """Trapezoidal integral over the whole series."""
        if len(self._times) < 2:
            return 0.0
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self.values, self.times))

    def time_above(self, threshold: float) -> float:
        """Total time the (zero-order-hold) series exceeds ``threshold``."""
        times, values = self.times, self.values
        if len(times) < 2:
            return 0.0
        dt = np.diff(times)
        return float(dt[values[:-1] > threshold].sum())

    def resample(self, bin_s: float, t_end: Optional[float] = None
                 ) -> "TimeSeries":
        """Bin-averaged copy (empty bins hold the previous value)."""
        if bin_s <= 0:
            raise SimulationError("bin size must be positive")
        out = TimeSeries(f"{self.name}@{bin_s}s")
        if not self._times:
            return out
        end = t_end if t_end is not None else self._times[-1]
        times, values = self.times, self.values
        edges = np.arange(0.0, end + bin_s, bin_s)
        previous = values[0]
        for left, right in zip(edges[:-1], edges[1:]):
            mask = (times >= left) & (times < right)
            if mask.any():
                previous = float(values[mask].mean())
            out.append(left, previous)
        return out


class TraceRecorder:
    """A named collection of series plus probe-based auto-recording."""

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}
        #: (name, callable) probes sampled by the engine each record step.
        self._probes: List[Tuple[str, Callable[[], float]]] = []

    def series(self, name: str) -> TimeSeries:
        """Get (creating if needed) the series called ``name``."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def has(self, name: str) -> bool:
        """True if a series with that name holds samples."""
        return name in self._series and len(self._series[name]) > 0

    def names(self) -> List[str]:
        """All series names, sorted."""
        return sorted(self._series)

    def record(self, name: str, time: float, value: float) -> None:
        """Append one sample to the named series."""
        self.series(name).append(time, value)

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register a probe the engine samples on every record interval.

        Probes are how experiments watch reserve levels: e.g.
        ``recorder.add_probe('netd.pool', lambda: pool.level)``.
        """
        self._probes.append((name, fn))

    def sample_probes(self, time: float) -> None:
        """Sample every registered probe at ``time``."""
        for name, fn in self._probes:
            self.record(name, time, float(fn()))
