"""Barrier checkpoints: capture, validate and restore World state.

The fault-tolerance substrate for sharded fleets (and the
load-bearing prerequisite for the multi-host transport on the
ROADMAP): a shard worker that crashes, hangs or raises mid-barrier
must be rebuildable to *exactly* the state it held at the last clock
barrier, or recovery would silently fork the simulation.  Two
capture methods, tried in order:

* **pickle snapshot** — :func:`snapshot_world` serializes the whole
  :class:`~repro.sim.world.World` object graph and validates it by a
  digest round-trip (unpickle the blob, re-digest, compare) before
  anyone trusts it.  Engine components deliberately avoid lambdas and
  local closures (see :class:`~repro.sim.clock.ClockNow`) so
  process-less worlds pickle cleanly; a world running live simulated
  programs cannot — generators do not pickle — and falls through to:
* **rebuild-and-replay** — reconstruct from the picklable
  ``builder(world, lo, hi)`` and deterministically re-run the exact
  barrier chunk sequence.  The simulation is seeded and entropy-free,
  so the replayed world is bit-identical to the lost one (the sharded
  parity suite pins this); replay is therefore the *authoritative*
  recovery and the digest merely cross-checks it.

Either way a :class:`Checkpoint` carries the state digest taken at
capture time; :func:`restore` refuses (:class:`~repro.errors.
CheckpointError`) any restoration whose digest disagrees, so a
corrupted checkpoint degrades loudly instead of diverging quietly.

Digests hash the bit-exact float state (``float.hex``) of every
device — clock, counters, netd pool, battery, meter, reserve levels —
so "bit-identical" is literal, not approximate.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import CheckpointError
from .world import World

#: Capture methods recorded on a :class:`Checkpoint`.
METHOD_PICKLE = "pickle"
METHOD_REPLAY = "replay"


def _device_state_lines(runtime, name: str) -> List[str]:
    """The bit-exact state of one device, as stable hashable lines."""
    return [
        name,
        str(runtime.clock.ticks),
        runtime.clock.now.hex(),
        str(runtime.fast_forwarded_ticks),
        str(runtime.span_refusals),
        str(runtime.radio.activation_count),
        str(runtime.netd.stats.operations),
        runtime.netd.stats.total_wait_seconds.hex(),
        runtime.netd.pool.level.hex(),
        runtime.battery.charge_joules.hex(),
        runtime.meter.total_energy_joules.hex(),
        str(runtime.meter.sample_count),
        ",".join(r.level.hex() for r in runtime.graph.reserves),
    ]


def world_digest(world: World) -> str:
    """A stable hash of the fleet's bit-exact simulation state.

    Two worlds with equal digests agree on every field the parity
    suites compare bit-for-bit: event counts, clock ticks, pool and
    reserve levels, battery charge and metered energy.  Heuristic
    caches (cohort tokens, churn counters, horizon targets) are
    deliberately excluded — they may differ between a restored world
    and the original without changing a single sample.
    """
    digest = hashlib.sha256()
    for name, runtime in world._by_name.items():
        for line in _device_state_lines(runtime, name):
            digest.update(line.encode())
            digest.update(b"\x1f")
        digest.update(b"\x1e")
    return digest.hexdigest()


@dataclass
class Checkpoint:
    """One shard's recoverable state at a clock barrier.

    ``payload`` is a validated pickle blob when the world state could
    snapshot (:attr:`method` ``"pickle"``), or ``None`` when recovery
    must rebuild from the builder and replay (:attr:`method`
    ``"replay"``).  ``barrier`` counts the chunks completed at capture
    — the replay recipe is exactly ``chunks[:barrier]``.
    """

    barrier: int
    now: float
    digest: str
    payload: Optional[bytes]
    method: str


def snapshot_world(world: World) -> bytes:
    """Pickle ``world``, validated by a digest round-trip.

    The returned blob embeds the state digest; :func:`restore_snapshot`
    re-validates on load.  Raises :class:`CheckpointError` when the
    world refuses to pickle (live generator programs, probe closures)
    or when the round-trip does not reproduce the digest — a snapshot
    that cannot prove itself is worse than none.
    """
    digest = world_digest(world)
    try:
        payload = pickle.dumps((digest, world),
                               protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"world state refused to snapshot: {exc!r}") from exc
    try:
        _, clone = pickle.loads(payload)
        clone_digest = world_digest(clone)
    except Exception as exc:
        raise CheckpointError(
            f"snapshot failed to round-trip: {exc!r}") from exc
    if clone_digest != digest:
        raise CheckpointError(
            "snapshot round-trip diverged from the live world "
            f"({clone_digest[:12]} != {digest[:12]})")
    return payload


def restore_snapshot(payload: bytes) -> World:
    """Load a :func:`snapshot_world` blob, re-validating its digest."""
    try:
        digest, world = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(
            f"snapshot payload failed to load: {exc!r}") from exc
    restored = world_digest(world)
    if restored != digest:
        raise CheckpointError(
            "restored world does not match its snapshot digest "
            f"({restored[:12]} != {digest[:12]})")
    # id()-keyed batching heuristics are meaningless in a new object
    # graph; bit-identity does not depend on them (batching is a
    # bit-identical contract), so drop rather than trust stale keys.
    world._churn.clear()
    return world


def capture(world: World, barrier: int,
            try_pickle: bool = True) -> Checkpoint:
    """Checkpoint ``world`` at a barrier, degrading pickle → replay.

    ``try_pickle=False`` skips the (one-time, possibly partial) pickle
    attempt — shard workers remember that a world with live programs
    refused once and do not re-pay the attempt every barrier.
    """
    digest = world_digest(world)
    payload = None
    method = METHOD_REPLAY
    if try_pickle:
        try:
            payload = snapshot_world(world)
            method = METHOD_PICKLE
        except CheckpointError:
            payload = None
    return Checkpoint(barrier=barrier, now=world.now, digest=digest,
                      payload=payload, method=method)


def rebuild_replay(builder: Callable, lo: int, hi: int,
                   world_kwargs: Dict, chunks: Sequence[float],
                   independent: Optional[bool]) -> World:
    """Reconstruct a shard slice and deterministically re-run it.

    The authoritative recovery: the same picklable builder over the
    same global device range, advanced through the identical barrier
    chunk sequence, reproduces the lost world bit-for-bit (devices are
    keyed off their global index and the simulation draws no real
    entropy).
    """
    world = World(**world_kwargs)
    builder(world, lo, hi)
    for chunk in chunks:
        world.run(chunk, independent=independent)
    return world


def restore(checkpoint: Optional[Checkpoint], *, builder: Callable,
            lo: int, hi: int, world_kwargs: Dict,
            chunks: Sequence[float],
            independent: Optional[bool]) -> World:
    """Recover a shard's world from its last barrier checkpoint.

    The degradation order the docs contract specifies: unpickle the
    snapshot payload (digest-validated) when one exists, else — or
    when the payload fails validation — rebuild from the builder and
    replay ``chunks``.  Either result must reproduce the checkpoint
    digest or :class:`CheckpointError` is raised; a ``None``
    checkpoint (capture disabled, or failure before the first barrier
    completed) replays every chunk the caller hands over — the caller
    owns the recipe — with nothing to validate against.
    """
    if checkpoint is not None and checkpoint.payload is not None:
        try:
            return restore_snapshot(checkpoint.payload)
        except CheckpointError:
            pass  # fall through to rebuild-and-replay
    replay = chunks if checkpoint is None else chunks[:checkpoint.barrier]
    world = rebuild_replay(builder, lo, hi, world_kwargs, replay,
                           independent)
    if checkpoint is not None:
        rebuilt = world_digest(world)
        if rebuilt != checkpoint.digest:
            raise CheckpointError(
                f"rebuild-and-replay of shard slice [{lo}, {hi}) does "
                f"not match the barrier-{checkpoint.barrier} digest "
                f"({rebuilt[:12]} != {checkpoint.digest[:12]})")
    return world
