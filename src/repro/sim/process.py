"""Processes: generator coroutines over kernel threads.

A simulated program is a Python generator function::

    def mail_checker(ctx):
        while True:
            reply = yield NetRequest(bytes_out=256, bytes_in=30 * 1024)
            yield SleepUntil(next_poll_time)

Each ``yield`` hands the engine a :class:`Request`; the engine resumes
the generator (sending a result back in) when the request completes.
``CpuBurn`` requests consume scheduler quanta — and therefore energy
from the process's active reserve — so a program that computes is a
program that spends.

``ctx`` is a :class:`ProcessContext` giving programs the paper's
userspace view: the clock, their reserves (for the §5.3 energy-aware
adaptation pattern of *checking the level*), and fork/exec-style
spawning (Figure 9's B spawning B1 and B2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Generator, Optional)

from ..errors import SimulationError
from ..kernel.thread_obj import Thread, ThreadState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import CinderSystem


# ---------------------------------------------------------------------------
# request vocabulary
# ---------------------------------------------------------------------------


class Request:
    """Base class for everything a program can yield."""


@dataclass
class CpuBurn(Request):
    """Execute on the CPU for ``seconds`` of busy time.

    Use ``math.inf`` for a spinner that never finishes (Figures 9/12).
    """

    seconds: float = math.inf

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SimulationError("CpuBurn seconds must be non-negative")


@dataclass
class Sleep(Request):
    """Block for ``seconds`` of wall-clock time (no CPU, no energy)."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SimulationError("Sleep seconds must be non-negative")


@dataclass
class SleepUntil(Request):
    """Block until an absolute simulation time."""

    deadline: float


@dataclass
class WaitFor(Request):
    """Block until a predicate becomes true (checked every tick)."""

    predicate: Callable[[], bool]


@dataclass
class NetRequest(Request):
    """One network round trip through netd (paper §5.5).

    The requesting thread blocks inside netd until the operation is
    both *affordable* (reserve/pool gating) and *complete* (transfer
    finished).  The engine returns a :class:`NetReply`.
    """

    bytes_out: int = 0
    bytes_in: int = 0
    #: Datagram count hint for per-packet cost (0 = derive from bytes).
    packets: int = 0
    #: Destination tag, resolved against the synthetic remote servers.
    destination: str = "echo"
    #: Optional application payload interpreted by the remote server.
    payload: Any = None

    def total_bytes(self) -> int:
        return max(0, self.bytes_out) + max(0, self.bytes_in)

    def total_packets(self, mtu: int = 1500) -> int:
        if self.packets > 0:
            return self.packets
        return max(1, math.ceil(self.total_bytes() / mtu))


@dataclass
class NetReply:
    """What a completed NetRequest resumes with."""

    bytes_out: int
    bytes_in: int
    #: Energy billed to the caller for this operation (joules).
    billed_joules: float
    #: Time the operation spent blocked waiting for energy.
    wait_seconds: float
    #: Application-level response from the remote server, if any.
    response: Any = None


@dataclass
class ServiceCall(Request):
    """A blocking call into an engine-attached daemon (GPS et al.).

    ``submit(thread)`` runs when the engine first services the request
    and returns an opaque operation handle; the engine then polls
    ``poll(op)`` every pump until it returns a non-None reply, which
    resumes the process.  This is the generic shape of
    ``NetRequest``'s netd plumbing: a daemon that also registers an
    :class:`~repro.sim.events.EventSource` (so completion instants are
    declared as events) lets the engine macro-step straight through
    the wait — unlike ``WaitFor``, whose every-tick predicate vetoes
    fast-forward.
    """

    submit: Callable[[Thread], Any]
    poll: Callable[[Any], Optional[Any]]


@dataclass
class Fork(Request):
    """Spawn a child process; resumes with the child's Process."""

    program: Callable[["ProcessContext"], Generator]
    name: str = ""
    #: Optional hook run on the child Process before it first runs —
    #: Figure 9's B uses this to wire the child's reserve and taps.
    setup: Optional[Callable[["Process"], None]] = None


class Exit(Request):
    """Terminate the process."""


# ---------------------------------------------------------------------------
# process machinery
# ---------------------------------------------------------------------------


class ProcessContext:
    """The userspace environment handed to every program."""

    def __init__(self, system: "CinderSystem", process: "Process") -> None:
        self.system = system
        self.process = process

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.system.clock.now

    @property
    def thread(self) -> Thread:
        """The process's kernel thread."""
        return self.process.thread

    def reserve_level(self) -> float:
        """Level of the active reserve — the §5.3 adaptation signal."""
        return self.process.thread.active_reserve.level


class Process:
    """A running program: generator + kernel thread + request state."""

    def __init__(self, name: str, thread: Thread,
                 program: Callable[[ProcessContext], Generator],
                 context: ProcessContext) -> None:
        self.name = name
        self.thread = thread
        self._generator = program(context)
        self.context = context
        #: The request currently being serviced (None before first run
        #: and after exit).
        self.current: Optional[Request] = None
        #: Value to send into the generator at the next resume.
        self.pending_result: Any = None
        self.started = False
        self.finished = False
        #: Engine-assigned spawn sequence number; the pump resumes
        #: same-tick candidates in this order, matching the seed
        #: engine's single pass over ``processes``.
        self.spawn_order = -1
        #: Remaining busy time for an in-flight CpuBurn.
        self.burn_remaining = 0.0
        #: Accounting: number of requests issued, by type name.
        self.request_counts: dict = {}

    # -- generator stepping ---------------------------------------------------

    def advance(self) -> Optional[Request]:
        """Resume the generator; stash and return the next request.

        Returns None when the program has exited.  The engine — not
        the process — decides *when* to call this.
        """
        if self.finished:
            return None
        try:
            if not self.started:
                self.started = True
                request = next(self._generator)
            else:
                result, self.pending_result = self.pending_result, None
                request = self._generator.send(result)
        except StopIteration:
            self._finish()
            return None
        if isinstance(request, Exit):
            self._generator.close()
            self._finish()
            return None
        if not isinstance(request, Request):
            raise SimulationError(
                f"process {self.name!r} yielded {request!r}, not a Request")
        self.current = request
        name = type(request).__name__
        self.request_counts[name] = self.request_counts.get(name, 0) + 1
        if isinstance(request, CpuBurn):
            self.burn_remaining = request.seconds
            self.thread.state = ThreadState.RUNNABLE
        elif isinstance(request, (Sleep, SleepUntil)):
            self.thread.state = ThreadState.SLEEPING
            self.thread.wake_at = (
                self.context.now + request.seconds
                if isinstance(request, Sleep) else request.deadline)
        else:
            self.thread.state = ThreadState.BLOCKED
        return request

    def _finish(self) -> None:
        self.finished = True
        self.current = None
        self.thread.state = ThreadState.DEAD

    def complete_current(self, result: Any = None) -> None:
        """Mark the current request done; generator resumes next tick."""
        self.current = None
        self.pending_result = result

    # -- predicates the engine polls ----------------------------------------------

    def wants_cpu(self) -> bool:
        """True if the process is inside a CpuBurn."""
        return (not self.finished and isinstance(self.current, CpuBurn))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "finished" if self.finished else type(self.current).__name__
        return f"<Process {self.name!r} {status}>"
