"""The simulation clock.

A single monotonically advancing float, shared by everything: the
resource graph's batch flow, the scheduler, the radio's idle timer and
the power meter.  Fixed-tick advancement mirrors the paper's kernel,
which flows taps "during scheduler timer interrupts" (§7.1).
"""

from __future__ import annotations

from ..errors import SimulationError


class Clock:
    """Monotonic simulation time with a fixed tick."""

    def __init__(self, tick_s: float = 0.01) -> None:
        if tick_s <= 0:
            raise SimulationError("tick must be positive")
        self.tick_s = tick_s
        self._now = 0.0
        self._ticks = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def ticks(self) -> int:
        """Number of ticks taken so far."""
        return self._ticks

    def advance(self) -> float:
        """Advance one tick; returns the new time.

        Time is computed as ``ticks * tick_s`` rather than accumulated
        addition, so long runs do not drift from float rounding.
        """
        self._ticks += 1
        self._now = self._ticks * self.tick_s
        return self._now

    def advance_many(self, n: int) -> float:
        """Advance ``n`` whole ticks at once (idle fast-forward).

        Identical to ``n`` calls of :meth:`advance`; time stays
        ``ticks * tick_s`` so fast-forwarded runs land on exactly the
        same tick instants as tick-by-tick runs.
        """
        if n < 0:
            raise SimulationError("cannot advance a negative tick count")
        self._ticks += n
        self._now = self._ticks * self.tick_s
        return self._now

    def ticks_until(self, deadline: float) -> int:
        """Whole ticks remaining until ``deadline`` (0 if passed)."""
        if deadline <= self._now:
            return 0
        import math
        return math.ceil((deadline - self._now) / self.tick_s - 1e-9)


class ClockNow:
    """A picklable ``() -> clock.now`` accessor.

    Components that need to read the clock (netd, ledgers, sensor
    daemons) take a plain callable; a lambda closing over the clock
    would make the whole device unpicklable, which the barrier
    checkpoints in :mod:`repro.sim.checkpoint` cannot afford.
    """

    __slots__ = ("clock",)

    def __init__(self, clock: "Clock") -> None:
        self.clock = clock

    def __call__(self) -> float:
        return self.clock.now


class ClockTicks:
    """A picklable ``() -> clock.ticks`` accessor (see :class:`ClockNow`)."""

    __slots__ = ("clock",)

    def __init__(self, clock: "Clock") -> None:
        self.clock = clock

    def __call__(self) -> int:
        return self.clock.ticks
