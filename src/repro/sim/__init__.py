"""Discrete-time simulation: clock, processes, engine, worlds, traces."""

from .checkpoint import (Checkpoint, restore_snapshot, snapshot_world,
                         world_digest)
from .clock import Clock
from .engine import CinderSystem, DeviceRuntime
from .events import EventSource, Horizon
from .faults import FaultEvent, FaultPlan
from .process import (CpuBurn, Exit, Fork, NetReply, NetRequest, Process,
                      ProcessContext, Request, ServiceCall, Sleep,
                      SleepUntil, WaitFor)
from .hostd import HostHandle
from .shards import (DeviceDigest, FleetReport, RecoveryEvent,
                     ShardedWorld, ShardReport)
from .trace import TimeSeries, TraceRecorder
from .workload import (batch_downloader, fleet_of_pollers,
                       foreground_poller, forking_spinner,
                       keepalive_sender, periodic_poller, poller_shard,
                       spinner, timed_spinner)
from .world import World

__all__ = [
    "Checkpoint", "Clock", "CinderSystem", "DeviceRuntime", "EventSource",
    "FaultEvent", "FaultPlan", "Horizon", "restore_snapshot",
    "snapshot_world", "world_digest",
    "World", "CpuBurn", "Exit", "Fork", "NetReply", "NetRequest", "Process",
    "ProcessContext", "Request", "ServiceCall", "Sleep", "SleepUntil",
    "WaitFor", "TimeSeries", "TraceRecorder", "DeviceDigest", "FleetReport",
    "HostHandle", "RecoveryEvent",
    "ShardReport", "ShardedWorld", "batch_downloader", "fleet_of_pollers",
    "foreground_poller", "forking_spinner", "keepalive_sender",
    "periodic_poller", "poller_shard", "spinner", "timed_spinner",
]
