"""Discrete-time simulation: clock, processes, engine, traces."""

from .clock import Clock
from .engine import CinderSystem
from .process import (CpuBurn, Exit, Fork, NetReply, NetRequest, Process,
                      ProcessContext, Request, Sleep, SleepUntil, WaitFor)
from .trace import TimeSeries, TraceRecorder
from .workload import (batch_downloader, forking_spinner, keepalive_sender,
                       periodic_poller, spinner, timed_spinner)

__all__ = [
    "Clock", "CinderSystem", "CpuBurn", "Exit", "Fork", "NetReply",
    "NetRequest", "Process", "ProcessContext", "Request", "Sleep",
    "SleepUntil", "WaitFor", "TimeSeries", "TraceRecorder",
    "batch_downloader", "forking_spinner", "keepalive_sender",
    "periodic_poller", "spinner", "timed_spinner",
]
