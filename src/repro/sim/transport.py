"""Socket shard transport: framing, timeouts, reconnect, heartbeats.

The wire tier under :mod:`repro.sim.hostd` and the ``ShardedWorld``
``transport="sockets"`` mode.  The worker protocol was already
message-shaped (build / advance-to-barrier / digest); this module
gives those messages a real transport so shards can live in daemon
processes reached only by TCP — today a localhost multi-daemon
topology, by construction the same wire format a multi-host fleet
speaks.

The contract, piece by piece:

* **Framing** — every message is one length-prefixed pickle frame: an
  8-byte big-endian length followed by the payload
  (:func:`send_msg` / :func:`recv_msg`).  Frames are bounded
  (:data:`MAX_FRAME_BYTES`) so a corrupt length prefix fails loudly
  instead of allocating the moon.
* **Per-message deadlines** — send and recv each take a ``timeout_s``
  enforced across the *whole* frame (a peer trickling one byte per
  second cannot stall past the deadline).  A miss raises
  :class:`~repro.errors.TransportTimeout`; any other socket failure
  (peer closed mid-frame, reset) raises
  :class:`~repro.errors.TransportError`.
* **Bounded exponential-backoff reconnect** — :func:`connect` retries
  a refused/reset dial ``attempts`` times, sleeping
  ``backoff_s * 2**(attempt-1)`` between tries, then gives up with
  :class:`~repro.errors.HostUnreachable`.  The schedule matches the
  supervisor's retry backoff so the two ladders compose predictably.
* **Request/response with sequence numbers** — a :class:`SlotClient`
  tags every request with a monotonically increasing ``seq`` and
  collects replies until the matching ``seq`` arrives, *discarding*
  stale or duplicated replies — a ``dup_msg`` network fault is
  absorbed here, invisibly to the supervisor.
* **Liveness heartbeats** — :meth:`SlotClient.collect` accepts a
  ``probe`` callable invoked every ``probe_interval_s`` while a reply
  is pending.  The supervisor passes the host's heartbeat (process
  liveness + a TCP ``ping`` verb answered outside the slot locks), so
  a dead or partitioned host is detected between barriers in
  heartbeat time instead of only at the barrier deadline — and a
  fleet with ``barrier_timeout_s=None`` still recovers from host
  crashes.

Everything here is parent-side policy-free: drop/delay/dup faults are
*executed* daemon-side (:mod:`repro.sim.hostd`) against the reply,
and partitions are a parent-side gate (``SlotClient`` ``gate``
callable) — this module just surfaces the resulting timeouts and
unreachability as typed errors for the supervisor's ladder.
"""

from __future__ import annotations

import pickle
import socket
import struct
import time
from typing import Callable, Optional, Tuple

from ..errors import HostUnreachable, TransportError, TransportTimeout

#: Frame header: unsigned 64-bit big-endian payload length.
_HEADER = struct.Struct(">Q")

#: Upper bound on a single frame's payload (a full 1k-device shard
#: digest is well under a megabyte; anything near this is corruption).
MAX_FRAME_BYTES = 1 << 30

#: Default dial behaviour: 5 attempts, 50 ms doubling backoff —
#: ~0.8 s worst case before a host is declared unreachable.
CONNECT_ATTEMPTS = 5
CONNECT_BACKOFF_S = 0.05
CONNECT_TIMEOUT_S = 5.0

#: Default cadence for liveness probes while a reply is pending.
HEARTBEAT_INTERVAL_S = 0.5

Address = Tuple[str, int]


def _recv_exact(sock: socket.socket, count: int,
                deadline: Optional[float]) -> bytes:
    """Read exactly ``count`` bytes, honoring one deadline overall."""
    buf = bytearray()
    while len(buf) < count:
        if deadline is None:
            sock.settimeout(None)
        else:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportTimeout(
                    f"recv deadline passed with {count - len(buf)} of "
                    f"{count} bytes outstanding")
            sock.settimeout(remaining)
        try:
            chunk = sock.recv(min(count - len(buf), 1 << 20))
        except socket.timeout as exc:
            raise TransportTimeout(
                f"recv timed out with {count - len(buf)} of {count} "
                f"bytes outstanding") from exc
        except OSError as exc:
            raise TransportError(f"recv failed: {exc!r}") from exc
        if not chunk:
            raise TransportError("peer closed the connection mid-frame")
        buf += chunk
    return bytes(buf)


def send_msg(sock: socket.socket, obj: object,
             timeout_s: Optional[float] = None) -> None:
    """Send one length-prefixed pickle frame, whole or not at all."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"refusing to send a {len(payload)}-byte frame")
    sock.settimeout(timeout_s)
    try:
        sock.sendall(_HEADER.pack(len(payload)) + payload)
    except socket.timeout as exc:
        raise TransportTimeout(
            f"send of {len(payload)} bytes timed out") from exc
    except OSError as exc:
        raise TransportError(f"send failed: {exc!r}") from exc


def recv_msg(sock: socket.socket,
             timeout_s: Optional[float] = None) -> object:
    """Receive one frame; the deadline covers header and payload."""
    deadline = (None if timeout_s is None
                else time.monotonic() + timeout_s)
    header = _recv_exact(sock, _HEADER.size, deadline)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame header claims {length} bytes — corrupt stream")
    payload = _recv_exact(sock, length, deadline)
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise TransportError(f"frame failed to unpickle: {exc!r}") from exc


class Connection:
    """One framed TCP connection with per-message deadlines."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock

    def send(self, obj: object,
             timeout_s: Optional[float] = None) -> None:
        send_msg(self._sock, obj, timeout_s)

    def recv(self, timeout_s: Optional[float] = None) -> object:
        return recv_msg(self._sock, timeout_s)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close races are benign
            pass


def connect(address: Address, *,
            attempts: int = CONNECT_ATTEMPTS,
            backoff_s: float = CONNECT_BACKOFF_S,
            timeout_s: float = CONNECT_TIMEOUT_S,
            gate: Optional[Callable[[], None]] = None) -> Connection:
    """Dial ``address`` with bounded exponential-backoff retries.

    ``gate`` (when given) is invoked before every attempt; the
    supervisor uses it to make a partitioned host fail fast instead of
    burning the whole backoff schedule against a reachable-but-severed
    daemon.  Raises :class:`HostUnreachable` once the budget is spent.
    """
    last: Optional[Exception] = None
    for attempt in range(1, max(1, attempts) + 1):
        if gate is not None:
            gate()
        try:
            sock = socket.create_connection(address, timeout=timeout_s)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return Connection(sock)
        except OSError as exc:
            last = exc
            if attempt < attempts:
                time.sleep(backoff_s * (2 ** (attempt - 1)))
    raise HostUnreachable(
        f"host {address[0]}:{address[1]} unreachable after "
        f"{attempts} connect attempts ({last!r})")


class SlotClient:
    """The request/response channel for one shard slot on one host.

    Lazily connected (so a client can be constructed for a host that
    is still booting), sequence-numbered (so duplicated or stale
    replies are discarded at the framing layer), and probe-aware (so
    long waits detect host death in heartbeat time).  A transport
    failure poisons the connection; the next request redials through
    the backoff schedule.
    """

    def __init__(self, address: Address, slot: int, *,
                 gate: Optional[Callable[[], None]] = None,
                 connect_attempts: int = CONNECT_ATTEMPTS,
                 connect_backoff_s: float = CONNECT_BACKOFF_S) -> None:
        self.address = address
        self.slot = slot
        self._gate = gate
        self._connect_attempts = connect_attempts
        self._connect_backoff_s = connect_backoff_s
        self._conn: Optional[Connection] = None
        self._seq = 0

    def _ensure(self) -> Connection:
        if self._conn is None:
            self._conn = connect(
                self.address, attempts=self._connect_attempts,
                backoff_s=self._connect_backoff_s, gate=self._gate)
        return self._conn

    def _reset(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def begin(self, verb: str, fault=None, **payload) -> int:
        """Send one request; the reply is claimed by :meth:`collect`."""
        if self._gate is not None:
            self._gate()
        conn = self._ensure()
        self._seq += 1
        message = {"verb": verb, "slot": self.slot, "seq": self._seq,
                   "fault": fault}
        message.update(payload)
        try:
            conn.send(message, timeout_s=CONNECT_TIMEOUT_S)
        except TransportError:
            self._reset()
            raise
        return self._seq

    def collect(self, timeout_s: Optional[float] = None,
                probe: Optional[Callable[[], None]] = None,
                probe_interval_s: float = HEARTBEAT_INTERVAL_S) -> object:
        """Wait for the pending request's reply.

        Replies whose ``seq`` trails the pending request are stale or
        duplicated and are dropped silently.  While waiting, ``probe``
        runs every ``probe_interval_s`` — it raises
        :class:`HostUnreachable` when the host is dead, which
        propagates immediately instead of waiting out ``timeout_s``.
        """
        want = self._seq
        conn = self._ensure()
        deadline = (None if timeout_s is None
                    else time.monotonic() + timeout_s)
        while True:
            if self._gate is not None:
                self._gate()
            if deadline is None:
                slice_s = probe_interval_s if probe is not None else None
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._reset()
                    raise TransportTimeout(
                        f"slot {self.slot} reply (seq {want}) missed "
                        f"its {timeout_s:.3f}s deadline")
                slice_s = (min(remaining, probe_interval_s)
                           if probe is not None else remaining)
            try:
                reply = conn.recv(timeout_s=slice_s)
            except TransportTimeout:
                if probe is not None:
                    probe()
                if deadline is not None \
                        and time.monotonic() >= deadline:
                    self._reset()
                    raise TransportTimeout(
                        f"slot {self.slot} reply (seq {want}) missed "
                        f"its {timeout_s:.3f}s deadline")
                continue
            except TransportError:
                self._reset()
                raise
            if not isinstance(reply, dict) or reply.get("seq") != want:
                continue  # stale or duplicated reply: discard
            if not reply.get("ok"):
                raise TransportError(
                    f"slot {self.slot} remote "
                    f"{reply.get('kind', 'error')}: "
                    f"{reply.get('error', 'unknown failure')}")
            return reply.get("result")

    def call(self, verb: str, timeout_s: Optional[float] = None,
             probe: Optional[Callable[[], None]] = None,
             probe_interval_s: float = HEARTBEAT_INTERVAL_S,
             fault=None, **payload) -> object:
        """One synchronous request/response round trip."""
        self.begin(verb, fault=fault, **payload)
        return self.collect(timeout_s, probe, probe_interval_s)

    def close(self) -> None:
        self._reset()
