"""Process-sharded fleets: Worlds partitioned across worker processes.

A :class:`~repro.sim.world.World` is single-process by design — its
devices share one Python interpreter no matter how idle they are.
Devices are, however, mutually independent: they share nothing but
the *stateless* synthetic remote-host universe, so a fleet partitions
cleanly.  :class:`ShardedWorld` splits the device index range across
**shards**, each a worker process owning one world slice, and drives
them barrier-to-barrier:

* every shard is one single-worker ``ProcessPoolExecutor`` — the
  one-worker pool pins shard state (the built world) to its process
  across task submissions;
* devices are constructed *inside* the worker by a picklable
  ``builder(world, lo, hi)`` callable (simulated programs are live
  generators and cannot cross a process boundary), indexed by global
  device position so shard membership cannot change a device's seed,
  stagger, or name — device ``i`` is bit-identical however the fleet
  is partitioned;
* ``run`` advances every shard to a shared **clock barrier** (the
  deadline, or every ``barrier_s`` on the fleet's LCM tick grid) and
  blocks until all shards arrive, so the fleet observes a consistent
  global time at every barrier;
* results come back as picklable :class:`DeviceDigest` records — the
  per-device counters and levels the parity tests and benches
  compare — aggregated into one :class:`FleetReport`.

``shards=0`` runs the identical partition logic inline (one world,
no processes): the differential oracle that sharded execution is
sample-identical to sequential execution.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import SimulationError
from .world import World

#: The module-global world a shard worker process owns.
_SHARD_WORLD: Optional[World] = None


@dataclass
class DeviceDigest:
    """The picklable per-device summary a shard reports back."""

    name: str
    index: int
    ticks: int
    now: float
    fast_forwarded_ticks: int
    span_refusals: int
    radio_activations: int
    netd_operations: int
    netd_wait_seconds: float
    netd_pool_level: float
    battery_charge_joules: float
    meter_energy_joules: float
    meter_samples: int
    reserve_levels: List[float]
    conservation_error: float


@dataclass
class ShardReport:
    """One shard's outcome: digests plus scheduler telemetry."""

    shard: int
    lo: int
    hi: int
    wall_s: float
    macro_steps: int
    tick_steps: int
    fast_forwarded_ticks: int
    cohort_spans: int
    cohort_fallbacks: int
    digests: List[DeviceDigest] = field(default_factory=list)


@dataclass
class FleetReport:
    """The aggregated result of a sharded run."""

    devices: int
    shards: int
    simulated_s: float
    wall_s: float
    shard_walls: List[float]
    reports: List[ShardReport]

    @property
    def digests(self) -> List[DeviceDigest]:
        """Every device digest, in global device order."""
        out = [d for report in self.reports for d in report.digests]
        out.sort(key=lambda d: d.index)
        return out

    def total_metered_energy(self) -> float:
        return sum(d.meter_energy_joules for d in self.digests)

    def total_radio_activations(self) -> int:
        return sum(d.radio_activations for d in self.digests)

    def worst_conservation_error(self) -> float:
        return max((abs(d.conservation_error) for d in self.digests),
                   default=0.0)


def _digest_devices(world: World, lo: int) -> List[DeviceDigest]:
    digests = []
    for offset, device in enumerate(world.devices):
        name = next(name for name, d in world._by_name.items()
                    if d is device)
        digests.append(DeviceDigest(
            name=name,
            index=lo + offset,
            ticks=device.clock.ticks,
            now=device.clock.now,
            fast_forwarded_ticks=device.fast_forwarded_ticks,
            span_refusals=device.span_refusals,
            radio_activations=device.radio.activation_count,
            netd_operations=device.netd.stats.operations,
            netd_wait_seconds=device.netd.stats.total_wait_seconds,
            netd_pool_level=device.netd.pool.level,
            battery_charge_joules=device.battery.charge_joules,
            meter_energy_joules=device.meter.total_energy_joules,
            meter_samples=len(device.meter.samples()[0]),
            reserve_levels=[r.level for r in device.graph.reserves],
            conservation_error=device.graph.conservation_error(),
        ))
    return digests


def _shard_build(builder: Callable, lo: int, hi: int,
                 world_kwargs: Dict) -> int:
    """Worker-side: construct this shard's world slice."""
    global _SHARD_WORLD
    _SHARD_WORLD = World(**world_kwargs)
    builder(_SHARD_WORLD, lo, hi)
    return len(_SHARD_WORLD.devices)


def _shard_run(chunk_s: float, independent: Optional[bool]) -> float:
    """Worker-side: advance this shard to the next barrier."""
    assert _SHARD_WORLD is not None
    _SHARD_WORLD.run(chunk_s, independent=independent)
    return _SHARD_WORLD.now


def _shard_finish(shard: int, lo: int, hi: int,
                  wall_s: float) -> ShardReport:
    """Worker-side: digest this shard's devices."""
    world = _SHARD_WORLD
    assert world is not None
    return ShardReport(
        shard=shard, lo=lo, hi=hi, wall_s=wall_s,
        macro_steps=world.macro_steps, tick_steps=world.tick_steps,
        fast_forwarded_ticks=world.fast_forwarded_ticks,
        cohort_spans=world.cohort_spans,
        cohort_fallbacks=world.cohort_fallbacks,
        digests=_digest_devices(world, lo))


class ShardedWorld:
    """A fleet partitioned across single-worker process pools.

    ``builder(world, lo, hi)`` must be picklable (a module-level
    function or :func:`functools.partial` over one — e.g.
    :func:`repro.sim.workload.poller_shard`) and must key every
    device off its *global* index so partitioning is invisible to the
    simulation.  ``world_kwargs`` are forwarded to each shard's
    :class:`~repro.sim.world.World` (tick, seed, fast-forward,
    batching); every shard gets identical values, which keeps
    index-derived seeds partition-independent.
    """

    def __init__(self, builder: Callable, count: int,
                 shards: Optional[int] = None,
                 **world_kwargs) -> None:
        if count <= 0:
            raise SimulationError("fleet size must be positive")
        if shards is None:
            shards = min(os.cpu_count() or 1, count)
        if shards < 0 or shards > count:
            raise SimulationError(
                f"shard count {shards} must be in [0, {count}]")
        self.builder = builder
        self.count = count
        self.shards = shards
        self.world_kwargs = dict(world_kwargs)
        #: Inline world (``shards=0``): built lazily on first run.
        self._inline: Optional[World] = None

    def partitions(self) -> List[tuple]:
        """``(lo, hi)`` device ranges, one per shard, sizes within 1."""
        shards = max(1, self.shards)
        base = self.count // shards
        extra = self.count % shards
        ranges = []
        lo = 0
        for s in range(shards):
            hi = lo + base + (1 if s < extra else 0)
            ranges.append((lo, hi))
            lo = hi
        return ranges

    def run(self, duration_s: float,
            barrier_s: Optional[float] = None,
            independent: Optional[bool] = True) -> FleetReport:
        """Advance the fleet; returns the aggregated digests.

        A fresh run builds fresh shards (each invocation is one
        experiment).  With processes, shard worlds advance in
        parallel between barriers; inline (``shards=0``) the same
        partitions run sequentially in this process — the
        differential oracle.  ``independent`` selects each shard
        world's scheduler (see :meth:`repro.sim.world.World.run`);
        it defaults to the independent scheduler here because that is
        what makes a device's trajectory *partition-invariant* down
        to the bit: under lockstep, shard membership changes where
        the global min-horizon lands, which perturbs span boundaries
        (events stay identical, levels move within the solver
        tolerance).
        """
        if duration_s < 0:
            raise SimulationError("duration must be non-negative")
        start = time.perf_counter()
        if self.shards == 0:
            report = self._run_inline(duration_s, barrier_s, independent)
        else:
            report = self._run_processes(duration_s, barrier_s,
                                         independent)
        report.wall_s = time.perf_counter() - start
        return report

    def _chunks(self, duration_s: float,
                barrier_s: Optional[float]) -> List[float]:
        if barrier_s is None:
            return [duration_s]
        if barrier_s <= 0:
            raise SimulationError("barrier must be positive")
        chunks = []
        remaining = duration_s
        while remaining > 1e-12:
            chunk = min(barrier_s, remaining)
            chunks.append(chunk)
            remaining -= chunk
        return chunks

    def _run_inline(self, duration_s: float,
                    barrier_s: Optional[float],
                    independent: Optional[bool]) -> FleetReport:
        world = World(**self.world_kwargs)
        self.builder(world, 0, self.count)
        self._inline = world
        for chunk in self._chunks(duration_s, barrier_s):
            world.run(chunk, independent=independent)
        report = ShardReport(
            shard=0, lo=0, hi=self.count, wall_s=0.0,
            macro_steps=world.macro_steps, tick_steps=world.tick_steps,
            fast_forwarded_ticks=world.fast_forwarded_ticks,
            cohort_spans=world.cohort_spans,
            cohort_fallbacks=world.cohort_fallbacks,
            digests=_digest_devices(world, 0))
        return FleetReport(devices=self.count, shards=0,
                           simulated_s=duration_s, wall_s=0.0,
                           shard_walls=[], reports=[report])

    def _run_processes(self, duration_s: float,
                       barrier_s: Optional[float],
                       independent: Optional[bool]) -> FleetReport:
        ranges = self.partitions()
        pools = [ProcessPoolExecutor(max_workers=1) for _ in ranges]
        walls = [0.0] * len(ranges)
        try:
            built = [pool.submit(_shard_build, self.builder, lo, hi,
                                 self.world_kwargs)
                     for pool, (lo, hi) in zip(pools, ranges)]
            for future, (lo, hi) in zip(built, ranges):
                if future.result() != hi - lo:
                    raise SimulationError(
                        f"builder produced the wrong device count for "
                        f"shard [{lo}, {hi})")
            for chunk in self._chunks(duration_s, barrier_s):
                begin = time.perf_counter()
                futures = [pool.submit(_shard_run, chunk, independent)
                           for pool in pools]
                for s, future in enumerate(futures):
                    future.result()  # the clock barrier
                    walls[s] += time.perf_counter() - begin
            reports = [
                pool.submit(_shard_finish, s, lo, hi, walls[s]).result()
                for s, (pool, (lo, hi)) in enumerate(zip(pools, ranges))]
        finally:
            for pool in pools:
                pool.shutdown(wait=False, cancel_futures=True)
        return FleetReport(devices=self.count, shards=len(ranges),
                           simulated_s=duration_s, wall_s=0.0,
                           shard_walls=walls, reports=reports)
