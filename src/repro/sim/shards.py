"""Process-sharded fleets: Worlds partitioned across worker processes.

A :class:`~repro.sim.world.World` is single-process by design — its
devices share one Python interpreter no matter how idle they are.
Devices are, however, mutually independent: they share nothing but
the *stateless* synthetic remote-host universe, so a fleet partitions
cleanly.  :class:`ShardedWorld` splits the device index range across
**shards**, each a worker process owning one world slice, and drives
them barrier-to-barrier:

* every shard is one single-worker ``ProcessPoolExecutor`` — the
  one-worker pool pins shard state (the built world) to its process
  across task submissions;
* devices are constructed *inside* the worker by a picklable
  ``builder(world, lo, hi)`` callable (simulated programs are live
  generators and cannot cross a process boundary), indexed by global
  device position so shard membership cannot change a device's seed,
  stagger, or name — device ``i`` is bit-identical however the fleet
  is partitioned;
* ``run`` advances every shard to a shared **clock barrier** (the
  deadline, or every ``barrier_s`` on the fleet's LCM tick grid) and
  blocks until all shards arrive, so the fleet observes a consistent
  global time at every barrier;
* results come back as picklable :class:`DeviceDigest` records — the
  per-device counters and levels the parity tests and benches
  compare — aggregated into one :class:`FleetReport`.

The barrier loop is a **supervisor**, not a bare gather: every shard
future carries a per-barrier timeout, a worker that crashes
(``BrokenProcessPool``), hangs past the deadline, or raises is
recovered through a bounded-retry ladder —

1. terminate + respawn the worker pool (counted in
   :attr:`FleetReport.shard_restarts`),
2. restore the shard to its last barrier checkpoint
   (:mod:`repro.sim.checkpoint`: digest-validated pickle snapshot
   when the state could capture, deterministic rebuild-and-replay
   otherwise), and re-run the lost chunk,
3. after ``max_shard_retries`` failed recoveries, **demote the
   shard's device range to inline execution in the parent** (the
   fleet-level mirror of the cohort scheduler's
   ``cohort_demotions``): the slice is rebuilt from the builder,
   replayed to the current barrier, and runs in-process for the rest
   of the experiment — degraded, never diverged.

Recovery is provably deterministic: the simulation draws no real
entropy, so a restored-or-replayed shard is bit-identical to one
that never failed, and the chaos suite asserts exactly that under
seeded :class:`~repro.sim.faults.FaultPlan` injections.

``transport="sockets"`` lifts the same verbs onto TCP: shards become
**slots** on shard-host daemons (:mod:`repro.sim.hostd`) reached
through length-prefixed pickle frames (:mod:`repro.sim.transport`),
placed by a **placement map** (shard → host) the supervisor owns.
Hosts are a coarser failure domain than workers, so the ladder grows
one rung between restore and inline demotion: when a *host* crashes,
hangs, disconnects or partitions — detected by liveness heartbeats
between barriers, not just barrier deadlines — every shard placed on
it is **rescheduled** onto a surviving host (restored from its last
barrier checkpoint, or rebuilt-and-replayed), and only a fleet with
zero healthy hosts degrades to inline execution in the parent.
Network faults (``drop_msg``/``delay_msg``/``dup_msg``/
``host_crash``/``partition``) inject through the same fire-exactly-
once plan machinery, so socketed chaos runs stay pure functions of
``(fleet seed, fault seed)``.  One caveat: a lost *message* (as
opposed to a lost host) is only detectable by a deadline, so
``drop_msg`` chaos needs ``barrier_timeout_s`` set.

``shards=0`` runs the identical partition logic inline (one world,
no processes): the differential oracle that sharded execution is
sample-identical to sequential execution.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (HostUnreachable, ShardFailure, ShardTimeout,
                      SimulationError, TransportError, TransportTimeout)
from . import checkpoint as _checkpoint
from .faults import (BUILD_KINDS, CORRUPT_DIGEST, NETWORK_KINDS, PARTITION,
                     RUNTIME_KINDS, FaultPlan, apply_runtime_fault)
from .world import World

#: The module-global world a shard worker process owns.
_SHARD_WORLD: Optional[World] = None
#: Sticky capture method: None = untried, else whether pickle worked.
#: A world running live programs refuses to pickle once and the
#: worker stops re-paying the attempt every barrier.
_SHARD_PICKLE_OK: Optional[bool] = None


@dataclass
class DeviceDigest:
    """The picklable per-device summary a shard reports back."""

    name: str
    index: int
    ticks: int
    now: float
    fast_forwarded_ticks: int
    span_refusals: int
    span_segments: int
    span_switches: int
    radio_activations: int
    netd_operations: int
    netd_wait_seconds: float
    netd_pool_level: float
    battery_charge_joules: float
    meter_energy_joules: float
    meter_samples: int
    reserve_levels: List[float]
    conservation_error: float
    #: Spans this device solved inside a stacked cohort call on the
    #: independent (frontier) scheduler.  Excluded from equality (and
    #: from :meth:`FleetReport.digest`): cohort membership depends on
    #: which devices share a shard, so the count is partition-
    #: *dependent* telemetry on a partition-*invariant* trajectory.
    independent_cohort_spans: int = field(default=0, compare=False)


@dataclass
class ShardReport:
    """One shard's outcome: digests plus scheduler telemetry."""

    shard: int
    lo: int
    hi: int
    wall_s: float
    macro_steps: int
    tick_steps: int
    fast_forwarded_ticks: int
    cohort_spans: int
    cohort_fallbacks: int
    #: Frontier rounds and stacked-vs-scalar span counts from this
    #: shard's independent scheduler (zero under lockstep or the
    #: legacy per-device loop).
    independent_rounds: int = 0
    independent_cohort_spans: int = 0
    independent_scalar_spans: int = 0
    digests: List[DeviceDigest] = field(default_factory=list)


@dataclass(frozen=True)
class RecoveryEvent:
    """One rung of the recovery ladder, taken by one shard.

    The machine-readable companion to the human-readable
    :attr:`FleetReport.shard_failures` strings: a degraded chaos run
    is diagnosable from the report alone — which shard, at which
    barrier (``-1`` for the build phase), on which attempt, for what
    cause, and which rung the supervisor took in response.
    """

    shard: int
    barrier: int
    phase: str      #: ``"build"`` / ``"barrier"`` / ``"finish"``
    attempt: int    #: retry-budget attempts consumed so far (host
                    #: losses are mandatory moves and consume none)
    cause: str      #: normalized failure cause (see ``_failure_cause``)
    rung: str       #: ``"retry"`` / ``"reschedule"`` / ``"inline"``
    host: Optional[int] = None  #: destination host (sockets only)


@dataclass
class FleetReport:
    """The aggregated result of a sharded run."""

    devices: int
    shards: int
    simulated_s: float
    wall_s: float
    shard_walls: List[float]
    reports: List[ShardReport]
    #: Supervision telemetry: worker pools terminated and respawned
    #: (crash or missed barrier deadline), barriers that completed
    #: only after at least one recovery, shards demoted to inline
    #: execution in the parent, and the per-shard failure causes
    #: (human-readable ``"barrier k: cause"`` strings, in order).
    shard_restarts: int = 0
    recovered_barriers: int = 0
    degraded_shards: List[int] = field(default_factory=list)
    shard_failures: Dict[int, List[str]] = field(default_factory=dict)
    #: Which tier executed the fleet: ``"inline"`` (``shards=0``),
    #: ``"processes"`` (worker pools) or ``"sockets"`` (shard-host
    #: daemons), and — socketed — how many hosts served it.
    transport: str = "processes"
    hosts: int = 0
    #: Cross-host supervision telemetry (socket transport): shards
    #: moved to a surviving host after a host loss, the human-readable
    #: host-loss log, and the final placement map (shard → host id).
    shard_reschedules: int = 0
    host_failures: List[str] = field(default_factory=list)
    placement: Dict[int, int] = field(default_factory=dict)
    #: Teardown drains that needed force (a worker ignoring SIGTERM
    #: past ``drain_timeout_s``, or a partitioned/unresponsive host
    #: daemon): previously dropped silently, now counted.
    forced_terminations: int = 0
    #: Every recovery-ladder rung taken, in the order the supervisor
    #: took them — the structured mirror of :attr:`shard_failures`.
    recovery_events: List[RecoveryEvent] = field(default_factory=list)

    @property
    def digests(self) -> List[DeviceDigest]:
        """Every device digest, in global device order."""
        out = [d for report in self.reports for d in report.digests]
        out.sort(key=lambda d: d.index)
        return out

    def digest(self) -> str:
        """A stable hash of every device's bit-exact outcome.

        Two runs of the same fleet — fault-free or recovered through
        any number of crashes — must agree on this string; the chaos
        suite pins recovery on it.
        """
        digest = hashlib.sha256()
        for d in self.digests:
            for piece in (
                    d.name, str(d.index), str(d.ticks), d.now.hex(),
                    str(d.fast_forwarded_ticks), str(d.span_refusals),
                    str(d.span_segments), str(d.span_switches),
                    str(d.radio_activations), str(d.netd_operations),
                    d.netd_wait_seconds.hex(), d.netd_pool_level.hex(),
                    d.battery_charge_joules.hex(),
                    d.meter_energy_joules.hex(), str(d.meter_samples),
                    ",".join(level.hex() for level in d.reserve_levels)):
                digest.update(piece.encode())
                digest.update(b"\x1f")
            digest.update(b"\x1e")
        return digest.hexdigest()

    @property
    def independent_rounds(self) -> int:
        """Frontier rounds summed across shards."""
        return sum(r.independent_rounds for r in self.reports)

    @property
    def independent_cohort_spans(self) -> int:
        """Stacked independent-path span solves summed across shards."""
        return sum(r.independent_cohort_spans for r in self.reports)

    @property
    def independent_scalar_spans(self) -> int:
        """Scalar independent-path span solves summed across shards."""
        return sum(r.independent_scalar_spans for r in self.reports)

    def total_metered_energy(self) -> float:
        return sum(d.meter_energy_joules for d in self.digests)

    def total_radio_activations(self) -> int:
        return sum(d.radio_activations for d in self.digests)

    def worst_conservation_error(self) -> float:
        return max((abs(d.conservation_error) for d in self.digests),
                   default=0.0)


def _digest_devices(world: World, lo: int) -> List[DeviceDigest]:
    digests = []
    for offset, device in enumerate(world.devices):
        name = next(name for name, d in world._by_name.items()
                    if d is device)
        digests.append(DeviceDigest(
            name=name,
            index=lo + offset,
            ticks=device.clock.ticks,
            now=device.clock.now,
            fast_forwarded_ticks=device.fast_forwarded_ticks,
            span_refusals=device.span_refusals,
            span_segments=device.span_segments,
            span_switches=device.graph.span_switches,
            radio_activations=device.radio.activation_count,
            netd_operations=device.netd.stats.operations,
            netd_wait_seconds=device.netd.stats.total_wait_seconds,
            netd_pool_level=device.netd.pool.level,
            battery_charge_joules=device.battery.charge_joules,
            meter_energy_joules=device.meter.total_energy_joules,
            meter_samples=device.meter.sample_count,
            reserve_levels=[r.level for r in device.graph.reserves],
            conservation_error=device.graph.conservation_error(),
            independent_cohort_spans=device.independent_cohort_spans,
        ))
    return digests


def _shard_build(builder: Callable, lo: int, hi: int,
                 world_kwargs: Dict, fault=None) -> int:
    """Worker-side: construct this shard's world slice."""
    global _SHARD_WORLD, _SHARD_PICKLE_OK
    if fault is not None and fault.kind in BUILD_KINDS:
        raise ShardFailure(
            f"injected builder fault (shard slice [{lo}, {hi}))")
    _SHARD_WORLD = World(**world_kwargs)
    _SHARD_PICKLE_OK = None
    builder(_SHARD_WORLD, lo, hi)
    return len(_SHARD_WORLD.devices)


def _shard_run(chunk_s: float, independent: Optional[bool],
               barrier: int, want_checkpoint: bool,
               fault=None) -> Tuple[float, float, Optional[object]]:
    """Worker-side: advance this shard to the next barrier.

    Returns ``(now, wall_s, checkpoint)`` — the wall is measured
    *here*, around this shard's own work, so shard *s* is no longer
    charged for the time the parent spent blocked on shards
    ``0..s-1``'s results.  The checkpoint (when requested) captures
    the post-barrier state for crash recovery.
    """
    global _SHARD_PICKLE_OK
    assert _SHARD_WORLD is not None
    apply_runtime_fault(fault)
    begin = time.perf_counter()
    _SHARD_WORLD.run(chunk_s, independent=independent)
    ckpt = None
    if want_checkpoint:
        ckpt = _checkpoint.capture(_SHARD_WORLD, barrier + 1,
                                   try_pickle=_SHARD_PICKLE_OK is not False)
        _SHARD_PICKLE_OK = ckpt.method == _checkpoint.METHOD_PICKLE
        if fault is not None and fault.kind == CORRUPT_DIGEST:
            ckpt = dataclasses.replace(
                ckpt, digest="corrupt:" + ckpt.digest[8:])
    wall = time.perf_counter() - begin
    return _SHARD_WORLD.now, wall, ckpt


def _shard_restore(ckpt, builder: Callable, lo: int, hi: int,
                   world_kwargs: Dict, chunks: Sequence[float],
                   independent: Optional[bool]) -> float:
    """Worker-side: reload the last barrier state after a respawn."""
    global _SHARD_WORLD, _SHARD_PICKLE_OK
    _SHARD_WORLD = _checkpoint.restore(
        ckpt, builder=builder, lo=lo, hi=hi, world_kwargs=world_kwargs,
        chunks=chunks, independent=independent)
    _SHARD_PICKLE_OK = None
    return _SHARD_WORLD.now


def _shard_finish(shard: int, lo: int, hi: int,
                  wall_s: float) -> ShardReport:
    """Worker-side: digest this shard's devices."""
    world = _SHARD_WORLD
    assert world is not None
    return _world_report(world, shard, lo, hi, wall_s)


def _world_report(world: World, shard: int, lo: int, hi: int,
                  wall_s: float) -> ShardReport:
    return ShardReport(
        shard=shard, lo=lo, hi=hi, wall_s=wall_s,
        macro_steps=world.macro_steps, tick_steps=world.tick_steps,
        fast_forwarded_ticks=world.fast_forwarded_ticks,
        cohort_spans=world.cohort_spans,
        cohort_fallbacks=world.cohort_fallbacks,
        independent_rounds=world.barrier_rounds,
        independent_cohort_spans=world.independent_cohort_spans,
        independent_scalar_spans=world.independent_scalar_spans,
        digests=_digest_devices(world, lo))


class _Shard:
    """Parent-side supervision state for one shard."""

    __slots__ = ("index", "lo", "hi", "pool", "ckpt", "inline_world",
                 "future")

    def __init__(self, index: int, lo: int, hi: int) -> None:
        self.index = index
        self.lo = lo
        self.hi = hi
        self.pool: Optional[ProcessPoolExecutor] = None
        #: Last completed barrier checkpoint (None until barrier 1).
        self.ckpt = None
        #: Set on demotion: the slice now runs in the parent.
        self.inline_world: Optional[World] = None
        self.future = None


class _SocketShard:
    """Parent-side supervision state for one socketed shard.

    The socket analogue of :class:`_Shard`: instead of a pool it
    holds the shard's current host and slot channel.  Every recovery
    attempt gets a *fresh slot id* — a hung daemon thread may still be
    mutating the abandoned slot's world, so retried state must never
    share it (the stale slot leaks harmlessly in daemon memory).
    """

    __slots__ = ("index", "lo", "hi", "host", "client", "ckpt",
                 "inline_world", "submitted", "submit_exc")

    def __init__(self, index: int, lo: int, hi: int) -> None:
        self.index = index
        self.lo = lo
        self.hi = hi
        self.host = None
        self.client = None
        self.ckpt = None
        self.inline_world: Optional[World] = None
        #: Whether a request is in flight; a failed submission parks
        #: its exception here for the collect loop to recover from.
        self.submitted = False
        self.submit_exc: Optional[BaseException] = None


class ShardedWorld:
    """A fleet partitioned across single-worker process pools.

    ``builder(world, lo, hi)`` must be picklable (a module-level
    function or :func:`functools.partial` over one — e.g.
    :func:`repro.sim.workload.poller_shard`) and must key every
    device off its *global* index so partitioning is invisible to the
    simulation.  ``world_kwargs`` are forwarded to each shard's
    :class:`~repro.sim.world.World` (tick, seed, fast-forward,
    batching); every shard gets identical values, which keeps
    index-derived seeds partition-independent.

    Supervision knobs:

    * ``barrier_timeout_s`` — per-barrier deadline on each shard
      future; ``None`` (the default) waits forever, so only hard
      crashes trigger recovery.  Restore futures scale the deadline
      by the number of chunks they may replay.
    * ``max_shard_retries`` — recoveries attempted per barrier before
      the shard demotes to inline execution in the parent.
    * ``retry_backoff_s`` — base of the exponential backoff between
      recovery attempts.
    * ``checkpoint`` — capture worker-side barrier checkpoints
      (snapshot or replay recipe; see :mod:`repro.sim.checkpoint`).
      Disabled, recovery still works — it rebuilds and replays from
      time zero — but pays the full replay on every failure.
    * ``fault_plan`` — a seeded :class:`~repro.sim.faults.FaultPlan`
      injecting deterministic worker crashes/hangs/corruptions (and,
      socketed, network faults), for chaos tests; the plan is rewound
      at the start of every run.
    * ``transport`` — ``"processes"`` (single-worker pools, the
      default) or ``"sockets"`` (shard slots on
      :mod:`repro.sim.hostd` daemons reached over TCP).
    * ``hosts`` — shard-host daemon count for the socket transport
      (default: ``min(2, shards)``, so there is a failover target
      whenever the fleet has one to give).
    * ``heartbeat_s`` — liveness-probe cadence while a socketed reply
      is pending: each heartbeat checks the partition gate, the
      daemon process and a TCP ``ping``, so a dead host is detected
      between barriers even with ``barrier_timeout_s=None``.
    * ``drain_timeout_s`` — how long teardown waits for a worker
      process (or host daemon) to exit before escalating to a forced
      kill; forced kills are counted in
      :attr:`FleetReport.forced_terminations`.
    """

    def __init__(self, builder: Callable, count: int,
                 shards: Optional[int] = None,
                 barrier_timeout_s: Optional[float] = None,
                 max_shard_retries: int = 2,
                 retry_backoff_s: float = 0.05,
                 checkpoint: bool = True,
                 fault_plan: Optional[FaultPlan] = None,
                 transport: str = "processes",
                 hosts: Optional[int] = None,
                 heartbeat_s: float = 0.5,
                 drain_timeout_s: float = 5.0,
                 **world_kwargs) -> None:
        if count <= 0:
            raise SimulationError("fleet size must be positive")
        if shards is None:
            shards = min(os.cpu_count() or 1, count)
        if shards < 0 or shards > count:
            raise SimulationError(
                f"shard count {shards} must be in [0, {count}]")
        if barrier_timeout_s is not None and barrier_timeout_s <= 0:
            raise SimulationError("barrier timeout must be positive")
        if max_shard_retries < 0:
            raise SimulationError("retry count must be non-negative")
        if transport not in ("processes", "sockets"):
            raise SimulationError(
                f"unknown transport {transport!r} "
                f"(expected 'processes' or 'sockets')")
        if hosts is not None:
            if transport != "sockets":
                raise SimulationError(
                    "hosts is only meaningful with transport='sockets'")
            if hosts <= 0:
                raise SimulationError("host count must be positive")
        if heartbeat_s <= 0:
            raise SimulationError("heartbeat cadence must be positive")
        if drain_timeout_s <= 0:
            raise SimulationError("drain timeout must be positive")
        self.builder = builder
        self.count = count
        self.shards = shards
        self.barrier_timeout_s = barrier_timeout_s
        self.max_shard_retries = max_shard_retries
        self.retry_backoff_s = retry_backoff_s
        self.checkpoint = checkpoint
        self.fault_plan = fault_plan
        self.transport = transport
        self.hosts = hosts
        self.heartbeat_s = heartbeat_s
        self.drain_timeout_s = drain_timeout_s
        self.world_kwargs = dict(world_kwargs)
        #: Inline world (``shards=0``): built lazily on first run.
        self._inline: Optional[World] = None

    def partitions(self) -> List[tuple]:
        """``(lo, hi)`` device ranges, one per shard, sizes within 1."""
        shards = max(1, self.shards)
        base = self.count // shards
        extra = self.count % shards
        ranges = []
        lo = 0
        for s in range(shards):
            hi = lo + base + (1 if s < extra else 0)
            ranges.append((lo, hi))
            lo = hi
        return ranges

    def run(self, duration_s: float,
            barrier_s: Optional[float] = None,
            independent: Optional[bool] = True) -> FleetReport:
        """Advance the fleet; returns the aggregated digests.

        A fresh run builds fresh shards (each invocation is one
        experiment).  With processes, shard worlds advance in
        parallel between barriers; inline (``shards=0``) the same
        partitions run sequentially in this process — the
        differential oracle.  ``independent`` selects each shard
        world's scheduler (see :meth:`repro.sim.world.World.run`);
        it defaults to the independent scheduler here because that is
        what makes a device's trajectory *partition-invariant* down
        to the bit: under lockstep, shard membership changes where
        the global min-horizon lands, which perturbs span boundaries
        (events stay identical, levels move within the solver
        tolerance).
        """
        if duration_s < 0:
            raise SimulationError("duration must be non-negative")
        start = time.perf_counter()
        if self.shards == 0:
            report = self._run_inline(duration_s, barrier_s, independent)
        elif self.transport == "sockets":
            report = self._run_sockets(duration_s, barrier_s,
                                       independent)
        else:
            report = self._run_processes(duration_s, barrier_s,
                                         independent)
        report.wall_s = time.perf_counter() - start
        return report

    def _chunks(self, duration_s: float,
                barrier_s: Optional[float]) -> List[float]:
        """Barrier chunk sequence covering ``duration_s`` exactly.

        The chunk count is derived integrally — repeated float
        subtraction used to leave a ~1e-16 sliver that emitted a
        spurious off-grid final chunk.  All chunks but the last are
        exactly ``barrier_s``; the last absorbs the remainder.
        """
        if barrier_s is None:
            return [duration_s]
        if barrier_s <= 0:
            raise SimulationError("barrier must be positive")
        count = max(1, math.ceil(duration_s / barrier_s - 1e-9))
        chunks = [barrier_s] * (count - 1)
        chunks.append(duration_s - (count - 1) * barrier_s)
        return chunks

    def _run_inline(self, duration_s: float,
                    barrier_s: Optional[float],
                    independent: Optional[bool]) -> FleetReport:
        world = World(**self.world_kwargs)
        self.builder(world, 0, self.count)
        self._inline = world
        for chunk in self._chunks(duration_s, barrier_s):
            world.run(chunk, independent=independent)
        report = _world_report(world, 0, 0, self.count, 0.0)
        return FleetReport(devices=self.count, shards=0,
                           simulated_s=duration_s, wall_s=0.0,
                           shard_walls=[], reports=[report],
                           transport="inline")

    # -- the supervisor -----------------------------------------------------------

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor,
                   drain_timeout_s: float = 5.0) -> int:
        """Terminate a (possibly hung or broken) single-worker pool.

        ``shutdown`` alone would wait on a hung task forever; the
        worker processes are terminated first, then joined within
        ``drain_timeout_s``, so no worker leaks past the run.
        Returns the number of workers that ignored SIGTERM and had to
        be force-killed (counted in
        :attr:`FleetReport.forced_terminations`).
        """
        processes = list(getattr(pool, "_processes", {}).values())
        for proc in processes:
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken executor races
            pass
        forced = 0
        for proc in processes:
            proc.join(timeout=drain_timeout_s)
            if proc.is_alive():  # pragma: no cover - terminate ignored
                forced += 1
                proc.kill()
                proc.join(timeout=drain_timeout_s)
        return forced

    def _backoff_s(self, attempt: int) -> float:
        """The exponential backoff before recovery attempt ``attempt``
        (1-based): ``retry_backoff_s * 2**(attempt - 1)``."""
        return self.retry_backoff_s * (2 ** (attempt - 1))

    @staticmethod
    def _failure_cause(exc: BaseException) -> str:
        if isinstance(exc, _FutureTimeout):
            return "timeout"
        if isinstance(exc, BrokenProcessPool):
            return "crash"
        if isinstance(exc, HostUnreachable):
            return f"host-unreachable: {exc}"
        if isinstance(exc, TransportTimeout):
            return f"transport-timeout: {exc}"
        if isinstance(exc, TransportError):
            return f"transport: {exc}"
        return f"{type(exc).__name__}: {exc}"

    @staticmethod
    def _note_failure(failures: Dict[int, List[str]], shard: int,
                      phase: str, exc: BaseException) -> None:
        failures.setdefault(shard, []).append(
            f"{phase}: {ShardedWorld._failure_cause(exc)}")

    def _respawn(self, state: _Shard, telemetry: Dict[str, int]) -> None:
        telemetry["forced_terminations"] += self._kill_pool(
            state.pool, self.drain_timeout_s)
        state.pool = ProcessPoolExecutor(max_workers=1)
        telemetry["shard_restarts"] += 1

    def _restore_timeout(self, ckpt, k: int) -> Optional[float]:
        """Restores may replay up to ``k`` chunks — scale the deadline
        accordingly (pickle restores finish well inside one)."""
        if self.barrier_timeout_s is None:
            return None
        barriers = k if ckpt is None else max(1, ckpt.barrier)
        return self.barrier_timeout_s * (barriers + 1)

    def _demote_inline(self, state: _Shard, chunks: Sequence[float],
                       through: int, independent: Optional[bool],
                       walls: List[float],
                       telemetry: Dict[str, int]) -> None:
        """Graceful degradation: run the slice in the parent from now on.

        The shard's device range is rebuilt from the builder and
        deterministically replayed through chunk ``through`` —
        checkpoints (possibly the corrupted thing that exhausted the
        retries) are deliberately ignored; rebuild-and-replay in the
        parent is the authoritative ground truth.  The fleet-level
        mirror of the cohort scheduler's demote-don't-degrade idiom.
        """
        begin = time.perf_counter()
        if state.pool is not None:
            telemetry["forced_terminations"] += self._kill_pool(
                state.pool, self.drain_timeout_s)
            state.pool = None
        state.inline_world = _checkpoint.rebuild_replay(
            self.builder, state.lo, state.hi, self.world_kwargs,
            chunks[:through + 1], independent)
        walls[state.index] += time.perf_counter() - begin

    def _await_barrier(self, state: _Shard, k: int, chunk: float,
                       chunks: Sequence[float],
                       independent: Optional[bool], want_ckpt: bool,
                       walls: List[float],
                       failures: Dict[int, List[str]],
                       telemetry: Dict[str, int]) -> None:
        """Collect one shard's barrier, recovering through the ladder:
        retry (pool respawn + checkpoint restore + re-run), then
        inline demotion once ``max_shard_retries`` is exhausted."""
        future, state.future = state.future, None
        attempt = 0
        need_restore = False
        recovered = False
        while True:
            try:
                if need_restore:
                    # The replay recipe is the chunks completed before
                    # this barrier; a live checkpoint narrows it (or,
                    # for pickle snapshots, skips it entirely).
                    restore = state.pool.submit(
                        _shard_restore, state.ckpt, self.builder,
                        state.lo, state.hi, self.world_kwargs,
                        list(chunks[:k]), independent)
                    restore.result(
                        timeout=self._restore_timeout(state.ckpt, k))
                    future = state.pool.submit(
                        _shard_run, chunk, independent, k, want_ckpt,
                        None)
                    need_restore = False
                    recovered = True
                _, wall, ckpt = future.result(
                    timeout=self.barrier_timeout_s)
                walls[state.index] += wall
                if ckpt is not None:
                    state.ckpt = ckpt
                if recovered:
                    telemetry["recovered_barriers"] += 1
                return
            except Exception as exc:
                attempt += 1
                self._note_failure(failures, state.index,
                                   f"barrier {k}", exc)
                if isinstance(exc, (_FutureTimeout, BrokenProcessPool)):
                    self._respawn(state, telemetry)
                need_restore = True
                rung = ("inline" if attempt > self.max_shard_retries
                        else "retry")
                telemetry["events"].append(RecoveryEvent(
                    shard=state.index, barrier=k, phase="barrier",
                    attempt=attempt, cause=self._failure_cause(exc),
                    rung=rung))
                if attempt > self.max_shard_retries:
                    self._demote_inline(state, chunks, k, independent,
                                        walls, telemetry)
                    telemetry.setdefault("degraded", []).append(
                        state.index)
                    return
                time.sleep(self._backoff_s(attempt))

    def _build_shards(self, states: List[_Shard],
                      failures: Dict[int, List[str]],
                      telemetry: Dict[str, int]) -> None:
        """Build every shard's world slice, with bounded retry."""
        plan = self.fault_plan
        for state in states:
            state.pool = ProcessPoolExecutor(max_workers=1)
            fault = (plan.take(state.index, 0, kinds=BUILD_KINDS)
                     if plan is not None else None)
            state.future = state.pool.submit(
                _shard_build, self.builder, state.lo, state.hi,
                self.world_kwargs, fault)
        for state in states:
            future, state.future = state.future, None
            attempt = 0
            while True:
                try:
                    built = future.result(timeout=self.barrier_timeout_s)
                    break
                except Exception as exc:
                    attempt += 1
                    self._note_failure(failures, state.index, "build",
                                       exc)
                    if isinstance(exc,
                                  (_FutureTimeout, BrokenProcessPool)):
                        self._respawn(state, telemetry)
                    telemetry["events"].append(RecoveryEvent(
                        shard=state.index, barrier=-1, phase="build",
                        attempt=attempt,
                        cause=self._failure_cause(exc), rung="retry"))
                    if attempt > self.max_shard_retries:
                        kind = (ShardTimeout
                                if isinstance(exc, _FutureTimeout)
                                else ShardFailure)
                        raise kind(
                            f"shard {state.index} (devices "
                            f"[{state.lo}, {state.hi})) failed to "
                            f"build after {attempt} attempts "
                            f"({self._failure_cause(exc)})") from exc
                    time.sleep(self._backoff_s(attempt))
                    # A persistently broken builder keeps raising: the
                    # retry consumes the next scheduled build fault too.
                    fault = (plan.take(state.index, 0, kinds=BUILD_KINDS)
                             if plan is not None else None)
                    future = state.pool.submit(
                        _shard_build, self.builder, state.lo, state.hi,
                        self.world_kwargs, fault)
            if built != state.hi - state.lo:
                raise SimulationError(
                    f"builder produced the wrong device count for "
                    f"shard [{state.lo}, {state.hi})")

    def _run_processes(self, duration_s: float,
                       barrier_s: Optional[float],
                       independent: Optional[bool]) -> FleetReport:
        chunks = self._chunks(duration_s, barrier_s)
        ranges = self.partitions()
        states = [_Shard(s, lo, hi)
                  for s, (lo, hi) in enumerate(ranges)]
        walls = [0.0] * len(ranges)
        failures: Dict[int, List[str]] = {}
        telemetry: Dict = {"shard_restarts": 0,
                           "recovered_barriers": 0,
                           "forced_terminations": 0,
                           "events": []}
        plan = self.fault_plan
        if plan is not None:
            plan.reset()
        try:
            self._build_shards(states, failures, telemetry)
            for k, chunk in enumerate(chunks):
                # The checkpoint after the final barrier can never be
                # restored from (nothing runs after it), so skip it —
                # barrier-free runs pay zero capture cost.
                want_ckpt = self.checkpoint and k + 1 < len(chunks)
                pending = []
                for state in states:
                    if state.inline_world is not None:
                        continue
                    fault = (plan.take(state.index, k,
                                       kinds=RUNTIME_KINDS)
                             if plan is not None else None)
                    state.future = state.pool.submit(
                        _shard_run, chunk, independent, k, want_ckpt,
                        fault)
                    pending.append(state)
                # Demoted slices advance in the parent while the
                # worker shards run their chunk in parallel.
                for state in states:
                    if state.inline_world is None:
                        continue
                    begin = time.perf_counter()
                    state.inline_world.run(chunk,
                                           independent=independent)
                    walls[state.index] += time.perf_counter() - begin
                for state in pending:
                    self._await_barrier(state, k, chunk, chunks,
                                        independent, want_ckpt, walls,
                                        failures, telemetry)
            reports = []
            for state in states:
                if state.inline_world is not None:
                    reports.append(_world_report(
                        state.inline_world, state.index, state.lo,
                        state.hi, walls[state.index]))
                    continue
                try:
                    reports.append(state.pool.submit(
                        _shard_finish, state.index, state.lo, state.hi,
                        walls[state.index]).result(
                            timeout=self.barrier_timeout_s))
                except Exception as exc:
                    # A crash between the last barrier and the digest:
                    # rebuild the finished state in the parent.
                    self._note_failure(failures, state.index, "finish",
                                       exc)
                    telemetry["events"].append(RecoveryEvent(
                        shard=state.index, barrier=len(chunks) - 1,
                        phase="finish", attempt=1,
                        cause=self._failure_cause(exc), rung="inline"))
                    self._demote_inline(state, chunks, len(chunks) - 1,
                                        independent, walls, telemetry)
                    telemetry.setdefault("degraded", []).append(
                        state.index)
                    reports.append(_world_report(
                        state.inline_world, state.index, state.lo,
                        state.hi, walls[state.index]))
        finally:
            for state in states:
                if state.pool is not None:
                    telemetry["forced_terminations"] += self._kill_pool(
                        state.pool, self.drain_timeout_s)
        return FleetReport(
            devices=self.count, shards=len(ranges),
            simulated_s=duration_s, wall_s=0.0, shard_walls=walls,
            reports=reports,
            shard_restarts=telemetry["shard_restarts"],
            recovered_barriers=telemetry["recovered_barriers"],
            degraded_shards=sorted(set(telemetry.get("degraded", []))),
            shard_failures=failures,
            forced_terminations=telemetry["forced_terminations"],
            recovery_events=list(telemetry["events"]))

    # -- the socket transport -----------------------------------------------------

    def _pick_host(self, state: _SocketShard, hosts: List,
                   host_loss: bool):
        """Choose where a failed shard runs next.

        A healthy-host failure retries on the *same* host (fresh
        slot); a host loss reschedules round-robin to the next usable
        host.  Returns ``(host, moved)``; ``(None, True)`` means no
        healthy host remains and the shard must demote inline.
        """
        if not host_loss and state.host is not None \
                and state.host.usable():
            return state.host, False
        start = state.host.host_id + 1 if state.host is not None else 0
        for offset in range(len(hosts)):
            candidate = hosts[(start + offset) % len(hosts)]
            if candidate is not state.host and candidate.usable():
                return candidate, True
        return None, True

    def _socket_place(self, state: _SocketShard, host,
                      telemetry: Dict) -> None:
        """(Re)place a shard: new host binding, fresh slot channel."""
        if state.client is not None:
            state.client.close()
        state.host = host
        state.client = host.slot_client(next(telemetry["slot_seq"]))
        telemetry["placement"][state.index] = host.host_id

    def _socket_restore(self, state: _SocketShard, k: int,
                        chunks: Sequence[float],
                        independent: Optional[bool]) -> None:
        """Reload the shard's last barrier state into its current slot."""
        state.client.call(
            "restore", timeout_s=self._restore_timeout(state.ckpt, k),
            probe=state.host.probe, probe_interval_s=self.heartbeat_s,
            ckpt=state.ckpt, builder=self.builder, lo=state.lo,
            hi=state.hi, world_kwargs=self.world_kwargs,
            chunks=list(chunks[:k]), independent=independent)

    def _socket_demote(self, state: _SocketShard,
                       chunks: Sequence[float], through: int,
                       independent: Optional[bool], walls: List[float],
                       telemetry: Dict) -> None:
        """The ladder's last rung: the slice runs in the parent."""
        begin = time.perf_counter()
        if state.client is not None:
            state.client.close()
            state.client = None
        state.host = None
        state.inline_world = _checkpoint.rebuild_replay(
            self.builder, state.lo, state.hi, self.world_kwargs,
            chunks[:through + 1], independent)
        telemetry.setdefault("degraded", []).append(state.index)
        walls[state.index] += time.perf_counter() - begin

    def _note_host_loss(self, state: _SocketShard, phase: str,
                        cause: str, telemetry: Dict) -> None:
        if state.host is not None:
            telemetry["host_failures"].append(
                f"shard {state.index} {phase}: host "
                f"{state.host.host_id} lost ({cause})")

    def _submit_socket_run(self, state: _SocketShard, k: int,
                           chunk: float, independent: Optional[bool],
                           want_ckpt: bool, fault=None) -> None:
        try:
            state.client.begin(
                "run", chunk_s=chunk, independent=independent,
                barrier=k, want_checkpoint=want_ckpt, fault=fault)
            state.submitted = True
            state.submit_exc = None
        except Exception as exc:
            state.submitted = False
            state.submit_exc = exc

    def _await_socket_barrier(self, state: _SocketShard, hosts: List,
                              k: int, chunk: float,
                              chunks: Sequence[float],
                              independent: Optional[bool],
                              want_ckpt: bool, walls: List[float],
                              failures: Dict[int, List[str]],
                              telemetry: Dict) -> None:
        """Collect one socketed shard's barrier through the extended
        ladder: retry on the same host (restore into a fresh slot +
        re-run), **reschedule** onto a surviving host when this one is
        lost, and demote inline only when the retry budget is spent or
        no healthy host remains.  Host losses are mandatory moves and
        do not consume the retry budget."""
        attempt = 0
        losses = 0
        recovered = False
        pending_exc = None if state.submitted else state.submit_exc
        while True:
            try:
                if pending_exc is not None:
                    raise pending_exc
                _, wall, ckpt = state.client.collect(
                    timeout_s=self.barrier_timeout_s,
                    probe=state.host.probe,
                    probe_interval_s=self.heartbeat_s)
                walls[state.index] += wall
                if ckpt is not None:
                    state.ckpt = ckpt
                if recovered:
                    telemetry["recovered_barriers"] += 1
                return
            except Exception as exc:
                pending_exc = None
                cause = self._failure_cause(exc)
                self._note_failure(failures, state.index,
                                   f"barrier {k}", exc)
                host_loss = (isinstance(exc, HostUnreachable)
                             or state.host is None
                             or not state.host.usable())
                if host_loss:
                    losses += 1
                    self._note_host_loss(state, f"barrier {k}", cause,
                                         telemetry)
                else:
                    attempt += 1
                exhausted = (attempt > self.max_shard_retries
                             or losses > len(hosts))
                host, moved = ((None, True) if exhausted
                               else self._pick_host(state, hosts,
                                                    host_loss))
                if host is None:
                    telemetry["events"].append(RecoveryEvent(
                        shard=state.index, barrier=k, phase="barrier",
                        attempt=attempt, cause=cause, rung="inline"))
                    self._socket_demote(state, chunks, k, independent,
                                        walls, telemetry)
                    return
                if moved:
                    telemetry["shard_reschedules"] += 1
                telemetry["events"].append(RecoveryEvent(
                    shard=state.index, barrier=k, phase="barrier",
                    attempt=attempt, cause=cause,
                    rung="reschedule" if moved else "retry",
                    host=host.host_id))
                if not host_loss:
                    time.sleep(self._backoff_s(attempt))
                try:
                    self._socket_place(state, host, telemetry)
                    # Always restore before re-running: a drop_msg
                    # means the chunk already ran once — re-running
                    # without rewinding would diverge.
                    self._socket_restore(state, k, chunks, independent)
                    state.client.begin(
                        "run", chunk_s=chunk, independent=independent,
                        barrier=k, want_checkpoint=want_ckpt,
                        fault=None)
                    recovered = True
                except Exception as recovery_exc:
                    pending_exc = recovery_exc

    def _build_socket_shards(self, states: List[_SocketShard],
                             hosts: List, chunks: Sequence[float],
                             independent: Optional[bool],
                             walls: List[float],
                             failures: Dict[int, List[str]],
                             telemetry: Dict) -> None:
        """Build every slot's world slice, with the same ladder."""
        plan = self.fault_plan
        for state in states:
            fault = (plan.take(state.index, 0, kinds=BUILD_KINDS)
                     if plan is not None else None)
            try:
                state.client.begin(
                    "build", builder=self.builder, lo=state.lo,
                    hi=state.hi, world_kwargs=self.world_kwargs,
                    fault=fault)
                state.submitted = True
            except Exception as exc:
                state.submitted = False
                state.submit_exc = exc
        for state in states:
            attempt = 0
            losses = 0
            built = None
            pending_exc = None if state.submitted else state.submit_exc
            while True:
                try:
                    if pending_exc is not None:
                        raise pending_exc
                    built = state.client.collect(
                        timeout_s=self.barrier_timeout_s,
                        probe=state.host.probe,
                        probe_interval_s=self.heartbeat_s)
                    break
                except Exception as exc:
                    pending_exc = None
                    cause = self._failure_cause(exc)
                    self._note_failure(failures, state.index, "build",
                                       exc)
                    host_loss = (isinstance(exc, HostUnreachable)
                                 or state.host is None
                                 or not state.host.usable())
                    if host_loss:
                        losses += 1
                        self._note_host_loss(state, "build", cause,
                                             telemetry)
                    else:
                        attempt += 1
                    if attempt > self.max_shard_retries \
                            or losses > len(hosts):
                        kind = (ShardTimeout
                                if isinstance(exc, TransportTimeout)
                                else ShardFailure)
                        raise kind(
                            f"shard {state.index} (devices "
                            f"[{state.lo}, {state.hi})) failed to "
                            f"build after {attempt} attempts and "
                            f"{losses} host losses ({cause})") from exc
                    host, moved = self._pick_host(state, hosts,
                                                  host_loss)
                    if host is None:
                        telemetry["events"].append(RecoveryEvent(
                            shard=state.index, barrier=-1,
                            phase="build", attempt=attempt,
                            cause=cause, rung="inline"))
                        self._socket_demote(state, chunks, -1,
                                            independent, walls,
                                            telemetry)
                        break
                    if moved:
                        telemetry["shard_reschedules"] += 1
                    telemetry["events"].append(RecoveryEvent(
                        shard=state.index, barrier=-1, phase="build",
                        attempt=attempt, cause=cause,
                        rung="reschedule" if moved else "retry",
                        host=host.host_id))
                    if not host_loss:
                        time.sleep(self._backoff_s(attempt))
                    fault = (plan.take(state.index, 0,
                                       kinds=BUILD_KINDS)
                             if plan is not None else None)
                    try:
                        self._socket_place(state, host, telemetry)
                        state.client.begin(
                            "build", builder=self.builder, lo=state.lo,
                            hi=state.hi,
                            world_kwargs=self.world_kwargs,
                            fault=fault)
                    except Exception as recovery_exc:
                        pending_exc = recovery_exc
            if state.inline_world is None \
                    and built != state.hi - state.lo:
                raise SimulationError(
                    f"builder produced the wrong device count for "
                    f"shard [{state.lo}, {state.hi})")

    def _run_sockets(self, duration_s: float,
                     barrier_s: Optional[float],
                     independent: Optional[bool]) -> FleetReport:
        from . import hostd  # deferred: hostd imports this module
        chunks = self._chunks(duration_s, barrier_s)
        ranges = self.partitions()
        n_hosts = (self.hosts if self.hosts is not None
                   else min(2, len(ranges)))
        states = [_SocketShard(s, lo, hi)
                  for s, (lo, hi) in enumerate(ranges)]
        walls = [0.0] * len(ranges)
        failures: Dict[int, List[str]] = {}
        telemetry: Dict = {"shard_restarts": 0,
                           "recovered_barriers": 0,
                           "shard_reschedules": 0,
                           "forced_terminations": 0,
                           "host_failures": [], "events": [],
                           "placement": {},
                           "slot_seq": itertools.count()}
        plan = self.fault_plan
        if plan is not None:
            plan.reset()
        hosts = [hostd.HostHandle(h) for h in range(n_hosts)]
        try:
            for host in hosts:
                host.spawn()
            for state in states:
                self._socket_place(state, hosts[state.index % n_hosts],
                                   telemetry)
            self._build_socket_shards(states, hosts, chunks,
                                      independent, walls, failures,
                                      telemetry)
            for k, chunk in enumerate(chunks):
                want_ckpt = self.checkpoint and k + 1 < len(chunks)
                pending = []
                for state in states:
                    if state.inline_world is not None:
                        continue
                    fault = (plan.take(state.index, k,
                                       kinds=RUNTIME_KINDS
                                       | NETWORK_KINDS)
                             if plan is not None else None)
                    if fault is not None and fault.kind == PARTITION:
                        # Parent-side and permanent: the daemon lives
                        # on, unreachable, until teardown forces it.
                        telemetry["host_failures"].append(
                            f"shard {state.index} barrier {k}: host "
                            f"{state.host.host_id} partitioned "
                            f"(injected)")
                        state.host.partition()
                        fault = None
                    self._submit_socket_run(state, k, chunk,
                                            independent, want_ckpt,
                                            fault)
                    pending.append(state)
                for state in states:
                    if state.inline_world is None:
                        continue
                    begin = time.perf_counter()
                    state.inline_world.run(chunk,
                                           independent=independent)
                    walls[state.index] += time.perf_counter() - begin
                for state in pending:
                    self._await_socket_barrier(
                        state, hosts, k, chunk, chunks, independent,
                        want_ckpt, walls, failures, telemetry)
            reports = []
            for state in states:
                if state.inline_world is not None:
                    reports.append(_world_report(
                        state.inline_world, state.index, state.lo,
                        state.hi, walls[state.index]))
                    continue
                try:
                    reports.append(state.client.call(
                        "finish", timeout_s=self.barrier_timeout_s,
                        probe=state.host.probe,
                        probe_interval_s=self.heartbeat_s,
                        shard=state.index, lo=state.lo, hi=state.hi,
                        wall_s=walls[state.index]))
                except Exception as exc:
                    self._note_failure(failures, state.index,
                                       "finish", exc)
                    telemetry["events"].append(RecoveryEvent(
                        shard=state.index, barrier=len(chunks) - 1,
                        phase="finish", attempt=1,
                        cause=self._failure_cause(exc), rung="inline",
                        host=(state.host.host_id
                              if state.host is not None else None)))
                    self._socket_demote(state, chunks,
                                        len(chunks) - 1, independent,
                                        walls, telemetry)
                    reports.append(_world_report(
                        state.inline_world, state.index, state.lo,
                        state.hi, walls[state.index]))
        finally:
            for state in states:
                if state.client is not None:
                    state.client.close()
            for host in hosts:
                telemetry["forced_terminations"] += host.stop(
                    self.drain_timeout_s)
        return FleetReport(
            devices=self.count, shards=len(ranges),
            simulated_s=duration_s, wall_s=0.0, shard_walls=walls,
            reports=reports, transport="sockets", hosts=n_hosts,
            shard_restarts=telemetry["shard_restarts"],
            recovered_barriers=telemetry["recovered_barriers"],
            degraded_shards=sorted(set(telemetry.get("degraded", []))),
            shard_failures=failures,
            shard_reschedules=telemetry["shard_reschedules"],
            host_failures=telemetry["host_failures"],
            placement=dict(telemetry["placement"]),
            forced_terminations=telemetry["forced_terminations"],
            recovery_events=list(telemetry["events"]))
