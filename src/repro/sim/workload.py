"""Canned workload programs.

The evaluation's process zoo, as reusable generator factories: CPU
spinners (Figures 9 and 12), periodic network pollers (Figure 13), and
batch downloaders (Figures 10/11 use the richer viewer in
:mod:`repro.apps.image_viewer`).
"""

from __future__ import annotations

import math
import random
from typing import (TYPE_CHECKING, Any, Callable, Generator, List, Optional,
                    Tuple)

from ..units import KiB
from .process import (CpuBurn, Fork, NetRequest, Process, ProcessContext,
                      Sleep, SleepUntil)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import CinderSystem
    from .world import World


def spinner() -> Callable[[ProcessContext], Generator]:
    """A process that burns CPU forever (energy permitting)."""
    def program(ctx: ProcessContext) -> Generator:
        yield CpuBurn(math.inf)
    return program


def timed_spinner(seconds: float) -> Callable[[ProcessContext], Generator]:
    """Burn CPU for a fixed busy time, then exit."""
    def program(ctx: ProcessContext) -> Generator:
        yield CpuBurn(seconds)
    return program


def forking_spinner(
    fork_times: dict,
) -> Callable[[ProcessContext], Generator]:
    """The Figure 9 workload: spin, forking children at given times.

    ``fork_times`` maps absolute fork time -> (child name, setup
    callable).  Between forks the parent spins; children spin forever.
    """
    def program(ctx: ProcessContext) -> Generator:
        for when in sorted(fork_times):
            name, setup = fork_times[when]
            remaining = when - ctx.now
            if remaining > 0:
                yield CpuBurn(remaining)
            yield Fork(spinner(), name=name, setup=setup)
        yield CpuBurn(math.inf)
    return program


def periodic_poller(
    destination: str,
    period_s: float = 60.0,
    start_offset_s: float = 0.0,
    bytes_out: int = 256,
    bytes_in: int = KiB(30),
    payload: Any = None,
    max_polls: Optional[int] = None,
) -> Callable[[ProcessContext], Generator]:
    """A background daemon polling a server every ``period_s``.

    Polls fire on a fixed grid (offset + k * period) regardless of how
    long the previous poll blocked, matching the paper's "poll
    interval of 60 seconds" daemons whose *allocation* — not their
    schedule — decides when the radio actually turns on.
    """
    def program(ctx: ProcessContext) -> Generator:
        if start_offset_s > 0:
            yield SleepUntil(start_offset_s)
        polls = 0
        while max_polls is None or polls < max_polls:
            yield NetRequest(bytes_out=bytes_out, bytes_in=bytes_in,
                             destination=destination, payload=payload)
            polls += 1
            next_poll = start_offset_s + polls * period_s
            if next_poll > ctx.now:
                yield SleepUntil(next_poll)
    return program


def keepalive_sender(
    interval_s: float = 40.0,
    nbytes: int = 1,
    count: int = 10,
    destination: str = "echo",
) -> Callable[[ProcessContext], Generator]:
    """The Figure 4 workload: one tiny UDP packet every ~40 s."""
    def program(ctx: ProcessContext) -> Generator:
        for i in range(count):
            yield NetRequest(bytes_out=nbytes, bytes_in=0, packets=1,
                             destination=destination)
            yield SleepUntil((i + 1) * interval_s)
    return program


def poller_shard(
    world: "World",
    lo: int,
    hi: int,
    fleet_size: Optional[int] = None,
    watts: float = 0.015,
    period_s: float = 300.0,
    stagger_s: Optional[float] = None,
    bytes_out: int = 64,
    bytes_in: int = 0,
    destination: str = "echo",
    max_polls: Optional[int] = None,
    name_prefix: str = "dev",
    **device_kwargs,
) -> List[Tuple["CinderSystem", Process]]:
    """Build poller devices ``[lo, hi)`` of a ``fleet_size`` fleet.

    The shard-friendly builder behind :func:`fleet_of_pollers`:
    every per-device quantity — name, seed, poll stagger — is keyed
    off the device's **global** index ``i``, not its position within
    this world, so a fleet split across
    :class:`~repro.sim.shards.ShardedWorld` workers is device-for-
    device identical to the same fleet built in one world.  Module
    level and keyword-driven, hence picklable via
    :func:`functools.partial`.  Returns ``(device, process)`` pairs.
    """
    if fleet_size is None:
        fleet_size = hi
    if not 0 <= lo < hi <= fleet_size:
        raise ValueError(f"bad shard range [{lo}, {hi}) of {fleet_size}")
    if stagger_s is None:
        stagger_s = period_s / fleet_size
    fleet: List[Tuple["CinderSystem", Process]] = []
    for i in range(lo, hi):
        kwargs = dict(device_kwargs)
        kwargs.setdefault("seed", world.seed + 101 * i)
        device = world.add_device(name=f"{name_prefix}{i}", **kwargs)
        reserve = device.powered_reserve(watts, name=f"{name_prefix}{i}.net")
        program = periodic_poller(destination, period_s=period_s,
                                  start_offset_s=i * stagger_s,
                                  bytes_out=bytes_out, bytes_in=bytes_in,
                                  max_polls=max_polls)
        process = device.spawn(program, f"{name_prefix}{i}.poller",
                               reserve=reserve)
        fleet.append((device, process))
    return fleet


def staggered_poller_shard(
    world: "World",
    lo: int,
    hi: int,
    fleet_size: Optional[int] = None,
    watts: float = 0.015,
    period_s: float = 300.0,
    bytes_out: int = 64,
    bytes_in: int = 0,
    destination: str = "echo",
    max_polls: Optional[int] = None,
    name_prefix: str = "dev",
    **device_kwargs,
) -> List[Tuple["CinderSystem", Process]]:
    """Pollers with *randomized* phases — the honest independent case.

    :func:`poller_shard` staggers starts evenly, which keeps the
    fleet's wakes on a regular comb; a real deployment's poll phases
    are arbitrary.  Here each device's start offset is drawn uniformly
    in ``[0, period_s)`` from a deterministic stream keyed on the
    world seed and the device's **global** index (partition-invariant
    for :class:`~repro.sim.shards.ShardedWorld` builders, picklable
    via :func:`functools.partial`).  No two devices share a wake
    schedule unless their horizons genuinely coincide — the workload
    the event-time-bucketed independent scheduler
    (:meth:`~repro.sim.world.World._run_independent`) has to prove
    itself on, and the ``fleet_1k_staggered`` bench entry's builder.
    """
    if fleet_size is None:
        fleet_size = hi
    if not 0 <= lo < hi <= fleet_size:
        raise ValueError(f"bad shard range [{lo}, {hi}) of {fleet_size}")
    fleet: List[Tuple["CinderSystem", Process]] = []
    for i in range(lo, hi):
        kwargs = dict(device_kwargs)
        kwargs.setdefault("seed", world.seed + 101 * i)
        device = world.add_device(name=f"{name_prefix}{i}", **kwargs)
        reserve = device.powered_reserve(watts, name=f"{name_prefix}{i}.net")
        phase = random.Random(
            1_000_003 * world.seed + 101 * i).uniform(0.0, period_s)
        program = periodic_poller(destination, period_s=period_s,
                                  start_offset_s=phase,
                                  bytes_out=bytes_out, bytes_in=bytes_in,
                                  max_polls=max_polls)
        process = device.spawn(program, f"{name_prefix}{i}.poller",
                               reserve=reserve)
        fleet.append((device, process))
    return fleet


def fleet_of_pollers(
    world: "World",
    count: int,
    **kwargs,
) -> List[Tuple["CinderSystem", Process]]:
    """Populate a :class:`~repro.sim.world.World` with polling handsets.

    Adds ``count`` devices, each carrying one ``watts``-powered
    reserve and one :func:`periodic_poller` billed to it.  Start
    offsets are staggered (``stagger_s`` apart; default spreads one
    period evenly across the fleet) so the fleet's radio activity
    interleaves instead of synchronizing — the worst case for a
    global min-horizon scheduler and therefore the honest one to
    benchmark.  Returns ``(device, process)`` pairs.  This is
    :func:`poller_shard` over the whole index range; pass the same
    keywords to :class:`~repro.sim.shards.ShardedWorld` builders to
    partition the identical fleet across processes.
    """
    if count <= 0:
        raise ValueError("fleet size must be positive")
    return poller_shard(world, 0, count, fleet_size=count, **kwargs)


def foreground_poller(
    manager,
    app_name: str,
    destination: str = "echo",
    period_s: float = 30.0,
    bytes_out: int = 256,
    bytes_in: int = 0,
) -> Callable[[ProcessContext], Generator]:
    """A daemon that polls only while its app holds the foreground.

    The task-manager polling pattern, ServiceCall-ified: the daemon
    blocks on :meth:`~repro.apps.task_manager.TaskManager.
    focus_request` — an event-driven wait that does not veto the
    engine's fast-forward — instead of spinning a per-tick ``WaitFor``
    predicate, so fleets of managed pollers macro-step through the
    background stretches.  While focused it polls every ``period_s``;
    on losing focus it parks until the next focus event.
    """
    def program(ctx: ProcessContext) -> Generator:
        while True:
            yield manager.focus_request(app_name)
            while manager.focused == app_name:
                yield NetRequest(bytes_out=bytes_out, bytes_in=bytes_in,
                                 destination=destination)
                if manager.focused != app_name:
                    break
                yield Sleep(period_s)
    return program


def batch_downloader(
    destination: str,
    batches: int,
    items_per_batch: int,
    bytes_per_item: int,
    pause_after_batch: Callable[[int], float],
) -> Callable[[ProcessContext], Generator]:
    """Download batches of fixed-size items with pauses in between."""
    def program(ctx: ProcessContext) -> Generator:
        for batch in range(batches):
            for _ in range(items_per_batch):
                yield NetRequest(bytes_out=512, bytes_in=bytes_per_item,
                                 destination=destination)
            pause = pause_after_batch(batch)
            if pause > 0:
                yield Sleep(pause)
    return program
