"""Deterministic fault injection for sharded fleet chaos runs.

Recovery code that is only exercised by real crashes is untestable;
recovery code exercised by *seeded, replayable* crashes can be
asserted bit-identical to the fault-free run.  A :class:`FaultPlan`
is a fixed list of :class:`FaultEvent` records — worker crash at
barrier *k*, hang-for-*T*, builder raise, corrupt-digest — drawn
deterministically from a seed (:meth:`FaultPlan.seeded`) or written
out explicitly.  The :class:`~repro.sim.shards.ShardedWorld`
supervisor consumes events parent-side (:meth:`FaultPlan.take`), so
each fault fires exactly once: the retried execution after recovery
does not re-trip the same injection, and the whole chaos run is a
pure function of ``(fleet seed, fault seed)``.

Fault kinds:

* ``crash`` — the worker process exits hard (``os._exit``) before
  running the barrier chunk: the parent sees ``BrokenProcessPool``,
  respawns the pool and restores from the last barrier checkpoint.
* ``hang`` — the worker sleeps ``hang_s`` before the chunk: the
  parent's per-barrier timeout fires, the pool is terminated and
  recovery proceeds as for a crash.
* ``build_raise`` — the shard's builder raises during initial world
  construction: the parent retries the build.
* ``corrupt_digest`` — the checkpoint captured at barrier *k* carries
  a mangled digest: every later restore attempt fails validation
  (:class:`~repro.errors.CheckpointError`), walking the shard down
  the full degradation ladder to inline execution in the parent —
  which rebuilds from scratch and stays bit-identical.

Network fault kinds (socket transport only; see
:mod:`repro.sim.transport` and :mod:`repro.sim.hostd`):

* ``drop_msg`` — the host daemon executes the barrier request but its
  reply is lost: the parent's recv deadline fires and recovery
  restores the slot (rewinding the duplicated execution) before
  re-running the chunk.
* ``delay_msg`` — the reply is delayed ``delay_s``: shorter than the
  deadline it is pure latency, longer it degenerates to ``drop_msg``.
  Either way the digest is unchanged.
* ``dup_msg`` — the reply is sent twice: the framing layer's sequence
  numbers discard the duplicate, so nothing recovers because nothing
  failed.
* ``host_crash`` — the daemon process exits hard (``os._exit``): every
  shard placed on it is *rescheduled* onto a surviving host.
* ``partition`` — the network to the shard's current host is cut
  (parent-side gate, permanent for the run): indistinguishable from a
  dead host, so its shards reschedule the same way; the daemon
  process itself survives until teardown.

Like the process-mode kinds, every network fault is consumed
parent-side exactly once (embedded in the one request it sabotages or
applied to the one host link it cuts), so the chaos run stays a pure
function of ``(fleet seed, fault seed)``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Collection, List, Optional, Sequence, Set

import numpy as np

from ..errors import SimulationError

#: Fault kinds (see module docstring for semantics).
CRASH = "crash"
HANG = "hang"
BUILD_RAISE = "build_raise"
CORRUPT_DIGEST = "corrupt_digest"
DROP_MSG = "drop_msg"
DELAY_MSG = "delay_msg"
DUP_MSG = "dup_msg"
HOST_CRASH = "host_crash"
PARTITION = "partition"

#: Kinds injected through the worker's barrier-run entry point.
RUNTIME_KINDS = frozenset({CRASH, HANG, CORRUPT_DIGEST})
#: Kinds injected through the worker's build entry point.
BUILD_KINDS = frozenset({BUILD_RAISE})
#: Kinds only the socket transport can express: message-level faults
#: sabotage one request/reply exchange, host-level faults take out a
#: whole shard host (daemon exit or network partition).
NETWORK_KINDS = frozenset({DROP_MSG, DELAY_MSG, DUP_MSG, HOST_CRASH,
                           PARTITION})
ALL_KINDS = RUNTIME_KINDS | BUILD_KINDS | NETWORK_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: ``kind`` on ``shard`` at barrier ``barrier``.

    ``barrier`` is the 0-based chunk index whose execution the fault
    precedes (for ``build_raise`` it is ignored — builds happen once,
    before barrier 0).  ``hang_s`` only applies to ``hang``;
    ``delay_s`` only to ``delay_msg``.
    """

    shard: int
    barrier: int
    kind: str
    hang_s: float = 0.0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise SimulationError(f"unknown fault kind {self.kind!r}")
        if self.kind == HANG and self.hang_s <= 0:
            raise SimulationError("a hang fault needs hang_s > 0")
        if self.kind == DELAY_MSG and self.delay_s <= 0:
            raise SimulationError("a delay_msg fault needs delay_s > 0")


class FaultPlan:
    """A replayable schedule of injected shard faults.

    Events are consumed parent-side exactly once per run
    (:meth:`take`); :meth:`reset` rewinds the plan so the same
    ``ShardedWorld`` can re-run the identical chaos experiment.
    """

    def __init__(self, events: Sequence[FaultEvent] = (),
                 seed: Optional[int] = None) -> None:
        self.events: List[FaultEvent] = list(events)
        self.seed = seed
        self._consumed: Set[int] = set()

    @classmethod
    def seeded(cls, seed: int, *, shards: int, barriers: int,
               crashes: int = 1, hangs: int = 0,
               corrupt_digests: int = 0, build_raises: int = 0,
               drop_msgs: int = 0, delay_msgs: int = 0,
               dup_msgs: int = 0, host_crashes: int = 0,
               partitions: int = 0, hang_s: float = 30.0,
               delay_s: float = 0.5) -> "FaultPlan":
        """Draw a plan deterministically from ``seed``.

        Runtime and network faults land on distinct ``(shard,
        barrier)`` slots so no single barrier submission carries two
        injections; build raises land on distinct shards.  The same
        seed and shape always produce the same plan.
        """
        if shards <= 0 or barriers <= 0:
            raise SimulationError("need at least one shard and barrier")
        runtime = (crashes + hangs + corrupt_digests + drop_msgs
                   + delay_msgs + dup_msgs + host_crashes + partitions)
        slots = shards * barriers
        if runtime > slots:
            raise SimulationError(
                f"{runtime} runtime faults do not fit {slots} "
                f"(shard, barrier) slots")
        if build_raises > shards:
            raise SimulationError(
                f"{build_raises} build faults do not fit {shards} shards")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        kinds = ([CRASH] * crashes + [HANG] * hangs
                 + [CORRUPT_DIGEST] * corrupt_digests
                 + [DROP_MSG] * drop_msgs + [DELAY_MSG] * delay_msgs
                 + [DUP_MSG] * dup_msgs + [HOST_CRASH] * host_crashes
                 + [PARTITION] * partitions)
        for pick, kind in zip(rng.choice(slots, size=runtime,
                                         replace=False), kinds):
            shard, barrier = divmod(int(pick), barriers)
            events.append(FaultEvent(
                shard=shard, barrier=barrier, kind=kind,
                hang_s=hang_s if kind == HANG else 0.0,
                delay_s=delay_s if kind == DELAY_MSG else 0.0))
        if build_raises:
            for shard in rng.choice(shards, size=build_raises,
                                    replace=False):
                events.append(FaultEvent(shard=int(shard), barrier=0,
                                         kind=BUILD_RAISE))
        return cls(events, seed=seed)

    def reset(self) -> None:
        """Rewind consumption; the next run replays every event."""
        self._consumed.clear()

    def take(self, shard: int, barrier: int,
             kinds: Collection[str] = RUNTIME_KINDS
             ) -> Optional[FaultEvent]:
        """Consume and return the pending fault for this submission.

        Returns ``None`` when nothing is scheduled here (or it already
        fired — recovery retries must not re-trip the injection).
        """
        for index, event in enumerate(self.events):
            if index in self._consumed:
                continue
            if event.kind not in kinds:
                continue
            if event.shard != shard:
                continue
            if event.kind not in BUILD_KINDS and event.barrier != barrier:
                continue
            self._consumed.add(index)
            return event
        return None

    def pending(self) -> List[FaultEvent]:
        """Events not yet consumed this run."""
        return [event for index, event in enumerate(self.events)
                if index not in self._consumed]

    @property
    def consumed(self) -> int:
        """Events already injected this run."""
        return len(self._consumed)

    def count(self, kind: str) -> int:
        """How many events of ``kind`` the plan schedules in total."""
        return sum(1 for event in self.events if event.kind == kind)


def apply_runtime_fault(event: Optional[FaultEvent]) -> None:
    """Worker-side: execute a runtime fault before the barrier chunk.

    ``crash`` must bypass every ``finally``/atexit path — a real
    segfaulted or OOM-killed worker does not unwind — hence
    ``os._exit``.  ``corrupt_digest`` is applied to the checkpoint by
    the caller, not here.
    """
    if event is None:
        return
    if event.kind == CRASH:
        os._exit(23)
    if event.kind == HANG:
        time.sleep(event.hang_s)
