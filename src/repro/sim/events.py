"""Event sources: the runtime's pluggable next-event architecture.

The tick engine's idle fast-forward used to hard-code exactly four
things that could end an idle span (the timer heap, the sleeper heap,
the radio and the trace cadence) and gave up whenever netd or any
attached device was active.  This module generalizes that: every part
of the runtime that can *cause* or *forbid* a macro-step implements the
:class:`EventSource` protocol, and a :class:`Horizon` aggregates them
into one min-over-sources answer.  The engine never names a component
again — adding a peripheral, a daemon, or a whole new subsystem to the
fast-forward story is just registering another source.

The protocol:

* ``quiescent(now)`` — True iff skipping ticks cannot change this
  component's behavior (no per-tick state machine work pending).  Any
  non-quiescent source vetoes the macro-step and the engine ticks.
* ``next_event(now)`` — the earliest future instant at which this
  component's state (or its contribution to system power) may change,
  or ``None`` for "no scheduled event".  The instant may be
  conservative (early); landing on a tick where nothing happens is
  harmless, skipping past an event is not.
* ``span_frozen_taps(now)`` — taps the source will integrate *itself*
  in ``advance_span`` (closed form); the engine holds them out of
  ``ResourceGraph.advance_span`` so the span is not double-counted.
  netd's pooled-wait accrual is the canonical user.
* ``advance_span(now, span)`` — apply the component's closed-form
  effects for an event-free span ending strictly before its
  ``next_event``.  Must not fail: anything that can refuse must do so
  through ``quiescent``/``next_event`` *before* the engine commits.

Sources need not subclass :class:`EventSource` — netd and the GPS
daemon implement the protocol duck-typed.  The one step that *can*
still refuse after every source declared quiescence is the resource
graph's own span (``ResourceGraph.advance_span``), which the engine
runs first so a refusal mutates nothing; since the coupled span
solver (:mod:`repro.core.spansolver`) those refusals are
state-dependent only (mid-span clamp, capacity pressure, debt) —
chained reserve topologies no longer degrade a quiescent device to
tick-by-tick.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..core.tap import Tap
    from ..net.radio import RadioDevice
    from .engine import DeviceRuntime


class EventSource:
    """One component's contract with the idle fast-forward machinery."""

    #: Display name for diagnostics (``Horizon.describe``).
    name: str = "source"

    #: Whether the last ``next_event`` answer was *firm* — an exact
    #: instant that will not move if recomputed later in the same
    #: event-free stretch (timer deadlines, sleeper wakes, radio
    #: timeouts).  Sources that return conservative checkpoints which
    #: a later recomputation would push further out (netd's analytic
    #: pooled-crossing bound) set this False, and fleet schedulers
    #: must re-poll them instead of caching the instant.  Read by
    #: :meth:`Horizon.poll` immediately after ``next_event``.
    horizon_firm: bool = True

    #: Whether the last ``next_event`` instant *requires a normal
    #: step* when the engine lands on it.  True for almost everything
    #: (a timer fires, a sleeper wakes, a record is due, a pump
    #: crossing executes — a fresh poll at the landing returns 0).
    #: False for pure *power boundaries*: instants where only the
    #: constant-draw assumption ends (the radio's activation-ramp
    #: end), after which the engine may immediately open the next
    #: span without executing a tick.  Fleet schedulers use this to
    #: answer "tick now" from a cached firm target without re-polling.
    horizon_executes: bool = True

    def quiescent(self, now: float) -> bool:
        """True iff an event-free span may skip this component's ticks."""
        return True

    def next_event(self, now: float) -> Optional[float]:
        """Earliest future instant anything may happen here (None = never)."""
        return None

    def span_frozen_taps(self, now: float) -> Iterable["Tap"]:
        """Taps this source integrates itself over the coming span."""
        return ()

    def advance_span(self, now: float, span: float) -> None:
        """Apply closed-form effects of an event-free ``span``; infallible."""


class Horizon:
    """An ordered collection of event sources with min-over-sources ops.

    Order matters only for ``advance_span``: sources are advanced in
    registration order, and the engine advances the resource graph
    (the one step that can still refuse) before any of them, so a
    refused span mutates nothing.
    """

    def __init__(self) -> None:
        self._sources: List[EventSource] = []
        #: Sources that actually override the span hooks (everything
        #: else is a no-op there): computed at registration so the
        #: per-macro-step loops touch only the participating sources
        #: instead of dispatching no-ops across the whole list.
        self._frozen_sources: List[EventSource] = []
        self._span_sources: List[EventSource] = []
        #: Bound-method fast paths for :meth:`poll`, same filtering
        #: rationale: only sources that override ``quiescent`` can
        #: veto, only sources that override ``next_event`` can bound.
        self._veto_checks: List[Callable[[float], bool]] = []
        self._event_checks: List[Tuple[Callable[[float], Optional[float]],
                                       EventSource]] = []

    def _classify(self, source: EventSource) -> None:
        cls = type(source)
        frozen = getattr(cls, "span_frozen_taps", None)
        if frozen is not None and frozen is not EventSource.span_frozen_taps:
            self._frozen_sources.append(source)
        advance = getattr(cls, "advance_span", None)
        if advance is not None and advance is not EventSource.advance_span:
            self._span_sources.append(source)
        quiescent = getattr(cls, "quiescent", None)
        if (quiescent is not None
                and quiescent is not EventSource.quiescent):
            self._veto_checks.append(source.quiescent)
        next_event = getattr(cls, "next_event", None)
        if (next_event is not None
                and next_event is not EventSource.next_event):
            self._event_checks.append((source.next_event, source))

    def add(self, source: EventSource) -> EventSource:
        """Register a source; returns it for caller convenience."""
        self._sources.append(source)
        self._classify(source)
        return source

    def remove(self, source: EventSource) -> None:
        """Unregister a source (device detach)."""
        if source in self._sources:
            self._sources.remove(source)
        if source in self._frozen_sources:
            self._frozen_sources.remove(source)
        if source in self._span_sources:
            self._span_sources.remove(source)
        self._veto_checks = [check for check in self._veto_checks
                             if check.__self__ is not source]
        self._event_checks = [entry for entry in self._event_checks
                              if entry[1] is not source]

    @property
    def sources(self) -> List[EventSource]:
        """Registered sources (copy)."""
        return list(self._sources)

    def quiescent(self, now: float) -> bool:
        """True iff every source permits a macro-step."""
        return all(source.quiescent(now) for source in self._sources)

    def next_event(self, now: float, deadline: float) -> float:
        """Earliest instant anything can happen, capped at ``deadline``."""
        horizon = deadline
        for source in self._sources:
            instant = source.next_event(now)
            if instant is not None and instant < horizon:
                horizon = instant
        return horizon

    def poll(self, now: float, deadline: float
             ) -> Tuple[bool, float, bool, bool]:
        """``(quiescent, horizon, firm, executes)`` in one source pass.

        The batched entry point fleet schedulers use: one traversal
        answers both questions :meth:`quiescent` and :meth:`next_event`
        would, plus two properties of the *binding* instant (the min):
        whether it is firm — cacheable across iterations — or a
        conservative checkpoint that must be re-polled
        (:attr:`EventSource.horizon_firm`), and whether landing on it
        requires a normal step or merely closes a constant-power span
        (:attr:`EventSource.horizon_executes`).  A non-quiescent
        answer is reported firm: the veto must be re-examined every
        iteration anyway.
        """
        for quiescent in self._veto_checks:
            if not quiescent(now):
                return False, now, True, True
        horizon = deadline
        firm = True
        executes = True
        for next_event, source in self._event_checks:
            instant = next_event(now)
            if instant is not None and instant < horizon:
                horizon = instant
                firm = bool(getattr(source, "horizon_firm", True))
                executes = bool(getattr(source, "horizon_executes", True))
        return True, horizon, firm, executes

    def frozen_taps(self, now: float) -> List["Tap"]:
        """Union of every source's self-integrated taps."""
        taps: List["Tap"] = []
        for source in self._frozen_sources:
            taps.extend(source.span_frozen_taps(now))
        return taps

    def advance_span(self, now: float, span: float) -> None:
        """Advance every source across an event-free span, in order.

        Only sources that override ``advance_span`` are visited; the
        relative registration order among them is preserved.
        """
        for source in self._span_sources:
            source.advance_span(now, span)

    def blockers(self, now: float) -> List[str]:
        """Names of non-quiescent sources (diagnostics)."""
        return [source.name for source in self._sources
                if not source.quiescent(now)]


# ---------------------------------------------------------------------------
# runtime-side adapters
# ---------------------------------------------------------------------------


class TimerHeapSource(EventSource):
    """The engine's ``schedule_at`` heap: always quiescent, head = event."""

    name = "timers"

    def __init__(self, heap: List[Tuple]) -> None:
        self._heap = heap

    def next_event(self, now: float) -> Optional[float]:
        return self._heap[0][0] if self._heap else None


class SleeperHeapSource(EventSource):
    """The sleeping-process heap (lazily dropping stale entries)."""

    name = "sleepers"

    def __init__(self, runtime: "DeviceRuntime") -> None:
        self._runtime = runtime

    def next_event(self, now: float) -> Optional[float]:
        sleepers = self._runtime._sleepers
        while sleepers:
            wake_at, _, process, request = sleepers[0]
            if process.finished or process.current is not request:
                heapq.heappop(sleepers)  # stale entry
                continue
            return wake_at
        return None


class TraceCadenceSource(EventSource):
    """The next trace-record instant: bounds every span to one interval."""

    name = "trace"

    def __init__(self, runtime: "DeviceRuntime") -> None:
        self._runtime = runtime

    def next_event(self, now: float) -> Optional[float]:
        runtime = self._runtime
        return runtime._last_record + runtime.record_interval_s


class RadioSource(EventSource):
    """The radio state machine.

    Quiescent unless a transfer occupies the radio (a transfer's extra
    draw varies within the span and its completion resumes a process).
    An *active but idle-bound* radio is fine: its plateau/ramp draw is
    piecewise constant and each change instant is reported as an
    event.
    """

    name = "radio"

    def __init__(self, radio: "RadioDevice") -> None:
        self._radio = radio

    def quiescent(self, now: float) -> bool:
        return self._radio.transfers_in_flight == 0

    def next_event(self, now: float) -> Optional[float]:
        instant = self._radio.next_state_change(now)
        # The activation-ramp end is a pure power boundary: the extra
        # ramp draw stops, but no state machine needs a tick there (the
        # draw is computed from ``now`` on demand).  Everything else —
        # the idle transition, transfer completions — must execute.
        radio = self._radio
        ramp_end = radio.activated_at + radio.params.ramp_duration_s
        self.horizon_executes = not (instant is not None
                                     and now < ramp_end
                                     and instant == ramp_end)
        return instant


class SchedulerSource(EventSource):
    """The CPU scheduler: any RUNNABLE or THROTTLED thread vetoes.

    THROTTLED counts because a refilling reserve is a mid-span event —
    the engine must tick to notice the instant it can run again.
    """

    name = "scheduler"

    def __init__(self, scheduler) -> None:
        self._scheduler = scheduler

    def quiescent(self, now: float) -> bool:
        return not self._scheduler.any_wants_cpu()


class ProcessTableSource(EventSource):
    """Process bookkeeping: starting processes and WaitFor polls veto.

    A ``WaitFor`` predicate may read reserve levels, which move every
    tick; a just-spawned process must take its first step on the next
    tick.  Net-blocked processes are *not* checked here — netd itself
    is an event source and answers for them.
    """

    name = "processes"

    def __init__(self, runtime: "DeviceRuntime") -> None:
        self._runtime = runtime

    def quiescent(self, now: float) -> bool:
        runtime = self._runtime
        return not runtime._waiting and not runtime._new_processes


class DevicePort(EventSource):
    """An ``add_device`` attachment as an event source.

    Three shapes:

    * a device registered with a custom ``source`` delegates wholesale
      — the device promises its stepper's effects are replayed by the
      source's ``advance_span`` and its power is constant between the
      source's events;
    * a legacy device with a per-tick ``stepper`` but no source is
      never quiescent (exactly the old veto);
    * a device with only a ``power`` callable is treated as
      constant-draw between events and no longer vetoes — the engine
      samples ``power(now)`` once at span start.
    """

    name = "device"

    def __init__(self,
                 stepper: Optional[Callable[[float], None]] = None,
                 power: Optional[Callable[[float], float]] = None,
                 source: Optional[EventSource] = None) -> None:
        self.stepper = stepper
        self.power = power
        self.source = source
        if source is not None and getattr(source, "name", None):
            self.name = f"device:{source.name}"

    @property
    def horizon_firm(self) -> bool:
        """Firmness of the wrapped source's last ``next_event`` answer."""
        if self.source is not None:
            return bool(getattr(self.source, "horizon_firm", True))
        return True

    @property
    def horizon_executes(self) -> bool:
        """Whether the wrapped source's last instant needs a step."""
        if self.source is not None:
            return bool(getattr(self.source, "horizon_executes", True))
        return True

    def quiescent(self, now: float) -> bool:
        if self.source is not None:
            return self.source.quiescent(now)
        return self.stepper is None

    def next_event(self, now: float) -> Optional[float]:
        if self.source is not None:
            return self.source.next_event(now)
        return None

    def span_frozen_taps(self, now: float) -> Iterable["Tap"]:
        if self.source is not None:
            return self.source.span_frozen_taps(now)
        return ()

    def advance_span(self, now: float, span: float) -> None:
        if self.source is not None:
            self.source.advance_span(now, span)


class PeriodicSource(EventSource):
    """A convenience source for devices with a fixed event cadence.

    ``next_event`` returns the next multiple of ``period_s`` at or
    after ``now`` (offset by ``phase_s``).  Returning an instant equal
    to ``now`` is deliberate: a due beat must force the pending tick
    to execute normally (the engine fast-forwards only to instants
    strictly in the future), which is when the device's stepper runs.
    Useful for pollers whose power draw is constant between beats.
    """

    name = "periodic"

    def __init__(self, period_s: float, phase_s: float = 0.0) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.period_s = period_s
        self.phase_s = phase_s

    def next_event(self, now: float) -> Optional[float]:
        elapsed = now - self.phase_s
        if elapsed < 0:
            return self.phase_s
        beats = math.ceil(elapsed / self.period_s - 1e-9)
        return self.phase_s + beats * self.period_s
