"""Shard-host daemon: N shard slots behind one TCP endpoint.

A **host** is the unit of failure the socket transport adds on top of
PR 6's per-worker story: one daemon process owning several **shard
slots**, each a world slice driven through the same verbs the process
pools speak — ``build``, ``run`` (advance to barrier), ``restore``,
``finish`` (digest) — plus ``ping`` for liveness and ``shutdown`` for
orderly teardown.  Lose the daemon and you lose every slot on it at
once, which is exactly the failure the supervisor's reschedule rung
exists for.

Parent side, a :class:`HostHandle` spawns the daemon
(:func:`HostHandle.spawn` — the child binds ``127.0.0.1:0`` and
reports its port back over a pipe, so no port is ever guessed),
answers liveness probes, carries the parent-side **partition gate**,
and hands out per-slot :class:`~repro.sim.transport.SlotClient`\\ s.
A restarted daemon re-registers the same way — spawn again, learn the
new port — so replacement hosts are indistinguishable from original
ones.

Daemon side, requests are served thread-per-connection: a slot's
request stream is serial (the supervisor drives one in-flight verb
per slot), while ``ping`` arrives on its own connection and is
answered even while every slot is busy mid-chunk — that is what makes
heartbeats meaningful during long barriers.

Fault injection (:mod:`repro.sim.faults`) threads through the request
itself: the one sabotaged message carries its
:class:`~repro.sim.faults.FaultEvent`, and the daemon applies it at
the matching point — ``crash``/``host_crash`` exits hard before
dispatch, ``hang`` sleeps before dispatch, ``corrupt_digest`` mangles
the captured checkpoint, ``delay_msg`` sleeps before the reply,
``drop_msg`` does the work but swallows the reply (the parent *must*
restore before re-running, or state would diverge), and ``dup_msg``
sends the reply twice for the framing layer's sequence numbers to
discard.  ``partition`` never reaches the daemon at all — it is the
parent-side gate.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
from dataclasses import replace as _dc_replace
from typing import Dict, Optional

from ..errors import HostUnreachable, ShardFailure, TransportError
from . import checkpoint as _checkpoint
from . import transport
from .faults import BUILD_RAISE, CORRUPT_DIGEST, CRASH, DELAY_MSG, \
    DROP_MSG, DUP_MSG, HANG, HOST_CRASH
from .shards import ShardReport, _world_report
from .world import World

#: How long the parent waits for a freshly spawned daemon to report
#: its port before declaring the spawn failed.
SPAWN_TIMEOUT_S = 30.0

#: Exit status for injected hard crashes (mirrors the worker-pool
#: convention in :func:`repro.sim.faults.apply_runtime_fault`).
_CRASH_STATUS = 23


# -- daemon side --------------------------------------------------------------


class _Slot:
    """One shard slice resident in this daemon."""

    __slots__ = ("world", "pickle_ok")

    def __init__(self) -> None:
        self.world: Optional[World] = None
        #: Sticky capture method, per slot (see ``_SHARD_PICKLE_OK``).
        self.pickle_ok: Optional[bool] = None


def _slot_of(slots: Dict[int, _Slot], lock: threading.Lock,
             slot_id: int) -> _Slot:
    with lock:
        slot = slots.get(slot_id)
        if slot is None:
            slot = slots[slot_id] = _Slot()
        return slot


def _dispatch(msg: dict, slots: Dict[int, _Slot],
              lock: threading.Lock) -> object:
    """Execute one verb against its slot; returns the result value."""
    verb = msg["verb"]
    if verb == "ping":
        return "pong"
    slot = _slot_of(slots, lock, msg["slot"])
    if verb == "build":
        fault = msg.get("fault")
        if fault is not None and fault.kind == BUILD_RAISE:
            raise ShardFailure(
                f"injected builder fault (shard slice "
                f"[{msg['lo']}, {msg['hi']}))")
        world = World(**msg["world_kwargs"])
        msg["builder"](world, msg["lo"], msg["hi"])
        slot.world = world
        slot.pickle_ok = None
        return len(world.devices)
    if verb == "run":
        world = slot.world
        if world is None:
            raise TransportError(f"slot {msg['slot']} has no world")
        begin = time.perf_counter()
        world.run(msg["chunk_s"], independent=msg["independent"])
        ckpt = None
        if msg["want_checkpoint"]:
            ckpt = _checkpoint.capture(
                world, msg["barrier"] + 1,
                try_pickle=slot.pickle_ok is not False)
            slot.pickle_ok = ckpt.method == _checkpoint.METHOD_PICKLE
            fault = msg.get("fault")
            if fault is not None and fault.kind == CORRUPT_DIGEST:
                ckpt = _dc_replace(ckpt,
                                   digest="corrupt:" + ckpt.digest[8:])
        wall = time.perf_counter() - begin
        return world.now, wall, ckpt
    if verb == "restore":
        slot.world = _checkpoint.restore(
            msg["ckpt"], builder=msg["builder"], lo=msg["lo"],
            hi=msg["hi"], world_kwargs=msg["world_kwargs"],
            chunks=msg["chunks"], independent=msg["independent"])
        slot.pickle_ok = None
        return slot.world.now
    if verb == "finish":
        world = slot.world
        if world is None:
            raise TransportError(f"slot {msg['slot']} has no world")
        report: ShardReport = _world_report(
            world, msg["shard"], msg["lo"], msg["hi"], msg["wall_s"])
        return report
    raise TransportError(f"unknown verb {verb!r}")


def _serve(sock: socket.socket, slots: Dict[int, _Slot],
           lock: threading.Lock) -> None:
    """Drive one connection's request stream until the peer leaves."""
    try:
        while True:
            try:
                msg = transport.recv_msg(sock)
            except TransportError:
                return
            if not isinstance(msg, dict):
                return
            fault = msg.get("fault")
            if fault is not None:
                if fault.kind in (CRASH, HOST_CRASH):
                    os._exit(_CRASH_STATUS)
                if fault.kind == HANG:
                    time.sleep(fault.hang_s)
            if msg.get("verb") == "shutdown":
                transport.send_msg(
                    sock, {"seq": msg.get("seq"), "ok": True,
                           "result": None})
                os._exit(0)
            try:
                result = _dispatch(msg, slots, lock)
                reply = {"seq": msg.get("seq"), "ok": True,
                         "result": result}
            except BaseException as exc:
                reply = {"seq": msg.get("seq"), "ok": False,
                         "kind": type(exc).__name__, "error": str(exc)}
            if fault is not None and fault.kind == DROP_MSG:
                continue  # the work happened; the reply is lost
            if fault is not None and fault.kind == DELAY_MSG:
                time.sleep(fault.delay_s)
            repeats = 2 if (fault is not None
                            and fault.kind == DUP_MSG) else 1
            try:
                for _ in range(repeats):
                    transport.send_msg(sock, reply)
            except TransportError:
                return
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass


def _hostd_main(port_pipe) -> None:
    """Daemon entry point: bind, report the port, serve forever."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(32)
    port_pipe.send(listener.getsockname()[1])
    port_pipe.close()
    slots: Dict[int, _Slot] = {}
    lock = threading.Lock()
    while True:
        try:
            sock, _peer = listener.accept()
        except OSError:  # pragma: no cover - listener torn down
            return
        threading.Thread(target=_serve, args=(sock, slots, lock),
                         daemon=True).start()


# -- parent side --------------------------------------------------------------


class HostHandle:
    """The supervisor's view of one shard host.

    Owns the daemon process, its address, the partition gate, and the
    liveness probe.  All placement policy lives in the supervisor;
    this class only answers "is this host usable" and hands out slot
    channels.
    """

    def __init__(self, host_id: int) -> None:
        self.host_id = host_id
        self.process: Optional[multiprocessing.Process] = None
        self.address: Optional[transport.Address] = None
        #: Parent-side network partition: permanent for the run.
        self.partitioned = False
        #: Persistent heartbeat channel, dialed lazily by :meth:`ping`
        #: and dropped on any transport error so the next ping redials.
        self._control: Optional[transport.Connection] = None
        self._control_seq = 0

    def spawn(self) -> None:
        """Start (or restart) the daemon and learn its port."""
        ctx = multiprocessing.get_context()
        parent_pipe, child_pipe = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_hostd_main, args=(child_pipe,), daemon=True,
            name=f"repro-hostd-{self.host_id}")
        self.process.start()
        child_pipe.close()
        if not parent_pipe.poll(SPAWN_TIMEOUT_S):
            self.stop(0.0)
            raise HostUnreachable(
                f"host {self.host_id} never reported a port")
        port = parent_pipe.recv()
        parent_pipe.close()
        self.address = ("127.0.0.1", port)
        self.partitioned = False
        self._drop_control()

    def gate(self) -> None:
        """Raise when the network to this host is (simulated) cut."""
        if self.partitioned:
            raise HostUnreachable(
                f"host {self.host_id} is partitioned from the parent")

    def partition(self) -> None:
        """Cut the parent's network to this host for the rest of the
        run.  The daemon process survives (it is *unreachable*, not
        dead) until :meth:`stop` forcibly terminates it."""
        self.partitioned = True

    def probe(self) -> None:
        """Heartbeat: raise :class:`HostUnreachable` if this host is
        partitioned, its process is gone, or it stops answering
        ``ping``."""
        self.gate()
        if self.process is None or not self.process.is_alive():
            raise HostUnreachable(
                f"host {self.host_id} daemon process is gone")
        self.ping()

    def _drop_control(self) -> None:
        if self._control is not None:
            self._control.close()
            self._control = None

    def ping(self, timeout_s: float = 2.0) -> None:
        """One ``ping`` round trip on the persistent control channel.

        The channel is dialed lazily on first use and kept open —
        heartbeats fire every ``heartbeat_s`` between barriers, and a
        fresh TCP dial (plus a daemon accept thread) per probe is
        wall-clock the supervisor cannot afford on a busy host.  Any
        transport error tears the channel down so the next ping
        redials against a restarted daemon.
        """
        assert self.address is not None
        self.gate()
        try:
            if self._control is None:
                self._control = transport.connect(
                    self.address, attempts=1, timeout_s=timeout_s,
                    gate=self.gate)
            self._control_seq += 1
            self._control.send(
                {"verb": "ping", "slot": -1, "seq": self._control_seq,
                 "fault": None}, timeout_s=timeout_s)
            self._control.recv(timeout_s=timeout_s)
        except TransportError:
            self._drop_control()
            raise

    def usable(self) -> bool:
        """True when this host can accept (re)scheduled shards."""
        try:
            self.probe()
        except Exception:
            return False
        return True

    def slot_client(self, slot: int) -> transport.SlotClient:
        assert self.address is not None
        return transport.SlotClient(self.address, slot, gate=self.gate)

    def stop(self, drain_timeout_s: float = 5.0) -> int:
        """Tear the daemon down; returns forced terminations (0/1).

        A reachable daemon is asked to exit (``shutdown`` verb) and
        joined within ``drain_timeout_s``; a partitioned or
        unresponsive one is terminated — then killed — and counted as
        forced, mirroring the worker-pool drain accounting.
        """
        self._drop_control()
        proc = self.process
        if proc is None:
            return 0
        forced = 0
        if proc.is_alive() and not self.partitioned \
                and self.address is not None:
            try:
                conn = transport.connect(self.address, attempts=1,
                                         timeout_s=2.0)
                try:
                    conn.send({"verb": "shutdown", "slot": -1,
                               "seq": 0, "fault": None}, timeout_s=2.0)
                    conn.recv(timeout_s=2.0)
                finally:
                    conn.close()
            except TransportError:
                pass
        proc.join(timeout=drain_timeout_s)
        if proc.is_alive():
            forced = 1
            proc.terminate()
            proc.join(timeout=drain_timeout_s)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=drain_timeout_s)
        self.process = None
        return forced
