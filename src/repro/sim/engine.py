"""The simulation engine: one tick of Cinder, repeated.

Each tick (default 10 ms) the engine performs, in order:

1. **batch tap flow and decay** — ``graph.step`` (paper §3.3:
   "transfers are executed in batch periodically");
2. **device state machines** — the radio's timeout, netd's admission
   pump (unblocking pooled waiters, §5.5.2), attached device steppers;
3. **timers and process resumption** — sleeps expire, completed
   network operations resume their generators;
4. **the energy-aware scheduler** — one quantum, billed to the running
   thread's active reserve (§3.2);
5. **physical power integration** — the true system draw (baseline +
   CPU + backlight + radio + devices) feeds the simulated Agilent
   meter and drains the physical battery.

The *logical* energy graph and the *physical* meter are deliberately
separate books: the graph holds Cinder's budget abstraction; the meter
reports what an instrumented power supply would see.  Experiments
compare the two, exactly as the paper's figures do.

Architecturally the runtime is split in two:

* :class:`DeviceRuntime` — the component-built engine.  It owns the
  clock, kernel, scheduler, radio, netd, meter, battery and trace it
  is handed, and drives them through the tick loop and the
  event-source fast-forward (every skippable component registers an
  :class:`~repro.sim.events.EventSource` on the runtime's
  :class:`~repro.sim.events.Horizon`; the engine itself only computes
  min-over-sources).
* :class:`CinderSystem` — the thin facade almost all callers use: the
  paper-default assembly of those components (HTC Dream power model,
  §5.5 netd, Agilent meter), same constructor signature as ever.

:class:`~repro.sim.world.World` reuses the same two primitives to run
many ``DeviceRuntime`` instances on one shared tick grid.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..core.accounting import ConsumptionLedger
from ..core.decay import DecayPolicy
from ..core.graph import ResourceGraph
from ..core.reserve import Reserve
from ..core.scheduler import EnergyAwareScheduler
from ..energy.battery import Battery
from ..energy.meter import PowerMeter
from ..energy.model import DreamPowerModel
from ..errors import SimulationError
from ..kernel.kernel import Kernel
from ..net.netd import NetworkDaemon, PendingOp
from ..net.radio import RadioDevice
from ..net.remote import RemoteHosts
from .clock import Clock, ClockNow, ClockTicks
from .events import (DevicePort, EventSource, Horizon, ProcessTableSource,
                     RadioSource, SchedulerSource, SleeperHeapSource,
                     TimerHeapSource, TraceCadenceSource)
from .process import (CpuBurn, Fork, NetRequest, Process, ProcessContext,
                      Request, ServiceCall, Sleep, SleepUntil, WaitFor)
from .trace import TraceRecorder


class DeviceRuntime:
    """One simulated device, assembled from pluggable components.

    The runtime does not construct its components — it is handed them
    (see :class:`CinderSystem` for the paper-default wiring) and owns
    only the glue: the tick loop, the process table, the timer and
    sleeper indexes, and the event-source horizon that makes idle
    spans skippable.
    """

    def __init__(
        self,
        *,
        model: DreamPowerModel,
        clock: Clock,
        kernel: Kernel,
        scheduler: EnergyAwareScheduler,
        ledger: ConsumptionLedger,
        radio: RadioDevice,
        netd: NetworkDaemon,
        meter: PowerMeter,
        battery: Battery,
        trace: Optional[TraceRecorder] = None,
        rng: Optional[np.random.Generator] = None,
        record_interval_s: float = 0.2,
        backlight_on: bool = False,
        fast_forward: bool = True,
    ) -> None:
        self.model = model
        self.clock = clock
        self.kernel = kernel
        self.graph: ResourceGraph = self.kernel.energy_graph
        self.ledger = ledger
        self.scheduler = scheduler
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.radio = radio
        self.netd = netd
        self.netd_gate = self.netd.make_gate(self.kernel)
        self.meter = meter
        self.battery = battery
        self.trace = trace if trace is not None else TraceRecorder()
        self.record_interval_s = record_interval_s
        self.backlight_on = backlight_on
        self.processes: List[Process] = []
        self._net_ops: Dict[Process, PendingOp] = {}
        #: In-flight ServiceCall waits: process -> (request, op handle).
        self._service_ops: Dict[Process, tuple] = {}
        self._timers: List = []
        self._timer_seq = itertools.count()
        self._last_record = -float("inf")
        #: Extra devices: per-tick steppers and power contributions.
        self._device_steppers: List[Callable[[float], None]] = []
        self._power_sources: List[Callable[[float], float]] = []
        self._device_ports: List[DevicePort] = []
        # -- event-driven process indexes (replace per-tick O(processes)
        #    scans; see _pump_processes) --
        #: thread -> its process, for O(1) quantum accounting.
        self._by_thread: Dict[Any, Process] = {}
        #: Min-heap of (wake_at, seq, process, request) for sleepers.
        self._sleepers: List = []
        self._sleep_seq = itertools.count()
        #: Processes blocked on a WaitFor predicate (polled per tick).
        self._waiting: List[Process] = []
        #: Spawned but not yet started (first advanced next pump).
        self._new_processes: List[Process] = []
        #: Skip event-free idle spans in one macro-step.
        self.fast_forward = fast_forward
        #: Telemetry: ticks skipped by fast-forward macro-steps.
        self.fast_forwarded_ticks = 0
        #: Telemetry: degraded windows — maximal runs of consecutive
        #: ticks whose spans the graph's closed form refused (the
        #: engine ticked through them instead).  A refusal usually
        #: repeats on every retry until the state changes, so windows,
        #: not retries, are the meaningful count.  Chained topologies
        #: used to land here wholesale (until the coupled span solver)
        #: and piecewise-linear switches — mid-span clamps, binding
        #: capacities, debt repayment — after them (until the
        #: segmented engine, which counts its work in
        #: :attr:`span_segments` instead); only the residual
        #: unsupported regimes remain.
        self.span_refusals = 0
        self._span_refusing = False
        #: Telemetry: spans this device solved inside a stacked cohort
        #: call on a world's *independent* (frontier) scheduler.
        #: Incremented by :meth:`repro.sim.world.World._run_independent`
        #: — the engine itself never batches; the counter lives here so
        #: sharded digests can carry it per device.
        self.independent_cohort_spans = 0
        # -- the event-source horizon: everything that can end (or
        #    forbid) an idle span registers here; the engine itself is
        #    a generic min-over-sources loop --
        self.horizon = Horizon()
        self.horizon.add(TimerHeapSource(self._timers))
        self.horizon.add(SleeperHeapSource(self))
        self.horizon.add(TraceCadenceSource(self))
        self.horizon.add(SchedulerSource(self.scheduler))
        self.horizon.add(ProcessTableSource(self))
        self.horizon.add(RadioSource(self.radio))
        # netd implements the EventSource protocol itself (closed-form
        # pooled-wait accrual); wire it onto the engine's tick grid.
        self.netd.tick_s = self.clock.tick_s
        self.netd._ticks = ClockTicks(self.clock)
        self.horizon.add(self.netd)

    def add_device(self,
                   stepper: Optional[Callable[[float], None]] = None,
                   power: Optional[Callable[[float], float]] = None,
                   source: Optional[EventSource] = None) -> DevicePort:
        """Attach an extra device to the tick loop.

        ``stepper(now)`` runs with the other device state machines;
        ``power(now)`` returns the device's draw above baseline and is
        added to the metered system power.  The GPS subsystem uses
        this; any future peripheral model can too.

        Fast-forward semantics follow :class:`~repro.sim.events.DevicePort`:
        a ``source`` makes the device a first-class event source (its
        ``advance_span`` must replay whatever its stepper would have
        done); a stepper without a source vetoes macro-steps; a
        power-only device is treated as constant-draw between events
        and no longer blocks fast-forward.  A power callable whose
        draw varies on its own schedule must therefore declare those
        change instants via ``source`` (or register a stepper) —
        otherwise fast-forwarded spans integrate the span-start value.
        """
        port = DevicePort(stepper=stepper, power=power, source=source)
        if stepper is not None:
            self._device_steppers.append(stepper)
        if power is not None:
            self._power_sources.append(power)
        self._device_ports.append(port)
        self.horizon.add(port)
        return port

    def attach_gps(self, device=None, params=None,
                   margin: float = 1.1) -> "GpsDaemon":
        """Attach a pooled GPS daemon as a first-class event source.

        Builds (or adopts) a :class:`~repro.sensors.gps.GpsDevice`,
        wires a :class:`~repro.sensors.gps.GpsDaemon` onto this
        runtime's clock and tick grid, and registers it through
        :meth:`add_device` with the daemon itself as the port's
        ``source`` — so pooled-acquisition waits macro-step through
        the daemon's closed-form accrual exactly like netd's, and
        receiver state changes (fix ready, linger expiry) bound spans
        as declared events.  Programs block on a fix with
        :func:`repro.sensors.gps.fix_request`.
        """
        from ..sensors.gps import GpsDaemon, GpsDevice
        if device is not None and params is not None:
            raise SimulationError(
                "pass either a constructed GpsDevice or GpsPowerParams, "
                "not both (the device already carries its params)")
        if device is None:
            device = GpsDevice(params)
        daemon = GpsDaemon(self.graph, device,
                           clock=ClockNow(self.clock), margin=margin,
                           tick_s=self.clock.tick_s,
                           ticks=ClockTicks(self.clock))
        self.add_device(stepper=daemon.step,
                        power=device.power_above_baseline, source=daemon)
        return daemon

    def attach_accel(self, device=None, params=None) -> "AccelDaemon":
        """Attach a warm-up-amortized accelerometer as an event source.

        Builds (or adopts) an :class:`~repro.sensors.accel.AccelDevice`,
        wires an :class:`~repro.sensors.accel.AccelDaemon` onto this
        runtime's clock, and registers it through :meth:`add_device`
        with the daemon itself as the port's ``source`` — warm-up
        waits declare their ready instant as an event and the sensor's
        draw is constant between events, so blocked reads macro-step
        to their exact delivery tick.  Programs block on a reading
        with :func:`repro.sensors.accel.sample_request`.
        """
        from ..sensors.accel import AccelDaemon, AccelDevice
        if device is not None and params is not None:
            raise SimulationError(
                "pass either a constructed AccelDevice or "
                "AccelPowerParams, not both (the device already carries "
                "its params)")
        if device is None:
            device = AccelDevice(params)
        daemon = AccelDaemon(device, clock=ClockNow(self.clock))
        self.add_device(stepper=daemon.step,
                        power=device.power_above_baseline, source=daemon)
        return daemon

    # -- wiring helpers ---------------------------------------------------------------

    @property
    def battery_reserve(self) -> Reserve:
        """The root of the resource graph (the logical battery, §3.4)."""
        return self.graph.root

    def new_reserve(self, name: str = "", decay_exempt: bool = False
                    ) -> Reserve:
        """An empty reserve, registered with both graph and kernel."""
        return self.kernel.create_reserve(name=name,
                                          decay_exempt=decay_exempt)

    def powered_reserve(self, watts: float, name: str = "",
                        source: Optional[Reserve] = None) -> Reserve:
        """A reserve fed by a constant tap (from the battery by default).

        This is the Figure 1 pattern and the workhorse of every
        experiment setup.
        """
        reserve = self.new_reserve(name=name)
        self.kernel.create_tap(source if source is not None
                               else self.battery_reserve,
                               reserve, watts, name=f"{name}.in")
        return reserve

    # -- processes ------------------------------------------------------------------------

    def spawn(self, program: Callable[[ProcessContext], Generator],
              name: str, reserve: Optional[Reserve] = None) -> Process:
        """Create a process (kernel thread + generator) ready to run."""
        thread = self.kernel.create_thread(name=name)
        if reserve is not None:
            thread.set_active_reserve(reserve)
        self.scheduler.add_thread(thread)
        context = ProcessContext(self, None)  # type: ignore[arg-type]
        process = Process(name, thread, program, context)
        context.process = process
        process.spawn_order = len(self.processes)
        self.processes.append(process)
        self._by_thread[thread] = process
        self._new_processes.append(process)
        return process

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at simulation time ``when`` (engine-side
        scripting: the task manager schedules, figures use it too)."""
        if when < self.clock.now:
            raise SimulationError(f"cannot schedule in the past ({when})")
        heapq.heappush(self._timers, (when, next(self._timer_seq), callback))

    # -- the tick ---------------------------------------------------------------------------

    def step(self, graph_done: bool = False) -> None:
        """Advance the system by one tick.

        ``graph_done`` is the fleet scheduler's hook: when the world
        has already executed this tick's batch flow for a whole cohort
        in one stacked kernel call, the per-device step skips phase 1
        and runs the rest of the tick unchanged.
        """
        dt = self.clock.tick_s
        now = self.clock.now

        # 1. batch tap flow + global decay (§3.3, §5.2.2)
        if not graph_done:
            self.graph.step(dt)

        # 2. device state machines
        self.radio.tick(now)
        self.netd.step(now)
        for stepper in self._device_steppers:
            stepper(now)

        # 3. timers, then process resumption
        while self._timers and self._timers[0][0] <= now + 1e-12:
            _, _, callback = heapq.heappop(self._timers)
            callback()
        self._pump_processes(now)

        # 4. one scheduler quantum
        ran = self.scheduler.step(dt)
        if ran is not None:
            self._account_burn(ran, dt)

        # 5. physical power integration
        radio_watts = self.radio.power_above_baseline(now)
        if self._power_sources:
            radio_watts += sum(source(now)
                               for source in self._power_sources)
        power = self.model.system_power(cpu_busy=ran is not None,
                                        backlight_on=self.backlight_on,
                                        radio_watts=radio_watts)
        self.meter.feed(power, dt)
        self.battery.drain(power * dt)
        if now - self._last_record >= self.record_interval_s - 1e-12:
            self.trace.record("power.system", now, power)
            self.trace.record("power.radio", now, radio_watts)
            self.trace.sample_probes(now)
            self._last_record = now

        self.clock.advance()

    def run(self, duration_s: float) -> None:
        """Step until ``duration_s`` of simulated time has elapsed.

        When :attr:`fast_forward` is on and every event source is
        quiescent, whole event-free spans are advanced in one
        macro-step — closed-form flow/decay, one meter feed — instead
        of millions of no-op ticks.  Every event still lands on the
        exact tick it would land on tick-by-tick.
        """
        if duration_s < 0:
            raise SimulationError("duration must be non-negative")
        deadline = self.clock.now + duration_s
        while self.clock.now < deadline - 1e-12:
            ticks = self._ff_horizon_ticks(deadline)
            if ticks and self._ff_advance(ticks):
                continue
            self.step()

    def run_until(self, predicate: Callable[[], bool],
                  max_s: float = 36_000.0) -> float:
        """Step until ``predicate()`` or ``max_s``; returns elapsed time.

        Shares :meth:`run`'s macro-step loop: the predicate is checked
        after every normal step and at every event horizon (trace
        records bound spans to one record interval, so a predicate is
        never starved longer than that).
        """
        start = self.clock.now
        deadline = start + max_s
        while not predicate():
            if self.clock.now - start >= max_s:
                raise SimulationError(
                    f"run_until exceeded {max_s} simulated seconds")
            ticks = self._ff_horizon_ticks(deadline)
            if ticks and self._ff_advance(ticks):
                continue
            self.step()
        return self.clock.now - start

    # -- idle fast-forward ------------------------------------------------------------

    def _ff_horizon_ticks(self, deadline: float) -> int:
        """Skippable ticks before the next event (0 = must tick).

        Generic over the registered event sources: the span is
        possible iff every source is quiescent, and extends to the
        min-over-sources next event (capped at ``deadline``).  At
        least two ticks are required to amortize a macro-step.
        """
        return self._ff_poll(deadline)[0]

    def _ff_poll(self, deadline: float) -> Tuple[int, bool, bool]:
        """``(skippable ticks, firm, executes)`` in one source pass.

        ``firm`` reports whether the bounding event instant is exact
        and time-invariant (see :attr:`~repro.sim.events.EventSource.
        horizon_firm`): a fleet scheduler may then cache the absolute
        target tick across world iterations instead of re-polling
        this device.  ``executes`` reports whether landing on that
        instant requires a normal step or merely closes a
        constant-power span (:attr:`~repro.sim.events.EventSource.
        horizon_executes`).  A 0 answer (must tick) is always firm —
        it has to be re-examined after the very next step anyway.

        The poll itself never mutates device state, so a scheduler
        that polls once and acts later (the frontier scheduler parks
        the answer in a heap) sees exactly what an act-immediately
        loop like :meth:`run` would — provided the device is untouched
        in between.
        """
        if not self.fast_forward:
            return 0, True, True
        clock = self.clock
        now = clock.now
        quiet, horizon, firm, executes = self.horizon.poll(now, deadline)
        if not quiet:
            # No macro-step attempted.  The refusal window deliberately
            # stays open: a busy poll mid-stretch (a trace record, a
            # task waking) does not end the degradation, and closing it
            # here double-counted one contiguous degraded window as
            # many.  Only a committed span (:meth:`_ff_commit`) ends
            # the window.
            return 0, True, True
        if not math.isfinite(horizon) or horizon <= now:
            return 0, True, True  # e.g. the very first record is due
        # The event fires inside the step at the first tick instant
        # >= horizon (step() compares with a 1e-12 slack); fast-forward
        # lands exactly on that tick and lets a normal step handle it.
        # (A near horizon does not close a refusal window: the trace
        # cadence lands every interval and would fragment one degraded
        # stretch into many.)
        target_tick = math.ceil((horizon - 1e-12) / clock.tick_s)
        ticks = target_tick - clock.ticks
        if ticks < 2:
            return 0, True, True  # nothing to amortize
        return ticks, firm, executes

    def _ff_advance(self, ticks: int) -> bool:
        """Advance exactly ``ticks`` ticks in one macro-step.

        Returns False — nothing mutated — when the graph's closed form
        refuses the span (e.g. a constant tap would clamp mid-span):
        the caller must take normal steps instead.  On success the
        skipped span is replayed in bulk: closed-form flows/decay on
        the graph, each event source's own closed form (netd pooled
        accrual), one constant-power meter feed (identical 200 ms
        samples), and the idle time booked to the scheduler.

        The three phases are factored so a fleet scheduler can run
        the graph solve for a whole cohort in one stacked call:
        :meth:`_ff_begin` (frozen-tap gathering and arbitration),
        the graph span itself, then :meth:`_ff_commit` /
        :meth:`_ff_refuse`.
        """
        frozen = self._ff_begin()
        if frozen is None:
            return False
        span = ticks * self.clock.tick_s
        if self.graph.advance_span(span, frozen_taps=frozen) is None:
            self._ff_refuse()
            return False  # e.g. a constant tap would clamp mid-span
        self._ff_commit(ticks)
        return True

    def _ff_begin(self) -> Optional[List]:
        """Gather the span's frozen taps, or None to refuse the span.

        Sources that integrate their own taps (netd pooled accrual)
        hold them out of the graph's span so nothing double-counts.
        Two sources claiming the same tap's accrual — e.g. netd and
        gpsd waiters sharing one reserve — are each sound in
        isolation, but replaying both would double-count the feed
        (root debited twice, both pools credited), so arbitrate here:
        tick through, which is always correct.
        """
        frozen = self.horizon.frozen_taps(self.clock.now)
        if len(frozen) > 1 and len({id(t) for t in frozen}) != len(frozen):
            self._ff_refuse()
            return None
        return frozen

    @property
    def span_segments(self) -> int:
        """Segments the switching span engine executed for this device.

        The other half of the old ``span_refusals`` telemetry: spans
        whose single-regime closed form would have refused (mid-span
        clamp, binding capacity, debt repayment) now macro-step as
        located segment chains, counted here (see
        :attr:`~repro.core.graph.ResourceGraph.span_segments`), and
        only residual refusals still land in :attr:`span_refusals`.
        """
        return self.graph.span_segments

    def _ff_refuse(self) -> None:
        """Book a refused span (window-counted, not retry-counted)."""
        if not self._span_refusing:
            self.span_refusals += 1
            self._span_refusing = True

    def _ff_commit(self, ticks: int) -> None:
        """Apply everything *but* the graph span for a macro-step.

        The caller has already advanced the resource graph (directly
        or through a cohort-stacked solve); this replays each event
        source's own closed form, feeds the meter/battery at constant
        idle power, books scheduler idle time, and moves the clock.

        Split into :meth:`_ff_commit_begin` (source replay + span
        power) and :meth:`_ff_commit_finish` (battery, scheduler,
        clock) so a fleet scheduler can interpose a cohort-batched
        meter feed between them — the per-device operation order is
        exactly this method's.
        """
        power = self._ff_commit_begin(ticks)
        self.meter.feed(power, ticks * self.clock.tick_s)
        self._ff_commit_finish(ticks, power)

    def _ff_commit_begin(self, ticks: int) -> float:
        """First half of :meth:`_ff_commit`: replay the event sources
        across the span and return the span's constant system power
        (computed after the replay, exactly where the fused commit
        computed it)."""
        clock = self.clock
        now = clock.now
        span = ticks * clock.tick_s
        self._span_refusing = False
        self.horizon.advance_span(now, span)
        radio_watts = self.radio.power_above_baseline(now)
        if self._power_sources:
            radio_watts += sum(source(now)
                               for source in self._power_sources)
        return self.model.system_power(cpu_busy=False,
                                       backlight_on=self.backlight_on,
                                       radio_watts=radio_watts)

    def _ff_commit_finish(self, ticks: int, power: float) -> None:
        """Second half of :meth:`_ff_commit`: the caller has fed the
        meter (individually or through a cohort-batched feed)."""
        span = ticks * self.clock.tick_s
        self.battery.drain(power * span)
        self.scheduler.advance_idle(span)
        self.clock.advance_many(ticks)
        self.fast_forwarded_ticks += ticks

    # -- process internals ----------------------------------------------------------------------

    def _pump_processes(self, now: float) -> None:
        """Resume everything whose wait ended (event-indexed).

        Replaces the seed's per-tick scan over every process with a
        sleeping-process heap, a WaitFor list, and the in-flight net-op
        map — idle processes cost nothing per tick.

        All indexes are snapshotted *before* anything advances, then
        the candidates are resumed in spawn order — exactly the seed's
        single pass over ``processes``, minus the visits to processes
        with nothing to do.  A wait registered while this pump runs
        (e.g. a WaitFor yielded right after a sleep completed) is
        first considered on the next tick, and cross-process same-tick
        cascades resolve in spawn order, as before.
        """
        candidates: List[Process] = []
        if self._new_processes:
            fresh, self._new_processes = self._new_processes, []
            candidates.extend(fresh)
        sleepers = self._sleepers
        while sleepers and sleepers[0][0] <= now + 1e-12:
            _, _, process, request = heapq.heappop(sleepers)
            if process.finished or process.current is not request:
                continue  # stale entry
            candidates.append(process)
        if self._waiting:
            waiters, self._waiting = self._waiting, []
            candidates.extend(waiters)
        if self._net_ops:
            candidates.extend(self._net_ops.keys())
        if self._service_ops:
            candidates.extend(self._service_ops.keys())
        if not candidates:
            return
        candidates.sort(key=lambda p: p.spawn_order)
        for process in candidates:
            if process.finished:
                continue
            if not process.started:
                self._advance(process)
                continue
            request = process.current
            if isinstance(request, (Sleep, SleepUntil)):
                # Only due sleepers were collected above.
                process.complete_current(None)
                self._advance(process)
            elif isinstance(request, WaitFor):
                if request.predicate():
                    process.complete_current(None)
                    self._advance(process)
                else:
                    self._waiting.append(process)
            elif isinstance(request, NetRequest):
                op = self._net_ops.get(process)
                if op is not None:
                    reply = self.netd.reply_for(op)
                    if reply is not None:
                        del self._net_ops[process]
                        process.complete_current(reply)
                        self._advance(process)
            elif isinstance(request, ServiceCall):
                entry = self._service_ops.get(process)
                if entry is not None:
                    reply = entry[0].poll(entry[1])
                    if reply is not None:
                        del self._service_ops[process]
                        process.complete_current(reply)
                        self._advance(process)

    def _advance(self, process: Process) -> None:
        """Drive a process to its next *blocking* request."""
        while True:
            request = process.advance()
            if request is None:
                self.scheduler.remove_thread(process.thread)
                self._by_thread.pop(process.thread, None)
                return
            if isinstance(request, Fork):
                child = self.spawn(request.program,
                                   request.name or f"{process.name}.child")
                if request.setup is not None:
                    request.setup(child)
                process.complete_current(child)
                continue
            if isinstance(request, NetRequest):
                op = self.netd_gate.call(process.thread, request)
                reply = self.netd.reply_for(op)
                if reply is not None:
                    # Completed synchronously (instant affordable op).
                    process.complete_current(reply)
                    continue
                self._net_ops[process] = op
                return
            if isinstance(request, ServiceCall):
                op = request.submit(process.thread)
                reply = request.poll(op)
                if reply is not None:
                    # Completed synchronously (e.g. a fresh GPS fix).
                    process.complete_current(reply)
                    continue
                self._service_ops[process] = (request, op)
                return
            # CpuBurn / Sleep / SleepUntil / WaitFor block until a later
            # tick; Process.advance already set the thread state.  Index
            # the wait so _pump_processes finds it without scanning.
            if isinstance(request, (Sleep, SleepUntil)):
                heapq.heappush(self._sleepers,
                               (process.thread.wake_at,
                                next(self._sleep_seq), process, request))
            elif isinstance(request, WaitFor):
                self._waiting.append(process)
            return

    def _account_burn(self, thread, dt: float) -> None:
        process = self._by_thread.get(thread)
        if process is not None and isinstance(process.current, CpuBurn):
            process.burn_remaining -= dt
            if process.burn_remaining <= 1e-12:
                process.complete_current(None)
                self._advance(process)

    # -- reporting -------------------------------------------------------------------------------

    def watch_reserve(self, reserve: Reserve, name: str = "") -> None:
        """Record ``reserve``'s level on every trace interval."""
        label = name or f"reserve.{reserve.name}"
        self.trace.add_probe(label, lambda: reserve.level)

    def process_named(self, name: str) -> Process:
        """Find a process by name."""
        for process in self.processes:
            if process.name == name:
                return process
        raise SimulationError(f"no process named {name!r}")


class CinderSystem(DeviceRuntime):
    """A complete simulated Cinder device (the paper-default assembly).

    Thin facade: the constructor builds the HTC Dream component set —
    kernel + energy graph with the §5.2.2 decay, energy-aware
    scheduler, §4.3 radio, §5.5 netd, Agilent meter, physical battery
    — and hands it to :class:`DeviceRuntime`, which does all the work.
    """

    def __init__(
        self,
        battery_joules: float = 15_000.0,
        tick_s: float = 0.01,
        model: Optional[DreamPowerModel] = None,
        seed: int = 0,
        decay_half_life_s: float = 600.0,
        decay_enabled: bool = True,
        meter_noise: float = 0.0,
        record_interval_s: float = 0.2,
        backlight_on: bool = False,
        cooperative_netd: bool = True,
        unrestricted_netd: bool = False,
        hosts: Optional[RemoteHosts] = None,
        fast_forward: bool = True,
    ) -> None:
        model = model if model is not None else DreamPowerModel()
        clock = Clock(tick_s)
        kernel = Kernel(battery_joules)
        kernel.energy_graph.decay_policy = DecayPolicy(decay_half_life_s,
                                                       decay_enabled)
        ledger = ConsumptionLedger(clock=ClockNow(clock))
        scheduler = EnergyAwareScheduler(model.cpu_active_watts, ledger)
        radio = RadioDevice(model.radio,
                            rng=np.random.default_rng(seed + 1))
        netd = NetworkDaemon(
            kernel.energy_graph, radio, clock=ClockNow(clock),
            hosts=hosts, cooperative=cooperative_netd,
            unrestricted=unrestricted_netd, ledger=ledger)
        meter = PowerMeter(supply_voltage=model.supply_voltage,
                           noise_fraction=meter_noise,
                           rng=np.random.default_rng(seed + 2))
        battery = Battery(capacity_joules=max(battery_joules, 1.0),
                          charge_joules=battery_joules)
        super().__init__(
            model=model, clock=clock, kernel=kernel, scheduler=scheduler,
            ledger=ledger, radio=radio, netd=netd, meter=meter,
            battery=battery, rng=np.random.default_rng(seed),
            record_interval_s=record_interval_s, backlight_on=backlight_on,
            fast_forward=fast_forward)
